//! A small x86-like instruction and module model, plus a textual parser.
//!
//! The model keeps exactly the information the paper's analyses need: the
//! mnemonic, whether the instruction carries a `LOCK` prefix, its operands
//! (registers, immediates and symbolic memory references), the symbol the
//! memory operand refers to, and the source line the debug information maps
//! the instruction to (the paper's Ruby script uses the same mapping to drive
//! the source-level refactoring).

use serde::{Deserialize, Serialize};

/// A symbolic memory reference: `symbol(+offset)` — e.g. `spinlock+4`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// The symbol (variable name or abstract heap object) being addressed.
    pub symbol: String,
    /// Byte offset from the symbol.
    pub offset: i64,
    /// Whether the access is naturally aligned for its width.
    pub aligned: bool,
}

impl MemRef {
    /// Creates an aligned reference to `symbol`.
    pub fn to(symbol: &str) -> Self {
        MemRef {
            symbol: symbol.to_string(),
            offset: 0,
            aligned: true,
        }
    }

    /// Creates a reference with an offset.
    pub fn with_offset(symbol: &str, offset: i64) -> Self {
        MemRef {
            symbol: symbol.to_string(),
            offset,
            aligned: offset % 8 == 0,
        }
    }
}

/// An instruction operand.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A register.
    Reg(String),
    /// An immediate value.
    Imm(i64),
    /// A memory reference.
    Mem(MemRef),
}

impl Operand {
    /// The memory reference, if this operand is one.
    pub fn mem(&self) -> Option<&MemRef> {
        match self {
            Operand::Mem(m) => Some(m),
            _ => None,
        }
    }
}

/// One instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instruction {
    /// Lower-case mnemonic (`mov`, `cmpxchg`, `xchg`, `add`, ...).
    pub mnemonic: String,
    /// Whether the instruction carries a `LOCK` prefix.
    pub lock_prefix: bool,
    /// Operands, destination first (AT&T order is normalized by the parser).
    pub operands: Vec<Operand>,
    /// Source line from the debug information (0 when unknown).
    pub source_line: u32,
    /// The function the instruction belongs to.
    pub function: String,
}

impl Instruction {
    /// Creates an instruction.
    pub fn new(mnemonic: &str, lock_prefix: bool, operands: Vec<Operand>) -> Self {
        Instruction {
            mnemonic: mnemonic.to_lowercase(),
            lock_prefix,
            operands,
            source_line: 0,
            function: String::new(),
        }
    }

    /// Sets the source line (builder style).
    pub fn at_line(mut self, line: u32) -> Self {
        self.source_line = line;
        self
    }

    /// Sets the enclosing function (builder style).
    pub fn in_function(mut self, function: &str) -> Self {
        self.function = function.to_string();
        self
    }

    /// The first memory operand, if any.
    pub fn memory_operand(&self) -> Option<&MemRef> {
        self.operands.iter().find_map(Operand::mem)
    }

    /// Whether this is an ordinary aligned load or store (`mov` family with a
    /// memory operand) — a *candidate* type-iii sync op.
    pub fn is_aligned_load_store(&self) -> bool {
        matches!(
            self.mnemonic.as_str(),
            "mov" | "movl" | "movq" | "movb" | "movw"
        ) && self.memory_operand().map(|m| m.aligned).unwrap_or(false)
    }
}

/// A compiled module (a program binary or a shared library).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Module {
    /// Module name (e.g. `libc-2.19.so`).
    pub name: String,
    /// All instructions, in layout order.
    pub instructions: Vec<Instruction>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: &str) -> Self {
        Module {
            name: name.to_string(),
            instructions: Vec::new(),
        }
    }

    /// Appends an instruction and returns its index.
    pub fn push(&mut self, instruction: Instruction) -> usize {
        self.instructions.push(instruction);
        self.instructions.len() - 1
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the module has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Parses a toy AT&T-flavoured listing, one instruction per line:
    ///
    /// ```text
    /// # comment
    /// fn spinlock_lock
    /// lock cmpxchg %ecx, spinlock      ; line 4
    /// mov $0, spinlock                 ; line 9
    /// xchg %eax, futex_word
    /// ```
    ///
    /// `fn NAME` switches the current function; `; line N` attaches debug
    /// info.  Operands starting with `%` are registers, with `$` immediates,
    /// anything else is a symbolic memory reference (`symbol+offset`).
    pub fn parse(name: &str, listing: &str) -> Self {
        let mut module = Module::new(name);
        let mut current_fn = String::from("unknown");
        for raw in listing.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("fn ") {
                current_fn = rest.trim().to_string();
                continue;
            }
            let (code, meta) = match line.split_once(';') {
                Some((c, m)) => (c.trim(), m.trim()),
                None => (line, ""),
            };
            let source_line = meta
                .strip_prefix("line ")
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0);
            let mut tokens = code.split_whitespace();
            let first = match tokens.next() {
                Some(t) => t,
                None => continue,
            };
            let (lock, mnemonic) = if first.eq_ignore_ascii_case("lock") {
                (true, tokens.next().unwrap_or("nop").to_string())
            } else {
                (false, first.to_string())
            };
            let rest: String = tokens.collect::<Vec<_>>().join(" ");
            let operands = rest
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(Self::parse_operand)
                .collect();
            module.push(
                Instruction::new(&mnemonic, lock, operands)
                    .at_line(source_line)
                    .in_function(&current_fn),
            );
        }
        module
    }

    fn parse_operand(text: &str) -> Operand {
        if let Some(reg) = text.strip_prefix('%') {
            return Operand::Reg(reg.to_string());
        }
        if let Some(imm) = text.strip_prefix('$') {
            return Operand::Imm(imm.parse().unwrap_or(0));
        }
        // symbol or symbol+offset / symbol-offset
        if let Some((sym, off)) = text.split_once('+') {
            let offset = off.parse().unwrap_or(0);
            return Operand::Mem(MemRef::with_offset(sym, offset));
        }
        if let Some((sym, off)) = text.rsplit_once('-') {
            if let Ok(off) = off.parse::<i64>() {
                return Operand::Mem(MemRef::with_offset(sym, -off));
            }
        }
        Operand::Mem(MemRef::to(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LISTING: &str = r#"
# A spinlock and its unlock.
fn spinlock_lock
lock cmpxchg %ecx, spinlock   ; line 4
fn spinlock_unlock
mov $0, spinlock              ; line 9
fn other
xchg %eax, exchange_word
mov %eax, plain_data
add %eax, %ebx
"#;

    #[test]
    fn parser_extracts_instructions_and_functions() {
        let m = Module::parse("test.so", LISTING);
        assert_eq!(m.len(), 5);
        assert_eq!(m.instructions[0].mnemonic, "cmpxchg");
        assert!(m.instructions[0].lock_prefix);
        assert_eq!(m.instructions[0].function, "spinlock_lock");
        assert_eq!(m.instructions[0].source_line, 4);
        assert_eq!(m.instructions[1].mnemonic, "mov");
        assert!(!m.instructions[1].lock_prefix);
        assert_eq!(m.instructions[1].source_line, 9);
        assert_eq!(m.instructions[2].mnemonic, "xchg");
    }

    #[test]
    fn memory_operands_resolve_symbols_and_offsets() {
        let m = Module::parse("t", "mov %eax, buffer+16\nmov %eax, counter");
        assert_eq!(
            m.instructions[0].memory_operand(),
            Some(&MemRef::with_offset("buffer", 16))
        );
        assert_eq!(
            m.instructions[1].memory_operand(),
            Some(&MemRef::to("counter"))
        );
    }

    #[test]
    fn aligned_load_store_detection() {
        let m = Module::parse("t", "mov %eax, word\nadd %eax, word\nmov %eax, %ebx");
        assert!(m.instructions[0].is_aligned_load_store());
        assert!(
            !m.instructions[1].is_aligned_load_store(),
            "add is not a mov"
        );
        assert!(
            !m.instructions[2].is_aligned_load_store(),
            "register-only mov has no memory operand"
        );
    }

    #[test]
    fn unaligned_offsets_are_not_aligned_references() {
        let r = MemRef::with_offset("x", 4);
        assert!(!r.aligned);
        let r8 = MemRef::with_offset("x", 8);
        assert!(r8.aligned);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let m = Module::parse("t", "\n# nothing here\n\nnop\n");
        assert_eq!(m.len(), 1);
        assert_eq!(m.instructions[0].mnemonic, "nop");
    }

    #[test]
    fn register_and_immediate_operands_parse() {
        let m = Module::parse("t", "mov $42, %eax");
        assert_eq!(m.instructions[0].operands[0], Operand::Imm(42));
        assert_eq!(m.instructions[0].operands[1], Operand::Reg("eax".into()));
        assert!(m.instructions[0].memory_operand().is_none());
    }
}
