//! Stage 1: classifying instructions into the paper's sync-op types.
//!
//! * **Type (i)** — instructions with an explicit `LOCK` prefix.
//! * **Type (ii)** — `XCHG` instructions, which are implicitly locked on x86.
//! * **Type (iii)** — aligned loads/stores of variables that are *also*
//!   accessed by type (i)/(ii) instructions somewhere in the program (these
//!   are only confirmed by stage 2's points-to analysis; stage 1 merely
//!   collects the candidates).
//!
//! The per-module [`SyncOpReport`] is the row format of the paper's Table 3.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::asm::Module;

/// The paper's sync-op classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncOpClass {
    /// Type (i): explicit `LOCK` prefix.
    LockPrefixed,
    /// Type (ii): `XCHG` (implicit lock).
    Exchange,
    /// Type (iii): aligned load/store that may alias a type (i)/(ii) operand.
    AlignedLoadStore,
}

impl SyncOpClass {
    /// Table-3 column label.
    pub fn label(self) -> &'static str {
        match self {
            SyncOpClass::LockPrefixed => "(i)",
            SyncOpClass::Exchange => "(ii)",
            SyncOpClass::AlignedLoadStore => "(iii)",
        }
    }
}

/// Stage-1 result for one module.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncOpReport {
    /// Module name.
    pub module: String,
    /// Indices of type (i) instructions.
    pub type_i: Vec<usize>,
    /// Indices of type (ii) instructions.
    pub type_ii: Vec<usize>,
    /// Indices of *confirmed* type (iii) instructions (filled in by stage 2).
    pub type_iii: Vec<usize>,
    /// Indices of aligned load/store instructions that are candidates for
    /// type (iii) (input to stage 2).
    pub type_iii_candidates: Vec<usize>,
    /// The synchronization-variable symbols named by type (i)/(ii) operands.
    pub sync_symbols: BTreeSet<String>,
}

impl SyncOpReport {
    /// Total number of confirmed sync ops.
    pub fn total(&self) -> usize {
        self.type_i.len() + self.type_ii.len() + self.type_iii.len()
    }

    /// Counts as a `(i, ii, iii)` triple — one row of Table 3.
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.type_i.len(), self.type_ii.len(), self.type_iii.len())
    }

    /// All confirmed sync-op instruction indices, ascending.
    pub fn all_sync_ops(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .type_i
            .iter()
            .chain(self.type_ii.iter())
            .chain(self.type_iii.iter())
            .copied()
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Runs stage 1 over a module.
///
/// The returned report has `type_i`, `type_ii`, the type (iii) *candidates*
/// and the set of synchronization-variable symbols; `type_iii` itself is
/// empty until [`stage2::identify_sync_ops`](crate::stage2::identify_sync_ops)
/// confirms candidates with a points-to analysis.
pub fn classify_module(module: &Module) -> SyncOpReport {
    let mut report = SyncOpReport {
        module: module.name.clone(),
        ..Default::default()
    };
    for (idx, ins) in module.instructions.iter().enumerate() {
        if ins.lock_prefix {
            report.type_i.push(idx);
            if let Some(mem) = ins.memory_operand() {
                report.sync_symbols.insert(mem.symbol.clone());
            }
        } else if ins.mnemonic == "xchg" {
            report.type_ii.push(idx);
            if let Some(mem) = ins.memory_operand() {
                report.sync_symbols.insert(mem.symbol.clone());
            }
        } else if ins.is_aligned_load_store() {
            report.type_iii_candidates.push(idx);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Module;

    const LISTING: &str = r#"
fn spinlock_lock
lock cmpxchg %ecx, spinlock      ; line 4
fn spinlock_unlock
mov $0, spinlock                 ; line 9
fn barrier
lock xadd %eax, barrier_count
xchg %eax, exchange_word
fn compute
mov %eax, local_data
mov %eax, %ebx
add %ecx, plain_counter
"#;

    #[test]
    fn stage1_separates_types() {
        let m = Module::parse("test", LISTING);
        let r = classify_module(&m);
        assert_eq!(r.type_i.len(), 2, "two LOCK-prefixed instructions");
        assert_eq!(r.type_ii.len(), 1, "one XCHG");
        assert_eq!(r.type_iii.len(), 0, "stage 1 confirms no type (iii)");
        // The two movs with memory operands are candidates; `add` is not.
        assert_eq!(r.type_iii_candidates.len(), 2);
    }

    #[test]
    fn sync_symbols_come_from_lock_and_xchg_operands() {
        let m = Module::parse("test", LISTING);
        let r = classify_module(&m);
        assert!(r.sync_symbols.contains("spinlock"));
        assert!(r.sync_symbols.contains("barrier_count"));
        assert!(r.sync_symbols.contains("exchange_word"));
        assert!(!r.sync_symbols.contains("local_data"));
    }

    #[test]
    fn counts_and_totals_are_consistent() {
        let m = Module::parse("test", LISTING);
        let r = classify_module(&m);
        let (i, ii, iii) = r.counts();
        assert_eq!(r.total(), i + ii + iii);
        assert_eq!(r.all_sync_ops().len(), r.total());
    }

    #[test]
    fn empty_module_produces_empty_report() {
        let m = Module::new("empty");
        let r = classify_module(&m);
        assert_eq!(r.total(), 0);
        assert!(r.sync_symbols.is_empty());
        assert!(r.type_iii_candidates.is_empty());
    }

    #[test]
    fn class_labels_match_the_paper() {
        assert_eq!(SyncOpClass::LockPrefixed.label(), "(i)");
        assert_eq!(SyncOpClass::Exchange.label(), "(ii)");
        assert_eq!(SyncOpClass::AlignedLoadStore.label(), "(iii)");
    }
}
