//! Synthetic code corpora modelled after the modules of Table 3.
//!
//! The paper reports how many sync ops of each type its analysis finds in
//! glibc, libpthread, libgomp, libstdc++ and four PARSEC binaries, plus the
//! 51 sync ops identified in nginx's custom synchronization primitives
//! (§5.5).  The real binaries are not available here, so this module
//! generates synthetic assembly corpora with the same sync-op population:
//! each corpus contains exactly the reported number of `LOCK`-prefixed
//! instructions, `XCHG` instructions and aliasing aligned loads/stores,
//! embedded in a realistic amount of ordinary code.  Running the stage-1 +
//! stage-2 pipeline over these corpora regenerates Table 3.

use serde::{Deserialize, Serialize};

use crate::asm::Module;

/// One row of Table 3: the expected sync-op population of a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Module name as printed in the paper.
    pub name: &'static str,
    /// Whether the paper groups it under "Base Libraries" or the benchmarks.
    pub is_library: bool,
    /// Expected type (i) count (LOCK prefix).
    pub type_i: usize,
    /// Expected type (ii) count (XCHG).
    pub type_ii: usize,
    /// Expected type (iii) count (aliasing aligned load/store).
    pub type_iii: usize,
}

/// The paper's Table 3, row by row.
pub const TABLE3_SPECS: &[CorpusSpec] = &[
    CorpusSpec {
        name: "libc-2.19.so",
        is_library: true,
        type_i: 319,
        type_ii: 409,
        type_iii: 94,
    },
    CorpusSpec {
        name: "libpthreads-2.19.so",
        is_library: true,
        type_i: 163,
        type_ii: 81,
        type_iii: 160,
    },
    CorpusSpec {
        name: "libgomp.so",
        is_library: true,
        type_i: 68,
        type_ii: 38,
        type_iii: 13,
    },
    CorpusSpec {
        name: "libstdc++.so",
        is_library: true,
        type_i: 162,
        type_ii: 3,
        type_iii: 25,
    },
    CorpusSpec {
        name: "bodytrack",
        is_library: false,
        type_i: 201,
        type_ii: 0,
        type_iii: 8,
    },
    CorpusSpec {
        name: "facesim",
        is_library: false,
        type_i: 385,
        type_ii: 0,
        type_iii: 8,
    },
    CorpusSpec {
        name: "raytrace",
        is_library: false,
        type_i: 170,
        type_ii: 0,
        type_iii: 8,
    },
    CorpusSpec {
        name: "vips",
        is_library: false,
        type_i: 4,
        type_ii: 0,
        type_iii: 6,
    },
];

/// The number of sync ops the paper reports identifying in nginx 1.8's custom
/// synchronization primitives (§5.5).
pub const NGINX_SYNC_OPS: usize = 51;

/// Generates the synthetic module for one Table 3 row.
///
/// The module contains, per sync variable, a cluster of LOCK/XCHG accesses
/// plus aligned loads/stores to the same symbols (the type-iii population),
/// interleaved with ordinary code (`mov`/`add`/`call` on unrelated symbols)
/// at roughly 40 filler instructions per sync op, so the analysis has to find
/// the needles in a realistic haystack.
pub fn generate_module(spec: &CorpusSpec) -> Module {
    let mut listing = String::new();

    // Type (i): LOCK-prefixed read-modify-writes spread over lock variables.
    for i in 0..spec.type_i {
        listing.push_str(&format!("fn {}_lock_fn_{}\n", sanitize(spec.name), i));
        push_filler(&mut listing, i, 20);
        let var = format!("{}_syncvar_{}", sanitize(spec.name), i);
        let op = match i % 3 {
            0 => "cmpxchg %ecx,",
            1 => "xadd %eax,",
            _ => "add $1,",
        };
        listing.push_str(&format!("lock {} {} ; line {}\n", op, var, 100 + i));
        push_filler(&mut listing, i + 7, 20);
    }

    // Type (ii): XCHG instructions on their own set of variables.
    for i in 0..spec.type_ii {
        listing.push_str(&format!("fn {}_xchg_fn_{}\n", sanitize(spec.name), i));
        push_filler(&mut listing, i + 3, 15);
        let var = format!("{}_xchgvar_{}", sanitize(spec.name), i);
        listing.push_str(&format!("xchg %eax, {} ; line {}\n", var, 500 + i));
        push_filler(&mut listing, i + 11, 15);
    }

    // Type (iii): aligned loads/stores on variables already touched by the
    // type (i) instructions above (so symbol identity confirms them).
    for i in 0..spec.type_iii {
        listing.push_str(&format!("fn {}_unlock_fn_{}\n", sanitize(spec.name), i));
        push_filler(&mut listing, i + 5, 10);
        let var = format!(
            "{}_syncvar_{}",
            sanitize(spec.name),
            i % (spec.type_i.max(1))
        );
        listing.push_str(&format!("mov $0, {} ; line {}\n", var, 900 + i));
        push_filler(&mut listing, i + 13, 10);
    }

    Module::parse(spec.name, &listing)
}

/// Generates the nginx corpus of §5.5: 51 sync ops implementing nginx's
/// custom spinlocks and atomic counters, on top of pthread-style primitives.
pub fn generate_nginx_module() -> Module {
    let mut listing = String::new();
    // nginx's ngx_spinlock / ngx_atomic_cmp_set style primitives: a mixture
    // of LOCK CMPXCHG, LOCK XADD and the release stores that pair with them.
    // 34 locked ops + 3 xchg + 14 release stores = 51 sync ops.
    for i in 0..34 {
        listing.push_str(&format!("fn ngx_spinlock_{}\n", i));
        push_filler(&mut listing, i, 12);
        let var = format!("ngx_lock_{}", i % 17);
        let op = if i % 2 == 0 {
            "cmpxchg %ecx,"
        } else {
            "xadd %eax,"
        };
        listing.push_str(&format!("lock {} {} ; line {}\n", op, var, 40 + i));
    }
    for i in 0..3 {
        listing.push_str(&format!("fn ngx_xchg_{}\n", i));
        listing.push_str(&format!(
            "xchg %eax, ngx_exchange_{} ; line {}\n",
            i,
            90 + i
        ));
    }
    for i in 0..14 {
        listing.push_str(&format!("fn ngx_unlock_{}\n", i));
        push_filler(&mut listing, i + 2, 8);
        let var = format!("ngx_lock_{}", i % 17);
        listing.push_str(&format!("mov $0, {} ; line {}\n", var, 120 + i));
    }
    Module::parse("nginx-1.8", &listing)
}

fn sanitize(name: &str) -> String {
    name.replace(['.', '-', '+'], "_")
}

fn push_filler(listing: &mut String, seed: usize, count: usize) {
    for j in 0..count {
        match (seed + j) % 5 {
            0 => listing.push_str(&format!("mov %eax, %r{}\n", 8 + (j % 8))),
            1 => listing.push_str(&format!("add $1, %r{}\n", 8 + (j % 8))),
            2 => listing.push_str("call helper_function\n"),
            3 => listing.push_str(&format!("mov %ebx, filler_data_{}\n", seed * 31 + j)),
            _ => listing.push_str("cmp %eax, %ebx\n"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_module;
    use crate::stage2::identify_sync_ops_syntactic;

    #[test]
    fn every_table3_corpus_reproduces_its_row() {
        for spec in TABLE3_SPECS {
            let module = generate_module(spec);
            let report = identify_sync_ops_syntactic(&module);
            let (i, ii, iii) = report.counts();
            assert_eq!(i, spec.type_i, "{}: type (i)", spec.name);
            assert_eq!(ii, spec.type_ii, "{}: type (ii)", spec.name);
            assert_eq!(iii, spec.type_iii, "{}: type (iii)", spec.name);
        }
    }

    #[test]
    fn corpora_contain_realistic_amounts_of_filler() {
        let spec = &TABLE3_SPECS[0]; // libc
        let module = generate_module(spec);
        let report = classify_module(&module);
        let sync = report.type_i.len() + report.type_ii.len();
        assert!(
            module.len() > sync * 10,
            "filler must dominate: {} instructions for {} sync ops",
            module.len(),
            sync
        );
    }

    #[test]
    fn filler_stores_are_not_misclassified() {
        // Filler `mov %ebx, filler_data_N` must not be confirmed as type iii.
        let spec = CorpusSpec {
            name: "tiny",
            is_library: false,
            type_i: 2,
            type_ii: 1,
            type_iii: 1,
        };
        let module = generate_module(&spec);
        let report = identify_sync_ops_syntactic(&module);
        assert_eq!(report.counts(), (2, 1, 1));
    }

    #[test]
    fn nginx_corpus_has_exactly_51_sync_ops() {
        let module = generate_nginx_module();
        let report = identify_sync_ops_syntactic(&module);
        assert_eq!(report.total(), NGINX_SYNC_OPS);
    }

    #[test]
    fn table3_has_the_papers_eight_rows() {
        assert_eq!(TABLE3_SPECS.len(), 8);
        assert_eq!(TABLE3_SPECS.iter().filter(|s| s.is_library).count(), 4);
        // Spot-check two rows against the paper.
        let libc = &TABLE3_SPECS[0];
        assert_eq!((libc.type_i, libc.type_ii, libc.type_iii), (319, 409, 94));
        let vips = TABLE3_SPECS.iter().find(|s| s.name == "vips").unwrap();
        assert_eq!((vips.type_i, vips.type_ii, vips.type_iii), (4, 0, 6));
    }
}
