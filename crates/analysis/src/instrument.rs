//! Inserting the agent calls around identified sync ops (§4.4, Listing 3).
//!
//! The paper wraps every sync op between calls to `before_sync_op` and
//! `after_sync_op`, implemented by the injected agent (and present as weak
//! no-op symbols so uninstrumented runs still link).  This module performs
//! the same rewrite on the toy module model: it inserts `call` pseudo-
//! instructions around every instruction listed in a
//! [`SyncOpReport`](crate::classify::SyncOpReport).

use serde::{Deserialize, Serialize};

use crate::asm::{Instruction, MemRef, Module, Operand};
use crate::classify::SyncOpReport;

/// Summary of an instrumentation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrumentationSummary {
    /// Number of sync ops wrapped.
    pub wrapped_ops: usize,
    /// Number of instructions in the module before the pass.
    pub original_len: usize,
    /// Number of instructions after the pass.
    pub instrumented_len: usize,
}

impl InstrumentationSummary {
    /// Every wrapped op adds exactly two call instructions.
    pub fn is_consistent(&self) -> bool {
        self.instrumented_len == self.original_len + 2 * self.wrapped_ops
    }
}

/// Returns a copy of `module` with every sync op in `report` wrapped between
/// `call before_sync_op` and `call after_sync_op`, together with a summary.
///
/// The inserted calls carry the sync variable as their operand so that later
/// passes (and tests) can check which variable each call guards.
pub fn instrument_module(
    module: &Module,
    report: &SyncOpReport,
) -> (Module, InstrumentationSummary) {
    let sync_indices = report.all_sync_ops();
    let mut out = Module::new(&module.name);
    for (idx, ins) in module.instructions.iter().enumerate() {
        let is_sync = sync_indices.binary_search(&idx).is_ok();
        if is_sync {
            out.push(call_instruction("before_sync_op", ins));
        }
        out.push(ins.clone());
        if is_sync {
            out.push(call_instruction("after_sync_op", ins));
        }
    }
    let summary = InstrumentationSummary {
        wrapped_ops: sync_indices.len(),
        original_len: module.len(),
        instrumented_len: out.len(),
    };
    (out, summary)
}

fn call_instruction(target: &str, wrapped: &Instruction) -> Instruction {
    let operand = wrapped
        .memory_operand()
        .cloned()
        .unwrap_or_else(|| MemRef::to("unknown"));
    Instruction::new(
        "call",
        false,
        vec![Operand::Mem(MemRef::to(target)), Operand::Mem(operand)],
    )
    .at_line(wrapped.source_line)
    .in_function(&wrapped.function)
}

/// Verifies that an instrumented module wraps exactly the expected ops: every
/// sync op is immediately preceded by a `before_sync_op` call and immediately
/// followed by an `after_sync_op` call.
pub fn verify_instrumentation(instrumented: &Module) -> bool {
    let ins = &instrumented.instructions;
    for (i, instruction) in ins.iter().enumerate() {
        let is_agent_call = instruction.mnemonic == "call";
        if is_agent_call {
            continue;
        }
        let is_sync = instruction.lock_prefix || instruction.mnemonic == "xchg";
        if is_sync {
            let before_ok = i > 0
                && ins[i - 1].mnemonic == "call"
                && ins[i - 1]
                    .memory_operand()
                    .map(|m| m.symbol == "before_sync_op")
                    .unwrap_or(false);
            let after_ok = i + 1 < ins.len()
                && ins[i + 1].mnemonic == "call"
                && ins[i + 1]
                    .memory_operand()
                    .map(|m| m.symbol == "after_sync_op")
                    .unwrap_or(false);
            if !before_ok || !after_ok {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage2::identify_sync_ops_syntactic;

    const LISTING: &str = r#"
fn spinlock_lock
lock cmpxchg %ecx, spinlock
fn spinlock_unlock
mov $0, spinlock
fn other
mov %eax, plain
add %eax, %ebx
"#;

    #[test]
    fn instrumentation_wraps_each_sync_op_with_two_calls() {
        let m = Module::parse("t", LISTING);
        let report = identify_sync_ops_syntactic(&m);
        let (instrumented, summary) = instrument_module(&m, &report);
        assert_eq!(summary.wrapped_ops, 2, "the CAS and the unlock store");
        assert!(summary.is_consistent());
        assert_eq!(instrumented.len(), m.len() + 4);
        assert!(verify_instrumentation(&instrumented));
    }

    #[test]
    fn calls_carry_the_guarded_variable() {
        let m = Module::parse("t", "lock xadd %eax, counter");
        let report = identify_sync_ops_syntactic(&m);
        let (instrumented, _) = instrument_module(&m, &report);
        let before = &instrumented.instructions[0];
        assert_eq!(before.mnemonic, "call");
        assert_eq!(before.operands[0].mem().unwrap().symbol, "before_sync_op");
        assert_eq!(before.operands[1].mem().unwrap().symbol, "counter");
    }

    #[test]
    fn uninstrumented_sync_ops_fail_verification() {
        let m = Module::parse("t", LISTING);
        assert!(
            !verify_instrumentation(&m),
            "raw module has unwrapped sync ops"
        );
    }

    #[test]
    fn modules_without_sync_ops_are_unchanged() {
        let m = Module::parse("t", "mov %eax, %ebx\nadd %eax, %ecx");
        let report = identify_sync_ops_syntactic(&m);
        let (instrumented, summary) = instrument_module(&m, &report);
        assert_eq!(summary.wrapped_ops, 0);
        assert_eq!(instrumented.len(), m.len());
        assert!(verify_instrumentation(&instrumented));
    }

    #[test]
    fn non_sync_movs_are_not_wrapped() {
        let m = Module::parse("t", LISTING);
        let report = identify_sync_ops_syntactic(&m);
        let (instrumented, _) = instrument_module(&m, &report);
        // The `mov %eax, plain` must not be wrapped: the instruction before it
        // must not be a `before_sync_op` call and the one after it must not be
        // an `after_sync_op` call.
        let plain_idx = instrumented
            .instructions
            .iter()
            .position(|i| {
                i.mnemonic == "mov"
                    && i.memory_operand()
                        .map(|m| m.symbol == "plain")
                        .unwrap_or(false)
            })
            .unwrap();
        let prev = &instrumented.instructions[plain_idx - 1];
        let is_before_call = prev.mnemonic == "call"
            && prev
                .memory_operand()
                .map(|m| m.symbol == "before_sync_op")
                .unwrap_or(false);
        assert!(
            !is_before_call,
            "plain mov must not be preceded by a before_sync_op call"
        );
        let next = &instrumented.instructions[plain_idx + 1];
        let is_after_call = next.mnemonic == "call"
            && next
                .memory_operand()
                .map(|m| m.symbol == "after_sync_op")
                .unwrap_or(false);
        assert!(
            !is_after_call,
            "plain mov must not be followed by an after_sync_op call"
        );
    }
}
