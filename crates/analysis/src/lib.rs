//! Static identification and instrumentation of synchronization operations.
//!
//! The paper's agents can only replay the sync ops that were instrumented, so
//! finding *all* of them is a prerequisite (§4.3).  The paper's two-stage
//! strategy is:
//!
//! 1. **Stage 1** — scan the binary's instructions and mark every
//!    `LOCK`-prefixed instruction (type i) and every `XCHG` (type ii) as a
//!    sync op.  These are the only x86 encodings of atomic read-modify-write
//!    accesses.
//! 2. **Stage 2** — run a points-to analysis and additionally mark aligned
//!    load/store instructions (type iii) whose memory operand *may alias* a
//!    variable accessed by a type i/ii instruction.
//!
//! The paper prototypes the stage-2 analysis twice (a Steensgaard-style
//! unification analysis on LLVM's DSA, and an Andersen-style subset analysis
//! on SVF) and also describes an alternative workflow based on C11 `_Atomic`
//! type qualification with a modified clang that propagates the qualifier
//! along def-use chains.  This crate reproduces all of those pieces over a
//! small x86-like module model:
//!
//! * [`asm`] — the instruction/module model and the textual assembly parser.
//! * [`classify`] — stage 1 and the per-module sync-op report (Table 3).
//! * [`pointsto`] — Steensgaard and Andersen points-to analyses.
//! * [`stage2`] — stage 2: marking type-iii instructions via may-alias.
//! * [`qualify`] — the `_Atomic` qualifier propagation workflow with
//!   clang-style diagnostics.
//! * [`instrument`] — inserting the `before_sync_op` / `after_sync_op` calls.
//! * [`corpus`] — synthetic corpora modelled after the libraries and binaries
//!   of Table 3, used by the `table3` benchmark harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod classify;
pub mod corpus;
pub mod instrument;
pub mod pointsto;
pub mod qualify;
pub mod stage2;

pub use asm::{Instruction, MemRef, Module, Operand};
pub use classify::{classify_module, SyncOpClass, SyncOpReport};
pub use instrument::instrument_module;
pub use pointsto::{AndersenAnalysis, PointsToAnalysis, PointsToProgram, SteensgaardAnalysis};
pub use stage2::identify_sync_ops;
