//! Points-to analyses: Steensgaard-style unification and Andersen-style
//! subset constraints.
//!
//! The paper prototypes its stage-2 analysis twice — once on LLVM's DSA
//! framework (a Steensgaard-style, unification-based analysis) and once on
//! SVF (an Andersen-style, subset-based analysis) — and reports that both are
//! overly conservative on large code bases (§4.3.1).  This module implements
//! both algorithms over a small constraint language so the reproduction can
//! compare their precision the way the paper discusses it:
//!
//! * `p = &x`    — address-of ([`Constraint::AddressOf`])
//! * `p = q`     — copy ([`Constraint::Copy`])
//! * `p = *q`    — load ([`Constraint::Load`])
//! * `*p = q`    — store ([`Constraint::Store`])
//!
//! Both analyses answer the same queries: the points-to set of a pointer and
//! whether two pointers may alias.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

/// A pointer or object name.
pub type Name = String;

/// One assignment in the analysed program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Constraint {
    /// `dst = &object`
    AddressOf {
        /// Destination pointer.
        dst: Name,
        /// The object whose address is taken.
        object: Name,
    },
    /// `dst = src`
    Copy {
        /// Destination pointer.
        dst: Name,
        /// Source pointer.
        src: Name,
    },
    /// `dst = *src`
    Load {
        /// Destination pointer.
        dst: Name,
        /// Pointer that is dereferenced.
        src: Name,
    },
    /// `*dst = src`
    Store {
        /// Pointer that is dereferenced and written through.
        dst: Name,
        /// Source pointer.
        src: Name,
    },
}

/// A program in points-to constraint form.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PointsToProgram {
    /// All constraints, in program order (order is irrelevant to the result).
    pub constraints: Vec<Constraint>,
}

impl PointsToProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// `dst = &object`
    pub fn address_of(&mut self, dst: &str, object: &str) -> &mut Self {
        self.constraints.push(Constraint::AddressOf {
            dst: dst.into(),
            object: object.into(),
        });
        self
    }

    /// `dst = src`
    pub fn copy(&mut self, dst: &str, src: &str) -> &mut Self {
        self.constraints.push(Constraint::Copy {
            dst: dst.into(),
            src: src.into(),
        });
        self
    }

    /// `dst = *src`
    pub fn load(&mut self, dst: &str, src: &str) -> &mut Self {
        self.constraints.push(Constraint::Load {
            dst: dst.into(),
            src: src.into(),
        });
        self
    }

    /// `*dst = src`
    pub fn store(&mut self, dst: &str, src: &str) -> &mut Self {
        self.constraints.push(Constraint::Store {
            dst: dst.into(),
            src: src.into(),
        });
        self
    }
}

/// The interface both analyses implement.
pub trait PointsToAnalysis {
    /// Analysis name for reports.
    fn name(&self) -> &'static str;

    /// The points-to set of `pointer`.
    fn points_to(&self, pointer: &str) -> BTreeSet<Name>;

    /// Whether `a` and `b` may point to a common object.
    fn may_alias(&self, a: &str, b: &str) -> bool {
        !self.points_to(a).is_disjoint(&self.points_to(b))
    }
}

// ---------------------------------------------------------------------------
// Andersen: subset-based, worklist solved.
// ---------------------------------------------------------------------------

/// Andersen-style (inclusion-based) points-to analysis.
///
/// More precise than unification, cubic in the worst case — the trade-off the
/// paper attributes to SVF.
#[derive(Debug, Clone)]
pub struct AndersenAnalysis {
    sets: BTreeMap<Name, BTreeSet<Name>>,
}

impl AndersenAnalysis {
    /// Solves the constraints of `program`.
    pub fn solve(program: &PointsToProgram) -> Self {
        let mut sets: BTreeMap<Name, BTreeSet<Name>> = BTreeMap::new();
        // Seed with address-of edges.
        for c in &program.constraints {
            if let Constraint::AddressOf { dst, object } = c {
                sets.entry(dst.clone()).or_default().insert(object.clone());
            }
        }
        // Iterate to a fixpoint over copy/load/store edges.
        loop {
            let mut changed = false;
            for c in &program.constraints {
                match c {
                    Constraint::AddressOf { .. } => {}
                    Constraint::Copy { dst, src } => {
                        let src_set = sets.get(src).cloned().unwrap_or_default();
                        let dst_set = sets.entry(dst.clone()).or_default();
                        for o in src_set {
                            changed |= dst_set.insert(o);
                        }
                    }
                    Constraint::Load { dst, src } => {
                        // dst ⊇ pts(o) for every o in pts(src)
                        let targets = sets.get(src).cloned().unwrap_or_default();
                        let mut additions = BTreeSet::new();
                        for o in &targets {
                            if let Some(s) = sets.get(o) {
                                additions.extend(s.iter().cloned());
                            }
                        }
                        let dst_set = sets.entry(dst.clone()).or_default();
                        for o in additions {
                            changed |= dst_set.insert(o);
                        }
                    }
                    Constraint::Store { dst, src } => {
                        // pts(o) ⊇ pts(src) for every o in pts(dst)
                        let targets = sets.get(dst).cloned().unwrap_or_default();
                        let src_set = sets.get(src).cloned().unwrap_or_default();
                        for o in targets {
                            let o_set = sets.entry(o).or_default();
                            for s in &src_set {
                                changed |= o_set.insert(s.clone());
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        AndersenAnalysis { sets }
    }
}

impl PointsToAnalysis for AndersenAnalysis {
    fn name(&self) -> &'static str {
        "andersen (subset-based, SVF-style)"
    }

    fn points_to(&self, pointer: &str) -> BTreeSet<Name> {
        self.sets.get(pointer).cloned().unwrap_or_default()
    }
}

// ---------------------------------------------------------------------------
// Steensgaard: unification-based union-find.
// ---------------------------------------------------------------------------

/// Steensgaard-style (unification-based) points-to analysis.
///
/// Almost linear time, but unification merges everything a pointer ever
/// touches into one equivalence class — the field-sensitivity loss the paper
/// observed with DSA ("heap objects of incompatible types get unified").
#[derive(Debug, Clone)]
pub struct SteensgaardAnalysis {
    /// Union-find parent map over variable/object names.
    parent: BTreeMap<Name, Name>,
    /// For each equivalence-class representative, the representative of the
    /// class it points to (if any).
    points: BTreeMap<Name, Name>,
    /// All object names (address-taken variables) seen.
    objects: BTreeSet<Name>,
}

impl SteensgaardAnalysis {
    /// Solves the constraints of `program`.
    pub fn solve(program: &PointsToProgram) -> Self {
        let mut analysis = SteensgaardAnalysis {
            parent: BTreeMap::new(),
            points: BTreeMap::new(),
            objects: BTreeSet::new(),
        };
        for c in &program.constraints {
            match c {
                Constraint::AddressOf { dst, object } => {
                    analysis.objects.insert(object.clone());
                    let target = analysis.target_of(dst);
                    match target {
                        Some(t) => analysis.union(&t, object),
                        None => analysis.set_target(dst, object),
                    }
                }
                Constraint::Copy { dst, src } => analysis.unify_targets(dst, src),
                Constraint::Load { dst, src } => {
                    // dst points to whatever *src points to: unify pts(dst)
                    // with pts(pts(src)).
                    let via = analysis.target_or_fresh(src);
                    let inner = analysis.target_or_fresh(&via);
                    match analysis.target_of(dst) {
                        Some(t) => analysis.union(&t, &inner),
                        None => analysis.set_target(dst, &inner),
                    }
                }
                Constraint::Store { dst, src } => {
                    let via = analysis.target_or_fresh(dst);
                    let src_target = analysis.target_or_fresh(src);
                    match analysis.target_of(&via) {
                        Some(t) => analysis.union(&t, &src_target),
                        None => analysis.set_target(&via, &src_target),
                    }
                }
            }
        }
        analysis
    }

    fn find(&mut self, name: &str) -> Name {
        let entry = self.parent.get(name).cloned();
        match entry {
            None => {
                self.parent.insert(name.to_string(), name.to_string());
                name.to_string()
            }
            Some(p) if p == name => p,
            Some(p) => {
                let root = self.find(&p);
                self.parent.insert(name.to_string(), root.clone());
                root
            }
        }
    }

    fn union(&mut self, a: &str, b: &str) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        // Merge rb into ra, then unify their targets recursively (Steensgaard
        // keeps the type graph a forest).
        self.parent.insert(rb.clone(), ra.clone());
        let ta = self.points.get(&ra).cloned();
        let tb = self.points.remove(&rb);
        match (ta, tb) {
            (Some(ta), Some(tb)) => self.union(&ta, &tb),
            (None, Some(tb)) => {
                self.points.insert(ra, tb);
            }
            _ => {}
        }
    }

    fn target_of(&mut self, name: &str) -> Option<Name> {
        let root = self.find(name);
        self.points.get(&root).cloned()
    }

    fn set_target(&mut self, name: &str, target: &str) {
        let root = self.find(name);
        let troot = self.find(target);
        self.points.insert(root, troot);
    }

    fn target_or_fresh(&mut self, name: &str) -> Name {
        if let Some(t) = self.target_of(name) {
            return t;
        }
        let fresh = format!("__steens_obj_{}", self.points.len());
        self.set_target(name, &fresh);
        fresh
    }

    fn unify_targets(&mut self, a: &str, b: &str) {
        let ta = self.target_of(a);
        let tb = self.target_of(b);
        match (ta, tb) {
            (Some(ta), Some(tb)) => self.union(&ta, &tb),
            (Some(ta), None) => self.set_target(b, &ta),
            (None, Some(tb)) => self.set_target(a, &tb),
            (None, None) => {
                let fresh = self.target_or_fresh(a);
                self.set_target(b, &fresh);
            }
        }
    }

    fn find_readonly(&self, name: &str) -> Option<Name> {
        let mut current = self.parent.get(name)?.clone();
        loop {
            let next = self.parent.get(&current)?.clone();
            if next == current {
                return Some(current);
            }
            current = next;
        }
    }
}

impl PointsToAnalysis for SteensgaardAnalysis {
    fn name(&self) -> &'static str {
        "steensgaard (unification-based, DSA-style)"
    }

    fn points_to(&self, pointer: &str) -> BTreeSet<Name> {
        let root = match self.find_readonly(pointer) {
            Some(r) => r,
            None => return BTreeSet::new(),
        };
        let target_root = match self.points.get(&root) {
            Some(t) => self.find_readonly(t).unwrap_or_else(|| t.clone()),
            None => return BTreeSet::new(),
        };
        // Every object whose representative equals the target's representative.
        self.objects
            .iter()
            .filter(|o| {
                self.find_readonly(o)
                    .map(|r| r == target_root)
                    .unwrap_or(false)
            })
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Listing 1: a pointer passed to `spinlock_lock` and
    /// `spinlock_unlock` both referring to the global `spinlock`.
    fn spinlock_program() -> PointsToProgram {
        let mut p = PointsToProgram::new();
        p.address_of("lock_arg", "spinlock");
        p.copy("lock_ptr", "lock_arg");
        p.copy("unlock_ptr", "lock_arg");
        p.address_of("other", "unrelated");
        p
    }

    #[test]
    fn andersen_finds_the_alias_in_the_spinlock_example() {
        let a = AndersenAnalysis::solve(&spinlock_program());
        assert!(a.points_to("unlock_ptr").contains("spinlock"));
        assert!(a.may_alias("lock_ptr", "unlock_ptr"));
        assert!(!a.may_alias("lock_ptr", "other"));
    }

    #[test]
    fn steensgaard_finds_the_alias_in_the_spinlock_example() {
        let s = SteensgaardAnalysis::solve(&spinlock_program());
        assert!(s.points_to("unlock_ptr").contains("spinlock"));
        assert!(s.may_alias("lock_ptr", "unlock_ptr"));
        assert!(!s.may_alias("lock_ptr", "other"));
    }

    #[test]
    fn andersen_is_flow_insensitive_but_directional() {
        // p = &a; q = &b; p = q  =>  p may point to {a, b}, q only to {b}.
        let mut prog = PointsToProgram::new();
        prog.address_of("p", "a");
        prog.address_of("q", "b");
        prog.copy("p", "q");
        let a = AndersenAnalysis::solve(&prog);
        assert_eq!(a.points_to("p").len(), 2);
        assert_eq!(a.points_to("q").len(), 1);
    }

    #[test]
    fn steensgaard_unifies_where_andersen_separates() {
        // The unification analysis merges a and b into one class once p and q
        // are copied, so q appears to point to both — the precision loss the
        // paper observed with DSA.
        let mut prog = PointsToProgram::new();
        prog.address_of("p", "a");
        prog.address_of("q", "b");
        prog.copy("p", "q");
        let s = SteensgaardAnalysis::solve(&prog);
        let a = AndersenAnalysis::solve(&prog);
        assert!(s.points_to("q").len() >= a.points_to("q").len());
        assert!(s.points_to("q").contains("a"));
    }

    #[test]
    fn loads_and_stores_propagate_through_the_heap() {
        // heap = &obj; *heap_ptr_holder = heap; read = *heap_ptr_holder
        let mut prog = PointsToProgram::new();
        prog.address_of("heap", "obj");
        prog.address_of("holder", "cell");
        prog.store("holder", "heap");
        prog.load("read", "holder");
        let a = AndersenAnalysis::solve(&prog);
        assert!(a.points_to("read").contains("obj"));
        let s = SteensgaardAnalysis::solve(&prog);
        assert!(s.points_to("read").contains("obj"));
    }

    #[test]
    fn unknown_pointers_have_empty_sets() {
        let a = AndersenAnalysis::solve(&PointsToProgram::new());
        assert!(a.points_to("nothing").is_empty());
        let s = SteensgaardAnalysis::solve(&PointsToProgram::new());
        assert!(s.points_to("nothing").is_empty());
        assert!(!a.may_alias("x", "y"));
    }

    #[test]
    fn analyses_report_their_names() {
        let a = AndersenAnalysis::solve(&PointsToProgram::new());
        let s = SteensgaardAnalysis::solve(&PointsToProgram::new());
        assert!(a.name().contains("andersen"));
        assert!(s.name().contains("steensgaard"));
    }
}
