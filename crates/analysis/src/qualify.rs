//! The `_Atomic` type-qualification workflow (§4.3.1, "Explicit type
//! qualification").
//!
//! Instead of relying on whole-program alias analysis, the paper proposes a
//! refactoring discipline: mark every synchronization variable with C11's
//! `_Atomic` qualifier and let a modified clang enforce that the qualifier is
//! never lost along def-use chains.  The modified compiler
//!
//! * warns when a pointer to a *non*-qualified variable is cast to a pointer
//!   to an `_Atomic`-qualified variable,
//! * rejects (error) the opposite cast, which would silently drop the
//!   qualifier, and
//! * rejects using an `_Atomic`-qualified variable inside inline assembly.
//!
//! [`QualificationModel`] reproduces that workflow over a symbolic model of
//! variables, pointers and def-use edges: seed the sync variables found by
//! the stage-1 script, propagate the qualifier to a fixpoint, and collect the
//! diagnostics a build with the modified clang would print.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

/// Whether a declaration carries the `_Atomic` qualifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Qualifier {
    /// Explicitly `_Atomic`-qualified.
    Atomic,
    /// Not qualified.
    Plain,
}

/// A def-use edge between two declarations (an assignment, argument pass or
/// cast from `from` to `to`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefUseEdge {
    /// Source declaration.
    pub from: String,
    /// Destination declaration.
    pub to: String,
    /// Whether the edge is an explicit cast (casts get diagnostics).
    pub is_cast: bool,
}

/// A clang-style diagnostic produced by the qualification check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Diagnostic {
    /// Warning: pointer to non-qualified data cast to pointer to `_Atomic`.
    WarningCastToAtomic {
        /// The cast's source declaration.
        from: String,
        /// The cast's destination declaration.
        to: String,
    },
    /// Error: pointer to `_Atomic` data cast to pointer to non-qualified.
    ErrorCastDropsAtomic {
        /// The cast's source declaration.
        from: String,
        /// The cast's destination declaration.
        to: String,
    },
    /// Error: an `_Atomic` variable is referenced from inline assembly.
    ErrorAtomicInInlineAsm {
        /// The offending variable.
        variable: String,
    },
}

impl Diagnostic {
    /// Whether this diagnostic aborts compilation.
    pub fn is_error(&self) -> bool {
        !matches!(self, Diagnostic::WarningCastToAtomic { .. })
    }
}

/// The symbolic refactoring model.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QualificationModel {
    qualifiers: BTreeMap<String, Qualifier>,
    edges: Vec<DefUseEdge>,
    inline_asm_uses: BTreeSet<String>,
}

impl QualificationModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a variable or pointer with an initial qualifier.
    pub fn declare(&mut self, name: &str, qualifier: Qualifier) -> &mut Self {
        self.qualifiers.insert(name.to_string(), qualifier);
        self
    }

    /// Adds a def-use edge (assignment or argument pass).
    pub fn flow(&mut self, from: &str, to: &str) -> &mut Self {
        self.edges.push(DefUseEdge {
            from: from.to_string(),
            to: to.to_string(),
            is_cast: false,
        });
        self
    }

    /// Adds an explicit cast edge.
    pub fn cast(&mut self, from: &str, to: &str) -> &mut Self {
        self.edges.push(DefUseEdge {
            from: from.to_string(),
            to: to.to_string(),
            is_cast: true,
        });
        self
    }

    /// Records that `variable` is referenced from an inline-assembly block.
    pub fn use_in_inline_asm(&mut self, variable: &str) -> &mut Self {
        self.inline_asm_uses.insert(variable.to_string());
        self
    }

    /// The current qualifier of `name` (Plain when undeclared).
    pub fn qualifier_of(&self, name: &str) -> Qualifier {
        self.qualifiers
            .get(name)
            .copied()
            .unwrap_or(Qualifier::Plain)
    }

    /// Seeds the `_Atomic` qualifier on the variables the stage-1 script
    /// reported (the paper: "Based on the output of this script, we add
    /// type-qualifiers to variables used in sync ops").
    pub fn seed_from_sync_symbols<'a>(&mut self, symbols: impl IntoIterator<Item = &'a str>) {
        for s in symbols {
            self.qualifiers.insert(s.to_string(), Qualifier::Atomic);
        }
    }

    /// Propagates the qualifier along def-use chains until a fixpoint is
    /// reached, mirroring the repeated compile-and-fix cycle of Figure 3.
    /// Returns the number of declarations whose qualifier changed.
    pub fn propagate(&mut self) -> usize {
        let mut changed_total = 0;
        loop {
            let mut changed = 0;
            for edge in &self.edges.clone() {
                let from_q = self.qualifier_of(&edge.from);
                let to_q = self.qualifier_of(&edge.to);
                // The qualifier propagates in both directions along def-use
                // chains ("propagate the Atomic type-qualifier up and down
                // the def-use chains of all pointers to sync variables").
                if from_q == Qualifier::Atomic && to_q == Qualifier::Plain {
                    self.qualifiers.insert(edge.to.clone(), Qualifier::Atomic);
                    changed += 1;
                }
                if to_q == Qualifier::Atomic && from_q == Qualifier::Plain {
                    self.qualifiers.insert(edge.from.clone(), Qualifier::Atomic);
                    changed += 1;
                }
            }
            changed_total += changed;
            if changed == 0 {
                break;
            }
        }
        changed_total
    }

    /// Runs the modified-clang checks and returns the diagnostics.
    pub fn check(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for edge in &self.edges {
            if !edge.is_cast {
                continue;
            }
            let from_q = self.qualifier_of(&edge.from);
            let to_q = self.qualifier_of(&edge.to);
            match (from_q, to_q) {
                (Qualifier::Plain, Qualifier::Atomic) => {
                    diags.push(Diagnostic::WarningCastToAtomic {
                        from: edge.from.clone(),
                        to: edge.to.clone(),
                    });
                }
                (Qualifier::Atomic, Qualifier::Plain) => {
                    diags.push(Diagnostic::ErrorCastDropsAtomic {
                        from: edge.from.clone(),
                        to: edge.to.clone(),
                    });
                }
                _ => {}
            }
        }
        for var in &self.inline_asm_uses {
            if self.qualifier_of(var) == Qualifier::Atomic {
                diags.push(Diagnostic::ErrorAtomicInInlineAsm {
                    variable: var.clone(),
                });
            }
        }
        diags
    }

    /// Whether the refactoring has reached the paper's fixpoint: the
    /// propagation adds nothing and the checks produce no diagnostics.
    pub fn is_fully_qualified(&mut self) -> bool {
        self.propagate() == 0 && self.check().is_empty()
    }

    /// Number of `_Atomic`-qualified declarations.
    pub fn qualified_count(&self) -> usize {
        self.qualifiers
            .values()
            .filter(|q| **q == Qualifier::Atomic)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_and_propagation_reach_pointers() {
        // spinlock is a sync variable; ptr = &spinlock; arg = ptr.
        let mut m = QualificationModel::new();
        m.declare("spinlock", Qualifier::Plain)
            .declare("ptr", Qualifier::Plain)
            .declare("arg", Qualifier::Plain)
            .flow("spinlock", "ptr")
            .flow("ptr", "arg");
        m.seed_from_sync_symbols(["spinlock"]);
        let changed = m.propagate();
        assert_eq!(changed, 2);
        assert_eq!(m.qualifier_of("arg"), Qualifier::Atomic);
        assert_eq!(m.qualified_count(), 3);
    }

    #[test]
    fn propagation_goes_up_and_down_def_use_chains() {
        // Only a downstream use is qualified; the source must become
        // qualified too (propagation "up ... the def-use chains").
        let mut m = QualificationModel::new();
        m.declare("source", Qualifier::Plain)
            .declare("sink", Qualifier::Atomic)
            .flow("source", "sink");
        m.propagate();
        assert_eq!(m.qualifier_of("source"), Qualifier::Atomic);
    }

    #[test]
    fn cast_to_atomic_is_a_warning_only() {
        let mut m = QualificationModel::new();
        m.declare("plain_ptr", Qualifier::Plain)
            .declare("atomic_ptr", Qualifier::Atomic)
            .cast("plain_ptr", "atomic_ptr");
        // No propagation: casts are exactly where the programmer must look.
        let diags = m.check();
        assert_eq!(diags.len(), 1);
        assert!(!diags[0].is_error());
    }

    #[test]
    fn cast_dropping_atomic_is_an_error() {
        let mut m = QualificationModel::new();
        m.declare("atomic_ptr", Qualifier::Atomic)
            .declare("plain_ptr", Qualifier::Plain)
            .cast("atomic_ptr", "plain_ptr");
        let diags = m.check();
        assert_eq!(diags.len(), 1);
        assert!(diags[0].is_error());
        assert!(matches!(diags[0], Diagnostic::ErrorCastDropsAtomic { .. }));
    }

    #[test]
    fn atomic_in_inline_asm_is_an_error() {
        let mut m = QualificationModel::new();
        m.declare("lock_word", Qualifier::Atomic)
            .use_in_inline_asm("lock_word")
            .use_in_inline_asm("scratch");
        let diags = m.check();
        assert_eq!(diags.len(), 1);
        assert!(matches!(
            &diags[0],
            Diagnostic::ErrorAtomicInInlineAsm { variable } if variable == "lock_word"
        ));
    }

    #[test]
    fn fixpoint_detection_matches_figure_3() {
        // First round: the cast produces a warning, so not yet fully
        // qualified; after the programmer qualifies the source, the build is
        // clean.
        let mut m = QualificationModel::new();
        m.declare("nginx_lock", Qualifier::Plain)
            .declare("lock_ptr", Qualifier::Atomic)
            .cast("nginx_lock", "lock_ptr");
        assert!(!m.is_fully_qualified());
        // The propagation performed by is_fully_qualified has now qualified
        // nginx_lock, so a second compile round is clean.
        assert!(m.is_fully_qualified());
    }

    #[test]
    fn undeclared_names_default_to_plain() {
        let m = QualificationModel::new();
        assert_eq!(m.qualifier_of("whatever"), Qualifier::Plain);
        assert_eq!(m.qualified_count(), 0);
    }
}
