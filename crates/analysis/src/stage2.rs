//! Stage 2: confirming type-(iii) sync ops with a points-to analysis.
//!
//! Stage 1 marks `LOCK`-prefixed and `XCHG` instructions and collects the
//! synchronization-variable symbols they touch.  Stage 2 decides which of the
//! ordinary aligned loads/stores must *also* be instrumented: exactly those
//! whose memory operand may alias one of the stage-1 synchronization
//! variables (§4.3: the store at line 9 of Listing 1 aliases the variable the
//! CAS at line 4 points to, so it is a sync op too).
//!
//! Aliasing can be decided in two ways, both provided here:
//!
//! * **Symbol identity** — when the operands name the same global symbol the
//!   alias is syntactic; no analysis is needed.
//! * **Points-to** — when pointers are involved, a
//!   [`PointsToAnalysis`](crate::pointsto::PointsToAnalysis) decides may-alias
//!   between the operand's pointer and each synchronization variable.

use std::collections::BTreeMap;

use crate::asm::Module;
use crate::classify::{classify_module, SyncOpReport};
use crate::pointsto::PointsToAnalysis;

/// Identifies all sync ops in `module`, confirming type-(iii) candidates.
///
/// `pointer_bindings` maps an instruction's memory-operand *symbol* to the
/// name of the pointer variable it was loaded through (empty when the operand
/// names a global directly).  `analysis` answers may-alias queries for those
/// pointers; pass `None` to use symbol identity only (the fully manual
/// stage-2 the paper performed for its benchmarks).
pub fn identify_sync_ops(
    module: &Module,
    pointer_bindings: &BTreeMap<String, String>,
    analysis: Option<&dyn PointsToAnalysis>,
) -> SyncOpReport {
    let mut report = classify_module(module);
    let sync_symbols = report.sync_symbols.clone();

    // Pointers that are known to point to sync variables, according to the
    // points-to analysis: a pointer aliases a sync variable when its
    // points-to set contains the symbol.
    let confirmed: Vec<usize> = report
        .type_iii_candidates
        .iter()
        .copied()
        .filter(|&idx| {
            let ins = &module.instructions[idx];
            let mem = match ins.memory_operand() {
                Some(m) => m,
                None => return false,
            };
            // Direct symbol identity.
            if sync_symbols.contains(&mem.symbol) {
                return true;
            }
            // Pointer-mediated access: consult the points-to analysis.
            if let (Some(pointer), Some(analysis)) = (pointer_bindings.get(&mem.symbol), analysis) {
                let pts = analysis.points_to(pointer);
                return sync_symbols.iter().any(|s| pts.contains(s));
            }
            false
        })
        .collect();
    report.type_iii = confirmed;
    report
}

/// Convenience: stage 1 + stage 2 with symbol identity only.
pub fn identify_sync_ops_syntactic(module: &Module) -> SyncOpReport {
    identify_sync_ops(module, &BTreeMap::new(), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pointsto::{AndersenAnalysis, PointsToProgram};

    /// The paper's Listing 1 translated to the toy assembly: the unlock store
    /// writes through a pointer (`ptr_deref`) that aliases `spinlock`.
    const LISTING: &str = r#"
fn spinlock_lock
lock cmpxchg %ecx, spinlock    ; line 4
fn spinlock_unlock
mov $0, ptr_deref              ; line 9
fn unrelated
mov %eax, plain_global
"#;

    #[test]
    fn syntactic_identity_confirms_direct_global_stores() {
        let listing = "lock cmpxchg %ecx, spinlock\nmov $0, spinlock\nmov %eax, other";
        let m = Module::parse("t", listing);
        let r = identify_sync_ops_syntactic(&m);
        assert_eq!(r.type_i.len(), 1);
        assert_eq!(
            r.type_iii,
            vec![1],
            "the store to the same symbol is type (iii)"
        );
    }

    #[test]
    fn points_to_analysis_confirms_pointer_mediated_stores() {
        let m = Module::parse("t", LISTING);

        // ptr_deref is the dereference of `ptr`, which points to `spinlock`.
        let mut prog = PointsToProgram::new();
        prog.address_of("ptr", "spinlock");
        let analysis = AndersenAnalysis::solve(&prog);

        let mut bindings = BTreeMap::new();
        bindings.insert("ptr_deref".to_string(), "ptr".to_string());

        let r = identify_sync_ops(&m, &bindings, Some(&analysis));
        assert_eq!(r.type_i.len(), 1);
        assert_eq!(r.type_iii.len(), 1, "the unlock store is confirmed");
        assert_eq!(r.type_iii[0], 1);
        assert_eq!(r.total(), 2);
    }

    #[test]
    fn unrelated_stores_are_not_confirmed() {
        let m = Module::parse("t", LISTING);
        let mut prog = PointsToProgram::new();
        prog.address_of("ptr", "something_else");
        let analysis = AndersenAnalysis::solve(&prog);
        let mut bindings = BTreeMap::new();
        bindings.insert("ptr_deref".to_string(), "ptr".to_string());
        let r = identify_sync_ops(&m, &bindings, Some(&analysis));
        assert!(r.type_iii.is_empty());
    }

    #[test]
    fn without_analysis_pointer_mediated_stores_are_missed() {
        // The limitation the paper works around with manual analysis or
        // qualification: without points-to info the unlock store through a
        // pointer is not recognized.
        let m = Module::parse("t", LISTING);
        let r = identify_sync_ops_syntactic(&m);
        assert!(r.type_iii.is_empty());
        assert_eq!(r.type_i.len(), 1);
    }

    #[test]
    fn soundness_stage2_never_removes_stage1_ops() {
        let m = Module::parse("t", LISTING);
        let stage1 = classify_module(&m);
        let full = identify_sync_ops_syntactic(&m);
        assert_eq!(stage1.type_i, full.type_i);
        assert_eq!(stage1.type_ii, full.type_ii);
        assert!(full.total() >= stage1.type_i.len() + stage1.type_ii.len());
    }
}
