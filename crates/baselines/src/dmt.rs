//! A Kendo-style deterministic-multithreading (weak determinism) baseline.
//!
//! Kendo [Olszewski et al., ASPLOS'09] and its descendants grant the "right
//! to acquire a lock" to the thread with the smallest *deterministic logical
//! clock*, where the clock counts retired instructions (read from a hardware
//! performance counter).  Given the same program and the same inputs, every
//! run acquires locks in the same order — determinism without recording.
//!
//! The paper's point (§2, §6) is that this breaks down across *diversified*
//! variants: diversity changes the instruction counts, so each variant still
//! has a deterministic schedule, but a *different* one, and the variants
//! diverge.  [`DmtScheduler`] reproduces the scheduling decision procedure so
//! the benchmark harness can measure exactly that effect: feed it the same
//! logical acquisition workload with per-variant instruction-count factors
//! and compare the resulting schedules.

use serde::{Deserialize, Serialize};

/// One lock acquisition request by a thread at a given logical time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcquireRequest {
    /// The requesting thread.
    pub thread: usize,
    /// The lock being acquired.
    pub lock: u32,
    /// Instructions the thread retires *before* this acquisition (between its
    /// previous acquisition and this one), before diversity scaling.
    pub instructions_before: u64,
}

/// The deterministic schedule a DMT system produces: the global order of lock
/// acquisitions, as `(thread, lock)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmtSchedule {
    /// Acquisitions in the order the scheduler granted them.
    pub order: Vec<(usize, u32)>,
}

impl DmtSchedule {
    /// Number of positions at which two schedules differ.
    pub fn divergence_count(&self, other: &DmtSchedule) -> usize {
        let common = self.order.len().min(other.order.len());
        let mismatched = (0..common)
            .filter(|&i| self.order[i] != other.order[i])
            .count();
        mismatched + self.order.len().abs_diff(other.order.len())
    }

    /// Whether two schedules are identical.
    pub fn matches(&self, other: &DmtSchedule) -> bool {
        self.order == other.order
    }
}

/// A Kendo-style scheduler simulation.
#[derive(Debug, Clone)]
pub struct DmtScheduler {
    /// Number of threads.
    threads: usize,
    /// Deterministic logical clock per thread (retired instructions).
    clocks: Vec<u64>,
}

impl DmtScheduler {
    /// Creates a scheduler for `threads` threads.
    ///
    /// # Panics
    ///
    /// Panics when `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        DmtScheduler {
            threads,
            clocks: vec![0; threads],
        }
    }

    /// Runs the per-thread request streams to completion and returns the
    /// deterministic acquisition order.
    ///
    /// `instruction_factor[t]` models diversity: the instructions each
    /// variant retires for the same source-level work (1.0 = undiversified).
    /// Kendo's rule is applied at every step: among the threads whose next
    /// request is pending, the one with the smallest deterministic clock
    /// (ties broken by thread id) acquires next, and its clock advances by
    /// the scaled instruction count of the work it performed.
    pub fn schedule(
        &mut self,
        requests: &[Vec<AcquireRequest>],
        instruction_factor: &[f64],
    ) -> DmtSchedule {
        assert_eq!(
            requests.len(),
            self.threads,
            "one request stream per thread"
        );
        assert_eq!(
            instruction_factor.len(),
            self.threads,
            "one instruction factor per thread"
        );
        let mut next_index = vec![0usize; self.threads];
        let mut order = Vec::new();
        loop {
            // Threads that still have pending requests.
            let mut candidates: Vec<usize> = (0..self.threads)
                .filter(|&t| next_index[t] < requests[t].len())
                .collect();
            if candidates.is_empty() {
                break;
            }
            // Kendo: the pending thread with the smallest deterministic clock
            // (after accounting for the work preceding its request) wins.
            candidates.sort_by_key(|&t| {
                let req = &requests[t][next_index[t]];
                let scaled =
                    (req.instructions_before as f64 * instruction_factor[t]).round() as u64;
                (self.clocks[t] + scaled, t)
            });
            let winner = candidates[0];
            let req = requests[winner][next_index[winner]];
            let scaled =
                (req.instructions_before as f64 * instruction_factor[winner]).round() as u64;
            self.clocks[winner] += scaled + 1;
            next_index[winner] += 1;
            order.push((winner, req.lock));
        }
        DmtSchedule { order }
    }

    /// Convenience: schedules the same workload once per variant, each with
    /// its own uniform instruction factor, and returns the schedules.
    pub fn schedule_variants(
        threads: usize,
        requests: &[Vec<AcquireRequest>],
        variant_factors: &[f64],
    ) -> Vec<DmtSchedule> {
        variant_factors
            .iter()
            .map(|&f| {
                let factors = vec![f; threads];
                DmtScheduler::new(threads).schedule(requests, &factors)
            })
            .collect()
    }
}

/// Builds a synthetic acquisition workload: `threads` threads, each issuing
/// `per_thread` acquisitions of locks drawn from `locks` distinct locks, with
/// varying amounts of work between acquisitions.
pub fn synthetic_workload(
    threads: usize,
    per_thread: usize,
    locks: u32,
) -> Vec<Vec<AcquireRequest>> {
    (0..threads)
        .map(|t| {
            (0..per_thread)
                .map(|i| AcquireRequest {
                    thread: t,
                    lock: ((t + i) as u32) % locks.max(1),
                    // Deterministic but irregular inter-acquisition work.
                    instructions_before: 100 + ((t * 37 + i * 61) % 97) as u64 * 10,
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_variants_get_identical_schedules() {
        let workload = synthetic_workload(4, 50, 3);
        let schedules = DmtScheduler::schedule_variants(4, &workload, &[1.0, 1.0]);
        assert!(schedules[0].matches(&schedules[1]));
        assert_eq!(schedules[0].divergence_count(&schedules[1]), 0);
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let workload = synthetic_workload(4, 30, 2);
        let a = DmtScheduler::new(4).schedule(&workload, &[1.0; 4]);
        let b = DmtScheduler::new(4).schedule(&workload, &[1.0; 4]);
        assert!(a.matches(&b));
    }

    #[test]
    fn diversified_variants_get_different_schedules() {
        // The paper's core argument: a few percent of instruction-count skew
        // is enough to change the deterministic schedule.
        let workload = synthetic_workload(4, 100, 3);
        let schedules = DmtScheduler::schedule_variants(4, &workload, &[1.0, 1.03]);
        assert!(
            !schedules[0].matches(&schedules[1]),
            "3% instruction skew must perturb the Kendo schedule"
        );
        assert!(schedules[0].divergence_count(&schedules[1]) > 0);
    }

    #[test]
    fn schedules_cover_every_request_exactly_once() {
        let workload = synthetic_workload(3, 20, 2);
        let schedule = DmtScheduler::new(3).schedule(&workload, &[1.0; 3]);
        assert_eq!(schedule.order.len(), 3 * 20);
        for t in 0..3 {
            assert_eq!(
                schedule
                    .order
                    .iter()
                    .filter(|(thread, _)| *thread == t)
                    .count(),
                20
            );
        }
    }

    #[test]
    fn divergence_count_includes_length_differences() {
        let a = DmtSchedule {
            order: vec![(0, 1), (1, 1)],
        };
        let b = DmtSchedule {
            order: vec![(0, 1)],
        };
        assert_eq!(a.divergence_count(&b), 1);
    }

    #[test]
    #[should_panic(expected = "one request stream per thread")]
    fn mismatched_stream_count_panics() {
        let workload = synthetic_workload(2, 5, 2);
        let _ = DmtScheduler::new(3).schedule(&workload, &[1.0; 3]);
    }
}
