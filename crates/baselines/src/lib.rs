//! Baseline systems the paper compares its approach against.
//!
//! The paper's background and related-work sections (§2, §6) argue that the
//! two established families of replay techniques are a poor fit for a
//! security-oriented MVEE running *diversified* variants:
//!
//! * **Deterministic multithreading (DMT)** — Kendo-style systems schedule
//!   threads by *logical progress* measured in executed instructions (via
//!   performance counters).  Software diversity perturbs instruction counts,
//!   so each diversified variant ends up with a fixed but *different*
//!   schedule, which re-introduces benign divergence ([`dmt`]).
//! * **Record/Replay (R+R)** — RecPlay-style systems log Lamport timestamps
//!   for synchronization operations and replay them later; LSA-style systems
//!   replicate per-mutex acquisition orders online.  These are close cousins
//!   of the paper's agents and work across diversified variants because they
//!   do not depend on progress counters ([`rr`]).
//!
//! The `dmt_comparison` benchmark binary uses these implementations to
//! reproduce the paper's argument quantitatively: under instruction-count
//! skew the DMT schedules of two variants diverge while the order-based
//! replay (and the paper's agents) stay consistent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dmt;
pub mod rr;

pub use dmt::{DmtSchedule, DmtScheduler};
pub use rr::{LsaReplicator, RecPlayLog, RecPlayRecorder};
