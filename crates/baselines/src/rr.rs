//! Record/replay baselines: RecPlay-style offline logs and LSA-style online
//! per-mutex replication.
//!
//! * **RecPlay** [Ronsse & De Bosschere, TOCS'99] records a Lamport timestamp
//!   for every synchronization operation during one execution and, during a
//!   later replay, makes each operation wait until every operation with a
//!   smaller timestamp on the same variable has completed.  It assigns equal
//!   timestamps to non-conflicting operations so they can replay in parallel.
//! * **LSA** [Basile et al.] designates a master node that records the order
//!   of mutex acquisitions and periodically broadcasts it; the other nodes
//!   enforce the same per-mutex acquisition order.
//!
//! Both are close relatives of the paper's agents — order-based rather than
//! progress-based — which is why they tolerate diversified variants.  They
//! are reproduced here as reference implementations the benchmarks compare
//! against and as documentation of where the paper's wall-of-clocks design
//! differs (no dynamic allocation, fixed clock wall, per-thread buffers).

use std::collections::{BTreeMap, HashMap, VecDeque};

use serde::{Deserialize, Serialize};

/// One recorded synchronization operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordedOp {
    /// Executing thread.
    pub thread: usize,
    /// Synchronization variable (logical identifier).
    pub variable: u64,
    /// Lamport timestamp assigned during recording.
    pub timestamp: u64,
}

/// A RecPlay-style log of one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecPlayLog {
    ops: Vec<RecordedOp>,
}

impl RecPlayLog {
    /// Builds a log from a globally ordered stream of `(thread, variable)`
    /// operations, assigning per-variable Lamport timestamps the way
    /// [`RecPlayRecorder`] would have live.
    ///
    /// This is the bridge from the divergence journal (`mvee-core`'s
    /// `journal` module): its arrival records carry a total order over sync
    /// operations, and feeding `(thread, slot-key)` pairs here yields a
    /// RecPlay log whose replay reproduces the journaled schedule.
    pub fn from_order(ops: impl IntoIterator<Item = (usize, u64)>) -> Self {
        let mut rec = RecPlayRecorder::new();
        for (thread, variable) in ops {
            rec.record(thread, variable);
        }
        rec.finish()
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// All operations, in recording order.
    pub fn ops(&self) -> &[RecordedOp] {
        &self.ops
    }

    /// The operations of one thread, in program order.
    pub fn thread_ops(&self, thread: usize) -> Vec<RecordedOp> {
        self.ops
            .iter()
            .copied()
            .filter(|o| o.thread == thread)
            .collect()
    }

    /// Replays the log: returns a legal global completion order (operations
    /// on the same variable complete in timestamp order; independent
    /// operations may complete in any order — this replay picks the order in
    /// which they become ready, scanning threads round-robin).
    ///
    /// Returns `None` if the log is inconsistent (a deadlock: no thread's
    /// next operation is ready).
    pub fn replay(&self) -> Option<Vec<RecordedOp>> {
        let threads: usize = self.ops.iter().map(|o| o.thread + 1).max().unwrap_or(0);
        let mut per_thread: Vec<VecDeque<RecordedOp>> = vec![VecDeque::new(); threads];
        for op in &self.ops {
            per_thread[op.thread].push_back(*op);
        }
        // Per-variable clock: the next timestamp allowed to complete.
        let mut var_clock: BTreeMap<u64, u64> = BTreeMap::new();
        let mut completed = Vec::with_capacity(self.ops.len());
        while completed.len() < self.ops.len() {
            let mut progressed = false;
            for q in per_thread.iter_mut() {
                if let Some(&op) = q.front() {
                    let clock = var_clock.entry(op.variable).or_insert(0);
                    if *clock == op.timestamp {
                        *clock += 1;
                        completed.push(op);
                        q.pop_front();
                        progressed = true;
                    }
                }
            }
            if !progressed {
                return None;
            }
        }
        Some(completed)
    }
}

/// Records an execution the way RecPlay does: per-variable Lamport clocks.
#[derive(Debug, Default)]
pub struct RecPlayRecorder {
    clocks: HashMap<u64, u64>,
    log: RecPlayLog,
}

impl RecPlayRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one synchronization operation and returns its timestamp.
    pub fn record(&mut self, thread: usize, variable: u64) -> u64 {
        let clock = self.clocks.entry(variable).or_insert(0);
        let timestamp = *clock;
        *clock += 1;
        self.log.ops.push(RecordedOp {
            thread,
            variable,
            timestamp,
        });
        timestamp
    }

    /// Finishes recording and returns the log.
    pub fn finish(self) -> RecPlayLog {
        self.log
    }
}

/// LSA-style per-mutex order replication.
///
/// The master side appends acquisitions per mutex; the slave side checks (or
/// enforces) that its own acquisitions follow the same per-mutex thread
/// order.
#[derive(Debug, Default)]
pub struct LsaReplicator {
    /// Recorded acquisition order per mutex: the sequence of acquiring
    /// threads.
    orders: HashMap<u64, Vec<usize>>,
    /// Slave-side replay cursor per mutex.
    cursors: HashMap<u64, usize>,
}

impl LsaReplicator {
    /// Creates an empty replicator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Master side: records that `thread` acquired `mutex`.
    pub fn record_acquisition(&mut self, mutex: u64, thread: usize) {
        self.orders.entry(mutex).or_default().push(thread);
    }

    /// Slave side: asks whether `thread` may acquire `mutex` now.
    /// Returns `true` (and advances the cursor) when it is `thread`'s turn.
    pub fn try_acquire(&mut self, mutex: u64, thread: usize) -> bool {
        let order = match self.orders.get(&mutex) {
            Some(o) => o,
            None => return false,
        };
        let cursor = self.cursors.entry(mutex).or_insert(0);
        if order.get(*cursor) == Some(&thread) {
            *cursor += 1;
            true
        } else {
            false
        }
    }

    /// Number of acquisitions recorded for `mutex`.
    pub fn recorded_len(&self, mutex: u64) -> usize {
        self.orders.get(&mutex).map_or(0, Vec::len)
    }

    /// Whether the slave replayed every recorded acquisition.
    pub fn fully_replayed(&self) -> bool {
        self.orders
            .iter()
            .all(|(m, o)| self.cursors.get(m).copied().unwrap_or(0) == o.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_assigns_per_variable_timestamps() {
        let mut rec = RecPlayRecorder::new();
        assert_eq!(rec.record(0, 100), 0);
        assert_eq!(rec.record(1, 100), 1);
        assert_eq!(rec.record(0, 200), 0, "independent variable starts at zero");
        assert_eq!(rec.record(1, 100), 2);
        let log = rec.finish();
        assert_eq!(log.len(), 4);
        assert_eq!(log.thread_ops(0).len(), 2);
    }

    #[test]
    fn replay_reproduces_per_variable_order() {
        let mut rec = RecPlayRecorder::new();
        // Two threads interleave on one variable and use one private each.
        rec.record(0, 7);
        rec.record(1, 7);
        rec.record(0, 8);
        rec.record(1, 9);
        rec.record(0, 7);
        let log = rec.finish();
        let replay = log.replay().expect("consistent log");
        assert_eq!(replay.len(), log.len());
        // Per-variable timestamps must be non-decreasing in the replay.
        let mut last: BTreeMap<u64, u64> = BTreeMap::new();
        for op in replay {
            if let Some(prev) = last.get(&op.variable) {
                assert!(op.timestamp > *prev);
            }
            last.insert(op.variable, op.timestamp);
        }
    }

    #[test]
    fn replay_detects_inconsistent_logs() {
        // A log in which a thread's first op requires a timestamp that can
        // never be reached is a deadlock.
        let log = RecPlayLog {
            ops: vec![RecordedOp {
                thread: 0,
                variable: 1,
                timestamp: 5,
            }],
        };
        assert_eq!(log.replay(), None);
    }

    #[test]
    fn from_order_matches_live_recording() {
        let order = [(0usize, 7u64), (1, 7), (0, 8), (1, 9), (0, 7)];
        let log = RecPlayLog::from_order(order);

        let mut rec = RecPlayRecorder::new();
        for (thread, variable) in order {
            rec.record(thread, variable);
        }
        assert_eq!(log, rec.finish());
        assert!(log.replay().is_some(), "derived log must stay consistent");
    }

    #[test]
    fn replay_of_empty_log_is_empty() {
        let log = RecPlayLog::default();
        assert_eq!(log.replay().unwrap().len(), 0);
        assert!(log.is_empty());
    }

    #[test]
    fn lsa_enforces_per_mutex_thread_order() {
        let mut lsa = LsaReplicator::new();
        lsa.record_acquisition(1, 0);
        lsa.record_acquisition(1, 1);
        lsa.record_acquisition(2, 1);

        // Thread 1 must wait for thread 0 on mutex 1 but may take mutex 2.
        assert!(!lsa.try_acquire(1, 1));
        assert!(lsa.try_acquire(2, 1));
        assert!(lsa.try_acquire(1, 0));
        assert!(lsa.try_acquire(1, 1));
        assert!(lsa.fully_replayed());
        assert_eq!(lsa.recorded_len(1), 2);
    }

    #[test]
    fn lsa_rejects_unknown_mutexes() {
        let mut lsa = LsaReplicator::new();
        assert!(!lsa.try_acquire(99, 0));
    }
}
