//! Ablation: the agents' wait discipline under contention.
//!
//! Sweeps the `lockheavy` workload — a run that spends essentially all of
//! its time inside the agents' record/replay waits — across
//! wait strategy (legacy spin/yield vs the adaptive spin → yield → park
//! escalation) × agent kind × worker-thread count.  On an oversubscribed
//! box (threads × variants > cores — always true on the 1-vCPU CI runner)
//! the spinning slaves of the legacy strategy burn the time slices the
//! recorded-order thread needs, which is exactly the pathology the adaptive
//! waiter removes by parking on the ring/clock event counts.
//!
//! `MVEE_BENCH_VARIANTS` (default `2,8`) and `MVEE_BENCH_SCALE` tune the
//! sweep; the before/after numbers at 2/8/16 variants live in
//! `BASELINES.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvee_bench::workload_scale;
use mvee_sync_agent::agents::AgentKind;
use mvee_sync_agent::guards::WaitStrategy;
use mvee_variant::runner::{run_mvee, RunConfig};
use mvee_workloads::catalog::BenchmarkSpec;
use std::time::Duration;

/// Worker-thread counts: 2 (mild contention) and 8 (threads > cores on
/// every box this runs on).
const THREAD_COUNTS: [usize; 2] = [2, 8];

fn variant_counts() -> Vec<usize> {
    let counts = mvee_bench::variant_counts();
    // The default table sweep (2,3,4) is shaped for the paper tables; this
    // ablation defaults to the scaling pair used in BASELINES.md.
    if std::env::var("MVEE_BENCH_VARIANTS").is_err() {
        return vec![2, 8];
    }
    counts
}

fn bench_wait_strategies(c: &mut Criterion) {
    let spec = BenchmarkSpec::by_name("lockheavy").expect("lockheavy in catalog");
    let scale = workload_scale();
    let mut group = c.benchmark_group("ablation/agent-wait");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(10);
    for variants in variant_counts() {
        for threads in THREAD_COUNTS {
            let program = spec.program(threads, scale);
            for kind in AgentKind::replication_agents() {
                for wait in WaitStrategy::all() {
                    let id = BenchmarkId::new(
                        format!("{}v/{}t/{}", variants, threads, kind.name()),
                        wait.name(),
                    );
                    group.bench_function(id, |b| {
                        b.iter(|| {
                            let config = RunConfig::new(variants, kind).with_wait_strategy(wait);
                            let report = run_mvee(&program, &config);
                            assert!(
                                report.completed_cleanly(),
                                "{kind:?}/{wait:?} diverged: {:?}",
                                report.divergence
                            );
                            report.agent_stats.ops_replayed
                        });
                    });
                }
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_wait_strategies);
criterion_main!(benches);
