//! Ablation: the raw cost of recording and replaying sync ops under each
//! agent, isolated from any workload — a microbenchmark over the agents'
//! fast paths (record one op in the master, replay one op in a slave).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mvee_sync_agent::agents::{build_agent, AgentKind};
use mvee_sync_agent::context::{AgentConfig, SyncContext, VariantRole};
use std::time::Duration;

const OPS: u64 = 2_000;

fn bench_record_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/record-then-replay");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(800));
    group.sample_size(20);
    group.throughput(Throughput::Elements(OPS));
    for kind in [
        AgentKind::Null,
        AgentKind::TotalOrder,
        AgentKind::PartialOrder,
        AgentKind::WallOfClocks,
    ] {
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                // A fresh agent per iteration so the buffers start empty.
                let config = AgentConfig::default()
                    .with_variants(2)
                    .with_threads(1)
                    .with_buffer_capacity(4096);
                let agent = build_agent(kind, config);
                let master = SyncContext::new(VariantRole::Master, 0);
                let slave = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
                for i in 0..OPS {
                    let addr = 0x1000 + (i % 64) * 64;
                    agent.before_sync_op(&master, addr);
                    agent.after_sync_op(&master, addr);
                }
                for i in 0..OPS {
                    let addr = 0x9000 + (i % 64) * 64;
                    agent.before_sync_op(&slave, addr);
                    agent.after_sync_op(&slave, addr);
                }
                agent.stats().ops_replayed
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_record_replay);
criterion_main!(benches);
