//! Ablation: batched rendezvous comparisons under a many-variant load.
//!
//! Two groups, both at 8 variants:
//!
//! * **table** — eight logical threads per variant hammer the rendezvous
//!   table directly.  `batch = 1` is the per-call `arrive` hot path (one
//!   shard-lock acquisition and one full 8-variant barrier per call);
//!   larger sizes deposit the same comparisons through `arrive_batch`,
//!   amortizing the lock/condvar cost across the block.
//! * **monitor** — the full `Monitor::syscall` gateway drives a brk-dense
//!   (address-space-call) stream, the syscall class whose comparisons the
//!   batched monitor defers.  `batch = 1` pays a synchronous 8-variant
//!   rendezvous barrier on every call; `batch > 1` replaces it with one
//!   batched rendezvous per block while the ordering machinery runs
//!   unchanged.
//!
//! The acceptance bar for the batching tentpole is batch > 1 ≥ batch = 1
//! throughput at 8 variants; `BASELINES.md` records the numbers.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvee_core::lockstep::{ArrivalResult, BatchArrival, LockstepTable};
use mvee_core::monitor::{Monitor, MonitorConfig};
use mvee_core::policy::MonitoringPolicy;
use mvee_kernel::kernel::Kernel;
use mvee_kernel::syscall::{ComparisonKey, SyscallRequest, Sysno};

const VARIANTS: usize = 8;
const THREADS: usize = 8;
const OPS: u64 = 64;
const BATCH_SIZES: [usize; 4] = [1, 2, 8, 64];

fn rendezvous_key(seq: u64) -> ComparisonKey {
    SyscallRequest::new(Sysno::Brk)
        .with_int(seq as i64)
        .comparison_key()
}

/// Runs `VARIANTS × THREADS` OS threads through `OPS` rendezvous each,
/// depositing comparisons in blocks of `batch` (`1` = the per-call path).
fn hammer_table(batch: usize) {
    let table = Arc::new(LockstepTable::new(VARIANTS));
    let mut handles = Vec::with_capacity(VARIANTS * THREADS);
    for variant in 0..VARIANTS {
        for thread in 0..THREADS {
            let table = Arc::clone(&table);
            handles.push(std::thread::spawn(move || {
                let mut seq = 0u64;
                while seq < OPS {
                    if batch == 1 {
                        let r = table.arrive(
                            (thread, seq),
                            variant,
                            rendezvous_key(seq),
                            Duration::from_secs(30),
                        );
                        assert_eq!(r, ArrivalResult::Consistent, "bench rendezvous diverged");
                        table.consume((thread, seq), variant);
                        seq += 1;
                    } else {
                        let block: Vec<BatchArrival> = (seq..(seq + batch as u64).min(OPS))
                            .map(|s| BatchArrival {
                                key: (thread, s),
                                cmp: rendezvous_key(s),
                            })
                            .collect();
                        for r in table.arrive_batch(variant, &block, Duration::from_secs(30)) {
                            assert_eq!(r, ArrivalResult::Consistent, "bench rendezvous diverged");
                        }
                        for arrival in &block {
                            table.consume(arrival.key, variant);
                        }
                        seq += block.len() as u64;
                    }
                }
            }));
        }
    }
    for h in handles {
        h.join().expect("bench thread panicked");
    }
    assert_eq!(table.live_slots(), 0);
}

/// Runs the full monitor gateway: every (variant, thread) issues `OPS`
/// compared-and-ordered brk calls with the comparison batch set to `batch`.
fn hammer_monitor(batch: usize) {
    let kernel = Arc::new(Kernel::new_manual_clock());
    let pids = (0..VARIANTS).map(|_| kernel.spawn_process()).collect();
    let config = MonitorConfig {
        variants: VARIANTS,
        policy: MonitoringPolicy::StrictLockstep,
        lockstep_timeout: Duration::from_secs(30),
        max_threads: THREADS,
        shards: THREADS,
        batch,
        ..MonitorConfig::default()
    };
    let monitor = Arc::new(Monitor::new(config, kernel, pids));
    let mut handles = Vec::with_capacity(VARIANTS * THREADS);
    for variant in 0..VARIANTS {
        for thread in 0..THREADS {
            let monitor = Arc::clone(&monitor);
            handles.push(std::thread::spawn(move || {
                let req = SyscallRequest::new(Sysno::Brk).with_int(0);
                for _ in 0..OPS {
                    monitor
                        .syscall(variant, thread, &req)
                        .expect("bench monitor call diverged");
                }
                // Drain the tail so every comparison is accounted for.
                monitor
                    .flush_deferred(variant, thread)
                    .expect("tail flush diverged");
            }));
        }
    }
    for h in handles {
        h.join().expect("bench thread panicked");
    }
    assert!(!monitor.has_diverged());
    assert_eq!(monitor.live_deferred(), 0);
}

fn bench_batch_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/batching-table-8-variants");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for batch in BATCH_SIZES {
        group.bench_function(BenchmarkId::from_parameter(batch), |b| {
            b.iter(|| hammer_table(batch));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation/batching-monitor-8-variants");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for batch in BATCH_SIZES {
        group.bench_function(BenchmarkId::from_parameter(batch), |b| {
            b.iter(|| hammer_monitor(batch));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_sizes);
criterion_main!(benches);
