//! Ablation: the effect of the wall-of-clocks size.
//!
//! The paper accepts hash collisions onto a fixed number of clocks as the
//! price of never allocating memory in the agent (§4.5).  This bench sweeps
//! the clock count from 1 (everything falsely serialized) to 4096 and
//! measures both the record/replay cost and the number of collisions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvee_sync_agent::agents::WallOfClocksAgent;
use mvee_sync_agent::context::{AgentConfig, SyncContext, VariantRole};
use mvee_sync_agent::SyncAgent;
use std::time::Duration;

const OPS: u64 = 2_000;
const DISTINCT_VARS: u64 = 128;

fn bench_clock_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/clock-count");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(800));
    group.sample_size(20);
    for clocks in [1usize, 16, 128, 512, 4096] {
        group.bench_function(BenchmarkId::from_parameter(clocks), |b| {
            b.iter(|| {
                let config = AgentConfig::default()
                    .with_variants(2)
                    .with_threads(1)
                    .with_buffer_capacity(4096)
                    .with_clock_count(clocks);
                let agent = WallOfClocksAgent::new(config);
                let master = SyncContext::new(VariantRole::Master, 0);
                let slave = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
                for i in 0..OPS {
                    let addr = 0x4000 + (i % DISTINCT_VARS) * 64;
                    agent.before_sync_op(&master, addr);
                    agent.after_sync_op(&master, addr);
                }
                for i in 0..OPS {
                    let addr = 0x8_4000 + (i % DISTINCT_VARS) * 64;
                    agent.before_sync_op(&slave, addr);
                    agent.after_sync_op(&slave, addr);
                }
                agent.stats().clock_collisions
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clock_counts);
criterion_main!(benches);
