//! Ablation: cost of the Kendo-style DMT scheduling decision versus the
//! RecPlay-style record/replay pass for the same synthetic acquisition
//! workload — the two families the paper contrasts in §2 and §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvee_baselines::dmt::{synthetic_workload, DmtScheduler};
use mvee_baselines::rr::RecPlayRecorder;
use std::time::Duration;

fn bench_dmt_vs_rr(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/dmt-vs-record-replay");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(800));
    group.sample_size(20);
    for per_thread in [100usize, 500] {
        let workload = synthetic_workload(4, per_thread, 4);
        group.bench_function(BenchmarkId::new("kendo-dmt", per_thread), |b| {
            b.iter(|| DmtScheduler::new(4).schedule(&workload, &[1.0, 1.02, 0.98, 1.01]))
        });
        group.bench_function(BenchmarkId::new("recplay-record+replay", per_thread), |b| {
            b.iter(|| {
                let mut rec = RecPlayRecorder::new();
                for (t, stream) in workload.iter().enumerate() {
                    for req in stream {
                        rec.record(t, u64::from(req.lock));
                    }
                }
                rec.finish().replay().map(|r| r.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dmt_vs_rr);
criterion_main!(benches);
