//! Ablation: the thread-port gateway vs the legacy index-addressed gateway,
//! and the shard-placement policies, under a many-variant load.
//!
//! Eight variants × eight logical threads drive a brk-dense
//! (compared-and-ordered address-space) stream through the full monitor
//! gateway:
//!
//! * **gateway** — the legacy `Monitor::syscall(variant, thread, req)` hot
//!   path: bounds asserts, `ThreadState` indexing, a shared atomic sequence
//!   counter and a mutex-guarded deferred queue on every call.
//! * **port** — the redesigned [`ThreadPort`] hot path: the same calls
//!   through a per-thread handle that cached its shard binding at
//!   acquisition time and owns its sequence counter and batch queue
//!   locally.
//!
//! Both run at batch 1 (per-call rendezvous) and batch 8 (deferred
//! comparisons); the port additionally sweeps the three [`Placement`]
//! policies, whose binding is resolved once per port instead of per call.
//! The acceptance bar for the thread-port tentpole is port ≥ gateway
//! throughput at 8 variants; `BASELINES.md` records the numbers.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvee_core::config::Placement;
use mvee_core::mvee::Mvee;
use mvee_core::policy::MonitoringPolicy;
use mvee_kernel::syscall::{SyscallRequest, Sysno};
use mvee_sync_agent::agents::AgentKind;

const VARIANTS: usize = 8;
const THREADS: usize = 8;
const OPS: u64 = 64;

fn build_mvee(batch: usize, placement: Placement) -> Mvee {
    Mvee::builder()
        .variants(VARIANTS)
        .threads(THREADS)
        .policy(MonitoringPolicy::StrictLockstep)
        // The stream is syscall-only; the null agent keeps the sync-op side
        // out of the measurement.
        .agent(AgentKind::Null)
        .lockstep_timeout(Duration::from_secs(30))
        .shards(THREADS)
        .batch(batch)
        .placement(placement)
        .manual_clock(true)
        .build()
}

/// Every (variant, thread) issues `OPS` compared-and-ordered brk calls
/// through its own [`ThreadPort`], then drains its batch tail.
fn hammer_ports(batch: usize, placement: &Placement) {
    let mvee = Arc::new(build_mvee(batch, placement.clone()));
    let mut handles = Vec::with_capacity(VARIANTS * THREADS);
    for variant in 0..VARIANTS {
        let gateway = mvee.gateway(variant);
        for thread in 0..THREADS {
            let gateway = gateway.clone();
            handles.push(std::thread::spawn(move || {
                let port = gateway.thread(thread);
                let req = SyscallRequest::new(Sysno::Brk).with_int(0);
                for _ in 0..OPS {
                    port.syscall(&req).expect("bench port call diverged");
                }
                port.flush().expect("tail flush diverged");
            }));
        }
    }
    for h in handles {
        h.join().expect("bench thread panicked");
    }
    assert!(!mvee.monitor().has_diverged());
}

/// The same stream through the legacy index-addressed gateway.
fn hammer_gateway(batch: usize) {
    let mvee = Arc::new(build_mvee(batch, Placement::RoundRobin));
    let mut handles = Vec::with_capacity(VARIANTS * THREADS);
    for variant in 0..VARIANTS {
        let gateway = mvee.gateway(variant);
        for thread in 0..THREADS {
            let gateway = gateway.clone();
            let monitor = Arc::clone(mvee.monitor());
            handles.push(std::thread::spawn(move || {
                let req = SyscallRequest::new(Sysno::Brk).with_int(0);
                for _ in 0..OPS {
                    gateway
                        .syscall(thread, &req)
                        .expect("bench gateway call diverged");
                }
                monitor
                    .flush_deferred(variant, thread)
                    .expect("tail flush diverged");
            }));
        }
    }
    for h in handles {
        h.join().expect("bench thread panicked");
    }
    assert!(!mvee.monitor().has_diverged());
}

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/placement-8-variants");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for batch in [1usize, 8] {
        group.bench_function(BenchmarkId::new("gateway", batch), |b| {
            b.iter(|| hammer_gateway(batch));
        });
        for placement in [
            Placement::RoundRobin,
            Placement::Grouped,
            Placement::pinned((0..THREADS).collect::<Vec<_>>()),
        ] {
            group.bench_function(
                BenchmarkId::new(format!("port-{}", placement.name()), batch),
                |b| b.iter(|| hammer_ports(batch, &placement)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
