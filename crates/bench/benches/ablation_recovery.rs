//! Ablation: what does fault tolerance cost when nothing goes wrong, and
//! how fast is recovery when something does?
//!
//! Two questions, two sweeps, both landing in `BENCH_recovery.json` at the
//! repository root (override the path with `MVEE_BENCH_JSON`):
//!
//! * **Snapshot overhead** — the same deferrable-heavy call stream (one
//!   sync op per call, so every call crosses the snapshot choke point)
//!   with `snapshot_every` ∈ {off, 256, 4096}.  The off cell is the
//!   pre-recovery baseline; the deltas are the price of always being able
//!   to respawn.
//! * **Time-to-reintegrate** — a quarantined variant's respawn wall time
//!   as the journal suffix past its last agreed snapshot grows: the run
//!   quarantines a staged divergence, the survivors keep serving for
//!   `suffix` more calls, and the probe times [`Mvee::respawn_variant`]
//!   (salvage + full-history replay validation + re-admission) against the
//!   suffix length it reports.
//!
//! `MVEE_BENCH_VARIANTS` (default `2,8`) tunes the overhead sweep and
//! `MVEE_BENCH_SCALE` shrinks the calibration budget for CI smokes.  On a
//! 1-vCPU box all variants share one core, so wall numbers carry
//! scheduling noise; the JSON records that caveat.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, BenchmarkId, Criterion};
use mvee_core::config::RecoveryPolicy;
use mvee_core::journal::{JournalMode, JournalRecorder};
use mvee_core::mvee::Mvee;
use mvee_kernel::syscall::{SyscallRequest, Sysno};
use mvee_sync_agent::agents::AgentKind;

const THREADS: usize = 2;
const OPS: u64 = 256;
const BATCH: usize = 8;
/// The snapshot intervals under measurement; 0 is the off baseline.
const SNAPSHOT_CELLS: [u64; 3] = [0, 256, 4096];
/// Survivor calls issued after the quarantine, before the respawn probe:
/// the journal suffix the respawn must replay through to catch up.
const SUFFIX_CELLS: [u64; 3] = [64, 512, 2048];
/// Agreed calls before the staged divergence in the respawn probe.
const RESPAWN_PREFIX: u64 = 64;
/// Probe repetitions per suffix cell (fresh MVEE each time).
const RESPAWN_REPS: u32 = 3;

fn variant_counts() -> Vec<usize> {
    if std::env::var("MVEE_BENCH_VARIANTS").is_err() {
        return vec![2, 8];
    }
    mvee_bench::variant_counts()
}

/// The benched stream: deferrable address-space calls with one replicated
/// flush point every 32 calls — the `ablation_remote` mix, so the off cell
/// compares directly with the other ablation records.
fn req_for(i: u64) -> SyscallRequest {
    match i % 32 {
        31 => SyscallRequest::new(Sysno::Gettimeofday),
        n if n % 3 == 0 => SyscallRequest::new(Sysno::Brk).with_int(0),
        n if n % 3 == 1 => SyscallRequest::new(Sysno::Mmap).with_int(8192),
        _ => SyscallRequest::new(Sysno::Mprotect).with_int(4096),
    }
}

fn build(variants: usize, threads: usize, snapshot_every: u64) -> Mvee {
    let mut builder = Mvee::builder()
        .variants(variants)
        .threads(threads)
        .agent(AgentKind::Null)
        .batch(BATCH)
        .shards(threads)
        .recovery(RecoveryPolicy::quarantine())
        .lockstep_timeout(Duration::from_secs(30))
        .manual_clock(true);
    if snapshot_every > 0 {
        builder = builder.snapshot_every(snapshot_every);
    }
    builder.build()
}

/// One full overhead run: `variants × THREADS` OS threads, `OPS` calls
/// each, every call preceded by a sync op so the snapshot choke point is
/// exercised at full pressure.  Returns the monitored-call count.
fn run(variants: usize, snapshot_every: u64) -> u64 {
    let mvee = Arc::new(build(variants, THREADS, snapshot_every));
    let mut handles = Vec::with_capacity(variants * THREADS);
    for variant in 0..variants {
        for thread in 0..THREADS {
            let mvee = Arc::clone(&mvee);
            handles.push(std::thread::spawn(move || {
                let port = mvee.thread_port(variant, thread);
                for i in 0..OPS {
                    port.sync_op(0x1000, || ());
                    port.syscall(&req_for(i)).expect("bench call diverged");
                }
            }));
        }
    }
    for h in handles {
        h.join().expect("bench thread panicked");
    }
    assert!(!mvee.monitor().has_diverged());
    mvee.monitor_stats().total_syscalls
}

/// One calibrated overhead cell: repeat the run until ~`budget` has
/// elapsed (at least 3 runs).  Returns wall ns per monitored call.
fn measure_overhead(variants: usize, snapshot_every: u64, budget: Duration) -> f64 {
    run(variants, snapshot_every); // warm-up, unmeasured
    let started = Instant::now();
    let mut calls = 0u64;
    let mut runs = 0u32;
    while runs < 3 || started.elapsed() < budget {
        calls += run(variants, snapshot_every);
        runs += 1;
    }
    started.elapsed().as_nanos() as f64 / calls as f64
}

/// One respawn probe: an agreed prefix installs snapshots, a staged
/// mismatch quarantines variant 2, the survivors serve `suffix` more calls
/// and the probe times the respawn.  Returns (respawn ns, journal records
/// the respawn replayed past the snapshot).
fn measure_respawn(suffix: u64) -> (u128, u64) {
    let recorder = Arc::new(JournalRecorder::new());
    let mvee = Arc::new(
        Mvee::builder()
            .variants(3)
            .threads(1)
            .agent(AgentKind::Null)
            .batch(1)
            .journal(JournalMode::Record(Arc::clone(&recorder)))
            .recovery(RecoveryPolicy::quarantine())
            .snapshot_every(32)
            .lockstep_timeout(Duration::from_secs(30))
            .manual_clock(true)
            .build(),
    );
    let phase = |staged_victim: bool, calls: u64, skip_victim: bool| {
        let mut handles = Vec::new();
        for variant in 0..3usize {
            if skip_victim && variant == 2 {
                continue;
            }
            let mvee = Arc::clone(&mvee);
            handles.push(std::thread::spawn(move || {
                let port = mvee.thread_port(variant, 0);
                for i in 0..calls {
                    port.sync_op(0x1000, || ());
                    let len = if staged_victim && variant == 2 && i == calls - 1 {
                        666
                    } else {
                        4096
                    };
                    let r = port.syscall(&SyscallRequest::new(Sysno::Mprotect).with_int(len));
                    if r.is_err() {
                        break; // the quarantined victim stops issuing
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("probe thread panicked");
        }
    };
    // Agreed prefix (snapshots land), staged kill on the prefix's last
    // call, then the survivors alone grow the journal suffix.
    phase(true, RESPAWN_PREFIX, false);
    assert_eq!(mvee.quarantined_variants(), vec![2], "the kill must land");
    phase(false, suffix, true);
    let started = Instant::now();
    let report = mvee.respawn_variant(2).expect("respawn must succeed");
    let elapsed = started.elapsed().as_nanos();
    assert!(report.replayed_records > 0);
    (elapsed, report.replayed_records)
}

/// Writes the machine-readable ablation record.  The vendored serde stub
/// is a no-op, so the JSON is formatted by hand.
fn emit_json(overhead: &[(usize, u64, f64)], respawns: &[(u64, u128, u64)]) {
    let overhead_lines: Vec<String> = overhead
        .iter()
        .map(|(variants, every, ns)| {
            format!(
                "    {{ \"variants\": {variants}, \"snapshot_every\": {every}, \"ns_per_call\": {ns:.1} }}"
            )
        })
        .collect();
    let respawn_lines: Vec<String> = respawns
        .iter()
        .map(|(suffix, ns, replayed)| {
            format!(
                "    {{ \"suffix_calls\": {suffix}, \"replayed_records\": {replayed}, \"respawn_ns\": {ns} }}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ablation_recovery\",\n  \"unit\": \"ns_per_call\",\n  \"config\": {{ \"threads\": {THREADS}, \"ops_per_thread\": {OPS}, \"batch\": {BATCH}, \"respawn_prefix\": {RESPAWN_PREFIX}, \"respawn_snapshot_every\": 32 }},\n  \"caveat\": \"single-box numbers: every variant shares the same cores, so wall times include scheduling noise; snapshot_every 0 means snapshots off (the pre-recovery baseline)\",\n  \"snapshot_overhead\": [\n{}\n  ],\n  \"respawn\": [\n{}\n  ]\n}}\n",
        overhead_lines.join(",\n"),
        respawn_lines.join(",\n")
    );
    let path = std::env::var("MVEE_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_recovery.json", env!("CARGO_MANIFEST_DIR")));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("recovery ablation record written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/recovery");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for variants in variant_counts() {
        for every in SNAPSHOT_CELLS {
            let label = if every == 0 {
                "snapshots-off".to_string()
            } else {
                format!("every-{every}")
            };
            let id = BenchmarkId::new(format!("{variants}v/{THREADS}t"), label);
            group.bench_function(id, |b| {
                b.iter(|| run(variants, every));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_recovery);

fn main() {
    // The calibrated pass behind `BENCH_recovery.json` runs first, so the
    // record lands even if the criterion sweep is cut short.
    let budget = if std::env::var("MVEE_BENCH_SCALE").is_ok() {
        Duration::from_millis(200)
    } else {
        Duration::from_millis(800)
    };
    let mut overhead = Vec::new();
    for variants in variant_counts() {
        for every in SNAPSHOT_CELLS {
            overhead.push((variants, every, measure_overhead(variants, every, budget)));
        }
    }
    let mut respawns = Vec::new();
    for suffix in SUFFIX_CELLS {
        let mut total_ns = 0u128;
        let mut replayed = 0u64;
        for _ in 0..RESPAWN_REPS {
            let (ns, records) = measure_respawn(suffix);
            total_ns += ns;
            replayed = records;
        }
        respawns.push((suffix, total_ns / RESPAWN_REPS as u128, replayed));
    }
    emit_json(&overhead, &respawns);
    benches();
}
