//! Ablation: the distributed leader/follower split vs the in-proc
//! synchronous monitor — what does shipping the comparison work to a
//! follower on the far end of a replication channel buy the leader?
//!
//! Every cell drives the same deferrable-heavy call stream (brk/mmap/
//! mprotect with a periodic replicated `gettimeofday`) at 2 and 8 variants.
//! On the `sync` baseline every variant is an in-proc [`ThreadPort`] and
//! batch flushes block inline in the monitor pipeline.  On the `remote-*`
//! cells variant 0 becomes the leader: its [`LeaderPort`] streams CRC-framed
//! records over the chosen channel (in-proc pipes, Unix socketpair or TCP
//! loopback) and blocks only at the replicated flush points, while the
//! follower pump absorbs the comparison cost asynchronously.
//!
//! Three measurements per cell land in `BENCH_remote.json` at the
//! repository root (override the path with `MVEE_BENCH_JSON`):
//!
//! * wall ns per monitored call for the full run,
//! * *issue latency* — ns from a compare-only call's start to control
//!   returning to the variant thread, on a stretch with no replicated
//!   calls (the leader never blocks there; the sync baseline pays its
//!   rendezvous barrier per comparison batch),
//! * the divergence *detection lag* on a staged mismatch: how many leader
//!   sync ops the follower had already ingested by the time the
//!   mismatching batch resolved (`MonitorStats::detection_lag_sync_ops`).
//!
//! `MVEE_BENCH_VARIANTS` (default `2,8`) tunes the sweep;
//! `MVEE_BENCH_REMOTE_MODES` (comma-separated `Transport::label()` values,
//! e.g. `sync,remote-inproc`) restricts which cells run — CI uses it for a
//! socket-loopback smoke.  On a 1-vCPU box the leader, the follower's
//! reader/pump threads and every slave variant share one core, so the wall
//! numbers carry scheduling noise the paper's multi-machine deployment
//! would not; the JSON records that caveat.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, BenchmarkId, Criterion};
use mvee_core::config::{RemoteChannel, Transport};
use mvee_core::mvee::Mvee;
use mvee_kernel::syscall::{SyscallRequest, Sysno};
use mvee_sync_agent::agents::AgentKind;

const THREADS: usize = 4;
const OPS: u64 = 256;
const BATCH: usize = 8;
/// Calls in the issue-latency stretch: compare-only, no replicated flush.
const ISSUE_OPS: u64 = 48;
/// Leader sync ops streamed behind the staged mismatch in the lag probe.
const LAG_SYNC_OPS: u64 = 64;

fn variant_counts() -> Vec<usize> {
    if std::env::var("MVEE_BENCH_VARIANTS").is_err() {
        return vec![2, 8];
    }
    mvee_bench::variant_counts()
}

/// The benched stream: deferrable address-space calls with one replicated
/// flush point every 32 calls — the same mix as `ablation_transport`, so
/// the two records compare directly.
fn req_for(i: u64) -> SyscallRequest {
    match i % 32 {
        31 => SyscallRequest::new(Sysno::Gettimeofday),
        n if n % 3 == 0 => SyscallRequest::new(Sysno::Brk).with_int(0),
        n if n % 3 == 1 => SyscallRequest::new(Sysno::Mmap).with_int(8192),
        _ => SyscallRequest::new(Sysno::Mprotect).with_int(4096),
    }
}

/// The measurement cells: the in-proc sync baseline and the three
/// replication channels.  `MVEE_BENCH_REMOTE_MODES` (comma-separated
/// labels) restricts the set.
fn cells() -> Vec<Transport> {
    let all = vec![
        Transport::Sync,
        Transport::Remote {
            channel: RemoteChannel::InProc,
        },
        Transport::Remote {
            channel: RemoteChannel::Unix,
        },
        Transport::Remote {
            channel: RemoteChannel::Tcp,
        },
    ];
    let Ok(filter) = std::env::var("MVEE_BENCH_REMOTE_MODES") else {
        return all;
    };
    let wanted: Vec<&str> = filter
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let picked: Vec<Transport> = all
        .into_iter()
        .filter(|t| wanted.iter().any(|w| *w == t.label()))
        .collect();
    assert!(
        !picked.is_empty(),
        "MVEE_BENCH_REMOTE_MODES={filter:?} matched no cell label"
    );
    picked
}

fn build(variants: usize, transport: Transport) -> Mvee {
    Mvee::builder()
        .variants(variants)
        .threads(THREADS)
        .agent(AgentKind::Null)
        .batch(BATCH)
        .transport(transport)
        .shards(THREADS)
        .lockstep_timeout(Duration::from_secs(30))
        .manual_clock(true)
        .build()
}

/// One full run: `variants × THREADS` OS threads, `OPS` calls each.  On a
/// remote transport variant 0's threads drive [`LeaderPort`]s and the run
/// ends with a replication barrier (every streamed frame resolved and
/// acknowledged), so the wall time charges the leader for the follower's
/// whole comparison backlog — the honest number.  Returns the total number
/// of monitored calls.
fn run(variants: usize, transport: Transport) -> u64 {
    let mvee = Arc::new(build(variants, transport));
    let mut handles = Vec::with_capacity(variants * THREADS);
    for variant in 0..variants {
        for thread in 0..THREADS {
            let mvee = Arc::clone(&mvee);
            handles.push(std::thread::spawn(move || {
                if transport.is_remote() && variant == 0 {
                    let port = mvee.leader_port(thread);
                    for i in 0..OPS {
                        port.syscall(&req_for(i)).expect("bench call diverged");
                    }
                } else {
                    let port = mvee.thread_port(variant, thread);
                    for i in 0..OPS {
                        port.syscall(&req_for(i)).expect("bench call diverged");
                    }
                }
            }));
        }
    }
    for h in handles {
        h.join().expect("bench thread panicked");
    }
    mvee.remote_barrier().expect("replication barrier failed");
    assert_eq!(mvee.remote_fault(), None, "replication channel faulted");
    assert!(!mvee.monitor().has_diverged());
    mvee.monitor_stats().total_syscalls
}

/// Measures *issue latency* on a pure compare-only stretch: the time from a
/// call's start to control returning to the variant thread, for **variant 0
/// only** — the leader on remote cells, the in-proc master on the sync
/// baseline.  No call in the stretch is replicated, so the leader only ever
/// buffers and streams — its issue latency is the distributed deployment's
/// near-native headline — while the sync master pays a blocking rendezvous
/// per comparison batch.  The slave variants run the same stream untimed to
/// keep the rendezvous honest; deferred tails flush after the timer stops.
/// Returns (variant-0 calls, summed variant-0 issue ns).
fn run_issue_timed(variants: usize, transport: Transport) -> (u64, u128) {
    let mvee = Arc::new(build(variants, transport));
    let req = SyscallRequest::new(Sysno::Brk).with_int(0);
    let mut handles = Vec::with_capacity(variants * THREADS);
    for variant in 0..variants {
        for thread in 0..THREADS {
            let mvee = Arc::clone(&mvee);
            let req = req.clone();
            handles.push(std::thread::spawn(move || {
                if transport.is_remote() && variant == 0 {
                    let port = mvee.leader_port(thread);
                    let started = Instant::now();
                    for _ in 0..ISSUE_OPS {
                        port.syscall(&req).expect("bench call diverged");
                    }
                    started.elapsed().as_nanos()
                    // Dropping the port flushes the deferred tail.
                } else {
                    let port = mvee.thread_port(variant, thread);
                    let started = Instant::now();
                    for _ in 0..ISSUE_OPS {
                        port.syscall(&req).expect("bench call diverged");
                    }
                    let issued = started.elapsed().as_nanos();
                    port.flush().expect("tail flush diverged");
                    if variant == 0 {
                        issued
                    } else {
                        0
                    }
                }
            }));
        }
    }
    let issue_ns: u128 = handles
        .into_iter()
        .map(|h| h.join().expect("bench thread panicked"))
        .sum();
    mvee.remote_barrier().expect("replication barrier failed");
    assert!(!mvee.monitor().has_diverged());
    (ISSUE_OPS * THREADS as u64, issue_ns)
}

/// Stages a divergence and measures the *detection lag*: the leader flushes
/// a mismatching batch (the slave disagrees on one `mprotect` length) and
/// keeps running — streaming `LAG_SYNC_OPS` sync ops — while the slave
/// dawdles.  The follower can only resolve the batch when the slave's half
/// arrives, so every leader sync op it ingests in between is work the
/// leader retired *after* executing the call that would eventually be ruled
/// divergent.  Returns `MonitorStats::detection_lag_sync_ops`.
fn measure_detection_lag(channel: RemoteChannel) -> u64 {
    let mvee = Arc::new(build(2, Transport::Remote { channel }));
    let leader = {
        let mvee = Arc::clone(&mvee);
        std::thread::spawn(move || {
            let port = mvee.leader_port(0);
            for _ in 0..BATCH {
                let _ = port.syscall(&SyscallRequest::new(Sysno::Mprotect).with_int(4096));
            }
            // Give the follower pump time to deposit the batch before the
            // sync ops land, then pace them so they are ingested — and
            // counted as lag — while the arrival is still pending.
            std::thread::sleep(Duration::from_millis(5));
            for i in 0..LAG_SYNC_OPS {
                port.sync_op(0x1000, || ());
                if i % 8 == 7 {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        })
    };
    let slave = {
        let mvee = Arc::clone(&mvee);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            let port = mvee.thread_port(1, 0);
            for i in 0..BATCH {
                let len = if i == 3 { 666 } else { 4096 };
                // The flush that carries the mismatch returns the verdict.
                let _ = port.syscall(&SyscallRequest::new(Sysno::Mprotect).with_int(len));
            }
        })
    };
    leader.join().expect("leader thread panicked");
    slave.join().expect("slave thread panicked");
    assert!(
        mvee.divergence().is_some(),
        "the staged mismatch must be detected"
    );
    mvee.monitor_stats().detection_lag_sync_ops
}

/// One calibrated measurement cell: repeat the run until ~`budget` has
/// elapsed (at least 3 runs).  Returns (wall ns per monitored call, issue
/// ns per monitored call).
fn measure_cell(variants: usize, transport: Transport, budget: Duration) -> (f64, f64) {
    // Warm-up run, unmeasured.
    run(variants, transport);
    let started = Instant::now();
    let mut calls = 0u64;
    let mut runs = 0u32;
    while runs < 3 || started.elapsed() < budget {
        calls += run(variants, transport);
        runs += 1;
    }
    let wall = started.elapsed().as_nanos() as f64 / calls as f64;
    let mut issue_calls = 0u64;
    let mut issue_ns = 0u128;
    for _ in 0..runs.min(8) {
        let (c, ns) = run_issue_timed(variants, transport);
        issue_calls += c;
        issue_ns += ns;
    }
    (wall, issue_ns as f64 / issue_calls as f64)
}

/// Writes the machine-readable ablation record.  The vendored serde stub is
/// a no-op, so the JSON is formatted by hand.
fn emit_json(cells: &[(usize, Transport, f64, f64)], lags: &[(RemoteChannel, u64)]) {
    let results: Vec<String> = cells
        .iter()
        .map(|(variants, transport, wall, issue)| {
            format!(
                "    {{ \"variants\": {variants}, \"mode\": \"{}\", \"ns_per_call\": {wall:.1}, \"issue_ns_per_call\": {issue:.1} }}",
                transport.label()
            )
        })
        .collect();
    let lag_lines: Vec<String> = lags
        .iter()
        .map(|(channel, lag)| {
            format!(
                "    {{ \"channel\": \"{}\", \"staged_sync_ops\": {LAG_SYNC_OPS}, \"detection_lag_sync_ops\": {lag} }}",
                channel.name()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ablation_remote\",\n  \"unit\": \"ns_per_call\",\n  \"config\": {{ \"threads\": {THREADS}, \"ops_per_thread\": {OPS}, \"issue_ops_per_thread\": {ISSUE_OPS}, \"batch\": {BATCH} }},\n  \"caveat\": \"single-box loopback: the leader, the follower's reader/pump threads and every slave variant share the same cores, so remote wall times include scheduling noise a multi-machine deployment would not pay\",\n  \"results\": [\n{}\n  ],\n  \"detection_lag\": [\n{}\n  ]\n}}\n",
        results.join(",\n"),
        lag_lines.join(",\n")
    );
    let path = std::env::var("MVEE_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_remote.json", env!("CARGO_MANIFEST_DIR")));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("remote ablation record written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

fn bench_remote(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/remote");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for variants in variant_counts() {
        for transport in cells() {
            let id = BenchmarkId::new(format!("{variants}v/{THREADS}t"), transport.label());
            group.bench_function(id, |b| {
                b.iter(|| run(variants, transport));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_remote);

fn main() {
    // The calibrated pass behind `BENCH_remote.json` runs first, so the
    // record lands even if the criterion sweep is cut short.
    let budget = if std::env::var("MVEE_BENCH_SCALE").is_ok() {
        Duration::from_millis(200)
    } else {
        Duration::from_millis(800)
    };
    let mut measured = Vec::new();
    for variants in variant_counts() {
        for transport in cells() {
            let (wall, issue) = measure_cell(variants, transport, budget);
            measured.push((variants, transport, wall, issue));
        }
    }
    let lags: Vec<(RemoteChannel, u64)> = cells()
        .iter()
        .filter_map(|t| t.remote_channel())
        .map(|channel| (channel, measure_detection_lag(channel)))
        .collect();
    emit_json(&measured, &lags);
    benches();
}
