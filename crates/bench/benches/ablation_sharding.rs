//! Ablation: monitor rendezvous sharding under a many-variant load.
//!
//! Eight variants × eight logical threads hammer `LockstepTable::arrive`
//! (the monitor's hot path) concurrently.  With `shards = 1` every
//! rendezvous of every thread group funnels through one mutex+condvar — the
//! original global-table design; with more shards, thread groups rendezvous
//! on independent locks.  The acceptance bar for the sharding refactor is
//! sharded ≥ unsharded throughput at 8 variants; `BASELINES.md` records the
//! numbers.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvee_core::lockstep::{ArrivalResult, LockstepTable};
use mvee_kernel::syscall::{ComparisonKey, SyscallRequest, Sysno};

const VARIANTS: usize = 8;
const THREADS: usize = 8;
const OPS: u64 = 64;

fn rendezvous_key() -> ComparisonKey {
    SyscallRequest::new(Sysno::Brk).with_int(0).comparison_key()
}

/// Runs `VARIANTS × THREADS` OS threads through `OPS` rendezvous each.
fn hammer(shards: usize) {
    let table = Arc::new(LockstepTable::with_shards(VARIANTS, shards));
    let mut handles = Vec::with_capacity(VARIANTS * THREADS);
    for variant in 0..VARIANTS {
        for thread in 0..THREADS {
            let table = Arc::clone(&table);
            handles.push(std::thread::spawn(move || {
                let cmp = rendezvous_key();
                for seq in 0..OPS {
                    let key = (thread, seq);
                    let r = table.arrive(key, variant, cmp.clone(), Duration::from_secs(30));
                    assert_eq!(r, ArrivalResult::Consistent, "bench rendezvous diverged");
                    table.consume(key, variant);
                }
            }));
        }
    }
    for h in handles {
        h.join().expect("bench thread panicked");
    }
    assert_eq!(table.live_slots(), 0);
}

fn bench_shard_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/sharding-8-variants");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8, 16] {
        group.bench_function(BenchmarkId::from_parameter(shards), |b| {
            b.iter(|| hammer(shards));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shard_counts);
criterion_main!(benches);
