//! Ablation: the variant↔monitor transport — synchronous ports vs the
//! asynchronous submission/completion rings, with the ring cells split by
//! who drains them: a dedicated gateway worker per port (`PerPort`) or a
//! fixed polling pool of 1, 2 or `THREADS` shards (`Pool(n)`).
//!
//! Every (variant, thread) pair drives the same deferrable-heavy call
//! stream (brk/mmap/mprotect with a periodic replicated `gettimeofday`)
//! through either a synchronous [`ThreadPort`] — each call blocks inline in
//! the monitor pipeline — or an [`AsyncThreadPort`] — compare-only calls
//! are deposited into the port's submission ring and their verdicts reaped
//! in blocks while the gateway worker runs the identical pipeline in the
//! background.  The replicated call pins both transports to the same
//! synchronization points, so the delta isolates what the rings buy on the
//! stretches in between.
//!
//! Besides the criterion groups, the harness measures one calibrated pass
//! per (variants × transport) cell and writes the machine-readable
//! `BENCH_transport.json` at the repository root (override the path with
//! `MVEE_BENCH_JSON`); `BASELINES.md` records the same numbers.
//! `MVEE_BENCH_VARIANTS` (default `2,8`) tunes the sweep;
//! `MVEE_BENCH_TRANSPORTS` (comma-separated cell labels — the
//! `Transport::label()` values plus `sync+journal`, e.g. `sync,async-pool1`)
//! restricts which transport cells run.  The `sync+journal` cell reruns the
//! sync transport with divergence-journal recording on, so its delta
//! against `sync` is the journal's hot-path overhead.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, BenchmarkId, Criterion};
use mvee_core::async_port::SubmitOutcome;
use mvee_core::config::{Pollers, Transport};
use mvee_core::journal::{JournalMode, JournalRecorder};
use mvee_core::mvee::Mvee;
use mvee_kernel::syscall::{SyscallRequest, Sysno};
use mvee_sync_agent::agents::AgentKind;

const THREADS: usize = 4;
const OPS: u64 = 256;
const BATCH: usize = 8;
const RING_DEPTH: usize = 64;
/// Reap pipelined verdicts in blocks of this many tickets.
const REAP_BLOCK: usize = 32;

fn variant_counts() -> Vec<usize> {
    if std::env::var("MVEE_BENCH_VARIANTS").is_err() {
        return vec![2, 8];
    }
    mvee_bench::variant_counts()
}

/// The benched stream: deferrable address-space calls with one replicated
/// flush point every 32 calls.
fn req_for(i: u64) -> SyscallRequest {
    match i % 32 {
        31 => SyscallRequest::new(Sysno::Gettimeofday),
        n if n % 3 == 0 => SyscallRequest::new(Sysno::Brk).with_int(0),
        n if n % 3 == 1 => SyscallRequest::new(Sysno::Mmap).with_int(8192),
        _ => SyscallRequest::new(Sysno::Mprotect).with_int(4096),
    }
}

/// One measurement cell: a transport, optionally with divergence-journal
/// recording on (each run gets a fresh in-memory recorder).
#[derive(Clone, Copy)]
struct Cell {
    transport: Transport,
    journal: bool,
}

impl Cell {
    fn plain(transport: Transport) -> Self {
        Cell {
            transport,
            journal: false,
        }
    }

    fn label(&self) -> String {
        if self.journal {
            format!("{}+journal", self.transport.label())
        } else {
            self.transport.label()
        }
    }
}

fn build(variants: usize, cell: Cell) -> Mvee {
    let journal = if cell.journal {
        JournalMode::Record(Arc::new(JournalRecorder::new()))
    } else {
        JournalMode::Off
    };
    Mvee::builder()
        .variants(variants)
        .threads(THREADS)
        .agent(AgentKind::Null)
        .batch(BATCH)
        .transport(cell.transport)
        .journal(journal)
        .shards(THREADS)
        .lockstep_timeout(Duration::from_secs(30))
        .manual_clock(true)
        .build()
}

/// One full run: `variants × THREADS` OS threads, `OPS` calls each, through
/// the chosen transport.  Returns the total number of monitored calls.
fn run(variants: usize, cell: Cell) -> u64 {
    let mvee = Arc::new(build(variants, cell));
    let mut handles = Vec::with_capacity(variants * THREADS);
    for variant in 0..variants {
        for thread in 0..THREADS {
            let mvee = Arc::clone(&mvee);
            handles.push(std::thread::spawn(move || match cell.transport {
                Transport::Sync => {
                    let port = mvee.thread_port(variant, thread);
                    for i in 0..OPS {
                        port.syscall(&req_for(i)).expect("bench call diverged");
                    }
                }
                Transport::AsyncRings { .. } => {
                    let port = mvee.async_thread_port(variant, thread);
                    let mut tickets = Vec::with_capacity(REAP_BLOCK);
                    for i in 0..OPS {
                        match port.submit(&req_for(i)) {
                            SubmitOutcome::Completed(result) => {
                                result.expect("bench call diverged");
                            }
                            SubmitOutcome::Ticket(ticket) => tickets.push(ticket),
                        }
                        if tickets.len() >= REAP_BLOCK {
                            for ticket in tickets.drain(..) {
                                port.reap(ticket).expect("bench call diverged");
                            }
                        }
                    }
                    for ticket in tickets {
                        port.reap(ticket).expect("bench call diverged");
                    }
                }
                Transport::Remote { .. } => {
                    unreachable!("the remote transport has its own bench: ablation_remote")
                }
            }));
        }
    }
    for h in handles {
        h.join().expect("bench thread panicked");
    }
    assert!(!mvee.monitor().has_diverged());
    mvee.monitor_stats().total_syscalls
}

/// Calls in the issue-latency stretch: a pure compare-only run that fits in
/// the ring, so no submission ever waits for space.
const ISSUE_OPS: u64 = 48;

/// Measures *issue latency* on a pure compare-only stretch: the time from a
/// call's start to control returning to the variant thread.  The stretch
/// fits in the ring (`ISSUE_OPS < RING_DEPTH`), so on the async transport
/// every call is a ring deposit and the thread runs straight through, while
/// the sync transport pays its rendezvous barrier per comparison batch —
/// the decoupling the rings buy, which a wall-clock number over a
/// do-nothing-between-calls workload cannot show.  The pipelined verdicts
/// are reaped after the timer stops.  Returns (calls, summed issue ns).
fn run_issue_timed(variants: usize, cell: Cell) -> (u64, u128) {
    let mvee = Arc::new(build(variants, cell));
    let req = SyscallRequest::new(Sysno::Brk).with_int(0);
    let mut handles = Vec::with_capacity(variants * THREADS);
    for variant in 0..variants {
        for thread in 0..THREADS {
            let mvee = Arc::clone(&mvee);
            let req = req.clone();
            handles.push(std::thread::spawn(move || match cell.transport {
                Transport::Sync => {
                    let port = mvee.thread_port(variant, thread);
                    let started = Instant::now();
                    for _ in 0..ISSUE_OPS {
                        port.syscall(&req).expect("bench call diverged");
                    }
                    let issued = started.elapsed().as_nanos();
                    port.flush().expect("tail flush diverged");
                    issued
                }
                Transport::AsyncRings { .. } => {
                    let port = mvee.async_thread_port(variant, thread);
                    let mut tickets = Vec::with_capacity(ISSUE_OPS as usize);
                    let started = Instant::now();
                    for _ in 0..ISSUE_OPS {
                        match port.submit(&req) {
                            SubmitOutcome::Completed(result) => {
                                result.expect("bench call diverged");
                            }
                            SubmitOutcome::Ticket(ticket) => tickets.push(ticket),
                        }
                    }
                    let issued = started.elapsed().as_nanos();
                    for ticket in tickets {
                        port.reap(ticket).expect("bench call diverged");
                    }
                    issued
                }
                Transport::Remote { .. } => {
                    unreachable!("the remote transport has its own bench: ablation_remote")
                }
            }));
        }
    }
    let issue_ns: u128 = handles
        .into_iter()
        .map(|h| h.join().expect("bench thread panicked"))
        .sum();
    assert!(!mvee.monitor().has_diverged());
    (mvee.monitor_stats().total_syscalls, issue_ns)
}

/// The measurement cells: sync, sync with journal recording on (the
/// journal-overhead cell), per-port ring workers, and polling pools of
/// 1, 2 and `THREADS` shards.  `MVEE_BENCH_TRANSPORTS` (comma-separated
/// labels) restricts the set — CI uses it for a `sync,async-pool1` smoke.
fn cells() -> Vec<Cell> {
    let all = vec![
        Cell::plain(Transport::Sync),
        Cell {
            transport: Transport::Sync,
            journal: true,
        },
        Cell::plain(Transport::AsyncRings {
            depth: RING_DEPTH,
            pollers: Pollers::PerPort,
        }),
        Cell::plain(Transport::AsyncRings {
            depth: RING_DEPTH,
            pollers: Pollers::Pool(1),
        }),
        Cell::plain(Transport::AsyncRings {
            depth: RING_DEPTH,
            pollers: Pollers::Pool(2),
        }),
        Cell::plain(Transport::AsyncRings {
            depth: RING_DEPTH,
            pollers: Pollers::Pool(THREADS),
        }),
    ];
    let Ok(filter) = std::env::var("MVEE_BENCH_TRANSPORTS") else {
        return all;
    };
    let wanted: Vec<&str> = filter
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let picked: Vec<Cell> = all
        .into_iter()
        .filter(|c| wanted.iter().any(|w| *w == c.label()))
        .collect();
    assert!(
        !picked.is_empty(),
        "MVEE_BENCH_TRANSPORTS={filter:?} matched no cell label"
    );
    picked
}

/// One calibrated measurement cell: repeat the run until ~`budget` has
/// elapsed (at least 3 runs).  Returns (wall ns per monitored call, issue
/// ns per monitored call).
fn measure_cell(variants: usize, cell: Cell, budget: Duration) -> (f64, f64) {
    // Warm-up run, unmeasured.
    run(variants, cell);
    let started = Instant::now();
    let mut calls = 0u64;
    let mut runs = 0u32;
    while runs < 3 || started.elapsed() < budget {
        calls += run(variants, cell);
        runs += 1;
    }
    let wall = started.elapsed().as_nanos() as f64 / calls as f64;
    let mut issue_calls = 0u64;
    let mut issue_ns = 0u128;
    for _ in 0..runs.min(8) {
        let (c, ns) = run_issue_timed(variants, cell);
        issue_calls += c;
        issue_ns += ns;
    }
    (wall, issue_ns as f64 / issue_calls as f64)
}

/// Writes the machine-readable ablation record.  The vendored serde stub is
/// a no-op, so the JSON is formatted by hand.
fn emit_json(cells: &[(usize, Cell, f64, f64)]) {
    let results: Vec<String> = cells
        .iter()
        .map(|(variants, cell, wall, issue)| {
            format!(
                "    {{ \"variants\": {variants}, \"transport\": \"{}\", \"ns_per_call\": {wall:.1}, \"issue_ns_per_call\": {issue:.1} }}",
                cell.label()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ablation_transport\",\n  \"unit\": \"ns_per_call\",\n  \"config\": {{ \"threads\": {THREADS}, \"ops_per_thread\": {OPS}, \"issue_ops_per_thread\": {ISSUE_OPS}, \"batch\": {BATCH}, \"ring_depth\": {RING_DEPTH}, \"reap_block\": {REAP_BLOCK} }},\n  \"results\": [\n{}\n  ]\n}}\n",
        results.join(",\n")
    );
    let path = std::env::var("MVEE_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_transport.json", env!("CARGO_MANIFEST_DIR")));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("transport ablation record written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

fn bench_transports(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/transport");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for variants in variant_counts() {
        for cell in cells() {
            let id = BenchmarkId::new(format!("{variants}v/{THREADS}t"), cell.label());
            group.bench_function(id, |b| {
                b.iter(|| run(variants, cell));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_transports);

fn main() {
    // The calibrated pass behind `BENCH_transport.json` runs first, so the
    // record lands even if the criterion sweep is cut short.
    let budget = if std::env::var("MVEE_BENCH_SCALE").is_ok() {
        Duration::from_millis(200)
    } else {
        Duration::from_millis(800)
    };
    let mut measured = Vec::new();
    for variants in variant_counts() {
        for cell in cells() {
            let (wall, issue) = measure_cell(variants, cell, budget);
            measured.push((variants, cell, wall, issue));
        }
    }
    emit_json(&measured);
    benches();
}
