//! Criterion bench backing Figure 5: overhead of the wall-of-clocks agent on
//! a high-sync-rate benchmark (`radiosity`-like) and a low-sync-rate one
//! (`fft`-like) as the variant count grows from 2 to 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvee_sync_agent::agents::AgentKind;
use mvee_variant::runner::{run_mvee, RunConfig};
use mvee_workloads::catalog::BenchmarkSpec;
use std::time::Duration;

const SCALE: f64 = 1.5e-6;

fn bench_variant_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure5/woc-variant-scaling");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(800));
    group.sample_size(10);
    for name in ["fft", "radiosity"] {
        let spec = BenchmarkSpec::by_name(name).expect("benchmark in catalog");
        let program = spec.paper_program(SCALE);
        for variants in [2usize, 3, 4] {
            let config = RunConfig::new(variants, AgentKind::WallOfClocks);
            group.bench_function(
                BenchmarkId::new(name, format!("{variants}-variants")),
                |b| b.iter(|| run_mvee(&program, &config)),
            );
        }
    }
    group.finish();
}

/// The many-variant scaling story: 8 and 16 variants under the sharded
/// monitor vs the `shards = 1` global table, on the low-sync-rate `fft`
/// workload (so the rendezvous path, not the agent, dominates).
fn bench_many_variant_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure5/woc-many-variant");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    let spec = BenchmarkSpec::by_name("fft").expect("benchmark in catalog");
    let program = spec.paper_program(SCALE);
    for variants in [8usize, 16] {
        for shards in [1usize, 8] {
            let config = RunConfig::new(variants, AgentKind::WallOfClocks).with_shards(shards);
            group.bench_function(
                BenchmarkId::new(format!("{variants}-variants"), format!("{shards}-shards")),
                |b| b.iter(|| run_mvee(&program, &config)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_variant_scaling, bench_many_variant_scaling);
criterion_main!(benches);
