//! Criterion bench backing Table 1: the aggregated cost of running a
//! representative subset of the catalog under each synchronization agent
//! with two variants, compared against native execution.
//!
//! The full 25-benchmark × 3-agent × 3-variant-count sweep lives in the
//! `table1` binary; Criterion measures a stable subset so regressions in the
//! agents show up in CI-style runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvee_sync_agent::agents::AgentKind;
use mvee_variant::runner::{run_mvee, run_native, RunConfig};
use mvee_workloads::catalog::BenchmarkSpec;
use std::time::Duration;

const SCALE: f64 = 1.5e-6;
const SUBSET: &[&str] = &["fft", "streamcluster", "dedup", "barnes"];

fn bench_native(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/native");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(800));
    group.sample_size(10);
    for name in SUBSET {
        let spec = BenchmarkSpec::by_name(name).expect("benchmark in catalog");
        let program = spec.paper_program(SCALE);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| run_native(&program));
        });
    }
    group.finish();
}

fn bench_agents(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/mvee-2-variants");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(800));
    group.sample_size(10);
    for name in SUBSET {
        let spec = BenchmarkSpec::by_name(name).expect("benchmark in catalog");
        let program = spec.paper_program(SCALE);
        for agent in AgentKind::replication_agents() {
            let config = RunConfig::new(2, agent);
            group.bench_function(BenchmarkId::new(agent.name(), name), |b| {
                b.iter(|| run_mvee(&program, &config))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_native, bench_agents);
criterion_main!(benches);
