//! Criterion bench backing Table 3: the cost of the two-stage sync-op
//! identification and of the instrumentation pass over the synthetic libc
//! corpus (the largest of the Table 3 modules).

use criterion::{criterion_group, criterion_main, Criterion};
use mvee_analysis::corpus::{generate_module, TABLE3_SPECS};
use mvee_analysis::instrument::instrument_module;
use mvee_analysis::pointsto::{AndersenAnalysis, PointsToProgram, SteensgaardAnalysis};
use mvee_analysis::stage2::identify_sync_ops_syntactic;

fn bench_identification(c: &mut Criterion) {
    let libc = generate_module(&TABLE3_SPECS[0]);
    c.bench_function("table3/identify-libc", |b| {
        b.iter(|| identify_sync_ops_syntactic(&libc))
    });

    let report = identify_sync_ops_syntactic(&libc);
    c.bench_function("table3/instrument-libc", |b| {
        b.iter(|| instrument_module(&libc, &report))
    });
}

fn bench_points_to(c: &mut Criterion) {
    // A chain of pointer copies plus heap traffic, the pattern that separates
    // the two analyses' precision and cost.
    let mut program = PointsToProgram::new();
    for i in 0..200 {
        program.address_of(&format!("p{i}"), &format!("obj{i}"));
        if i > 0 {
            program.copy(&format!("p{i}"), &format!("p{}", i - 1));
        }
        program.store(&format!("p{i}"), &format!("p{}", i / 2));
        program.load(&format!("q{i}"), &format!("p{i}"));
    }
    c.bench_function("table3/andersen-200", |b| {
        b.iter(|| AndersenAnalysis::solve(&program))
    });
    c.bench_function("table3/steensgaard-200", |b| {
        b.iter(|| SteensgaardAnalysis::solve(&program))
    });
}

criterion_group!(benches, bench_identification, bench_points_to);
criterion_main!(benches);
