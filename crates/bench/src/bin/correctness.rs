//! Reproduces the §5.1 correctness experiment: every benchmark runs with
//! ASLR + disjoint code layouts + instruction-count diversity enabled, under
//! both monitoring policies, and must complete without any divergence being
//! detected.

use mvee_bench::workload_scale;
use mvee_core::policy::MonitoringPolicy;
use mvee_sync_agent::agents::AgentKind;
use mvee_variant::diversity::DiversityProfile;
use mvee_variant::runner::{run_mvee, RunConfig};
use mvee_workloads::catalog::CATALOG;

fn main() {
    let scale = workload_scale();
    println!("§5.1 correctness — diversified variants, multiple policies");
    println!("(every row must report 'no divergence')\n");

    let mut failures = 0usize;
    for spec in CATALOG {
        for policy in [
            MonitoringPolicy::StrictLockstep,
            MonitoringPolicy::SecuritySensitiveOnly,
        ] {
            let program = spec.paper_program(scale);
            let config = RunConfig::new(2, AgentKind::WallOfClocks)
                .with_policy(policy)
                .with_diversity(DiversityProfile::full(
                    0x5151 + spec.native_runtime_s as u64,
                ));
            let report = run_mvee(&program, &config);
            let ok = report.completed_cleanly() && report.outputs_identical();
            if !ok {
                failures += 1;
            }
            println!(
                "{:<16} policy={:<26} -> {}",
                spec.name,
                policy.name(),
                if ok {
                    "no divergence".to_string()
                } else {
                    format!("DIVERGED: {:?}", report.divergence)
                }
            );
        }
    }
    println!(
        "\n{} configurations failed out of {}",
        failures,
        CATALOG.len() * 2
    );
}
