//! Reproduces the §5.4 covert-channel proofs of concept: the timing channel
//! over replicated `gettimeofday` results and the trylock channel over
//! replicated synchronization operations, plus the pointer-value exchange
//! they enable.

use mvee_workloads::covert::{exchange_pointers, run_timing_channel, run_trylock_channel};

fn main() {
    println!("§5.4 covert channels — leaking data between colluding variants\n");

    let secret: Vec<bool> = (0..32)
        .map(|i| (0xdead_beefu64 >> (i % 32)) & 1 == 1)
        .collect();

    let timing = run_timing_channel(&secret);
    println!(
        "timing channel     : {:>2} bits sent, accuracy {:>5.1}%, divergence detected: {}",
        timing.sent.len(),
        timing.accuracy() * 100.0,
        timing.diverged
    );

    let trylock = run_trylock_channel(&secret);
    println!(
        "trylock channel    : {:>2} bits sent, accuracy {:>5.1}%, divergence detected: {}",
        trylock.sent.len(),
        trylock.accuracy() * 100.0,
        trylock.diverged
    );

    let (master_learned, slave_learned, diverged) = exchange_pointers(0xbeef, 0x1234);
    println!(
        "pointer exchange   : master learned 0x{:x}, slave learned 0x{:x}, divergence detected: {}",
        master_learned, slave_learned, diverged
    );

    println!(
        "\nConclusion (as in the paper): replication lets colluding variants exchange\n\
         diversified pointer values without the monitor noticing — a limitation of\n\
         MVEEs in general, not of the synchronization agents."
    );
}
