//! Reproduces the paper's argument against deterministic multithreading for
//! diversified variants (§2, §6): a Kendo-style DMT scheduler produces a
//! deterministic schedule per variant, but diversity-induced instruction-count
//! skew makes the *variants'* schedules differ from each other, whereas the
//! order-based approaches (RecPlay-style record/replay, and the paper's
//! agents) replay one recorded order in every variant regardless of skew.

use mvee_baselines::dmt::{synthetic_workload, DmtScheduler};
use mvee_baselines::rr::RecPlayRecorder;
use mvee_bench::{format_row, print_table_header};
use mvee_sync_agent::agents::AgentKind;
use mvee_variant::diversity::DiversityProfile;
use mvee_variant::runner::{run_mvee, RunConfig};
use mvee_workloads::catalog::BenchmarkSpec;

fn main() {
    println!("DMT vs order-based replay under software diversity\n");
    let threads = 4;
    let workload = synthetic_workload(threads, 200, 4);

    let widths = [26, 18, 22];
    print_table_header(
        "schedule divergence",
        &[
            "instruction skew",
            "DMT positions off",
            "order-based replay",
        ],
        &widths,
    );

    for skew in [0.0, 0.01, 0.03, 0.05] {
        let schedules = DmtScheduler::schedule_variants(threads, &workload, &[1.0, 1.0 + skew]);
        let dmt_divergence = schedules[0].divergence_count(&schedules[1]);

        // Order-based replay: record once, replay everywhere — by
        // construction the replayed per-variable order is identical in every
        // variant, independent of skew.
        let mut recorder = RecPlayRecorder::new();
        for (t, stream) in workload.iter().enumerate() {
            for req in stream {
                recorder.record(t, u64::from(req.lock));
            }
        }
        let log = recorder.finish();
        let replay_ok = log.replay().is_some();

        println!(
            "{}",
            format_row(
                &[
                    format!("{:.0}%", skew * 100.0),
                    dmt_divergence.to_string(),
                    if replay_ok {
                        "identical".into()
                    } else {
                        "FAILED".into()
                    },
                ],
                &widths,
            )
        );
    }

    // End-to-end confirmation: a diversified two-variant run under the
    // wall-of-clocks agent (which, like R+R, is order-based) stays clean.
    let spec = BenchmarkSpec::by_name("barnes").unwrap();
    let program = spec.paper_program(2e-6);
    let config =
        RunConfig::new(2, AgentKind::WallOfClocks).with_diversity(DiversityProfile::full(77));
    let report = run_mvee(&program, &config);
    println!(
        "\nwall-of-clocks agent with 5% instruction skew on 'barnes': divergence = {}",
        report.divergence.is_some()
    );
}
