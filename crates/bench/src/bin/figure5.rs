//! Regenerates Figure 5: per-benchmark run-time overhead relative to native
//! execution, for each synchronization agent and 2–4 variants.
//!
//! The paper draws these as stacked bars (one stack per benchmark, one bar
//! per agent, segments for 2/3/4 variants); this binary prints the same
//! series as a table, one row per (benchmark, agent).

use mvee_bench::{format_row, measure, print_table_header, workload_scale};
use mvee_sync_agent::agents::AgentKind;
use mvee_workloads::catalog::CATALOG;

fn main() {
    let scale = workload_scale();
    println!("Figure 5 — relative overhead per benchmark, agent and variant count");
    println!("(values are run time / native run time; scale = {scale:.1e})");

    let widths = [16, 16, 12, 12, 12, 10];
    print_table_header(
        "Figure 5",
        &[
            "benchmark",
            "agent",
            "2 variants",
            "3 variants",
            "4 variants",
            "clean",
        ],
        &widths,
    );

    for spec in CATALOG {
        for agent in AgentKind::replication_agents() {
            let mut cells = vec![spec.name.to_string(), agent.name().to_string()];
            let mut all_clean = true;
            for variants in [2usize, 3, 4] {
                let m = measure(spec, agent, variants, scale);
                all_clean &= m.clean;
                cells.push(format!("{:.2}x", m.slowdown));
            }
            cells.push(if all_clean { "yes".into() } else { "NO".into() });
            println!("{}", format_row(&cells, &widths));
        }
    }
}
