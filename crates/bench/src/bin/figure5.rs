//! Regenerates Figure 5: per-benchmark run-time overhead relative to native
//! execution, for each synchronization agent and 2–4 variants.
//!
//! The paper draws these as stacked bars (one stack per benchmark, one bar
//! per agent, segments for 2/3/4 variants); this binary prints the same
//! series as a table, one row per (benchmark, agent).

use mvee_bench::{format_row, measure, print_variant_table_header, variant_counts, workload_scale};
use mvee_sync_agent::agents::AgentKind;
use mvee_workloads::catalog::CATALOG;

fn main() {
    let scale = workload_scale();
    let variant_counts = variant_counts();
    println!("Figure 5 — relative overhead per benchmark, agent and variant count");
    println!(
        "(values are run time / native run time; scale = {scale:.1e}; \
         set MVEE_BENCH_VARIANTS=2,8,16 for the many-variant sweep)"
    );

    let widths = print_variant_table_header(
        "Figure 5",
        &[("benchmark", 16), ("agent", 16)],
        &variant_counts,
        &[("clean", 10)],
    );

    for spec in CATALOG {
        for agent in AgentKind::replication_agents() {
            let mut cells = vec![spec.name.to_string(), agent.name().to_string()];
            let mut all_clean = true;
            for &variants in variant_counts.iter() {
                let m = measure(spec, agent, variants, scale);
                all_clean &= m.clean;
                cells.push(format!("{:.2}x", m.slowdown));
            }
            cells.push(if all_clean { "yes".into() } else { "NO".into() });
            println!("{}", format_row(&cells, &widths));
        }
    }
}
