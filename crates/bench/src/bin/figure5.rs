//! Regenerates Figure 5: per-benchmark run-time overhead relative to native
//! execution, for each synchronization agent and 2–4 variants.
//!
//! The paper draws these as stacked bars (one stack per benchmark, one bar
//! per agent, segments for 2/3/4 variants); this binary prints the same
//! series as a table, one row per (benchmark, agent) — or per (benchmark,
//! agent, batch) when a comparison-batching sweep is requested via
//! `MVEE_BENCH_BATCH`.

use mvee_bench::{
    comparison_batches, format_row, measure_batched, print_variant_table_header, variant_counts,
    workload_scale,
};
use mvee_sync_agent::agents::AgentKind;
use mvee_workloads::catalog::sweep_catalog;

fn main() {
    let scale = workload_scale();
    let variant_counts = variant_counts();
    let batches = comparison_batches();
    let sweep_batches = batches != [1];
    println!("Figure 5 — relative overhead per benchmark, agent and variant count");
    println!(
        "(values are run time / native run time; scale = {scale:.1e}; \
         set MVEE_BENCH_VARIANTS=2,8,16 for the many-variant sweep, \
         MVEE_BENCH_BATCH=1,8 for the comparison-batching sweep)"
    );

    let mut prefix = vec![("benchmark", 16), ("agent", 16)];
    if sweep_batches {
        prefix.push(("batch", 7));
    }
    let widths = print_variant_table_header("Figure 5", &prefix, &variant_counts, &[("clean", 10)]);

    for spec in sweep_catalog() {
        for agent in AgentKind::replication_agents() {
            for &batch in &batches {
                let mut cells = vec![spec.name.to_string(), agent.name().to_string()];
                if sweep_batches {
                    cells.push(batch.to_string());
                }
                let mut all_clean = true;
                for &variants in variant_counts.iter() {
                    let m = measure_batched(spec, agent, variants, scale, batch);
                    all_clean &= m.clean;
                    cells.push(format!("{:.2}x", m.slowdown));
                }
                cells.push(if all_clean { "yes".into() } else { "NO".into() });
                println!("{}", format_row(&cells, &widths));
            }
        }
    }
}
