//! Reproduces the §5.5 nginx use case:
//!
//! 1. Uninstrumented custom sync primitives ⇒ benign divergence as soon as
//!    traffic flows.
//! 2. Instrumented server, two diversified variants ⇒ no divergence; report
//!    throughput over the modelled gigabit network and over loopback,
//!    relative to the native (single, unmonitored) server.
//! 3. CVE-2013-2028-style attack ⇒ compromises the unprotected single server,
//!    detected as divergence with two variants.

use mvee_kernel::net::LinkKind;
use mvee_workloads::nginx::{run_nginx_experiment, AttackOutcome, NginxServerConfig};

fn main() {
    println!("§5.5 nginx use case\n");
    let base = NginxServerConfig {
        variants: 2,
        pool_threads: 8,
        page_bytes: 4096,
        requests: 64,
        ..Default::default()
    };

    // 1. Uninstrumented custom primitives: expect divergence.
    let mut uninstrumented = base.clone();
    uninstrumented.instrument_custom_sync = false;
    uninstrumented.requests = 16;
    let r = run_nginx_experiment(&uninstrumented, false);
    println!(
        "uninstrumented custom sync  : divergence detected = {} (paper: server 'quickly triggers a divergence')",
        r.diverged
    );

    // 2. Instrumented server: native vs MVEE, loopback vs network.
    for link in [LinkKind::GigabitNetwork, LinkKind::Loopback] {
        let mut native_cfg = base.clone();
        native_cfg.variants = 1;
        native_cfg.link = link;
        let native = run_nginx_experiment(&native_cfg, false);

        let mut mvee_cfg = base.clone();
        mvee_cfg.link = link;
        let mvee = run_nginx_experiment(&mvee_cfg, false);

        let overhead =
            1.0 - mvee.effective_throughput_rps / native.effective_throughput_rps.max(1e-9);
        println!(
            "{:<28}: native {:>8.0} req/s, MVEE {:>8.0} req/s, throughput loss {:>5.1}% (paper: {}%)",
            format!("instrumented, {:?}", link),
            native.effective_throughput_rps,
            mvee.effective_throughput_rps,
            overhead * 100.0,
            if link == LinkKind::GigabitNetwork { 3 } else { 48 },
        );
    }

    // 3. The attack.
    let mut single = base.clone();
    single.variants = 1;
    single.requests = 16;
    let unprotected = run_nginx_experiment(&single, true);
    println!(
        "attack vs single variant    : {:?} (paper: attack succeeds natively)",
        unprotected.attack
    );
    assert_eq!(unprotected.attack, AttackOutcome::Compromised);

    let mut protected = base.clone();
    protected.requests = 16;
    let detected = run_nginx_experiment(&protected, true);
    println!(
        "attack vs two variants      : {:?} (paper: divergence detected, variants shut down)",
        detected.attack
    );
}
