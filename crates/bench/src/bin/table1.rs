//! Regenerates Table 1: aggregated average slowdowns of the three
//! synchronization agents with 2, 3 and 4 variants, over the whole
//! PARSEC + SPLASH catalog.
//!
//! The paper reports 2.76–2.87× (total order), 2.83–3.00× (partial order)
//! and 1.14–1.38× (wall of clocks).  The absolute values here depend on the
//! simulated substrate, but the *ordering* (WoC ≪ PO ≈ TO) and the growth
//! with the variant count reproduce the paper's shape.

use mvee_bench::{
    arithmetic_mean, comparison_batches, format_row, measure_batched, print_variant_table_header,
    variant_counts, workload_scale,
};
use mvee_sync_agent::agents::AgentKind;
use mvee_workloads::catalog::{BenchmarkSpec, CATALOG, CHURN_CATALOG};

fn main() {
    let scale = workload_scale();
    let variant_counts = variant_counts();
    let batches = comparison_batches();
    let sweep_batches = batches != [1];
    println!("Table 1 — aggregated average slowdowns per agent and variant count");
    println!(
        "(scale = {scale:.1e}; paper: TO 2.76/2.83/2.87, PO 2.83/2.83/3.00, WoC 1.14/1.27/1.38; \
         set MVEE_BENCH_VARIANTS=2,8,16 for the many-variant sweep, \
         MVEE_BENCH_BATCH=1,8 for the comparison-batching sweep)"
    );

    let mut prefix = vec![("agent", 20)];
    if sweep_batches {
        prefix.push(("batch", 7));
    }

    // The paper-shaped aggregate over Table 2's catalog, then the same rows
    // aggregated over the allocator-churn (brk/mmap-dense) additions — the
    // workloads whose deferred-comparison traffic makes a batching sweep
    // move (the paper catalog is I/O-dominated and stays flat).
    let sections: [(&str, &[BenchmarkSpec]); 2] = [
        ("Table 1", CATALOG),
        ("Table 1b — allocator churn", CHURN_CATALOG),
    ];
    for (title, specs) in sections {
        let widths = print_variant_table_header(title, &prefix, &variant_counts, &[]);
        for agent in AgentKind::replication_agents() {
            for &batch in &batches {
                let mut row = vec![agent.name().to_string()];
                if sweep_batches {
                    row.push(batch.to_string());
                }
                for &variants in variant_counts.iter() {
                    let mut slowdowns = Vec::new();
                    for spec in specs {
                        let m = measure_batched(spec, agent, variants, scale, batch);
                        if m.clean {
                            slowdowns.push(m.slowdown);
                        } else {
                            eprintln!(
                                "warning: {} with {} variants under {} (batch {}) diverged",
                                spec.name,
                                variants,
                                agent.name(),
                                batch
                            );
                        }
                    }
                    row.push(format!("{:.2}x", arithmetic_mean(&slowdowns)));
                }
                println!("{}", format_row(&row, &widths));
            }
        }
    }
}
