//! Regenerates Table 2: native run times, system-call rates and sync-op
//! rates of the PARSEC 2.1 and SPLASH-2x benchmarks (4 worker threads).
//!
//! The synthetic workloads are parameterized by the paper's own Table 2, so
//! this binary shows both the paper's values and the rates the scaled
//! synthetic programs actually achieve when run natively.

use mvee_bench::{format_row, print_table_header, workload_scale};
use mvee_variant::runner::run_native;
use mvee_workloads::catalog::{Suite, CATALOG};

fn main() {
    let scale = workload_scale();
    println!("Table 2 — native run times, syscall and sync-op rates");
    println!("(paper values for the real suites; measured values for the scaled synthetic programs, scale = {scale:.1e})");

    let widths = [16, 10, 12, 12, 12, 14, 14];
    print_table_header(
        "Table 2",
        &[
            "benchmark",
            "suite",
            "paper t(s)",
            "paper sc/s",
            "paper sy/s",
            "meas. sc/s",
            "meas. sy/s",
        ],
        &widths,
    );

    for spec in CATALOG {
        let program = spec.paper_program(scale);
        let report = run_native(&program);
        let suite = match spec.suite {
            Suite::Parsec => "PARSEC",
            Suite::Splash2x => "SPLASH-2x",
            Suite::Synthetic => "synthetic",
        };
        println!(
            "{}",
            format_row(
                &[
                    spec.name.to_string(),
                    suite.to_string(),
                    format!("{:.2}", spec.native_runtime_s),
                    format!("{:.0}", spec.syscalls_per_s),
                    format!("{:.0}", spec.sync_ops_per_s),
                    format!("{:.0}", report.syscall_rate()),
                    format!("{:.0}", report.sync_op_rate()),
                ],
                &widths,
            )
        );
    }
    println!("\n(sc/s = system calls per second, sy/s = sync ops per second)");
}
