//! Regenerates Table 2: native run times, system-call rates and sync-op
//! rates of the PARSEC 2.1 and SPLASH-2x benchmarks (4 worker threads).
//!
//! The synthetic workloads are parameterized by the paper's own Table 2, so
//! this binary shows both the paper's values and the rates the scaled
//! synthetic programs actually achieve when run natively.

use std::sync::Arc;
use std::time::Duration;

use mvee_bench::{format_row, print_table_header, workload_scale};
use mvee_core::config::{RemoteChannel, Transport};
use mvee_core::mvee::Mvee;
use mvee_kernel::syscall::{SyscallRequest, Sysno};
use mvee_sync_agent::agents::AgentKind;
use mvee_variant::runner::{run_mvee, run_native, RunConfig};
use mvee_workloads::catalog::{BenchmarkSpec, Suite, CATALOG};

fn main() {
    let scale = workload_scale();
    println!("Table 2 — native run times, syscall and sync-op rates");
    println!("(paper values for the real suites; measured values for the scaled synthetic programs, scale = {scale:.1e})");

    let widths = [16, 10, 12, 12, 12, 14, 14];
    print_table_header(
        "Table 2",
        &[
            "benchmark",
            "suite",
            "paper t(s)",
            "paper sc/s",
            "paper sy/s",
            "meas. sc/s",
            "meas. sy/s",
        ],
        &widths,
    );

    for spec in CATALOG {
        let program = spec.paper_program(scale);
        let report = run_native(&program);
        let suite = match spec.suite {
            Suite::Parsec => "PARSEC",
            Suite::Splash2x => "SPLASH-2x",
            Suite::Synthetic => "synthetic",
        };
        println!(
            "{}",
            format_row(
                &[
                    spec.name.to_string(),
                    suite.to_string(),
                    format!("{:.2}", spec.native_runtime_s),
                    format!("{:.0}", spec.syscalls_per_s),
                    format!("{:.0}", spec.sync_ops_per_s),
                    format!("{:.0}", report.syscall_rate()),
                    format!("{:.0}", report.sync_op_rate()),
                ],
                &widths,
            )
        );
    }
    println!("\n(sc/s = system calls per second, sy/s = sync ops per second)");

    print_stall_taxonomy(scale);
    print_detection_lag();
}

/// The agent-time attribution table: where slave and master wait time went
/// (spins, yields, parks on each side), how often producers rescanned the
/// reader cursors, and how often masters stalled on a full buffer — per
/// agent, on the contention-heavy `lockheavy` workload.  This is the
/// taxonomy `AgentStats` carries since the adaptive-waiter redesign;
/// per-thread-group attribution is available through
/// `SyncAgent::lane_stats`.
fn print_stall_taxonomy(scale: f64) {
    let spec = BenchmarkSpec::by_name("lockheavy").expect("lockheavy in catalog");
    println!("\nAgent stall taxonomy — lockheavy, 2 variants, 4 threads");
    let widths = [16, 10, 10, 12, 10, 10, 10, 10, 10, 10, 10];
    print_table_header(
        "Stalls",
        &[
            "agent", "recorded", "replayed", "spins", "yields", "parks", "rescans", "m-stalls",
            "m-spins", "m-yields", "m-parks",
        ],
        &widths,
    );
    for kind in AgentKind::replication_agents() {
        let program = spec.program(4, scale);
        let report = run_mvee(&program, &RunConfig::new(2, kind));
        let s = report.agent_stats;
        println!(
            "{}",
            format_row(
                &[
                    kind.name().to_string(),
                    s.ops_recorded.to_string(),
                    s.ops_replayed.to_string(),
                    s.slave_spin_iterations.to_string(),
                    s.slave_yields.to_string(),
                    s.slave_parks.to_string(),
                    s.cursor_rescans.to_string(),
                    s.master_stalls.to_string(),
                    s.master_spin_iterations.to_string(),
                    s.master_yields.to_string(),
                    s.master_parks.to_string(),
                ],
                &widths,
            )
        );
    }
    println!(
        "(spins/yields/parks = slave wait phases, m-* = master full-buffer wait phases; rescans = producer min-cursor refreshes)"
    );
}

/// How many leader sync ops the follower's pump ingests in the staged
/// mismatch probe before the mismatching batch can resolve.
const LAG_SYNC_OPS: u64 = 64;

/// The divergence-detection-lag table for the distributed deployment: the
/// leader flushes a batch whose comparison will eventually mismatch (the
/// slave disagrees on one `mprotect` length) and keeps retiring sync ops
/// while the slave dawdles; every sync op the follower ingests before the
/// verdict is leader progress *after* the divergent call executed —
/// `MonitorStats::detection_lag_sync_ops`, per replication channel.
fn print_detection_lag() {
    println!("\nDivergence detection lag — leader/follower split, 2 variants");
    let widths = [16, 14, 14];
    print_table_header("Lag", &["channel", "staged sy", "lag (sy)"], &widths);
    for channel in [
        RemoteChannel::InProc,
        RemoteChannel::Unix,
        RemoteChannel::Tcp,
    ] {
        let lag = measure_detection_lag(channel);
        println!(
            "{}",
            format_row(
                &[
                    format!("remote-{}", channel.name()),
                    LAG_SYNC_OPS.to_string(),
                    lag.to_string(),
                ],
                &widths,
            )
        );
    }
    println!(
        "(staged sy = sync ops the leader retires behind the mismatching batch; lag = how many the follower had ingested when the verdict landed)"
    );
}

/// One staged-mismatch run on the given replication channel; returns the
/// follower's recorded detection lag in sync ops.
fn measure_detection_lag(channel: RemoteChannel) -> u64 {
    const BATCH: usize = 8;
    let mvee = Arc::new(
        Mvee::builder()
            .variants(2)
            .threads(1)
            .agent(AgentKind::Null)
            .batch(BATCH)
            .transport(Transport::Remote { channel })
            .lockstep_timeout(Duration::from_secs(30))
            .manual_clock(true)
            .build(),
    );
    let leader = {
        let mvee = Arc::clone(&mvee);
        std::thread::spawn(move || {
            let port = mvee.leader_port(0);
            for _ in 0..BATCH {
                let _ = port.syscall(&SyscallRequest::new(Sysno::Mprotect).with_int(4096));
            }
            // Let the pump deposit the batch first, then pace the sync ops
            // so they are ingested while the arrival is still pending.
            std::thread::sleep(Duration::from_millis(5));
            for i in 0..LAG_SYNC_OPS {
                port.sync_op(0x1000, || ());
                if i % 8 == 7 {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        })
    };
    let slave = {
        let mvee = Arc::clone(&mvee);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            let port = mvee.thread_port(1, 0);
            for i in 0..BATCH {
                let len = if i == 3 { 666 } else { 4096 };
                let _ = port.syscall(&SyscallRequest::new(Sysno::Mprotect).with_int(len));
            }
        })
    };
    leader.join().expect("leader thread panicked");
    slave.join().expect("slave thread panicked");
    assert!(
        mvee.divergence().is_some(),
        "the staged mismatch must be detected"
    );
    mvee.monitor_stats().detection_lag_sync_ops
}
