//! Regenerates Table 3: sync ops identified per library / benchmark binary,
//! split into the paper's three types, by running the two-stage analysis of
//! `mvee-analysis` over the synthetic corpora.  Also reports the nginx corpus
//! of §5.5 (51 sync ops).

use mvee_analysis::corpus::{generate_module, generate_nginx_module, NGINX_SYNC_OPS, TABLE3_SPECS};
use mvee_analysis::instrument::{instrument_module, verify_instrumentation};
use mvee_analysis::stage2::identify_sync_ops_syntactic;
use mvee_bench::{format_row, print_table_header};

fn main() {
    println!("Table 3 — sync ops identified by the two-stage analysis");

    let widths = [22, 8, 8, 8, 8, 12];
    print_table_header(
        "Table 3",
        &["module", "(i)", "(ii)", "(iii)", "total", "instrumented"],
        &widths,
    );

    let mut all_match = true;
    for spec in TABLE3_SPECS {
        let module = generate_module(spec);
        let report = identify_sync_ops_syntactic(&module);
        let (i, ii, iii) = report.counts();
        let (instrumented, summary) = instrument_module(&module, &report);
        let verified = verify_instrumentation(&instrumented) && summary.is_consistent();
        all_match &= i == spec.type_i && ii == spec.type_ii && iii == spec.type_iii;
        println!(
            "{}",
            format_row(
                &[
                    spec.name.to_string(),
                    i.to_string(),
                    ii.to_string(),
                    iii.to_string(),
                    report.total().to_string(),
                    if verified {
                        "ok".into()
                    } else {
                        "FAILED".into()
                    },
                ],
                &widths,
            )
        );
    }

    let nginx = generate_nginx_module();
    let nginx_report = identify_sync_ops_syntactic(&nginx);
    println!(
        "\nnginx-1.8 custom primitives: {} sync ops identified (paper reports {})",
        nginx_report.total(),
        NGINX_SYNC_OPS
    );

    println!(
        "\nAll Table 3 rows match the paper: {}",
        if all_match { "yes" } else { "NO" }
    );
}
