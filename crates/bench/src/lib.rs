//! Shared harness code for the benchmark binaries and Criterion benches.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! `cargo run --bin <name> -p mvee-bench` binary (quick, human-readable
//! output) and, where meaningful, a Criterion bench under `benches/`.
//! This library holds the pieces they share: running one benchmark spec
//! natively and under the MVEE, computing slowdowns, and formatting aligned
//! text tables.
//!
//! The synthetic workloads are scaled-down versions of the paper's (seconds
//! become milliseconds); the `MVEE_BENCH_SCALE` environment variable
//! overrides the default scale for longer, more stable runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use mvee_sync_agent::agents::AgentKind;
use mvee_variant::diversity::DiversityProfile;
use mvee_variant::runner::{run_mvee, run_native, RunConfig};
use mvee_workloads::catalog::BenchmarkSpec;

/// Default scale factor applied to the paper's native run times.
///
/// `3e-6` turns an 80-second benchmark into a ~0.25 ms synthetic run; small
/// enough that the full Figure 5 sweep (25 benchmarks × 3 agents × 3 variant
/// counts) finishes in minutes, large enough that each run still executes
/// hundreds to thousands of sync ops.
pub const DEFAULT_SCALE: f64 = 3e-6;

/// Returns the workload scale, honouring `MVEE_BENCH_SCALE`.
pub fn workload_scale() -> f64 {
    std::env::var("MVEE_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SCALE)
}

/// The variant counts the paper's tables sweep (2–4).
pub const DEFAULT_VARIANT_COUNTS: [usize; 3] = [2, 3, 4];

/// Parses a comma-separated env list of positive integers, keeping the
/// values `keep` accepts; `None` when the variable is unset or nothing
/// survives.
fn env_usize_list(var: &str, keep: impl Fn(&usize) -> bool) -> Option<Vec<usize>> {
    std::env::var(var)
        .ok()
        .map(|raw| {
            raw.split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .filter(&keep)
                .collect::<Vec<_>>()
        })
        .filter(|values| !values.is_empty())
}

/// Returns the variant counts to sweep, honouring `MVEE_BENCH_VARIANTS`
/// (a comma-separated list such as `2,8,16` for the many-variant scaling
/// runs recorded in `BASELINES.md`).  Counts outside 1..=16 are dropped.
pub fn variant_counts() -> Vec<usize> {
    env_usize_list("MVEE_BENCH_VARIANTS", |n| (1..=16).contains(n))
        .unwrap_or_else(|| DEFAULT_VARIANT_COUNTS.to_vec())
}

/// Returns the comparison batch sizes to sweep, honouring
/// `MVEE_BENCH_BATCH` (a comma-separated list such as `1,8,64`; values
/// outside 1..=1024 are dropped).  Defaults to `[1]` — the unbatched
/// monitor — so the paper-shaped tables stay untouched unless a batching
/// sweep is requested.
pub fn comparison_batches() -> Vec<usize> {
    env_usize_list("MVEE_BENCH_BATCH", |n| (1..=1024).contains(n)).unwrap_or_else(|| vec![1])
}

/// The result of measuring one benchmark under one configuration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Agent used.
    pub agent: AgentKind,
    /// Number of variants.
    pub variants: usize,
    /// Native (single instance, unmonitored) duration.
    pub native: Duration,
    /// Duration under the MVEE.
    pub mvee: Duration,
    /// Relative slowdown (mvee / native).
    pub slowdown: f64,
    /// Whether the run completed without divergence.
    pub clean: bool,
    /// Sync ops recorded by the master variant.
    pub sync_ops: u64,
    /// System calls that entered the monitor.
    pub syscalls: u64,
}

/// Runs `spec` natively and under the MVEE with the given agent and variant
/// count, and returns the measurement.
pub fn measure(spec: &BenchmarkSpec, agent: AgentKind, variants: usize, scale: f64) -> Measurement {
    measure_batched(spec, agent, variants, scale, 1)
}

/// [`measure`] with an explicit comparison batch size (`1` = the unbatched
/// per-call rendezvous), for the `MVEE_BENCH_BATCH` sweeps.
pub fn measure_batched(
    spec: &BenchmarkSpec,
    agent: AgentKind,
    variants: usize,
    scale: f64,
    batch: usize,
) -> Measurement {
    let program = spec.paper_program(scale);
    let native = run_native(&program);
    let config = RunConfig::new(variants, agent).with_batch(batch);
    let report = run_mvee(&program, &config);
    Measurement {
        benchmark: spec.name,
        agent,
        variants,
        native: native.duration,
        mvee: report.duration,
        slowdown: report.slowdown_vs(&native),
        clean: report.completed_cleanly(),
        sync_ops: report.agent_stats.ops_recorded,
        syscalls: report.monitor.total_syscalls,
    }
}

/// Runs `spec` under the MVEE with full diversity enabled (the §5.1
/// correctness configuration) and reports whether the run stayed divergence
/// free.
pub fn measure_with_diversity(
    spec: &BenchmarkSpec,
    agent: AgentKind,
    variants: usize,
    scale: f64,
    seed: u64,
) -> bool {
    let program = spec.paper_program(scale);
    let config = RunConfig::new(variants, agent).with_diversity(DiversityProfile::full(seed));
    let report = run_mvee(&program, &config);
    report.completed_cleanly()
}

/// Geometric mean of a slice of ratios (the aggregation Table 1 uses).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Formats a table row with fixed-width columns.
pub fn format_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{:>width$}", c, width = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Prints the header of a table whose middle columns are one "`N` variants"
/// column per swept variant count (the layout `table1` and `figure5` share),
/// and returns the column widths for formatting the data rows.
pub fn print_variant_table_header(
    title: &str,
    prefix: &[(&str, usize)],
    counts: &[usize],
    suffix: &[(&str, usize)],
) -> Vec<usize> {
    let mut columns: Vec<String> = prefix.iter().map(|(c, _)| c.to_string()).collect();
    let mut widths: Vec<usize> = prefix.iter().map(|(_, w)| *w).collect();
    for v in counts {
        columns.push(format!("{v} variants"));
        widths.push(12);
    }
    for (c, w) in suffix {
        columns.push(c.to_string());
        widths.push(*w);
    }
    let refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    print_table_header(title, &refs, &widths);
    widths
}

/// Prints a header line and a separator for a table.
pub fn print_table_header(title: &str, columns: &[&str], widths: &[usize]) {
    println!("\n=== {title} ===");
    let cells: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
    println!("{}", format_row(&cells, widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvee_workloads::catalog::BenchmarkSpec;

    #[test]
    fn geometric_mean_of_constant_is_constant() {
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn arithmetic_mean_basics() {
        assert!((arithmetic_mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-9);
        assert_eq!(arithmetic_mean(&[]), 0.0);
    }

    #[test]
    fn format_row_pads_columns() {
        let row = format_row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(row, "  a    bb");
    }

    #[test]
    fn measure_produces_a_clean_run_for_a_small_benchmark() {
        let spec = BenchmarkSpec::by_name("fft").unwrap();
        let m = measure(spec, AgentKind::WallOfClocks, 2, 2e-6);
        assert!(m.clean, "fft under WoC must not diverge");
        assert!(m.slowdown > 0.0);
        assert!(m.syscalls > 0);
    }

    #[test]
    fn default_scale_is_used_without_env_override() {
        // Not setting the variable in the test environment.
        let s = workload_scale();
        assert!(s > 0.0);
    }

    #[test]
    fn default_variant_counts_match_the_paper() {
        // Without the env override the sweep is the paper's 2–4 range.
        if std::env::var("MVEE_BENCH_VARIANTS").is_err() {
            assert_eq!(variant_counts(), vec![2, 3, 4]);
        }
    }

    #[test]
    fn default_batch_sweep_is_unbatched() {
        if std::env::var("MVEE_BENCH_BATCH").is_err() {
            assert_eq!(comparison_batches(), vec![1]);
        }
    }

    #[test]
    fn batched_measurement_is_clean_for_a_small_benchmark() {
        let spec = BenchmarkSpec::by_name("fft").unwrap();
        let m = measure_batched(spec, AgentKind::WallOfClocks, 2, 2e-6, 8);
        assert!(m.clean, "fft under a batch-8 monitor must not diverge");
        assert!(m.slowdown > 0.0);
    }
}
