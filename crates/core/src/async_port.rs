//! The asynchronous syscall gateway: per-port submission/completion rings.
//!
//! The synchronous transport blocks a variant thread inside every
//! rendezvous: [`ThreadPort::syscall`] walks the monitor pipeline — gate,
//! lockstep arrival, replication/ordering — on the caller's own stack.
//! dMVX-style deployments decouple variant progress from comparison
//! instead: the variant deposits a descriptor of the call and runs ahead
//! into work that does not depend on the verdict, while the monitor
//! compares in the background.  [`AsyncThreadPort`] is that transport,
//! shaped like a virtio split queue:
//!
//! * a **submission ring** the variant thread deposits [`Submission`]
//!   descriptors into (call number, arguments, an implicit per-thread
//!   sequence — the monitor side assigns rendezvous keys exactly as the
//!   sync transport does, because the descriptors arrive in program
//!   order);
//! * a **completion ring** the monitor side posts verdicts to, which the
//!   variant reaps in batches ([`AsyncThreadPort::reap`]).
//!
//! Both rings are [`DescRing`]s — the PR 5 SPSC ring discipline (sequence-
//! published slots, separated cursors, [`EventCount`]-parked waiters)
//! generalized to carry owned descriptors; see
//! [`mvee_sync_agent::spsc`](mvee_sync_agent::spsc).
//!
//! # Who drains the rings: per-port workers or a poller pool
//!
//! Under `Pollers::PerPort` each `AsyncThreadPort` owns a dedicated
//! *gateway worker* thread on the monitor side.  The worker owns the
//! port's inner [`ThreadPort`] and drains the submission ring's whole
//! backlog in one pass, running every descriptor through the **identical**
//! pipeline (`gate_and_count`/`arrive_sync`/`resolve_batch`/
//! `dispatch_resolved`, via `ThreadPort::syscall`) — same rendezvous keys,
//! same batching, same statistics lanes, same verdicts, by construction.
//! The per-port worker is not an accident of convenience: a shared drain
//! thread multiplexing several logical threads' *blocking* rendezvous
//! would deadlock, because cross-thread submission order legitimately
//! differs between variants (the paper's premise) — a worker blocked in
//! thread A's rendezvous for variant 0 may be the only thing that could
//! deposit thread B's arrival, which variant 1's worker is blocked waiting
//! for.
//!
//! Under `Pollers::Pool(n)` no thread is spawned per port: the MVEE's
//! shared [`PollerPool`] serves all ports from `n` polling monitor shards
//! that advance each port through *non-blocking* rendezvous
//! (`try_arrive`/`poll_*`; see [`crate::poller`]), which removes the
//! circular-wait hazard and caps monitor-side threads at `n` regardless of
//! variants×threads.  `PerPort` remains as the ablation baseline.
//!
//! # When the variant still blocks
//!
//! Calls whose *outcome* couples the variants stay synchronous at the reap
//! point, so verdicts are provably unchanged:
//!
//! * **replicated** calls (I/O, read-only info, blocking sync) — the caller
//!   cannot proceed without the master's result;
//! * **ordered** calls — the slave's execution waits for its cross-thread
//!   turn;
//! * synchronous **lockstep** calls and **process-lifecycle** calls — a
//!   thread must never exit (or pass a comparison point) with unresolved
//!   comparisons behind it.
//!
//! [`AsyncThreadPort::submit`] therefore answers with
//! [`SubmitOutcome::Completed`] for those calls (it reaps inline), and
//! only pipelines compare-only deferrable calls and uncompared local calls
//! as [`SubmitOutcome::Ticket`].  Deadlock cannot arise from backpressure:
//! a variant blocked on a full submission ring opportunistically drains
//! its completion ring first, so the worker can always make progress.
//!
//! # Shutdown
//!
//! Every submitted ticket is answered — on divergence the worker's
//! pipeline returns the error and the worker posts it as the completion —
//! so a reaper parked on the completion ring always wakes with a verdict
//! instead of hanging.  Dropping the port enqueues [`Submission::Close`]
//! and joins the worker; the worker's inner `ThreadPort` drop then flushes
//! any still-deferred comparisons and releases the (variant, thread)
//! binding, so async ports re-acquire across workload phases exactly like
//! sync ports.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use mvee_kernel::syscall::{SyscallOutcome, SyscallRequest};
use mvee_sync_agent::context::{SyncContext, VariantRole};
use mvee_sync_agent::guards::Waiter;
use mvee_sync_agent::spsc::DescRing;
use mvee_sync_agent::SyncAgent;

use crate::lockstep::PollWaker;
use crate::monitor::{Monitor, MonitorError};
use crate::poller::{PollerPool, TaskDone};
use crate::port::ThreadPort;

/// A completion ticket: identifies one submitted call on its port.
/// Tickets are per-port and monotonically increasing.
pub type Ticket = u64;

/// One descriptor deposited into a port's submission ring.
#[derive(Debug)]
pub(crate) enum Submission {
    /// A system call to run through the monitor pipeline.
    Call {
        /// The ticket the verdict will be posted under.
        ticket: Ticket,
        /// The call descriptor (number, normalized arguments, payload).
        req: SyscallRequest,
    },
    /// A flush barrier: resolve every deferred comparison submitted so
    /// far, then post the verdict.  Replication points submit one before
    /// entering the agent.
    Flush {
        /// The ticket the barrier's verdict is posted under.
        ticket: Ticket,
    },
    /// Shut the gateway worker down (sent by `Drop`).
    Close,
}

/// One verdict posted to a port's completion ring.
#[derive(Debug)]
pub(crate) struct Completion {
    pub(crate) ticket: Ticket,
    pub(crate) result: Result<SyscallOutcome, MonitorError>,
}

/// Who serves this port's submission ring on the monitor side.
enum Gateway {
    /// A dedicated gateway worker thread owning the port's inner
    /// [`ThreadPort`] (`Pollers::PerPort`, and the only mode available on
    /// an MVEE built without a poller pool).
    Dedicated(Option<JoinHandle<()>>),
    /// A shared polling shard ([`PollerPool`], `Pollers::Pool(n)`): no
    /// thread is spawned for this port.  The waker tells the serving
    /// poller a submission landed; `done` is raised once `Close` has been
    /// fully processed and the binding released.
    Pooled {
        /// Keeps the pool's poller threads alive until the last port closes.
        _pool: Arc<PollerPool>,
        waker: Arc<PollWaker>,
        done: Arc<TaskDone>,
    },
}

/// What [`AsyncThreadPort::submit`] did with a call.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// The call was synchronous under the policy (replicated, ordered,
    /// synchronous lockstep or process-lifecycle): the port blocked at the
    /// reap point and this is the verdict.
    Completed(Result<SyscallOutcome, MonitorError>),
    /// The call was pipelined; reap the verdict later with
    /// [`AsyncThreadPort::reap`].
    Ticket(Ticket),
}

/// The variant-side handle of the asynchronous gateway: a per-(variant,
/// thread) port whose calls travel through paired submission/completion
/// rings to a dedicated monitor-side gateway worker.
///
/// Like [`ThreadPort`], the handle is `Send` (move it into the OS thread
/// that runs the logical thread) but `!Sync` (the ticket counter and reap
/// buffer are unsynchronized per-thread state), and at most one live port
/// may own a (variant, thread) — enforced through the inner `ThreadPort`
/// acquisition.
pub struct AsyncThreadPort {
    monitor: Arc<Monitor>,
    agent: Arc<dyn SyncAgent>,
    ctx: SyncContext,
    variant: usize,
    thread: usize,
    submissions: Arc<DescRing<Submission>>,
    completions: Arc<DescRing<Completion>>,
    /// The reaper's wait discipline: spin → yield → park on the completion
    /// ring's event count, the agents' adaptive strategy.
    waiter: Waiter,
    /// Next ticket to hand out; plain `Cell`, this port is the only writer.
    next_ticket: Cell<Ticket>,
    /// Tickets submitted but not yet reaped by the caller.
    outstanding: Cell<usize>,
    /// Verdicts drained from the completion ring but not yet asked for
    /// (reaps may happen out of submission order).
    reaped: RefCell<HashMap<Ticket, Result<SyscallOutcome, MonitorError>>>,
    gateway: Gateway,
}

impl AsyncThreadPort {
    /// Binds an async port to (variant, thread) and spawns its gateway
    /// worker.  `depth` is the ring capacity in descriptors (rounded up to
    /// a power of two).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or if a live port (sync or async)
    /// already owns this (variant, thread).
    pub(crate) fn new(
        monitor: Arc<Monitor>,
        agent: Arc<dyn SyncAgent>,
        variant: usize,
        thread: usize,
        depth: usize,
    ) -> Self {
        // Acquire the inner port *here*, not in the worker, so the
        // one-live-port panic surfaces on the caller's stack.
        let inner = ThreadPort::new(Arc::clone(&monitor), Arc::clone(&agent), variant, thread);
        let submissions = Arc::new(DescRing::new(depth));
        let completions = Arc::new(DescRing::new(depth));
        let worker = {
            let submissions = Arc::clone(&submissions);
            let completions = Arc::clone(&completions);
            std::thread::Builder::new()
                .name(format!("mvee-gw-v{variant}t{thread}"))
                .spawn(move || serve_port(inner, &submissions, &completions))
                .expect("spawning a gateway worker thread failed")
        };
        AsyncThreadPort {
            ctx: SyncContext::new(VariantRole::from_variant_index(variant), thread),
            waiter: monitor.config().ring_waiter(),
            agent,
            variant,
            thread,
            submissions,
            completions,
            next_ticket: Cell::new(0),
            outstanding: Cell::new(0),
            reaped: RefCell::new(HashMap::new()),
            gateway: Gateway::Dedicated(Some(worker)),
            monitor,
        }
    }

    /// Binds an async port to (variant, thread) served by a shared
    /// [`PollerPool`] instead of a dedicated worker thread.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or if a live port (sync or async)
    /// already owns this (variant, thread) — the pool acquires the binding
    /// on this caller's stack.
    pub(crate) fn new_pooled(
        monitor: Arc<Monitor>,
        agent: Arc<dyn SyncAgent>,
        variant: usize,
        thread: usize,
        depth: usize,
        pool: &Arc<PollerPool>,
    ) -> Self {
        let registration = pool.register(&monitor, variant, thread, depth);
        AsyncThreadPort {
            ctx: SyncContext::new(VariantRole::from_variant_index(variant), thread),
            waiter: monitor.config().ring_waiter(),
            agent,
            variant,
            thread,
            submissions: registration.submissions,
            completions: registration.completions,
            next_ticket: Cell::new(0),
            outstanding: Cell::new(0),
            reaped: RefCell::new(HashMap::new()),
            gateway: Gateway::Pooled {
                _pool: Arc::clone(pool),
                waker: registration.waker,
                done: registration.done,
            },
            monitor,
        }
    }

    /// Whether this port is served by its own gateway worker thread
    /// (`Pollers::PerPort`) rather than a shared polling shard.
    pub fn has_dedicated_worker(&self) -> bool {
        matches!(self.gateway, Gateway::Dedicated(_))
    }

    /// Zero-based variant index (0 is the master).
    pub fn variant_index(&self) -> usize {
        self.variant
    }

    /// Logical thread index within the variant.
    pub fn thread_index(&self) -> usize {
        self.thread
    }

    /// Whether this port belongs to the master variant.
    pub fn is_master(&self) -> bool {
        self.variant == 0
    }

    /// The monitor this port issues calls against.
    pub fn monitor(&self) -> &Arc<Monitor> {
        &self.monitor
    }

    /// Ring capacity in descriptors: how far this thread may run ahead.
    pub fn depth(&self) -> usize {
        self.submissions.capacity()
    }

    /// Tickets submitted and not yet reaped by the caller.
    pub fn outstanding(&self) -> usize {
        self.outstanding.get()
    }

    /// Whether the MVEE has shut down due to divergence.
    pub fn is_shut_down(&self) -> bool {
        self.monitor.has_diverged()
    }

    /// Submits a call.  Compare-only deferrable calls and uncompared local
    /// calls are pipelined ([`SubmitOutcome::Ticket`]); calls the policy
    /// marks synchronous block at the reap point and come back
    /// [`SubmitOutcome::Completed`] (see the module docs).
    pub fn submit(&self, req: &SyscallRequest) -> SubmitOutcome {
        let disposition = self.monitor.config().policy.disposition(req.no);
        let pipelined = disposition.defer_compare
            || !(disposition.lockstep || disposition.replicate || disposition.ordered);
        let ticket = self.next_ticket.get();
        self.next_ticket.set(ticket + 1);
        self.outstanding.set(self.outstanding.get() + 1);
        self.push_submission(Submission::Call {
            ticket,
            req: req.clone(),
        });
        if pipelined {
            SubmitOutcome::Ticket(ticket)
        } else {
            SubmitOutcome::Completed(self.reap(ticket))
        }
    }

    /// Blocks until `ticket`'s verdict is available and returns it.
    ///
    /// Every submitted ticket is eventually answered — divergence included
    /// (the worker posts the error) — so a parked reaper always wakes.
    ///
    /// # Panics
    ///
    /// Panics on a ticket that was never issued or was already reaped.
    pub fn reap(&self, ticket: Ticket) -> Result<SyscallOutcome, MonitorError> {
        assert!(
            ticket < self.next_ticket.get(),
            "reaping a ticket this port never issued"
        );
        if let Some(result) = self.reaped.borrow_mut().remove(&ticket) {
            self.outstanding.set(self.outstanding.get() - 1);
            return result;
        }
        loop {
            // Completions are posted in ticket order (the gateway — worker
            // or poller — answers submissions FIFO), so the common in-order
            // reap pops its verdict straight off the ring; only verdicts
            // the caller skipped past are parked in the reap buffer.  Ring
            // space is released to the gateway once per burst.
            let mut found = None;
            let mut drained = false;
            while let Some(completion) = self.completions.try_pop_quiet() {
                drained = true;
                if completion.ticket == ticket {
                    found = Some(completion.result);
                    break;
                }
                self.reaped
                    .borrow_mut()
                    .insert(completion.ticket, completion.result);
            }
            if drained {
                self.completions.space_events().notify();
            }
            if let Some(result) = found {
                self.outstanding.set(self.outstanding.get() - 1);
                return result;
            }
            self.waiter
                .wait_until_event(self.completions.ready_events(), || {
                    !self.completions.is_empty()
                });
        }
    }

    /// Non-blocking reap: the verdict if it has already been posted.
    pub fn try_reap(&self, ticket: Ticket) -> Option<Result<SyscallOutcome, MonitorError>> {
        self.drain_completions();
        let result = self.reaped.borrow_mut().remove(&ticket);
        if result.is_some() {
            self.outstanding.set(self.outstanding.get() - 1);
        }
        result
    }

    /// Issues a system call and blocks for its verdict: submit + reap.
    /// Observably equivalent to [`ThreadPort::syscall`] for this (variant,
    /// thread) — the gateway worker runs the identical pipeline.
    pub fn syscall(&self, req: &SyscallRequest) -> Result<SyscallOutcome, MonitorError> {
        match self.submit(req) {
            SubmitOutcome::Completed(result) => result,
            SubmitOutcome::Ticket(ticket) => self.reap(ticket),
        }
    }

    /// Flush barrier: resolves every deferred comparison submitted so far
    /// and returns the verdict.  Replication points
    /// ([`before_sync_op`](Self::before_sync_op)) call this implicitly.
    pub fn flush(&self) -> Result<(), MonitorError> {
        let ticket = self.next_ticket.get();
        self.next_ticket.set(ticket + 1);
        self.outstanding.set(self.outstanding.get() + 1);
        self.push_submission(Submission::Flush { ticket });
        self.reap(ticket).map(|_| ())
    }

    /// Brackets the *start* of a sync op: submits a flush barrier, blocks
    /// at its reap point (a replication point must never overtake a
    /// pending comparison — the same position in the call stream as the
    /// sync transport's inline flush), then enters the agent.
    pub fn before_sync_op(&self, addr: u64) {
        // A flush failure has already recorded the divergence and poisoned
        // table + agent; the thread learns about it at its next monitored
        // call, exactly like the sync transport.
        let _ = self.flush();
        self.agent.before_sync_op(&self.ctx, addr);
    }

    /// Brackets the end of a sync op.
    pub fn after_sync_op(&self, addr: u64) {
        self.agent.after_sync_op(&self.ctx, addr);
    }

    /// Convenience: brackets `op` between
    /// [`before_sync_op`](Self::before_sync_op) and
    /// [`after_sync_op`](Self::after_sync_op).
    pub fn sync_op<T>(&self, addr: u64, op: impl FnOnce() -> T) -> T {
        self.before_sync_op(addr);
        let result = op();
        self.after_sync_op(addr);
        result
    }

    /// Deposits one submission, draining completions while the ring is
    /// full so a stalled worker (blocked pushing a completion) can always
    /// make progress — the backpressure half of the deadlock-freedom
    /// argument in the module docs.
    fn push_submission(&self, submission: Submission) {
        let mut pending = submission;
        loop {
            let was_empty = self.submissions.is_empty();
            let pushed = match &self.gateway {
                // A dedicated worker parks on the submission ring's own
                // ready events, so the push must carry the notification.
                Gateway::Dedicated(_) => self.submissions.try_push(pending),
                // A shared poller parks on its aggregated waker instead;
                // the quiet push skips the ring notify fence and the raise
                // is elided while the ring already holds work: the poller
                // cannot commit to a park without re-observing the
                // non-empty ring, and the one racy interleaving (it drains
                // the backlog between our emptiness check and the push
                // landing) is bounded by the waiter's 1 ms park backstop.
                Gateway::Pooled { waker, .. } => match self.submissions.try_push_quiet(pending) {
                    Ok(()) => {
                        if was_empty {
                            waker.raise();
                        }
                        Ok(())
                    }
                    Err(back) => Err(back),
                },
            };
            match pushed {
                Ok(()) => return,
                Err(back) => {
                    pending = back;
                    self.drain_completions();
                    self.waiter
                        .wait_until_event(self.submissions.space_events(), || {
                            !self.submissions.is_full() || !self.completions.is_empty()
                        });
                }
            }
        }
    }

    /// Moves every posted verdict from the completion ring into the local
    /// reap buffer, releasing ring space to the gateway once per burst.
    fn drain_completions(&self) {
        let mut drained = false;
        while let Some(completion) = self.completions.try_pop_quiet() {
            self.reaped
                .borrow_mut()
                .insert(completion.ticket, completion.result);
            drained = true;
        }
        if drained {
            self.completions.space_events().notify();
        }
    }
}

impl Drop for AsyncThreadPort {
    fn drop(&mut self) {
        // Closing the gateway answers every in-flight ticket first (the
        // worker drains the ring in order), so nothing is lost silently:
        // un-reaped verdicts are simply abandoned by the caller.  The
        // worker's inner `ThreadPort` drop then flushes any still-deferred
        // comparisons and hands the (variant, thread) binding back.
        self.push_submission(Submission::Close);
        match &mut self.gateway {
            Gateway::Dedicated(worker) => {
                if let Some(worker) = worker.take() {
                    let _ = worker.join();
                }
            }
            Gateway::Pooled { waker, done, .. } => {
                // The poller flushes trailing comparisons and releases the
                // binding when it reaches the `Close`; wait for that signal
                // so a re-acquired port never races the release.
                waker.raise();
                self.waiter
                    .wait_until_event(done.events(), || done.is_finished());
            }
        }
    }
}

impl std::fmt::Debug for AsyncThreadPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncThreadPort")
            .field("variant", &self.variant)
            .field("thread", &self.thread)
            .field("depth", &self.submissions.capacity())
            .field("next_ticket", &self.next_ticket.get())
            .field("outstanding", &self.outstanding.get())
            .finish()
    }
}

/// The gateway worker: drains one port's submission ring through the
/// monitor pipeline and posts verdicts to its completion ring.
///
/// The worker owns the port's inner [`ThreadPort`], so every descriptor
/// takes exactly the path a synchronous call would — keys, batching,
/// statistics and verdicts included.  It keeps serving after divergence
/// (the pipeline answers `ShutDown` immediately) so no ticket is ever left
/// unanswered, and exits on [`Submission::Close`].
fn serve_port(
    port: ThreadPort,
    submissions: &DescRing<Submission>,
    completions: &DescRing<Completion>,
) {
    let waiter = port.monitor().config().ring_waiter();
    loop {
        let Some(submission) = submissions.try_pop() else {
            waiter.wait_until_event(submissions.ready_events(), || !submissions.is_empty());
            continue;
        };
        let (ticket, result) = match submission {
            Submission::Call { ticket, req } => (ticket, port.syscall(&req)),
            Submission::Flush { ticket } => (ticket, port.flush().map(|()| SyscallOutcome::ok(0))),
            Submission::Close => return,
        };
        let mut completion = Completion { ticket, result };
        loop {
            match completions.try_push(completion) {
                Ok(()) => break,
                Err(back) => {
                    completion = back;
                    waiter.wait_until_event(completions.space_events(), || !completions.is_full());
                }
            }
        }
    }
    // `port` drops here: deferred comparisons flush, the binding releases.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Pollers, Transport};
    use crate::mvee::Mvee;
    use mvee_kernel::syscall::Sysno;

    fn async_mvee(variants: usize, batch: usize) -> Mvee {
        Mvee::builder()
            .variants(variants)
            .batch(batch)
            .transport(Transport::AsyncRings {
                depth: 8,
                pollers: Pollers::PerPort,
            })
            .manual_clock(true)
            .build()
    }

    #[test]
    fn async_port_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<AsyncThreadPort>();
    }

    #[test]
    fn async_port_answers_self_awareness_with_the_variant_index() {
        let mvee = async_mvee(3, 1);
        for v in 0..3 {
            let port = mvee.async_thread_port(v, 0);
            let out = port
                .syscall(&SyscallRequest::new(Sysno::MveeSelfAware))
                .unwrap();
            assert_eq!(out.result, Ok(v as i64));
        }
        assert_eq!(mvee.monitor_stats().self_aware_queries, 3);
    }

    #[test]
    fn deferrable_calls_pipeline_and_reap_out_of_order() {
        let mvee = async_mvee(1, 8);
        let port = mvee.async_thread_port(0, 0);
        let mut tickets = Vec::new();
        for _ in 0..4 {
            match port.submit(&SyscallRequest::new(Sysno::Brk).with_int(0)) {
                SubmitOutcome::Ticket(t) => tickets.push(t),
                SubmitOutcome::Completed(_) => panic!("brk must pipeline"),
            }
        }
        assert_eq!(port.outstanding(), 4);
        // Reap in reverse order: the local reap buffer reorders verdicts.
        for t in tickets.into_iter().rev() {
            port.reap(t).unwrap();
        }
        assert_eq!(port.outstanding(), 0);
        assert_eq!(mvee.monitor_stats().total_syscalls, 4);
    }

    #[test]
    fn synchronous_calls_block_at_the_reap_point() {
        let mvee = async_mvee(1, 8);
        let port = mvee.async_thread_port(0, 0);
        // A replicated call must come back Completed, not a ticket.
        match port.submit(&SyscallRequest::new(Sysno::Gettimeofday)) {
            SubmitOutcome::Completed(result) => assert!(result.unwrap().is_ok()),
            SubmitOutcome::Ticket(_) => panic!("replicated calls must block at the reap point"),
        }
    }

    #[test]
    fn variant_runs_ahead_past_ring_capacity() {
        // More pipelined submissions than the ring holds: backpressure
        // makes the variant drain completions while waiting for space, and
        // every verdict still arrives.
        let mvee = async_mvee(1, 4);
        let port = mvee.async_thread_port(0, 0);
        assert_eq!(port.depth(), 8);
        let tickets: Vec<Ticket> = (0..100)
            .map(
                |_| match port.submit(&SyscallRequest::new(Sysno::Brk).with_int(0)) {
                    SubmitOutcome::Ticket(t) => t,
                    SubmitOutcome::Completed(_) => panic!("brk must pipeline"),
                },
            )
            .collect();
        for t in tickets {
            port.reap(t).unwrap();
        }
        assert_eq!(mvee.monitor_stats().total_syscalls, 100);
        assert_eq!(mvee.monitor().live_deferred(), 0);
    }

    #[test]
    fn second_live_port_panics_even_across_transports() {
        let mvee = async_mvee(1, 1);
        let _port = mvee.async_thread_port(0, 0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _second = mvee.thread_port(0, 0);
        }));
        assert!(result.is_err(), "the inner port enforces one live owner");
    }

    #[test]
    fn dropping_an_async_port_hands_the_sequence_back() {
        let mvee = async_mvee(1, 1);
        {
            let port = mvee.async_thread_port(0, 0);
            port.syscall(&SyscallRequest::new(Sysno::Getpid)).unwrap();
            port.syscall(&SyscallRequest::new(Sysno::Getpid)).unwrap();
        }
        let port = mvee.async_thread_port(0, 0);
        port.syscall(&SyscallRequest::new(Sysno::Getpid)).unwrap();
        assert_eq!(mvee.monitor_stats().total_syscalls, 3);
    }

    #[test]
    fn sync_op_flushes_pipelined_comparisons_first() {
        let mvee = async_mvee(2, 8);
        let mut handles = Vec::new();
        for v in 0..2 {
            let port = mvee.async_thread_port(v, 0);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2 {
                    match port.submit(&SyscallRequest::new(Sysno::Brk).with_int(0)) {
                        SubmitOutcome::Ticket(_) => {}
                        SubmitOutcome::Completed(_) => panic!("brk must pipeline"),
                    }
                }
                // The replication point is a verdict barrier.
                port.sync_op(0x1000, || ());
                // Both pipelined verdicts are now posted.
                assert_eq!(port.try_reap(0).unwrap(), port.try_reap(1).unwrap());
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = mvee.monitor_stats();
        assert_eq!(stats.batched_comparisons, 4);
        assert_eq!(stats.batch_flushes, 2, "one flush per variant");
        assert!(!mvee.monitor().has_diverged());
    }
}
