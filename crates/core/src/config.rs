//! The one shared MVEE configuration surface.
//!
//! Before this module existed the same tuning knobs (shard count, comparison
//! batch, policy, agent) were triplicated across `MveeBuilder`,
//! `mvee_variant::runner::RunConfig` and
//! `mvee_workloads::nginx::NginxServerConfig`, and drifted independently.
//! [`MveeConfig`] is now the single struct all three embed; every front end
//! forwards it verbatim to [`MveeBuilder::config`](crate::mvee::MveeBuilder).
//!
//! It also carries the [`Placement`] policy: how logical threads are bound
//! to monitor shards (and, optionally, CPU cores).  Placement is resolved
//! once, at [`ThreadPort`](crate::port::ThreadPort) acquisition time, not on
//! every call — the port caches its shard binding.

use std::sync::Arc;
use std::time::Duration;

use mvee_sync_agent::agents::AgentKind;
use mvee_sync_agent::context::AgentConfig;
use mvee_sync_agent::guards::WaitStrategy;

use crate::journal::JournalMode;
use crate::lockstep::DEFAULT_SHARDS;
use crate::policy::MonitoringPolicy;

/// How logical threads are bound to monitor shards (and CPU cores).
///
/// The monitor partitions its rendezvous table, ordering clocks and stat
/// lanes into [`MveeConfig::shards`] shards.  `Placement` decides which
/// shard a logical thread's state lives in.  The binding is a pure function
/// of the logical thread index and the configuration, so it is identical in
/// every variant — which is what keeps the master's and the slaves' shard
/// clocks referring to the same state.
///
/// On multi-socket hardware the point of `Grouped`/`Pinned` is locality: a
/// thread group whose threads share a shard (and whose cores share a socket)
/// keeps its rendezvous lock and stat lane on that socket instead of
/// bouncing cache lines across the interconnect.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Placement {
    /// `thread % shards` — the historical binding: neighbouring threads land
    /// in different shards, spreading contention evenly.
    #[default]
    RoundRobin,
    /// Contiguous blocks of threads share a shard
    /// (`thread * shards / threads`, scaled to the *actual* per-variant
    /// thread count): thread groups that are spawned together — and
    /// typically scheduled together — stay on one shard.  Scaling to the
    /// workload's thread count (not the 64-slot table maximum) is what
    /// keeps an 8-thread run spread over all shards instead of collapsing
    /// into shard 0.
    Grouped,
    /// Explicit per-thread core map: logical thread `t` is pinned to core
    /// `cores[t % cores.len()]` and its monitor state lives in shard
    /// `core % shards`, so threads pinned to one core (or socket, with a
    /// suitable map) share a shard.  The runner issues a (simulated)
    /// `sched_setaffinity` for each thread at start-up; see
    /// `mvee_variant::runner`.
    Pinned(Arc<[usize]>),
}

impl Placement {
    /// Builds a [`Placement::Pinned`] from a core map.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty.
    pub fn pinned(cores: impl Into<Vec<usize>>) -> Self {
        let cores = cores.into();
        assert!(!cores.is_empty(), "a pinned placement needs a core map");
        Placement::Pinned(cores.into())
    }

    /// The shard logical thread `thread` is bound to, given the workload's
    /// per-variant thread count and the monitor's `shards` configuration.
    /// Always below `shards`.
    ///
    /// `threads` must be the number of threads the workload actually uses —
    /// not the monitor's table capacity — or `Grouped`'s blocks degenerate:
    /// with 8 live threads scaled against a 64-slot table, every thread
    /// lands in shard 0.
    pub fn shard_for(&self, thread: usize, threads: usize, shards: usize) -> usize {
        let shards = shards.max(1);
        match self {
            Placement::RoundRobin => thread % shards,
            Placement::Grouped => {
                let threads = threads.max(1);
                ((thread % threads) * shards / threads).min(shards - 1)
            }
            Placement::Pinned(cores) => cores[thread % cores.len()] % shards,
        }
    }

    /// The CPU core thread `thread` should be pinned to, if this placement
    /// prescribes one (`Pinned` only).
    pub fn core_for(&self, thread: usize) -> Option<usize> {
        match self {
            Placement::Pinned(cores) => Some(cores[thread % cores.len()]),
            _ => None,
        }
    }

    /// Short name used in benchmark tables and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Placement::RoundRobin => "round-robin",
            Placement::Grouped => "grouped",
            Placement::Pinned(_) => "pinned",
        }
    }
}

/// Default submission/completion ring depth for
/// [`Transport::AsyncRings`]: deep enough to cover a full comparison batch
/// plus pipelined run-ahead, small enough to stay cache-resident.
pub const DEFAULT_RING_DEPTH: usize = 64;

/// Who drains the [`Transport::AsyncRings`] submission rings on the monitor
/// side.
///
/// * [`Pollers::PerPort`] — the historical shape: every
///   [`AsyncThreadPort`](crate::async_port::AsyncThreadPort) spawns a
///   dedicated gateway worker that *blocks* inside the monitor pipeline.
///   Monitor-side threads scale as `variants × threads`; on a box with no
///   spare cores the context switches eat the decoupling win.  Kept as the
///   ablation baseline.
/// * [`Pollers::Pool(n)`](Pollers::Pool) — a fixed pool of `n` polling
///   shards ([`crate::poller`]): each shard owns many ports' rings and
///   round-robins drain → non-blocking rendezvous (try/poll) → complete,
///   parking only when every served ring is empty and every in-flight
///   arrival is pending.  Monitor-side threads are exactly `n` regardless
///   of `variants × threads`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pollers {
    /// One dedicated blocking gateway worker per (variant, thread) port.
    #[default]
    PerPort,
    /// A fixed pool of `n` polling shards serving all ports.
    Pool(usize),
    /// A fixed polling pool auto-sized from the machine:
    /// [`Pollers::auto_pool_size`] applied to
    /// `std::thread::available_parallelism()` at build time.
    Auto,
}

impl Pollers {
    /// Short name used in benchmark tables and reports: `per-port`,
    /// `pool{n}` or `auto`.
    pub fn label(&self) -> String {
        match self {
            Pollers::PerPort => "per-port".to_string(),
            Pollers::Pool(n) => format!("pool{n}"),
            Pollers::Auto => "auto".to_string(),
        }
    }

    /// The sizing rule behind [`Pollers::Auto`]: half the machine's
    /// available parallelism — pollers share cores with `variants × threads`
    /// workload threads, so claiming every core would starve the very ports
    /// the pool drains — floored at one worker and capped at eight (beyond
    /// that the shards outnumber the rendezvous shards they feed).
    pub fn auto_pool_size(parallelism: usize) -> usize {
        (parallelism / 2).clamp(1, 8)
    }
}

/// The byte channel a [`Transport::Remote`] leader streams its replication
/// frames over.  All three shapes are loopback in this reproduction — the
/// point is the framed wire discipline, not the physical distance — but the
/// socket shapes exercise a real kernel byte stream with real partial reads
/// and real teardown semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RemoteChannel {
    /// An in-process duplex pipe: the fastest loopback, no OS descriptors.
    #[default]
    InProc,
    /// A `socketpair`-style Unix stream pair.
    Unix,
    /// A TCP connection over `127.0.0.1` (ephemeral port).
    Tcp,
}

impl RemoteChannel {
    /// Short name used in benchmark tables and reports.
    pub fn name(&self) -> &'static str {
        match self {
            RemoteChannel::InProc => "inproc",
            RemoteChannel::Unix => "unix",
            RemoteChannel::Tcp => "tcp",
        }
    }
}

/// How variant threads hand their system calls to the monitor.
///
/// * [`Transport::Sync`] — the historical shape: the variant thread walks
///   the monitor pipeline itself inside
///   [`ThreadPort::syscall`](crate::port::ThreadPort::syscall) and blocks
///   in every rendezvous.
/// * [`Transport::AsyncRings`] — the asynchronous gateway: each
///   (variant, thread) port owns a paired submission/completion ring
///   (virtio split-queue style); the variant thread deposits descriptors
///   and runs ahead into already-resolved work while the monitor side —
///   a per-port gateway worker or a shared polling shard, per
///   [`Pollers`] — drains the submission ring through the same pipeline
///   and posts verdicts to the completion ring.  Calls the policy marks
///   synchronous (replicated, ordered, process-lifecycle) still block at
///   the reap point, so verdicts are identical to the sync transport; see
///   [`crate::async_port`] and [`crate::poller`].
/// * [`Transport::Remote`] — the distributed (dMVX-style) split: variant 0
///   becomes a *leader* that executes immediately and streams CRC-framed
///   `(seq, comparison-key, replicated-result)` records over a
///   [`RemoteChannel`]; a *follower* pump replays the stream into the
///   rendezvous table against the remaining variants and acknowledges.
///   The leader blocks only where the in-proc master blocks — at
///   non-deferred lockstep rendezvous — while deferred comparisons stream
///   without a round trip; see [`crate::remote`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Variant threads block in the monitor pipeline directly.
    #[default]
    Sync,
    /// Per-port submission/completion rings, drained per [`Pollers`].
    AsyncRings {
        /// Ring capacity in descriptors (rounded up to a power of two):
        /// how far a variant thread may run ahead of the monitor.
        depth: usize,
        /// Who drains the submission rings: a blocking worker per port or
        /// a fixed polling pool.
        pollers: Pollers,
    },
    /// Leader/follower split over a framed replication channel.
    Remote {
        /// The byte channel the replication frames cross.
        channel: RemoteChannel,
    },
}

impl Transport {
    /// An [`AsyncRings`](Transport::AsyncRings) transport with the default
    /// ring depth and per-port gateway workers.
    pub fn async_default() -> Self {
        Transport::AsyncRings {
            depth: DEFAULT_RING_DEPTH,
            pollers: Pollers::PerPort,
        }
    }

    /// An [`AsyncRings`](Transport::AsyncRings) transport with the default
    /// ring depth drained by a fixed pool of `n` polling shards.
    pub fn async_pool(n: usize) -> Self {
        Transport::AsyncRings {
            depth: DEFAULT_RING_DEPTH,
            pollers: Pollers::Pool(n),
        }
    }

    /// A [`Remote`](Transport::Remote) transport over the in-process
    /// duplex loopback.
    pub fn remote_inproc() -> Self {
        Transport::Remote {
            channel: RemoteChannel::InProc,
        }
    }

    /// Whether this is the asynchronous ring transport.
    pub fn is_async(&self) -> bool {
        matches!(self, Transport::AsyncRings { .. })
    }

    /// Whether this is the distributed leader/follower transport.
    pub fn is_remote(&self) -> bool {
        matches!(self, Transport::Remote { .. })
    }

    /// The configured replication channel, if remote.
    pub fn remote_channel(&self) -> Option<RemoteChannel> {
        match self {
            Transport::Remote { channel } => Some(*channel),
            _ => None,
        }
    }

    /// The configured ring depth, if asynchronous.
    pub fn depth(&self) -> Option<usize> {
        match self {
            Transport::Sync | Transport::Remote { .. } => None,
            Transport::AsyncRings { depth, .. } => Some(*depth),
        }
    }

    /// The configured monitor-side drain shape, if asynchronous.
    pub fn pollers(&self) -> Option<Pollers> {
        match self {
            Transport::Sync | Transport::Remote { .. } => None,
            Transport::AsyncRings { pollers, .. } => Some(*pollers),
        }
    }

    /// Short name used in benchmark tables and reports.  Stable across
    /// poller shapes; use [`Transport::label`] to distinguish them.
    pub fn name(&self) -> &'static str {
        match self {
            Transport::Sync => "sync",
            Transport::AsyncRings { .. } => "async-rings",
            Transport::Remote { .. } => "remote",
        }
    }

    /// Cell label for benchmark tables: distinguishes the poller shape
    /// (`sync`, `async-rings` for per-port, `async-pool{n}`) and the
    /// remote channel (`remote-inproc`, `remote-unix`, `remote-tcp`).
    pub fn label(&self) -> String {
        match self {
            Transport::Sync => "sync".to_string(),
            Transport::AsyncRings {
                pollers: Pollers::PerPort,
                ..
            } => "async-rings".to_string(),
            Transport::AsyncRings {
                pollers: Pollers::Pool(n),
                ..
            } => format!("async-pool{n}"),
            Transport::AsyncRings {
                pollers: Pollers::Auto,
                ..
            } => "async-auto".to_string(),
            Transport::Remote { channel } => format!("remote-{}", channel.name()),
        }
    }
}

/// What the monitor does with the rest of the run when one variant
/// diverges.
///
/// * [`RecoveryPolicy::PoisonAll`] — the paper's detect-and-kill model and
///   the historical behaviour: the first divergence poisons the lockstep
///   table, every waiter is broadcast-woken with
///   [`SyscallResult::Poisoned`](crate::lockstep::SyscallResult) and the
///   whole run tears down.
/// * [`RecoveryPolicy::Quarantine`] — the dMVX recovery model: only the
///   *blamed* variant is dropped.  The lockstep table removes it from every
///   shard's expected-arrival set, in-flight waiters re-resolve against the
///   reduced quorum, and the surviving variants keep serving.  The victim
///   can later be restored from the last agreed snapshot and re-admitted
///   via [`Mvee::respawn_variant`](crate::mvee::Mvee::respawn_variant).
///   `min_quorum` is the floor: when quarantining one more variant would
///   leave fewer than `min_quorum` live variants, the monitor falls back to
///   poisoning the run (a 1-variant "MVEE" compares nothing, so the
///   default floor is 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// First divergence poisons the entire run (historical behaviour).
    #[default]
    PoisonAll,
    /// Drop only the blamed variant; survivors keep serving on a degraded
    /// quorum, down to `min_quorum` live variants.
    Quarantine {
        /// Minimum number of live variants to keep serving with; below
        /// this the monitor poisons the run instead of quarantining.
        min_quorum: usize,
    },
}

impl RecoveryPolicy {
    /// A [`RecoveryPolicy::Quarantine`] with the default quorum floor of
    /// two live variants (the smallest set that still compares anything).
    pub fn quarantine() -> Self {
        RecoveryPolicy::Quarantine { min_quorum: 2 }
    }

    /// Short name used in benchmark tables and reports.
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryPolicy::PoisonAll => "poison-all",
            RecoveryPolicy::Quarantine { .. } => "quarantine",
        }
    }
}

/// The shared MVEE tuning knobs: one struct, consumed by every front end.
///
/// `MveeBuilder`, `RunConfig` and `NginxServerConfig` all embed an
/// `MveeConfig` instead of re-declaring these fields.  The defaults
/// reproduce the behaviour of the unconfigured monitor: strict lockstep,
/// wall-of-clocks agent, [`DEFAULT_SHARDS`] shards, no comparison batching,
/// round-robin shard placement.
#[derive(Debug, Clone)]
pub struct MveeConfig {
    /// Which system calls are locksteped.
    pub policy: MonitoringPolicy,
    /// The synchronization agent to inject.
    pub agent: AgentKind,
    /// Agent sizing knobs (buffer capacity, clock count, ...).  The variant
    /// and thread counts are overridden by the front end at build time.
    pub agent_config: AgentConfig,
    /// Number of rendezvous/ordering/stat shards the monitor partitions its
    /// hot-path state into.  `1` reproduces the original global table.
    pub shards: usize,
    /// Comparison batch size: how many deferred comparisons a variant thread
    /// may accumulate per rendezvous flush.  `1` disables deferral and
    /// reproduces the per-call rendezvous exactly.
    pub batch: usize,
    /// How logical threads are bound to monitor shards (and cores).
    pub placement: Placement,
    /// How long a rendezvous or replication wait may take before the monitor
    /// declares divergence.
    pub lockstep_timeout: Duration,
    /// How variant threads hand calls to the monitor: blocking in the
    /// pipeline ([`Transport::Sync`], the default) or through per-port
    /// submission/completion rings ([`Transport::AsyncRings`]).
    pub transport: Transport,
    /// The divergence journal: off (default), record the run through a
    /// [`crate::journal::JournalRecorder`], or carry a decoded journal as
    /// the replay source (see [`crate::journal`]).
    pub journal: JournalMode,
    /// What happens to the run when a variant diverges: poison everything
    /// (default, the paper's model) or quarantine only the blamed variant
    /// and keep serving on a degraded quorum.
    pub recovery: RecoveryPolicy,
    /// Take a state snapshot of every live variant each `n` sync ops
    /// (`None` disables snapshotting).  The snapshot is captured at the
    /// transport-shared replication choke point, so sync ports, gateway
    /// workers, poller pools and the remote leader all snapshot at the
    /// same logical instants; see [`crate::snapshot`].
    pub snapshot_every: Option<u64>,
}

impl Default for MveeConfig {
    fn default() -> Self {
        MveeConfig {
            policy: MonitoringPolicy::StrictLockstep,
            agent: AgentKind::WallOfClocks,
            agent_config: AgentConfig::default(),
            shards: DEFAULT_SHARDS,
            batch: 1,
            placement: Placement::RoundRobin,
            lockstep_timeout: Duration::from_secs(5),
            transport: Transport::Sync,
            journal: JournalMode::Off,
            recovery: RecoveryPolicy::PoisonAll,
            snapshot_every: None,
        }
    }
}

impl MveeConfig {
    /// Sets the monitoring policy (builder style).
    pub fn with_policy(mut self, policy: MonitoringPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Selects the synchronization agent (builder style).
    pub fn with_agent(mut self, agent: AgentKind) -> Self {
        self.agent = agent;
        self
    }

    /// Overrides the agent sizing knobs (builder style).
    pub fn with_agent_config(mut self, agent_config: AgentConfig) -> Self {
        self.agent_config = agent_config;
        self
    }

    /// Sets how blocked agent threads wait (builder style): the adaptive
    /// spin → yield → park escalation (default) or the legacy
    /// [`WaitStrategy::SpinYield`] loop for ablation.  Shorthand for
    /// editing the embedded [`AgentConfig`].
    pub fn with_wait_strategy(mut self, wait: WaitStrategy) -> Self {
        self.agent_config = self.agent_config.with_wait_strategy(wait);
        self
    }

    /// Sets the monitor shard count (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "need at least one monitor shard");
        self.shards = shards;
        self
    }

    /// Sets the comparison batch size (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "need a comparison batch of at least one");
        self.batch = batch;
        self
    }

    /// Sets the shard/core placement policy (builder style).
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the rendezvous / replication timeout (builder style).
    pub fn with_lockstep_timeout(mut self, timeout: Duration) -> Self {
        self.lockstep_timeout = timeout;
        self
    }

    /// Sets the variant↔monitor transport (builder style).
    ///
    /// # Panics
    ///
    /// Panics on an [`Transport::AsyncRings`] depth of zero, or on an
    /// empty polling pool ([`Pollers::Pool(0)`](Pollers::Pool)) — a pool
    /// with no workers would never drain any ring.
    pub fn with_transport(mut self, transport: Transport) -> Self {
        if let Transport::AsyncRings { depth, pollers } = transport {
            assert!(depth > 0, "async ring depth must be at least one");
            if let Pollers::Pool(n) = pollers {
                assert!(
                    n > 0,
                    "a polling pool needs at least one worker (Pollers::Pool(0) \
                     would never drain any submission ring); use Pollers::PerPort, \
                     Pool(1+) or Auto"
                );
            }
        }
        self.transport = transport;
        self
    }

    /// Sets the divergence-journal mode (builder style): record the run
    /// through a [`crate::journal::JournalRecorder`] or carry a decoded
    /// journal for offline replay.
    pub fn with_journal(mut self, journal: JournalMode) -> Self {
        self.journal = journal;
        self
    }

    /// Sets the divergence recovery policy (builder style).
    ///
    /// # Panics
    ///
    /// Panics on a [`RecoveryPolicy::Quarantine`] quorum floor below one —
    /// a zero-variant quorum could quarantine the entire MVEE away.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        if let RecoveryPolicy::Quarantine { min_quorum } = recovery {
            assert!(
                min_quorum >= 1,
                "a quarantine quorum floor must keep at least one live variant"
            );
        }
        self.recovery = recovery;
        self
    }

    /// Sets the snapshot interval in sync ops (builder style); `None`
    /// disables snapshotting.
    ///
    /// # Panics
    ///
    /// Panics on `Some(0)` — a zero interval would snapshot on every call.
    pub fn with_snapshot_every(mut self, every: Option<u64>) -> Self {
        if let Some(n) = every {
            assert!(n > 0, "the snapshot interval must be at least one sync op");
        }
        self.snapshot_every = every;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_matches_the_historical_binding() {
        let p = Placement::RoundRobin;
        for thread in 0..64 {
            assert_eq!(p.shard_for(thread, 64, 8), thread % 8);
        }
        assert_eq!(p.core_for(3), None);
    }

    #[test]
    fn grouped_keeps_contiguous_threads_on_one_shard() {
        let p = Placement::Grouped;
        // 64 threads over 8 shards: blocks of 8.
        for thread in 0..64 {
            assert_eq!(p.shard_for(thread, 64, 8), thread / 8);
        }
        // Shard index stays in range even for ragged divisions.
        for thread in 0..64 {
            assert!(p.shard_for(thread, 64, 7) < 7);
        }
        assert_eq!(p.core_for(0), None);
    }

    #[test]
    fn grouped_scales_blocks_to_the_actual_thread_count() {
        let p = Placement::Grouped;
        // The 8-thread bench shape: with the block size scaled to the
        // actual thread count, the 8 threads spread over all 8 shards
        // instead of collapsing into shard 0 (the `max_threads`-scaled
        // degenerate case this pins down).
        let shards: Vec<usize> = (0..8).map(|t| p.shard_for(t, 8, 8)).collect();
        assert_eq!(shards, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        // 8 threads over 4 shards: contiguous pairs share a shard.
        let shards: Vec<usize> = (0..8).map(|t| p.shard_for(t, 8, 4)).collect();
        assert_eq!(shards, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        // 4 threads over 8 shards: every thread gets its own shard, all in
        // range.
        let shards: Vec<usize> = (0..4).map(|t| p.shard_for(t, 4, 8)).collect();
        assert_eq!(shards, vec![0, 2, 4, 6]);
    }

    #[test]
    fn pinned_binds_shards_through_the_core_map() {
        let p = Placement::pinned(vec![0, 0, 1, 1]);
        assert_eq!(p.core_for(0), Some(0));
        assert_eq!(p.core_for(2), Some(1));
        assert_eq!(p.core_for(4), Some(0), "map wraps around");
        // Threads sharing a core share a shard.
        assert_eq!(p.shard_for(0, 64, 8), p.shard_for(1, 64, 8));
        assert_eq!(p.shard_for(2, 64, 8), p.shard_for(3, 64, 8));
    }

    #[test]
    #[should_panic(expected = "core map")]
    fn empty_core_map_panics() {
        let _ = Placement::pinned(Vec::new());
    }

    #[test]
    fn placements_always_stay_in_shard_range() {
        for placement in [
            Placement::RoundRobin,
            Placement::Grouped,
            Placement::pinned(vec![5, 17, 2]),
        ] {
            for shards in 1..10 {
                for thread in 0..70 {
                    assert!(placement.shard_for(thread, 64, shards) < shards);
                }
            }
        }
    }

    #[test]
    fn default_config_matches_the_historical_defaults() {
        let c = MveeConfig::default();
        assert_eq!(c.policy, MonitoringPolicy::StrictLockstep);
        assert_eq!(c.agent, AgentKind::WallOfClocks);
        assert_eq!(c.shards, DEFAULT_SHARDS);
        assert_eq!(c.batch, 1);
        assert_eq!(c.placement, Placement::RoundRobin);
        assert_eq!(c.lockstep_timeout, Duration::from_secs(5));
    }

    #[test]
    fn config_builders_apply() {
        let c = MveeConfig::default()
            .with_policy(MonitoringPolicy::NoComparison)
            .with_agent(AgentKind::TotalOrder)
            .with_shards(3)
            .with_batch(16)
            .with_placement(Placement::Grouped)
            .with_wait_strategy(WaitStrategy::SpinYield)
            .with_lockstep_timeout(Duration::from_millis(250));
        assert_eq!(c.policy, MonitoringPolicy::NoComparison);
        assert_eq!(c.agent, AgentKind::TotalOrder);
        assert_eq!(c.shards, 3);
        assert_eq!(c.batch, 16);
        assert_eq!(c.placement, Placement::Grouped);
        assert_eq!(c.agent_config.wait, WaitStrategy::SpinYield);
        assert_eq!(c.lockstep_timeout, Duration::from_millis(250));
        // The default is the adaptive waiter.
        assert_eq!(
            MveeConfig::default().agent_config.wait,
            WaitStrategy::Adaptive
        );
    }

    #[test]
    fn transport_defaults_to_sync_and_reports_its_shape() {
        let c = MveeConfig::default();
        assert_eq!(c.transport, Transport::Sync);
        assert!(!c.transport.is_async());
        assert_eq!(c.transport.depth(), None);
        assert_eq!(c.transport.name(), "sync");

        let c = c.with_transport(Transport::async_default());
        assert!(c.transport.is_async());
        assert_eq!(c.transport.depth(), Some(DEFAULT_RING_DEPTH));
        assert_eq!(c.transport.pollers(), Some(Pollers::PerPort));
        assert_eq!(c.transport.name(), "async-rings");
        assert_eq!(c.transport.label(), "async-rings");
        assert_eq!(
            c.with_transport(Transport::AsyncRings {
                depth: 16,
                pollers: Pollers::PerPort,
            })
            .transport
            .depth(),
            Some(16)
        );
    }

    #[test]
    fn pool_transport_reports_its_shape() {
        let c = MveeConfig::default().with_transport(Transport::async_pool(2));
        assert_eq!(c.transport.pollers(), Some(Pollers::Pool(2)));
        // `name()` stays stable across poller shapes; `label()` tells
        // bench cells apart.
        assert_eq!(c.transport.name(), "async-rings");
        assert_eq!(c.transport.label(), "async-pool2");
        assert_eq!(Pollers::PerPort.label(), "per-port");
        assert_eq!(Pollers::Pool(4).label(), "pool4");
        assert_eq!(Transport::Sync.pollers(), None);
    }

    #[test]
    fn remote_transport_reports_its_shape() {
        let c = MveeConfig::default().with_transport(Transport::remote_inproc());
        assert!(c.transport.is_remote());
        assert!(!c.transport.is_async());
        assert_eq!(c.transport.remote_channel(), Some(RemoteChannel::InProc));
        assert_eq!(c.transport.depth(), None);
        assert_eq!(c.transport.pollers(), None);
        assert_eq!(c.transport.name(), "remote");
        assert_eq!(c.transport.label(), "remote-inproc");
        let unix = Transport::Remote {
            channel: RemoteChannel::Unix,
        };
        assert_eq!(unix.label(), "remote-unix");
        let tcp = Transport::Remote {
            channel: RemoteChannel::Tcp,
        };
        assert_eq!(tcp.label(), "remote-tcp");
        assert_eq!(Transport::Sync.remote_channel(), None);
    }

    #[test]
    fn auto_pool_sizing_rule_is_pinned() {
        // Half the available parallelism, floored at 1, capped at 8.
        assert_eq!(Pollers::auto_pool_size(1), 1);
        assert_eq!(Pollers::auto_pool_size(2), 1);
        assert_eq!(Pollers::auto_pool_size(4), 2);
        assert_eq!(Pollers::auto_pool_size(8), 4);
        assert_eq!(Pollers::auto_pool_size(16), 8);
        assert_eq!(Pollers::auto_pool_size(32), 8);
        assert_eq!(Pollers::auto_pool_size(0), 1, "degenerate probe floors");
    }

    #[test]
    fn auto_pollers_are_accepted_and_labelled() {
        let c = MveeConfig::default().with_transport(Transport::AsyncRings {
            depth: DEFAULT_RING_DEPTH,
            pollers: Pollers::Auto,
        });
        assert_eq!(c.transport.pollers(), Some(Pollers::Auto));
        assert_eq!(c.transport.name(), "async-rings");
        assert_eq!(c.transport.label(), "async-auto");
        assert_eq!(Pollers::Auto.label(), "auto");
    }

    #[test]
    fn journal_defaults_off_and_threads_through_the_builder() {
        use crate::journal::JournalRecorder;

        let c = MveeConfig::default();
        assert!(matches!(c.journal, JournalMode::Off));
        assert!(c.journal.recorder().is_none());
        assert!(c.journal.replay_source().is_none());

        let rec = std::sync::Arc::new(JournalRecorder::new());
        let c = c.with_journal(JournalMode::Record(std::sync::Arc::clone(&rec)));
        assert!(c.journal.recorder().is_some());
    }

    #[test]
    fn recovery_defaults_to_poison_all_and_threads_through_the_builder() {
        let c = MveeConfig::default();
        assert_eq!(c.recovery, RecoveryPolicy::PoisonAll);
        assert_eq!(c.snapshot_every, None);
        assert_eq!(RecoveryPolicy::PoisonAll.name(), "poison-all");

        let c = c
            .with_recovery(RecoveryPolicy::quarantine())
            .with_snapshot_every(Some(256));
        assert_eq!(c.recovery, RecoveryPolicy::Quarantine { min_quorum: 2 });
        assert_eq!(c.recovery.name(), "quarantine");
        assert_eq!(c.snapshot_every, Some(256));
        assert_eq!(c.with_snapshot_every(None).snapshot_every, None);
    }

    #[test]
    #[should_panic(expected = "quorum floor")]
    fn zero_quarantine_quorum_panics() {
        let _ = MveeConfig::default().with_recovery(RecoveryPolicy::Quarantine { min_quorum: 0 });
    }

    #[test]
    #[should_panic(expected = "snapshot interval")]
    fn zero_snapshot_interval_panics() {
        let _ = MveeConfig::default().with_snapshot_every(Some(0));
    }

    #[test]
    #[should_panic(expected = "ring depth")]
    fn zero_ring_depth_panics() {
        let _ = MveeConfig::default().with_transport(Transport::AsyncRings {
            depth: 0,
            pollers: Pollers::PerPort,
        });
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_poller_pool_panics() {
        let _ = MveeConfig::default().with_transport(Transport::async_pool(0));
    }

    #[test]
    #[should_panic(expected = "at least one monitor shard")]
    fn zero_shards_panics() {
        let _ = MveeConfig::default().with_shards(0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_batch_panics() {
        let _ = MveeConfig::default().with_batch(0);
    }
}
