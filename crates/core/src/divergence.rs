//! Divergence detection: comparing equivalent system calls across variants.
//!
//! The monitor's security argument rests on one comparison: when the
//! equivalent threads of all variants arrive at their n-th monitored system
//! call, the calls must be *equivalent* — same call number, same compared
//! arguments, same outgoing data.  Pointer-valued arguments are exempt
//! because diversified variants legitimately pass different addresses.
//!
//! A mismatch, or a variant that fails to arrive at the rendezvous at all
//! within the timeout, produces a [`DivergenceReport`] and the MVEE shuts all
//! variants down (§1: "MVEEs terminate execution upon detection of
//! divergence").

use serde::{Deserialize, Serialize};

use mvee_kernel::syscall::{ComparisonKey, Sysno};

/// Why the monitor declared divergence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DivergenceKind {
    /// Two variants issued different system calls (or the same call with
    /// different compared arguments) at the same rendezvous point.
    SyscallMismatch {
        /// The call the agreeing plurality issued (the reference — the
        /// master's call whenever the master agrees with the plurality).
        master: Sysno,
        /// The call issued by the diverging variant.
        variant: Sysno,
    },
    /// A variant failed to reach the rendezvous before the timeout expired.
    RendezvousTimeout {
        /// The variant(s) that did arrive in time.
        arrived: Vec<usize>,
    },
    /// A variant timed out waiting for another variant (the publisher —
    /// in practice always the master) to publish a replicated outcome or
    /// an ordering timestamp.  The report's `variant` field names the
    /// *waiting* variant — the one whose call stream reached a point the
    /// publisher's never did — and `publisher` names the variant whose
    /// publication never came.
    ReplicationTimeout {
        /// The variant that never published the awaited outcome.
        publisher: usize,
        /// The variants that actually arrived at the slot, as recorded in
        /// the lockstep table (empty when the call carries no rendezvous).
        arrived: Vec<usize>,
    },
    /// A variant issued a call that the policy forbids outright
    /// (used by tests to model policies with deny-lists).
    PolicyViolation {
        /// The offending call.
        call: Sysno,
    },
}

/// A divergence event: the MVEE's detection result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DivergenceReport {
    /// The kind of divergence.
    pub kind: DivergenceKind,
    /// Logical thread on which the divergence was observed.
    pub thread: usize,
    /// Per-thread sequence number of the monitored call.
    pub sequence: u64,
    /// Index of the variant the monitor blames (the first variant whose key
    /// differed from the plurality's, or the first missing variant).
    pub variant: usize,
}

impl DivergenceReport {
    /// A short human-readable summary.
    pub fn summary(&self) -> String {
        match &self.kind {
            DivergenceKind::SyscallMismatch { master, variant } => format!(
                "divergence on thread {} call #{}: master issued {} but variant {} issued {}",
                self.thread,
                self.sequence,
                master.name(),
                self.variant,
                variant.name()
            ),
            DivergenceKind::RendezvousTimeout { arrived } => format!(
                "divergence on thread {} call #{}: variant {} did not reach the rendezvous (arrived: {:?})",
                self.thread, self.sequence, self.variant, arrived
            ),
            DivergenceKind::ReplicationTimeout { publisher, arrived } => format!(
                "divergence on thread {} call #{}: variant {} timed out waiting for variant {} to publish its outcome (arrived: {:?})",
                self.thread, self.sequence, self.variant, publisher, arrived
            ),
            DivergenceKind::PolicyViolation { call } => format!(
                "policy violation on thread {} call #{}: variant {} issued forbidden call {}",
                self.thread,
                self.sequence,
                self.variant,
                call.name()
            ),
        }
    }
}

/// Compares the arrived keys and names the variant that diverged.
///
/// The reference key is decided by plurality vote over the arrived keys:
/// the key shared by the largest agreement group wins, with ties going to
/// the group containing the lowest-indexed arrival (which preserves the
/// historical "variant 0 is the master" attribution for two-variant
/// tables).  The blamed variant is the first arrival outside that group —
/// crucially, when the diverging variant *is* variant 0, comparing
/// everyone against the master would blame an innocent survivor, and
/// under [`RecoveryPolicy::Quarantine`](crate::config::RecoveryPolicy)
/// that mis-attribution would drop healthy variants until the quorum
/// collapsed.
///
/// Returns the blamed index, the reference key, and the blamed key.
/// `keys[i]` is `None` when variant `i` has not arrived; absent variants
/// are not treated as divergent here (the rendezvous timeout handles
/// them).
pub fn first_mismatch(
    keys: &[Option<ComparisonKey>],
) -> Option<(usize, ComparisonKey, ComparisonKey)> {
    let arrived: Vec<(usize, &ComparisonKey)> = keys
        .iter()
        .enumerate()
        .filter_map(|(i, k)| k.as_ref().map(|k| (i, k)))
        .collect();
    let mut reference: Option<&ComparisonKey> = None;
    let mut best = 0usize;
    for (_, key) in &arrived {
        let count = arrived.iter().filter(|(_, other)| other == key).count();
        // Strict `>` with an index-ordered scan: on a tie the group seen
        // first — the one with the lowest-indexed member — keeps the win.
        if count > best {
            best = count;
            reference = Some(key);
        }
    }
    let reference = reference?;
    for (i, key) in &arrived {
        if key != &reference {
            return Some((*i, reference.clone(), (*key).clone()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvee_kernel::syscall::SyscallRequest;

    fn key(no: Sysno, payload: &[u8]) -> ComparisonKey {
        SyscallRequest::new(no)
            .with_payload(payload)
            .comparison_key()
    }

    #[test]
    fn identical_keys_produce_no_mismatch() {
        let keys = vec![
            Some(key(Sysno::Write, b"hello")),
            Some(key(Sysno::Write, b"hello")),
            Some(key(Sysno::Write, b"hello")),
        ];
        assert!(first_mismatch(&keys).is_none());
    }

    #[test]
    fn differing_call_number_is_a_mismatch() {
        let keys = vec![
            Some(key(Sysno::Write, b"x")),
            Some(key(Sysno::Mprotect, b"x")),
        ];
        let (variant, master, diverged) = first_mismatch(&keys).unwrap();
        assert_eq!(variant, 1);
        assert_eq!(master.no, Sysno::Write);
        assert_eq!(diverged.no, Sysno::Mprotect);
    }

    #[test]
    fn differing_payload_is_a_mismatch() {
        let keys = vec![
            Some(key(Sysno::Write, b"normal response")),
            Some(key(Sysno::Write, b"leaked secrets!")),
        ];
        assert!(first_mismatch(&keys).is_some());
    }

    #[test]
    fn diverging_master_is_blamed_by_the_plurality() {
        // Variant 0 is the outlier: the agreement group {1, 2} outvotes
        // it, so blame lands on the master itself — not on the first
        // survivor that happens to disagree with it.
        let keys = vec![
            Some(key(Sysno::Mprotect, b"x")),
            Some(key(Sysno::Write, b"x")),
            Some(key(Sysno::Write, b"x")),
        ];
        let (variant, master, diverged) = first_mismatch(&keys).unwrap();
        assert_eq!(variant, 0);
        assert_eq!(master.no, Sysno::Write);
        assert_eq!(diverged.no, Sysno::Mprotect);
    }

    #[test]
    fn survivors_are_compared_even_without_the_master() {
        // Variant 0 quarantined (absent): the remaining pair still gets a
        // verdict, with the tie going to the lowest-indexed arrival.
        let keys = vec![
            None,
            Some(key(Sysno::Write, b"x")),
            Some(key(Sysno::Mprotect, b"x")),
        ];
        let (variant, master, diverged) = first_mismatch(&keys).unwrap();
        assert_eq!(variant, 2);
        assert_eq!(master.no, Sysno::Write);
        assert_eq!(diverged.no, Sysno::Mprotect);
    }

    #[test]
    fn missing_variants_are_not_mismatches() {
        let keys = vec![
            Some(key(Sysno::Write, b"x")),
            None,
            Some(key(Sysno::Write, b"x")),
        ];
        assert!(first_mismatch(&keys).is_none());
    }

    #[test]
    fn missing_master_is_not_a_mismatch_yet() {
        let keys = vec![None, Some(key(Sysno::Write, b"x"))];
        assert!(first_mismatch(&keys).is_none());
    }

    #[test]
    fn report_summaries_mention_the_blamed_variant() {
        let report = DivergenceReport {
            kind: DivergenceKind::SyscallMismatch {
                master: Sysno::Write,
                variant: Sysno::Mprotect,
            },
            thread: 2,
            sequence: 17,
            variant: 1,
        };
        let s = report.summary();
        assert!(s.contains("write"));
        assert!(s.contains("mprotect"));
        assert!(s.contains("variant 1"));

        let timeout = DivergenceReport {
            kind: DivergenceKind::RendezvousTimeout { arrived: vec![0] },
            thread: 0,
            sequence: 3,
            variant: 1,
        };
        assert!(timeout.summary().contains("did not reach"));
    }

    #[test]
    fn replication_timeout_summary_names_waiter_and_publisher() {
        let report = DivergenceReport {
            kind: DivergenceKind::ReplicationTimeout {
                publisher: 0,
                arrived: vec![1],
            },
            thread: 3,
            sequence: 9,
            variant: 1,
        };
        let s = report.summary();
        assert!(s.contains("variant 1 timed out"));
        assert!(s.contains("variant 0 to publish"));
        assert!(s.contains("[1]"));
    }
}
