//! CRC-protected length-prefixed framing, shared by the divergence journal
//! and the remote replication wire protocol.
//!
//! Both consumers speak the same frame layout, all little-endian:
//!
//! ```text
//! frame : body_len u32 | crc32(body) u32 | body
//! ```
//!
//! The CRC is the standard reflected CRC-32 (polynomial `0xEDB88320`), so a
//! torn write, a flipped bit or a truncated stream surfaces as a typed
//! error instead of silently wrong bytes.  The journal walks frames over an
//! in-memory slice ([`next_frame`]); the wire protocol pulls them off a
//! blocking byte stream ([`FrameReader`]).  Extracting the codec here keeps
//! the two from drifting: one encoder ([`push_frame`]), one CRC, one framing
//! discipline.

use std::fmt;
use std::io::{self, Read};

/// Bytes of frame overhead preceding every body (`body_len` + CRC).
pub const FRAME_OVERHEAD: usize = 8;

/// Upper bound a stream reader accepts for one frame body.  A corrupt or
/// adversarial length prefix otherwise turns into an unbounded allocation;
/// no legitimate journal or wire record comes anywhere near this.
pub const MAX_FRAME_BODY: usize = 1 << 20;

/// Reflected CRC-32 (polynomial `0xEDB88320`), computed bitwise — framing
/// is not a hot path, and a table would be 1 KiB of baked-in state for no
/// observable gain at journal/wire record sizes.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Appends one `body_len | crc | body` frame to `buf`.
pub fn push_frame(buf: &mut Vec<u8>, body: &[u8]) {
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(body).to_le_bytes());
    buf.extend_from_slice(body);
}

/// Why a frame could not be split off a byte slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The slice ends mid-frame (inside the 8-byte prefix or the body).
    Truncated {
        /// Byte offset of the frame whose bytes ran out.
        offset: usize,
    },
    /// The frame's CRC does not match its body.
    Corrupt {
        /// Byte offset of the bad frame.
        offset: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { offset } => {
                write!(f, "frame truncated at byte {offset}")
            }
            FrameError::Corrupt { offset } => {
                write!(f, "frame at byte {offset} fails its CRC")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Splits one frame off `bytes` at `offset`.
///
/// Returns the CRC-verified body and the offset of the next frame, or
/// `Ok(None)` when `offset` sits exactly at the end of the slice (a clean
/// end of stream).  Anything else — a partial prefix, a partial body, a CRC
/// mismatch — is a typed [`FrameError`].
pub fn next_frame(bytes: &[u8], offset: usize) -> Result<Option<(&[u8], usize)>, FrameError> {
    if offset == bytes.len() {
        return Ok(None);
    }
    if bytes.len() - offset < FRAME_OVERHEAD {
        return Err(FrameError::Truncated { offset });
    }
    let body_len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
    if bytes.len() - offset - FRAME_OVERHEAD < body_len {
        return Err(FrameError::Truncated { offset });
    }
    let body = &bytes[offset + FRAME_OVERHEAD..offset + FRAME_OVERHEAD + body_len];
    if crc32(body) != crc {
        return Err(FrameError::Corrupt { offset });
    }
    Ok(Some((body, offset + FRAME_OVERHEAD + body_len)))
}

/// Why a [`FrameReader`] could not produce the next frame.
#[derive(Debug)]
pub enum ReadFrameError {
    /// The stream ended mid-frame (a torn connection or truncated write).
    Truncated,
    /// The frame's CRC does not match its body.
    Corrupt,
    /// The length prefix exceeds [`MAX_FRAME_BODY`] — treated as stream
    /// corruption rather than an allocation request.
    Oversized {
        /// The claimed body length.
        len: usize,
    },
    /// The underlying transport failed.
    Io(io::Error),
}

impl fmt::Display for ReadFrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadFrameError::Truncated => write!(f, "stream ended mid-frame"),
            ReadFrameError::Corrupt => write!(f, "frame fails its CRC"),
            ReadFrameError::Oversized { len } => {
                write!(f, "frame claims {len} body bytes (max {MAX_FRAME_BODY})")
            }
            ReadFrameError::Io(err) => write!(f, "transport error: {err}"),
        }
    }
}

impl std::error::Error for ReadFrameError {}

/// Pulls CRC-verified frames off a blocking byte stream.
///
/// `read_frame` returns `Ok(None)` on a clean end of stream (EOF exactly at
/// a frame boundary); EOF anywhere inside a frame is
/// [`ReadFrameError::Truncated`].
pub struct FrameReader<R> {
    inner: R,
    body: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        FrameReader {
            inner,
            body: Vec::new(),
        }
    }

    /// Reads the next frame, blocking until it is complete.
    ///
    /// The returned slice borrows the reader's internal buffer and is valid
    /// until the next call.
    pub fn read_frame(&mut self) -> Result<Option<&[u8]>, ReadFrameError> {
        let mut prefix = [0u8; FRAME_OVERHEAD];
        let mut got = 0;
        while got < prefix.len() {
            match self.inner.read(&mut prefix[got..]) {
                Ok(0) if got == 0 => return Ok(None),
                Ok(0) => return Err(ReadFrameError::Truncated),
                Ok(n) => got += n,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(err) => return Err(ReadFrameError::Io(err)),
            }
        }
        let body_len = u32::from_le_bytes(prefix[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(prefix[4..].try_into().unwrap());
        if body_len > MAX_FRAME_BODY {
            return Err(ReadFrameError::Oversized { len: body_len });
        }
        self.body.resize(body_len, 0);
        let mut filled = 0;
        while filled < body_len {
            match self.inner.read(&mut self.body[filled..]) {
                Ok(0) => return Err(ReadFrameError::Truncated),
                Ok(n) => filled += n,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(err) => return Err(ReadFrameError::Io(err)),
            }
        }
        if crc32(&self.body) != crc {
            return Err(ReadFrameError::Corrupt);
        }
        Ok(Some(&self.body))
    }

    /// Consumes the reader, returning the underlying stream.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

/// Little-endian byte reader over a frame body.  The error is a
/// human-readable reason; the journal wraps it into
/// [`JournalError::Malformed`](crate::journal::JournalError::Malformed),
/// the wire protocol into its own corrupt-record error.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the front of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| format!("body truncated at byte {}", self.pos))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32, String> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Asserts the body was consumed exactly.
    pub fn finish(&self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after record body",
                self.bytes.len() - self.pos
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn next_frame_walks_a_multi_frame_slice() {
        let mut buf = Vec::new();
        push_frame(&mut buf, b"alpha");
        push_frame(&mut buf, b"");
        push_frame(&mut buf, b"omega");
        let (body, next) = next_frame(&buf, 0).unwrap().unwrap();
        assert_eq!(body, b"alpha");
        let (body, next) = next_frame(&buf, next).unwrap().unwrap();
        assert_eq!(body, b"");
        let (body, next) = next_frame(&buf, next).unwrap().unwrap();
        assert_eq!(body, b"omega");
        assert_eq!(next_frame(&buf, next).unwrap(), None);
    }

    #[test]
    fn every_truncation_point_is_typed() {
        let mut buf = Vec::new();
        push_frame(&mut buf, b"payload");
        for cut in 1..buf.len() {
            assert_eq!(
                next_frame(&buf[..cut], 0),
                Err(FrameError::Truncated { offset: 0 }),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn corruption_is_typed_with_its_offset() {
        let mut buf = Vec::new();
        push_frame(&mut buf, b"x");
        push_frame(&mut buf, b"payload");
        let second = FRAME_OVERHEAD + 1;
        buf[second + FRAME_OVERHEAD] ^= 0x20;
        let (_, next) = next_frame(&buf, 0).unwrap().unwrap();
        assert_eq!(
            next_frame(&buf, next),
            Err(FrameError::Corrupt { offset: second })
        );
    }

    #[test]
    fn frame_reader_round_trips_and_ends_cleanly() {
        let mut buf = Vec::new();
        push_frame(&mut buf, b"one");
        push_frame(&mut buf, b"two");
        let mut reader = FrameReader::new(&buf[..]);
        assert_eq!(reader.read_frame().unwrap(), Some(&b"one"[..]));
        assert_eq!(reader.read_frame().unwrap(), Some(&b"two"[..]));
        assert_eq!(reader.read_frame().unwrap(), None);
    }

    #[test]
    fn frame_reader_reports_torn_streams() {
        let mut buf = Vec::new();
        push_frame(&mut buf, b"payload");
        let mut reader = FrameReader::new(&buf[..buf.len() - 2]);
        assert!(matches!(
            reader.read_frame(),
            Err(ReadFrameError::Truncated)
        ));
    }

    #[test]
    fn frame_reader_rejects_oversized_length_prefixes() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut reader = FrameReader::new(&buf[..]);
        assert!(matches!(
            reader.read_frame(),
            Err(ReadFrameError::Oversized { .. })
        ));
    }

    #[test]
    fn frame_reader_rejects_bit_rot() {
        let mut buf = Vec::new();
        push_frame(&mut buf, b"payload");
        buf[FRAME_OVERHEAD + 2] ^= 0x01;
        let mut reader = FrameReader::new(&buf[..]);
        assert!(matches!(reader.read_frame(), Err(ReadFrameError::Corrupt)));
    }

    #[test]
    fn reader_reads_little_endian_fields() {
        let mut body = Vec::new();
        body.push(7u8);
        body.extend_from_slice(&0xBEEFu16.to_le_bytes());
        body.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        body.extend_from_slice(&(-9i64).to_le_bytes());
        let mut r = Reader::new(&body);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.i64().unwrap(), -9);
        r.finish().unwrap();
        assert!(Reader::new(&body).u64().is_err() || body.len() >= 8);
    }

    #[test]
    fn reader_finish_rejects_trailing_bytes() {
        let mut r = Reader::new(&[1, 2, 3]);
        r.u8().unwrap();
        assert!(r.finish().is_err());
        assert!(r.take(5).is_err());
    }
}
