//! Divergence journal: record a run's rendezvous schedule and replicated
//! outcomes, replay it offline.
//!
//! A journal is the evidence a divergence would otherwise take with it when
//! the run is poisoned and torn down: which call entered the gateway on
//! which thread, in what order the variants' comparison keys arrived at the
//! rendezvous table, what the master published for replicated/ordered
//! calls, and — when the monitor declared divergence — the exact report.
//! RecPlay (the model behind [`crate::baselines` → `rr`]'s namesake in
//! `mvee-baselines`) records a timestamp per sync op and replays by
//! ordering; this journal records the monitor-side equivalent, the global
//! arrival order of every rendezvous deposit, plus the agent-side sync-op
//! stream.
//!
//! ## Format (version 1)
//!
//! The byte stream is a fixed header followed by length-prefixed,
//! CRC-protected records, all little-endian:
//!
//! ```text
//! header : magic "MVJL" | version u16 | variants u16 | threads u16
//!        | shards u16 | batch u16                           (14 bytes)
//! record : body_len u32 | crc32(body) u32 | body
//! body   : tag u8 | fields...
//! ```
//!
//! The CRC is the standard reflected CRC-32 (polynomial `0xEDB88320`), so a
//! torn write, a flipped bit or a truncated file surfaces as a typed
//! [`JournalError`] instead of a silently wrong replay.  The stream ends
//! with an `End` record carrying the record count; its absence
//! ([`JournalError::MissingEnd`]) marks a journal whose recording run died
//! mid-write.  The vendored `serde` facade is a no-op stub, so the codec
//! here is purpose-built and hand-written — that is what pins the format.
//!
//! ## Record vs replay
//!
//! [`JournalRecorder`] is the sink the monitor writes through (installed
//! via `MveeConfig::journal`); it is transport-agnostic — the synchronous
//! ports, the per-port gateway workers and the polling pools all funnel
//! through the same [`crate::monitor::Monitor`]/[`crate::lockstep`] choke
//! points, so every transport emits an identical stream for the same
//! schedule.  [`replay`] consumes the bytes, re-derives the monitor
//! statistics and — for a divergent run — re-runs the verdict over the
//! recorded arrival keys via [`first_mismatch`], checking the re-derived
//! first-mismatch slot and variant against the recorded report field by
//! field.  No live variants are involved.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use mvee_kernel::error::Errno;
use mvee_kernel::syscall::{ComparisonKey, SyscallArg, SyscallOutcome, Sysno};

use crate::divergence::{first_mismatch, DivergenceKind, DivergenceReport};
use crate::frame::{next_frame, push_frame, FrameError, Reader};
use crate::monitor::{MonitorStats, DEFERRED_SEQ_BIT};

pub use crate::frame::crc32;

/// The four magic bytes opening every journal.
pub const JOURNAL_MAGIC: [u8; 4] = *b"MVJL";

/// The format version this build writes and replays.
pub const JOURNAL_VERSION: u16 = 1;

/// Byte length of the fixed journal header.
pub const JOURNAL_HEADER_LEN: usize = 14;

/// The run parameters a journal was recorded under.  Replay needs
/// `variants` to size arrival slots; the rest pins the configuration for
/// offline inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    /// Format version (see [`JOURNAL_VERSION`]).
    pub version: u16,
    /// Number of variants in the recorded run.
    pub variants: u16,
    /// Logical threads per variant.
    pub threads: u16,
    /// Rendezvous shards.
    pub shards: u16,
    /// Comparison batch size.
    pub batch: u16,
}

impl JournalHeader {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&JOURNAL_MAGIC);
        buf.extend_from_slice(&self.version.to_le_bytes());
        buf.extend_from_slice(&self.variants.to_le_bytes());
        buf.extend_from_slice(&self.threads.to_le_bytes());
        buf.extend_from_slice(&self.shards.to_le_bytes());
        buf.extend_from_slice(&self.batch.to_le_bytes());
    }
}

/// How the gateway classified a call — the journal-side mirror of the
/// monitor's per-class counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassKind {
    /// Immediate cross-variant comparison.
    Lockstep,
    /// Comparison deferred into the caller's batch.
    Batched,
    /// Master executes, slaves receive the replicated outcome.
    Replicated,
    /// Executed under the cross-variant ordering clock.
    Ordered,
    /// A batch of deferred comparisons was flushed to the table.
    BatchFlush,
}

impl ClassKind {
    pub(crate) fn to_wire(self) -> u8 {
        match self {
            ClassKind::Lockstep => 0,
            ClassKind::Batched => 1,
            ClassKind::Replicated => 2,
            ClassKind::Ordered => 3,
            ClassKind::BatchFlush => 4,
        }
    }

    pub(crate) fn from_wire(tag: u8) -> Option<ClassKind> {
        Some(match tag {
            0 => ClassKind::Lockstep,
            1 => ClassKind::Batched,
            2 => ClassKind::Replicated,
            3 => ClassKind::Ordered,
            4 => ClassKind::BatchFlush,
            _ => return None,
        })
    }
}

/// One journal record.  See the module docs for the stream layout.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A call entered the gateway (`gate_and_count`): one per monitored
    /// call, so the count of these reproduces `total_syscalls`.
    Enter {
        /// Issuing variant.
        variant: u16,
        /// Logical thread of the call.
        thread: u32,
        /// Stat lane the call was counted in.
        lane: u16,
        /// Whether this was the self-awareness pseudo call (answered at the
        /// gate, never reaching the rendezvous table).
        self_aware: bool,
    },
    /// The gateway classified a call (or flushed a batch).
    Class {
        /// The classification.
        kind: ClassKind,
        /// Stat lane it was counted in.
        lane: u16,
    },
    /// A comparison key was deposited into a rendezvous slot.  `order` is a
    /// global arrival counter — the journal's RecPlay timestamp.
    Arrival {
        /// Depositing variant.
        variant: u16,
        /// Slot thread (the key's first component).
        thread: u32,
        /// Slot sequence, raw: deferred comparisons carry
        /// [`DEFERRED_SEQ_BIT`] exactly as the live table keys them.
        seq: u64,
        /// Shard the slot lives in.
        shard: u16,
        /// Global arrival order of this deposit (strictly increasing).
        order: u64,
        /// The deposited comparison key.
        cmp: ComparisonKey,
    },
    /// The master published a replicated outcome (and, for ordered calls,
    /// an ordering timestamp) into a slot.
    Publish {
        /// Slot thread.
        thread: u32,
        /// Slot sequence.
        seq: u64,
        /// Ordering timestamp, when the call ran under the ordering clock.
        timestamp: Option<u64>,
        /// The published outcome.
        outcome: SyscallOutcome,
    },
    /// The monitor declared divergence; one record per `record_divergence`
    /// call, so the count reproduces the `divergences` counter and the
    /// first record is the run's surviving report.
    Diverge {
        /// The report, exactly as the live monitor stored it.
        report: DivergenceReport,
    },
    /// An agent replication point fired (`before_sync_op`).
    SyncOp {
        /// Variant whose thread hit the sync op.
        variant: u16,
        /// Logical thread.
        thread: u32,
    },
    /// Stream trailer: number of records preceding it.  A journal without
    /// one was torn mid-recording.
    End {
        /// Count of records before this trailer.
        records: u64,
    },
}

const TAG_ENTER: u8 = 1;
const TAG_CLASS: u8 = 2;
const TAG_ARRIVAL: u8 = 3;
const TAG_PUBLISH: u8 = 4;
const TAG_DIVERGE: u8 = 5;
const TAG_SYNC_OP: u8 = 6;
const TAG_END: u8 = 7;

/// Known [`Sysno`] variants in wire order; `Unknown` is encoded out of band
/// (wire tag 1 + raw number).  Appending here is a compatible change;
/// reordering is not — the golden-format tests pin the order.
const SYSNO_TABLE: [Sysno; 47] = [
    Sysno::Read,
    Sysno::Write,
    Sysno::Open,
    Sysno::Close,
    Sysno::Stat,
    Sysno::Fstat,
    Sysno::Lseek,
    Sysno::Mmap,
    Sysno::Mprotect,
    Sysno::Munmap,
    Sysno::Brk,
    Sysno::Pipe,
    Sysno::Dup,
    Sysno::Socket,
    Sysno::Bind,
    Sysno::Listen,
    Sysno::Accept,
    Sysno::Connect,
    Sysno::Send,
    Sysno::Recv,
    Sysno::Shutdown,
    Sysno::FutexWait,
    Sysno::FutexWake,
    Sysno::Clone,
    Sysno::Exit,
    Sysno::ExitGroup,
    Sysno::Gettimeofday,
    Sysno::ClockGettime,
    Sysno::Getpid,
    Sysno::Gettid,
    Sysno::SchedYield,
    Sysno::Nanosleep,
    Sysno::SchedSetaffinity,
    Sysno::Getrandom,
    Sysno::Madvise,
    Sysno::Fcntl,
    Sysno::Ioctl,
    Sysno::Readlink,
    Sysno::Access,
    Sysno::Unlink,
    Sysno::Rename,
    Sysno::Mkdir,
    Sysno::Epoll,
    Sysno::Poll,
    Sysno::Sendfile,
    Sysno::Writev,
    Sysno::MveeSelfAware,
];

fn encode_sysno(buf: &mut Vec<u8>, no: Sysno) {
    if let Sysno::Unknown(raw) = no {
        buf.push(1);
        buf.extend_from_slice(&raw.to_le_bytes());
        return;
    }
    // The exhaustive position lookup keeps encode/decode symmetric by
    // construction; a Sysno variant missing from the table is a bug the
    // round-trip tests catch immediately.
    let idx = SYSNO_TABLE
        .iter()
        .position(|&s| s == no)
        .expect("known Sysno missing from SYSNO_TABLE");
    buf.push(0);
    buf.extend_from_slice(&(idx as u32).to_le_bytes());
}

fn decode_sysno(r: &mut Reader<'_>) -> Result<Sysno, String> {
    let tag = r.u8()?;
    let raw = r.u32()?;
    match tag {
        0 => SYSNO_TABLE
            .get(raw as usize)
            .copied()
            .ok_or_else(|| format!("sysno index {raw} out of range")),
        1 => Ok(Sysno::Unknown(raw)),
        t => Err(format!("bad sysno tag {t}")),
    }
}

const ARG_INT: u8 = 0;
const ARG_FD: u8 = 1;
const ARG_FLAGS: u8 = 2;
const ARG_POINTER: u8 = 3;
const ARG_PATH: u8 = 4;
const ARG_BUF_LEN: u8 = 5;

fn encode_arg(buf: &mut Vec<u8>, arg: &SyscallArg) {
    match arg {
        SyscallArg::Int(v) => {
            buf.push(ARG_INT);
            buf.extend_from_slice(&v.to_le_bytes());
        }
        SyscallArg::Fd(v) => {
            buf.push(ARG_FD);
            buf.extend_from_slice(&v.to_le_bytes());
        }
        SyscallArg::Flags(v) => {
            buf.push(ARG_FLAGS);
            buf.extend_from_slice(&v.to_le_bytes());
        }
        SyscallArg::Pointer(v) => {
            buf.push(ARG_POINTER);
            buf.extend_from_slice(&v.to_le_bytes());
        }
        SyscallArg::Path(p) => {
            buf.push(ARG_PATH);
            buf.extend_from_slice(&(p.len() as u32).to_le_bytes());
            buf.extend_from_slice(p.as_bytes());
        }
        SyscallArg::BufLen(v) => {
            buf.push(ARG_BUF_LEN);
            buf.extend_from_slice(&(*v as u64).to_le_bytes());
        }
    }
}

fn decode_arg(r: &mut Reader<'_>) -> Result<SyscallArg, String> {
    Ok(match r.u8()? {
        ARG_INT => SyscallArg::Int(r.i64()?),
        ARG_FD => SyscallArg::Fd(r.i32()?),
        ARG_FLAGS => SyscallArg::Flags(r.u64()?),
        ARG_POINTER => SyscallArg::Pointer(r.u64()?),
        ARG_PATH => {
            let len = r.u32()? as usize;
            let bytes = r.take(len)?;
            SyscallArg::Path(
                String::from_utf8(bytes.to_vec()).map_err(|_| "non-UTF-8 path arg".to_string())?,
            )
        }
        ARG_BUF_LEN => SyscallArg::BufLen(r.u64()? as usize),
        t => return Err(format!("bad arg tag {t}")),
    })
}

pub(crate) fn encode_cmp(buf: &mut Vec<u8>, cmp: &ComparisonKey) {
    encode_sysno(buf, cmp.no);
    buf.extend_from_slice(&(cmp.args.len() as u16).to_le_bytes());
    for arg in &cmp.args {
        encode_arg(buf, arg);
    }
    buf.extend_from_slice(&cmp.payload_digest.to_le_bytes());
    buf.extend_from_slice(&(cmp.payload_len as u64).to_le_bytes());
}

pub(crate) fn decode_cmp(r: &mut Reader<'_>) -> Result<ComparisonKey, String> {
    let no = decode_sysno(r)?;
    let nargs = r.u16()? as usize;
    let mut args = Vec::with_capacity(nargs.min(64));
    for _ in 0..nargs {
        args.push(decode_arg(r)?);
    }
    Ok(ComparisonKey {
        no,
        args,
        payload_digest: r.u64()?,
        payload_len: r.u64()? as usize,
    })
}

pub(crate) fn encode_outcome(buf: &mut Vec<u8>, outcome: &SyscallOutcome) {
    match outcome.result {
        Ok(v) => {
            buf.push(0);
            buf.extend_from_slice(&v.to_le_bytes());
        }
        Err(e) => {
            buf.push(1);
            buf.extend_from_slice(&e.as_raw().to_le_bytes());
            buf.extend_from_slice(&[0u8; 4]);
        }
    }
    buf.extend_from_slice(&(outcome.payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&outcome.payload);
}

pub(crate) fn decode_outcome(r: &mut Reader<'_>) -> Result<SyscallOutcome, String> {
    let result = match r.u8()? {
        0 => Ok(r.i64()?),
        1 => {
            let raw = r.i32()?;
            let _pad = r.u32()?;
            Err(Errno::from_raw(raw).ok_or_else(|| format!("unknown errno {raw}"))?)
        }
        t => return Err(format!("bad outcome tag {t}")),
    };
    let len = r.u32()? as usize;
    let payload = r.take(len)?.to_vec();
    Ok(SyscallOutcome { result, payload })
}

const KIND_MISMATCH: u8 = 0;
const KIND_RENDEZVOUS_TIMEOUT: u8 = 1;
const KIND_REPLICATION_TIMEOUT: u8 = 2;
const KIND_POLICY: u8 = 3;

fn encode_variant_list(buf: &mut Vec<u8>, list: &[usize]) {
    buf.extend_from_slice(&(list.len() as u16).to_le_bytes());
    for &v in list {
        buf.extend_from_slice(&(v as u32).to_le_bytes());
    }
}

fn decode_variant_list(r: &mut Reader<'_>) -> Result<Vec<usize>, String> {
    let n = r.u16()? as usize;
    let mut list = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        list.push(r.u32()? as usize);
    }
    Ok(list)
}

pub(crate) fn encode_report(buf: &mut Vec<u8>, report: &DivergenceReport) {
    match &report.kind {
        DivergenceKind::SyscallMismatch { master, variant } => {
            buf.push(KIND_MISMATCH);
            encode_sysno(buf, *master);
            encode_sysno(buf, *variant);
        }
        DivergenceKind::RendezvousTimeout { arrived } => {
            buf.push(KIND_RENDEZVOUS_TIMEOUT);
            encode_variant_list(buf, arrived);
        }
        DivergenceKind::ReplicationTimeout { publisher, arrived } => {
            buf.push(KIND_REPLICATION_TIMEOUT);
            buf.extend_from_slice(&(*publisher as u32).to_le_bytes());
            encode_variant_list(buf, arrived);
        }
        DivergenceKind::PolicyViolation { call } => {
            buf.push(KIND_POLICY);
            encode_sysno(buf, *call);
        }
    }
    buf.extend_from_slice(&(report.thread as u32).to_le_bytes());
    buf.extend_from_slice(&report.sequence.to_le_bytes());
    buf.extend_from_slice(&(report.variant as u32).to_le_bytes());
}

pub(crate) fn decode_report(r: &mut Reader<'_>) -> Result<DivergenceReport, String> {
    let kind = match r.u8()? {
        KIND_MISMATCH => DivergenceKind::SyscallMismatch {
            master: decode_sysno(r)?,
            variant: decode_sysno(r)?,
        },
        KIND_RENDEZVOUS_TIMEOUT => DivergenceKind::RendezvousTimeout {
            arrived: decode_variant_list(r)?,
        },
        KIND_REPLICATION_TIMEOUT => DivergenceKind::ReplicationTimeout {
            publisher: r.u32()? as usize,
            arrived: decode_variant_list(r)?,
        },
        KIND_POLICY => DivergenceKind::PolicyViolation {
            call: decode_sysno(r)?,
        },
        t => return Err(format!("bad divergence kind {t}")),
    };
    Ok(DivergenceReport {
        kind,
        thread: r.u32()? as usize,
        sequence: r.u64()?,
        variant: r.u32()? as usize,
    })
}

impl JournalRecord {
    /// Serializes the record body (tag + fields, no frame).
    pub fn encode_body(&self, buf: &mut Vec<u8>) {
        match self {
            JournalRecord::Enter {
                variant,
                thread,
                lane,
                self_aware,
            } => {
                buf.push(TAG_ENTER);
                buf.extend_from_slice(&variant.to_le_bytes());
                buf.extend_from_slice(&thread.to_le_bytes());
                buf.extend_from_slice(&lane.to_le_bytes());
                buf.push(u8::from(*self_aware));
            }
            JournalRecord::Class { kind, lane } => {
                buf.push(TAG_CLASS);
                buf.push(kind.to_wire());
                buf.extend_from_slice(&lane.to_le_bytes());
            }
            JournalRecord::Arrival {
                variant,
                thread,
                seq,
                shard,
                order,
                cmp,
            } => {
                buf.push(TAG_ARRIVAL);
                buf.extend_from_slice(&variant.to_le_bytes());
                buf.extend_from_slice(&thread.to_le_bytes());
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.extend_from_slice(&shard.to_le_bytes());
                buf.extend_from_slice(&order.to_le_bytes());
                encode_cmp(buf, cmp);
            }
            JournalRecord::Publish {
                thread,
                seq,
                timestamp,
                outcome,
            } => {
                buf.push(TAG_PUBLISH);
                buf.extend_from_slice(&thread.to_le_bytes());
                buf.extend_from_slice(&seq.to_le_bytes());
                match timestamp {
                    Some(ts) => {
                        buf.push(1);
                        buf.extend_from_slice(&ts.to_le_bytes());
                    }
                    None => {
                        buf.push(0);
                        buf.extend_from_slice(&0u64.to_le_bytes());
                    }
                }
                encode_outcome(buf, outcome);
            }
            JournalRecord::Diverge { report } => {
                buf.push(TAG_DIVERGE);
                encode_report(buf, report);
            }
            JournalRecord::SyncOp { variant, thread } => {
                buf.push(TAG_SYNC_OP);
                buf.extend_from_slice(&variant.to_le_bytes());
                buf.extend_from_slice(&thread.to_le_bytes());
            }
            JournalRecord::End { records } => {
                buf.push(TAG_END);
                buf.extend_from_slice(&records.to_le_bytes());
            }
        }
    }

    /// Parses a record body (tag + fields, no frame).  The error is a
    /// human-readable reason, wrapped into [`JournalError::Malformed`] by
    /// the stream decoder.
    pub fn decode_body(body: &[u8]) -> Result<JournalRecord, String> {
        let mut r = Reader::new(body);
        let record = match r.u8()? {
            TAG_ENTER => JournalRecord::Enter {
                variant: r.u16()?,
                thread: r.u32()?,
                lane: r.u16()?,
                self_aware: match r.u8()? {
                    0 => false,
                    1 => true,
                    b => return Err(format!("bad self_aware flag {b}")),
                },
            },
            TAG_CLASS => JournalRecord::Class {
                kind: {
                    let raw = r.u8()?;
                    ClassKind::from_wire(raw).ok_or_else(|| format!("bad class kind {raw}"))?
                },
                lane: r.u16()?,
            },
            TAG_ARRIVAL => JournalRecord::Arrival {
                variant: r.u16()?,
                thread: r.u32()?,
                seq: r.u64()?,
                shard: r.u16()?,
                order: r.u64()?,
                cmp: decode_cmp(&mut r)?,
            },
            TAG_PUBLISH => JournalRecord::Publish {
                thread: r.u32()?,
                seq: r.u64()?,
                timestamp: {
                    let has = r.u8()?;
                    let ts = r.u64()?;
                    match has {
                        0 => None,
                        1 => Some(ts),
                        b => return Err(format!("bad timestamp flag {b}")),
                    }
                },
                outcome: decode_outcome(&mut r)?,
            },
            TAG_DIVERGE => JournalRecord::Diverge {
                report: decode_report(&mut r)?,
            },
            TAG_SYNC_OP => JournalRecord::SyncOp {
                variant: r.u16()?,
                thread: r.u32()?,
            },
            TAG_END => JournalRecord::End { records: r.u64()? },
            t => return Err(format!("unknown record tag {t}")),
        };
        r.finish()?;
        Ok(record)
    }
}

/// Why a journal byte stream could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The stream does not start with the `MVJL` magic.
    BadMagic,
    /// The header carries a version this build does not speak.
    UnsupportedVersion(u16),
    /// The stream ends mid-header or mid-record (torn write).
    Truncated {
        /// Byte offset at which the stream ran out.
        offset: usize,
    },
    /// A record's CRC does not match its body (bit rot / torn write).
    CorruptRecord {
        /// Zero-based index of the bad record.
        index: u64,
        /// Byte offset of the record's frame.
        offset: usize,
    },
    /// A record's body parsed to garbage despite a valid CRC.
    Malformed {
        /// Zero-based index of the bad record.
        index: u64,
        /// What went wrong.
        reason: String,
    },
    /// The stream has no `End` trailer: the recording run died mid-write.
    MissingEnd,
    /// Bytes follow the `End` trailer.
    TrailingData {
        /// Byte offset of the first trailing byte.
        offset: usize,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::BadMagic => write!(f, "not a journal: bad magic"),
            JournalError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported journal version {v} (this build speaks {JOURNAL_VERSION})"
                )
            }
            JournalError::Truncated { offset } => {
                write!(f, "journal truncated at byte {offset}")
            }
            JournalError::CorruptRecord { index, offset } => {
                write!(f, "record #{index} at byte {offset} fails its CRC")
            }
            JournalError::Malformed { index, reason } => {
                write!(f, "record #{index} is malformed: {reason}")
            }
            JournalError::MissingEnd => {
                write!(f, "journal has no End trailer (recording died mid-write)")
            }
            JournalError::TrailingData { offset } => {
                write!(f, "unexpected data after End trailer at byte {offset}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// What [`Journal::recover_from_bytes`] salvaged from a possibly torn
/// stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJournal {
    /// The longest valid record prefix.
    pub journal: Journal,
    /// What stopped the parse — `None` when the stream was complete and
    /// nothing was dropped.
    pub damage: Option<JournalError>,
    /// Bytes past the last salvaged record that were discarded (0 for a
    /// complete stream).
    pub dropped_bytes: usize,
}

/// A fully decoded journal: header + records, `End` trailer validated and
/// stripped.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    /// The recorded run's parameters.
    pub header: JournalHeader,
    /// The records, in file (= global arrival) order, without the trailer.
    pub records: Vec<JournalRecord>,
}

fn decode_header(bytes: &[u8]) -> Result<JournalHeader, JournalError> {
    if bytes.len() < 4 || bytes[..4] != JOURNAL_MAGIC {
        if bytes.len() < 4 {
            return Err(JournalError::Truncated {
                offset: bytes.len(),
            });
        }
        return Err(JournalError::BadMagic);
    }
    if bytes.len() < JOURNAL_HEADER_LEN {
        return Err(JournalError::Truncated {
            offset: bytes.len(),
        });
    }
    let word = |at: usize| u16::from_le_bytes([bytes[at], bytes[at + 1]]);
    let header = JournalHeader {
        version: word(4),
        variants: word(6),
        threads: word(8),
        shards: word(10),
        batch: word(12),
    };
    if header.version != JOURNAL_VERSION {
        return Err(JournalError::UnsupportedVersion(header.version));
    }
    Ok(header)
}

impl Journal {
    /// Strictly decodes a journal: every record must frame and parse, the
    /// `End` trailer must be present, carry the right count and be last.
    pub fn decode(bytes: &[u8]) -> Result<Journal, JournalError> {
        match Self::decode_inner(bytes) {
            Ok((journal, None, _)) => Ok(journal),
            Ok((_, Some(err), _)) | Err(err) => Err(err),
        }
    }

    /// Salvage decode: parses the longest valid record prefix.  Returns the
    /// salvaged journal plus the error that stopped the parse (`None` when
    /// the stream was complete).  Header errors are not salvageable.
    pub fn decode_lossy(bytes: &[u8]) -> Result<(Journal, Option<JournalError>), JournalError> {
        Self::decode_inner(bytes).map(|(journal, damage, _)| (journal, damage))
    }

    /// Crash-recovery entry point: salvages the longest valid record prefix
    /// of a possibly torn journal and accounts for what was lost.
    ///
    /// This is what a respawn reads after a variant died mid-run — possibly
    /// mid-write — so unlike [`decode`](Self::decode) it treats a torn,
    /// corrupt or trailer-less stream as data, not as failure: the damage
    /// becomes [`RecoveredJournal::damage`] and the unsalvageable suffix
    /// length becomes [`RecoveredJournal::dropped_bytes`].  Only header
    /// damage (bad magic, wrong version, a stream shorter than the header)
    /// is unrecoverable, because without a header no record can be
    /// interpreted.
    pub fn recover_from_bytes(bytes: &[u8]) -> Result<RecoveredJournal, JournalError> {
        let (journal, damage, consumed) = Self::decode_inner(bytes)?;
        Ok(RecoveredJournal {
            journal,
            damage,
            dropped_bytes: bytes.len() - consumed,
        })
    }

    /// Walks the record stream.  The third element of the success tuple is
    /// the byte offset consumed into salvaged records (header included) —
    /// what [`recover_from_bytes`](Self::recover_from_bytes) subtracts from
    /// the stream length to report the dropped suffix.
    fn decode_inner(bytes: &[u8]) -> Result<(Journal, Option<JournalError>, usize), JournalError> {
        let header = decode_header(bytes)?;
        let mut records = Vec::new();
        let mut offset = JOURNAL_HEADER_LEN;
        let mut index = 0u64;
        let journal = |records: Vec<JournalRecord>| Journal { header, records };
        loop {
            // `offset` always sits just past the last salvaged record here,
            // so every early return reports it as the consumed length.
            let (body, next) = match next_frame(bytes, offset) {
                Ok(Some(frame)) => frame,
                Ok(None) => {
                    return Ok((journal(records), Some(JournalError::MissingEnd), offset));
                }
                Err(FrameError::Truncated { offset: at }) => {
                    let err = JournalError::Truncated { offset: at };
                    return Ok((journal(records), Some(err), offset));
                }
                Err(FrameError::Corrupt { offset: at }) => {
                    let err = JournalError::CorruptRecord { index, offset: at };
                    return Ok((journal(records), Some(err), offset));
                }
            };
            let record = match JournalRecord::decode_body(body) {
                Ok(record) => record,
                Err(reason) => {
                    let err = JournalError::Malformed { index, reason };
                    return Ok((journal(records), Some(err), offset));
                }
            };
            if let JournalRecord::End { records: count } = record {
                if count != index {
                    let err = JournalError::Malformed {
                        index,
                        reason: format!("End trailer claims {count} records, stream has {index}"),
                    };
                    return Ok((journal(records), Some(err), offset));
                }
                if next != bytes.len() {
                    let err = JournalError::TrailingData { offset: next };
                    return Ok((journal(records), Some(err), next));
                }
                return Ok((journal(records), None, next));
            }
            offset = next;
            records.push(record);
            index += 1;
        }
    }

    /// Re-encodes the journal to bytes (header, records, `End` trailer).
    /// `decode(encode(j)) == j` — the golden tests pin this.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.header.encode(&mut buf);
        let mut body = Vec::new();
        for record in &self.records {
            body.clear();
            record.encode_body(&mut body);
            push_frame(&mut buf, &body);
        }
        body.clear();
        JournalRecord::End {
            records: self.records.len() as u64,
        }
        .encode_body(&mut body);
        push_frame(&mut buf, &body);
        buf
    }
}

/// The journal knob on `MveeConfig`: record the run, replay a prior one,
/// or neither (the default — the journal hooks are a `None` check on the
/// hot path).
#[derive(Debug, Clone, Default)]
pub enum JournalMode {
    /// No journaling.
    #[default]
    Off,
    /// Record the run through the given sink; call
    /// [`JournalRecorder::finish`] after the run for the bytes.
    Record(Arc<JournalRecorder>),
    /// Carry a decoded journal as the run's replay source; the MVEE exposes
    /// it through `Mvee::replay_recorded`, which re-derives the verdicts
    /// offline.
    Replay(Arc<Journal>),
}

impl JournalMode {
    /// The recording sink, when in [`JournalMode::Record`].
    pub fn recorder(&self) -> Option<&Arc<JournalRecorder>> {
        match self {
            JournalMode::Record(rec) => Some(rec),
            _ => None,
        }
    }

    /// The replay source, when in [`JournalMode::Replay`].
    pub fn replay_source(&self) -> Option<&Arc<Journal>> {
        match self {
            JournalMode::Replay(journal) => Some(journal),
            _ => None,
        }
    }
}

struct RecorderInner {
    buf: Vec<u8>,
    records: u64,
    next_order: u64,
    begun: bool,
}

/// Thread-safe journal sink.  The monitor and the rendezvous table append
/// records under a single leaf mutex, so file order is a valid global order
/// of the events — that single serialization point is what makes the
/// `order` counter a RecPlay-style timestamp.
pub struct JournalRecorder {
    inner: Mutex<RecorderInner>,
}

impl JournalRecorder {
    /// Creates an empty, not-yet-begun recorder.  [`begin`] must run before
    /// records are accepted; the monitor calls it at construction.
    ///
    /// [`begin`]: JournalRecorder::begin
    pub fn new() -> Self {
        JournalRecorder {
            inner: Mutex::new(RecorderInner {
                buf: Vec::new(),
                records: 0,
                next_order: 0,
                begun: false,
            }),
        }
    }

    /// Creates a recorder and begins it with `header` — the convenient
    /// constructor for hand-built journals (fixtures, tests).
    pub fn with_header(header: JournalHeader) -> Self {
        let rec = JournalRecorder::new();
        rec.begin(header);
        rec
    }

    /// Writes the stream header.  Idempotent: only the first call takes
    /// effect, so the monitor can begin unconditionally.
    pub fn begin(&self, header: JournalHeader) {
        let mut inner = self.inner.lock();
        if !inner.begun {
            let mut buf = std::mem::take(&mut inner.buf);
            header.encode(&mut buf);
            inner.buf = buf;
            inner.begun = true;
        }
    }

    fn push(&self, record: &JournalRecord) {
        let mut body = Vec::with_capacity(64);
        record.encode_body(&mut body);
        let mut inner = self.inner.lock();
        if !inner.begun {
            // Records before `begin` have no header to follow; dropping
            // them (instead of corrupting the stream) keeps the invariant
            // that a recorder's bytes always decode.
            return;
        }
        let mut buf = std::mem::take(&mut inner.buf);
        push_frame(&mut buf, &body);
        inner.buf = buf;
        inner.records += 1;
    }

    /// Records a gateway entry.
    pub fn record_enter(&self, variant: usize, thread: usize, lane: usize, self_aware: bool) {
        self.push(&JournalRecord::Enter {
            variant: variant as u16,
            thread: thread as u32,
            lane: lane as u16,
            self_aware,
        });
    }

    /// Records a gateway classification (or batch flush).
    pub fn record_class(&self, kind: ClassKind, lane: usize) {
        self.push(&JournalRecord::Class {
            kind,
            lane: lane as u16,
        });
    }

    /// Records a rendezvous deposit; the global arrival order is assigned
    /// here, under the journal lock.
    pub fn record_arrival(
        &self,
        variant: usize,
        thread: usize,
        seq: u64,
        shard: usize,
        cmp: &ComparisonKey,
    ) {
        // Assign the order under the same lock that serializes the write so
        // order values appear in file order.
        let mut body = Vec::with_capacity(64);
        let mut inner = self.inner.lock();
        if !inner.begun {
            return;
        }
        let order = inner.next_order;
        inner.next_order += 1;
        JournalRecord::Arrival {
            variant: variant as u16,
            thread: thread as u32,
            seq,
            shard: shard as u16,
            order,
            cmp: cmp.clone(),
        }
        .encode_body(&mut body);
        let mut buf = std::mem::take(&mut inner.buf);
        push_frame(&mut buf, &body);
        inner.buf = buf;
        inner.records += 1;
    }

    /// Records a published replicated outcome.
    pub fn record_publish(
        &self,
        thread: usize,
        seq: u64,
        timestamp: Option<u64>,
        outcome: &SyscallOutcome,
    ) {
        self.push(&JournalRecord::Publish {
            thread: thread as u32,
            seq,
            timestamp,
            outcome: outcome.clone(),
        });
    }

    /// Records a divergence declaration.
    pub fn record_diverge(&self, report: &DivergenceReport) {
        self.push(&JournalRecord::Diverge {
            report: report.clone(),
        });
    }

    /// Records an agent replication point.
    pub fn record_sync_op(&self, variant: usize, thread: usize) {
        self.push(&JournalRecord::SyncOp {
            variant: variant as u16,
            thread: thread as u32,
        });
    }

    /// Number of records written so far (trailer excluded).
    pub fn records(&self) -> u64 {
        self.inner.lock().records
    }

    /// Snapshots the journal bytes: the stream so far plus an `End`
    /// trailer.  The recorder itself is untouched, so `finish` can be
    /// called repeatedly (each call yields a complete, decodable journal).
    pub fn finish(&self) -> Vec<u8> {
        let inner = self.inner.lock();
        let mut buf = inner.buf.clone();
        let mut body = Vec::with_capacity(16);
        JournalRecord::End {
            records: inner.records,
        }
        .encode_body(&mut body);
        push_frame(&mut buf, &body);
        buf
    }
}

impl Default for JournalRecorder {
    fn default() -> Self {
        JournalRecorder::new()
    }
}

impl fmt::Debug for JournalRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("JournalRecorder")
            .field("begun", &inner.begun)
            .field("records", &inner.records)
            .field("bytes", &inner.buf.len())
            .finish()
    }
}

/// Why a decoded journal could not be replayed consistently.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The byte stream itself was bad.
    Journal(JournalError),
    /// The recorded schedule is internally inconsistent (out-of-order
    /// arrival stamps, variants beyond the header's count, duplicate
    /// deposits).
    InconsistentSchedule {
        /// Index of the offending record.
        index: u64,
        /// What went wrong.
        reason: String,
    },
    /// Re-deriving the verdict from the recorded arrivals did not reproduce
    /// the recorded divergence report.
    VerdictMismatch {
        /// The report the live run recorded.
        recorded: DivergenceReport,
        /// Why the re-derivation disagrees.
        reason: String,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Journal(err) => write!(f, "journal error: {err}"),
            ReplayError::InconsistentSchedule { index, reason } => {
                write!(f, "inconsistent schedule at record #{index}: {reason}")
            }
            ReplayError::VerdictMismatch { recorded, reason } => {
                write!(
                    f,
                    "replay verdict mismatch ({reason}); recorded: {}",
                    recorded.summary()
                )
            }
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<JournalError> for ReplayError {
    fn from(err: JournalError) -> Self {
        ReplayError::Journal(err)
    }
}

/// The result of replaying a journal offline: the re-derived monitor
/// statistics and (for a divergent run) the re-verified report.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedRun {
    /// The recorded run's parameters.
    pub header: JournalHeader,
    /// Monitor counters re-derived from the record stream; for a faithful
    /// journal these equal the live run's [`MonitorStats`] exactly.
    pub stats: MonitorStats,
    /// Distinct rendezvous slots that saw at least one deposit.
    pub slots: usize,
    /// Total rendezvous deposits.
    pub arrivals: u64,
    /// Replicated/ordered outcomes published.
    pub publishes: u64,
    /// Agent replication points.
    pub sync_ops: u64,
    /// The first recorded divergence report, re-verified against the
    /// recorded arrival keys; `None` for a clean run.
    pub divergence: Option<DivergenceReport>,
}

/// Decodes and replays a journal byte stream.  See [`replay_journal`].
pub fn replay(bytes: &[u8]) -> Result<ReplayedRun, ReplayError> {
    let journal = Journal::decode(bytes)?;
    replay_journal(&journal)
}

/// Replays a decoded journal: re-derives the monitor statistics from the
/// record stream and, when the run diverged, re-runs the verdict over the
/// recorded arrival keys — the re-derived first-mismatch slot and variant
/// must reproduce the recorded report field by field, else
/// [`ReplayError::VerdictMismatch`].
pub fn replay_journal(journal: &Journal) -> Result<ReplayedRun, ReplayError> {
    use std::collections::BTreeMap;

    let variants = journal.header.variants as usize;
    let mut stats = MonitorStats::default();
    let mut slots: BTreeMap<(u32, u64), Vec<Option<ComparisonKey>>> = BTreeMap::new();
    let mut arrivals = 0u64;
    let mut publishes = 0u64;
    let mut sync_ops = 0u64;
    let mut last_order: Option<u64> = None;
    let mut divergence: Option<DivergenceReport> = None;

    for (index, record) in journal.records.iter().enumerate() {
        let index = index as u64;
        match record {
            JournalRecord::Enter { self_aware, .. } => {
                stats.total_syscalls += 1;
                if *self_aware {
                    stats.self_aware_queries += 1;
                }
            }
            JournalRecord::Class { kind, .. } => match kind {
                ClassKind::Lockstep => stats.lockstep_syscalls += 1,
                ClassKind::Batched => stats.batched_comparisons += 1,
                ClassKind::Replicated => stats.replicated_syscalls += 1,
                ClassKind::Ordered => stats.ordered_syscalls += 1,
                ClassKind::BatchFlush => stats.batch_flushes += 1,
            },
            JournalRecord::Arrival {
                variant,
                thread,
                seq,
                order,
                cmp,
                ..
            } => {
                let variant = *variant as usize;
                if variant >= variants {
                    return Err(ReplayError::InconsistentSchedule {
                        index,
                        reason: format!(
                            "arrival from variant {variant} but the header declares {variants}"
                        ),
                    });
                }
                if last_order.is_some_and(|prev| *order <= prev) {
                    return Err(ReplayError::InconsistentSchedule {
                        index,
                        reason: format!(
                            "arrival order {} not after predecessor {}",
                            order,
                            last_order.unwrap()
                        ),
                    });
                }
                last_order = Some(*order);
                let keys = slots
                    .entry((*thread, *seq))
                    .or_insert_with(|| vec![None; variants]);
                if keys[variant].is_some() {
                    return Err(ReplayError::InconsistentSchedule {
                        index,
                        reason: format!(
                            "duplicate deposit by variant {variant} at slot ({thread}, {seq:#x})"
                        ),
                    });
                }
                keys[variant] = Some(cmp.clone());
                arrivals += 1;
            }
            JournalRecord::Publish { .. } => publishes += 1,
            JournalRecord::Diverge { report } => {
                stats.divergences += 1;
                if divergence.is_none() {
                    divergence = Some(report.clone());
                }
            }
            JournalRecord::SyncOp { .. } => sync_ops += 1,
            JournalRecord::End { .. } => {
                return Err(ReplayError::InconsistentSchedule {
                    index,
                    reason: "End trailer inside the record stream".to_string(),
                });
            }
        }
    }

    if let Some(report) = &divergence {
        verify_report(report, &slots)?;
    }

    Ok(ReplayedRun {
        header: journal.header,
        stats,
        slots: slots.len(),
        arrivals,
        publishes,
        sync_ops,
        divergence,
    })
}

/// Re-derives the verdict for `report` from the recorded arrival keys.
///
/// Reports strip [`DEFERRED_SEQ_BIT`] from the sequence, so both candidate
/// slots — the direct one and the deferred one — are consulted.
fn verify_report(
    report: &DivergenceReport,
    slots: &std::collections::BTreeMap<(u32, u64), Vec<Option<ComparisonKey>>>,
) -> Result<(), ReplayError> {
    let thread = report.thread as u32;
    let candidates = [
        (thread, report.sequence),
        (thread, report.sequence | DEFERRED_SEQ_BIT),
    ];
    match &report.kind {
        DivergenceKind::SyscallMismatch { master, variant } => {
            for key in candidates {
                let Some(keys) = slots.get(&key) else {
                    continue;
                };
                if let Some((v, master_key, variant_key)) = first_mismatch(keys) {
                    if v == report.variant && master_key.no == *master && variant_key.no == *variant
                    {
                        return Ok(());
                    }
                    return Err(ReplayError::VerdictMismatch {
                        recorded: report.clone(),
                        reason: format!(
                            "re-derived mismatch blames variant {v} ({} vs {}), \
                             report blames variant {} ({} vs {})",
                            master_key.no.name(),
                            variant_key.no.name(),
                            report.variant,
                            master.name(),
                            variant.name()
                        ),
                    });
                }
            }
            Err(ReplayError::VerdictMismatch {
                recorded: report.clone(),
                reason: "no recorded slot re-derives the mismatch".to_string(),
            })
        }
        DivergenceKind::RendezvousTimeout { arrived }
        | DivergenceKind::ReplicationTimeout { arrived, .. } => {
            // Ordered-turn waits and replication-only slots fabricate their
            // arrived set without any table deposit; a report over a slot
            // with zero recorded arrivals is accepted as-is.
            let deposited: Vec<&Vec<Option<ComparisonKey>>> =
                candidates.iter().filter_map(|k| slots.get(k)).collect();
            if deposited.is_empty() {
                return Ok(());
            }
            for &v in arrived {
                let seen = deposited
                    .iter()
                    .any(|keys| keys.get(v).map(Option::is_some).unwrap_or(false));
                if !seen {
                    return Err(ReplayError::VerdictMismatch {
                        recorded: report.clone(),
                        reason: format!(
                            "report lists variant {v} as arrived but the journal has no \
                             deposit from it at that slot"
                        ),
                    });
                }
            }
            Ok(())
        }
        // The gate denies a forbidden call before any deposit; there is no
        // schedule to cross-check.
        DivergenceKind::PolicyViolation { .. } => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvee_kernel::syscall::SyscallRequest;

    fn header() -> JournalHeader {
        JournalHeader {
            version: JOURNAL_VERSION,
            variants: 2,
            threads: 4,
            shards: 8,
            batch: 1,
        }
    }

    fn cmp(no: Sysno) -> ComparisonKey {
        SyscallRequest::new(no).comparison_key()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_journal_round_trips() {
        let rec = JournalRecorder::with_header(header());
        let bytes = rec.finish();
        let journal = Journal::decode(&bytes).expect("decode");
        assert_eq!(journal.header, header());
        assert!(journal.records.is_empty());
        assert_eq!(journal.encode(), bytes);
    }

    #[test]
    fn every_record_kind_round_trips() {
        let rec = JournalRecorder::with_header(header());
        rec.record_enter(0, 3, 3, false);
        rec.record_enter(1, 3, 3, true);
        rec.record_class(ClassKind::Lockstep, 3);
        rec.record_class(ClassKind::BatchFlush, 0);
        rec.record_arrival(0, 3, 7, 3, &cmp(Sysno::Brk));
        rec.record_arrival(1, 3, 7 | DEFERRED_SEQ_BIT, 3, &cmp(Sysno::Brk));
        rec.record_publish(3, 7, Some(42), &SyscallOutcome::ok(0));
        rec.record_publish(
            3,
            8,
            None,
            &SyscallOutcome {
                result: Err(Errno::Einval),
                payload: vec![1, 2, 3],
            },
        );
        rec.record_diverge(&DivergenceReport {
            kind: DivergenceKind::SyscallMismatch {
                master: Sysno::Brk,
                variant: Sysno::Mmap,
            },
            thread: 3,
            sequence: 7,
            variant: 1,
        });
        rec.record_sync_op(1, 2);
        assert_eq!(rec.records(), 10);

        let bytes = rec.finish();
        let journal = Journal::decode(&bytes).expect("decode");
        assert_eq!(journal.records.len(), 10);
        assert_eq!(
            journal.records[1],
            JournalRecord::Enter {
                variant: 1,
                thread: 3,
                lane: 3,
                self_aware: true
            }
        );
        assert!(matches!(
            journal.records[5],
            JournalRecord::Arrival { order: 1, seq, .. } if seq == 7 | DEFERRED_SEQ_BIT
        ));
        assert_eq!(journal.encode(), bytes);
    }

    #[test]
    fn comparison_keys_with_every_arg_kind_round_trip() {
        let key = ComparisonKey {
            no: Sysno::Unknown(999),
            args: vec![
                SyscallArg::Int(-5),
                SyscallArg::Fd(3),
                SyscallArg::Flags(0xDEAD_BEEF),
                SyscallArg::Pointer(0x7FFF_0000),
                SyscallArg::Path("/tmp/x".to_string()),
                SyscallArg::BufLen(4096),
            ],
            payload_digest: 0x0123_4567_89AB_CDEF,
            payload_len: 17,
        };
        let rec = JournalRecorder::with_header(header());
        rec.record_arrival(0, 0, 0, 0, &key);
        let journal = Journal::decode(&rec.finish()).expect("decode");
        assert!(matches!(
            &journal.records[0],
            JournalRecord::Arrival { cmp, .. } if *cmp == key
        ));
    }

    #[test]
    fn all_divergence_kinds_round_trip() {
        let kinds = [
            DivergenceKind::SyscallMismatch {
                master: Sysno::Read,
                variant: Sysno::Write,
            },
            DivergenceKind::RendezvousTimeout {
                arrived: vec![0, 2],
            },
            DivergenceKind::ReplicationTimeout {
                publisher: 0,
                arrived: vec![1],
            },
            DivergenceKind::PolicyViolation { call: Sysno::Open },
        ];
        let rec = JournalRecorder::with_header(header());
        for (i, kind) in kinds.iter().enumerate() {
            rec.record_diverge(&DivergenceReport {
                kind: kind.clone(),
                thread: i,
                sequence: i as u64,
                variant: 1,
            });
        }
        let journal = Journal::decode(&rec.finish()).expect("decode");
        for (i, kind) in kinds.iter().enumerate() {
            assert!(matches!(
                &journal.records[i],
                JournalRecord::Diverge { report } if report.kind == *kind
            ));
        }
    }

    #[test]
    fn records_before_begin_are_dropped_not_corrupting() {
        let rec = JournalRecorder::new();
        rec.record_enter(0, 0, 0, false);
        rec.begin(header());
        rec.record_enter(0, 1, 1, false);
        let journal = Journal::decode(&rec.finish()).expect("decode");
        assert_eq!(journal.records.len(), 1);
    }

    #[test]
    fn bad_magic_is_detected() {
        let rec = JournalRecorder::with_header(header());
        let mut bytes = rec.finish();
        bytes[0] = b'X';
        assert_eq!(Journal::decode(&bytes), Err(JournalError::BadMagic));
    }

    #[test]
    fn future_version_is_rejected() {
        let rec = JournalRecorder::with_header(JournalHeader {
            version: JOURNAL_VERSION + 1,
            ..header()
        });
        assert_eq!(
            Journal::decode(&rec.finish()),
            Err(JournalError::UnsupportedVersion(JOURNAL_VERSION + 1))
        );
    }

    #[test]
    fn every_truncation_point_is_a_typed_error() {
        let rec = JournalRecorder::with_header(header());
        rec.record_enter(0, 0, 0, false);
        rec.record_arrival(0, 0, 0, 0, &cmp(Sysno::Brk));
        let bytes = rec.finish();
        for cut in 0..bytes.len() {
            let err = Journal::decode(&bytes[..cut]).expect_err("truncation must fail");
            assert!(
                matches!(
                    err,
                    JournalError::Truncated { .. } | JournalError::MissingEnd
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn corrupted_record_fails_crc_with_its_index() {
        let rec = JournalRecorder::with_header(header());
        rec.record_enter(0, 0, 0, false);
        rec.record_enter(0, 1, 1, false);
        let mut bytes = rec.finish();
        // Flip one bit inside the second record's body: header (14) +
        // record 0 frame (8 + 10) + record 1 frame header (8) + 1.
        let offset = JOURNAL_HEADER_LEN + 8 + 10;
        bytes[offset + 8 + 1] ^= 0x40;
        assert_eq!(
            Journal::decode(&bytes),
            Err(JournalError::CorruptRecord { index: 1, offset })
        );
    }

    #[test]
    fn trailing_data_after_end_is_rejected() {
        let rec = JournalRecorder::with_header(header());
        let mut bytes = rec.finish();
        let offset = bytes.len();
        bytes.push(0);
        assert_eq!(
            Journal::decode(&bytes),
            Err(JournalError::TrailingData { offset })
        );
    }

    #[test]
    fn lossy_decode_salvages_the_valid_prefix() {
        let rec = JournalRecorder::with_header(header());
        rec.record_enter(0, 0, 0, false);
        rec.record_enter(0, 1, 1, false);
        let bytes = rec.finish();
        // Cut inside the second record.
        let cut = JOURNAL_HEADER_LEN + 8 + 10 + 4;
        let (journal, err) = Journal::decode_lossy(&bytes[..cut]).expect("header intact");
        assert_eq!(journal.records.len(), 1);
        assert!(matches!(err, Some(JournalError::Truncated { .. })));
        // A complete stream salvages everything with no error.
        let (journal, err) = Journal::decode_lossy(&bytes).expect("header intact");
        assert_eq!(journal.records.len(), 2);
        assert_eq!(err, None);
    }

    #[test]
    fn replay_reconstructs_stats_and_clean_run() {
        let rec = JournalRecorder::with_header(header());
        rec.record_enter(0, 0, 0, false);
        rec.record_enter(1, 0, 0, false);
        rec.record_class(ClassKind::Lockstep, 0);
        rec.record_arrival(0, 0, 1, 0, &cmp(Sysno::Brk));
        rec.record_arrival(1, 0, 1, 0, &cmp(Sysno::Brk));
        rec.record_publish(0, 2, None, &SyscallOutcome::ok(7));
        rec.record_sync_op(0, 0);
        let run = replay(&rec.finish()).expect("replay");
        assert_eq!(run.stats.total_syscalls, 2);
        assert_eq!(run.stats.lockstep_syscalls, 1);
        assert_eq!(run.stats.divergences, 0);
        assert_eq!(run.slots, 1);
        assert_eq!(run.arrivals, 2);
        assert_eq!(run.publishes, 1);
        assert_eq!(run.sync_ops, 1);
        assert_eq!(run.divergence, None);
    }

    #[test]
    fn replay_reverifies_a_recorded_mismatch() {
        let rec = JournalRecorder::with_header(header());
        rec.record_arrival(0, 2, 5, 2, &cmp(Sysno::Brk));
        rec.record_arrival(1, 2, 5, 2, &cmp(Sysno::Mmap));
        let report = DivergenceReport {
            kind: DivergenceKind::SyscallMismatch {
                master: Sysno::Brk,
                variant: Sysno::Mmap,
            },
            thread: 2,
            sequence: 5,
            variant: 1,
        };
        rec.record_diverge(&report);
        let run = replay(&rec.finish()).expect("replay");
        assert_eq!(run.divergence, Some(report));
        assert_eq!(run.stats.divergences, 1);
    }

    #[test]
    fn replay_reverifies_a_deferred_slot_mismatch() {
        // The live table keys deferred comparisons with DEFERRED_SEQ_BIT;
        // the report strips it.  Replay must find the deferred slot.
        let rec = JournalRecorder::with_header(header());
        rec.record_arrival(0, 1, 3 | DEFERRED_SEQ_BIT, 1, &cmp(Sysno::Brk));
        rec.record_arrival(1, 1, 3 | DEFERRED_SEQ_BIT, 1, &cmp(Sysno::Munmap));
        let report = DivergenceReport {
            kind: DivergenceKind::SyscallMismatch {
                master: Sysno::Brk,
                variant: Sysno::Munmap,
            },
            thread: 1,
            sequence: 3,
            variant: 1,
        };
        rec.record_diverge(&report);
        let run = replay(&rec.finish()).expect("replay");
        assert_eq!(run.divergence, Some(report));
    }

    #[test]
    fn replay_rejects_a_report_the_schedule_contradicts() {
        // Identical keys deposited, yet a mismatch report: the verdict
        // cannot be re-derived.
        let rec = JournalRecorder::with_header(header());
        rec.record_arrival(0, 0, 1, 0, &cmp(Sysno::Brk));
        rec.record_arrival(1, 0, 1, 0, &cmp(Sysno::Brk));
        rec.record_diverge(&DivergenceReport {
            kind: DivergenceKind::SyscallMismatch {
                master: Sysno::Brk,
                variant: Sysno::Mmap,
            },
            thread: 0,
            sequence: 1,
            variant: 1,
        });
        assert!(matches!(
            replay(&rec.finish()),
            Err(ReplayError::VerdictMismatch { .. })
        ));
    }

    #[test]
    fn replay_accepts_zero_arrival_timeout_reports() {
        // Ordered-turn waits fabricate RendezvousTimeout reports without a
        // table deposit; replay accepts them as-is.
        let rec = JournalRecorder::with_header(header());
        rec.record_diverge(&DivergenceReport {
            kind: DivergenceKind::RendezvousTimeout { arrived: vec![1] },
            thread: 0,
            sequence: 9,
            variant: 0,
        });
        assert!(replay(&rec.finish()).is_ok());
    }

    #[test]
    fn replay_checks_timeout_arrived_sets_against_deposits() {
        let rec = JournalRecorder::with_header(header());
        rec.record_arrival(0, 0, 4, 0, &cmp(Sysno::Brk));
        // Variant 1 never deposited, yet the report claims it arrived.
        rec.record_diverge(&DivergenceReport {
            kind: DivergenceKind::RendezvousTimeout { arrived: vec![1] },
            thread: 0,
            sequence: 4,
            variant: 0,
        });
        assert!(matches!(
            replay(&rec.finish()),
            Err(ReplayError::VerdictMismatch { .. })
        ));
    }

    #[test]
    fn replay_rejects_out_of_order_arrival_stamps() {
        // Hand-build a journal whose order stamps regress.
        let mut journal = Journal {
            header: header(),
            records: Vec::new(),
        };
        for order in [1u64, 0u64] {
            journal.records.push(JournalRecord::Arrival {
                variant: 0,
                thread: 0,
                seq: order,
                shard: 0,
                order,
                cmp: cmp(Sysno::Brk),
            });
        }
        assert!(matches!(
            replay_journal(&journal),
            Err(ReplayError::InconsistentSchedule { index: 1, .. })
        ));
    }

    #[test]
    fn replay_rejects_variants_beyond_the_header() {
        let rec = JournalRecorder::with_header(header());
        rec.record_arrival(5, 0, 0, 0, &cmp(Sysno::Brk));
        assert!(matches!(
            replay(&rec.finish()),
            Err(ReplayError::InconsistentSchedule { index: 0, .. })
        ));
    }

    #[test]
    fn errors_display_their_context() {
        let err = JournalError::CorruptRecord {
            index: 3,
            offset: 99,
        };
        let msg = err.to_string();
        assert!(msg.contains('3') && msg.contains("99"));
        let replay_err = ReplayError::Journal(JournalError::MissingEnd);
        assert!(replay_err.to_string().contains("End"));
    }
}
