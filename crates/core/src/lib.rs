//! The MVEE monitor: lockstep system-call monitoring, divergence detection
//! and result replication.
//!
//! A multi-variant execution environment (MVEE) runs two or more diversified
//! copies (*variants*) of the same program side by side and compares their
//! behaviour at the system-call interface.  Because every variant receives
//! the same inputs but the variants are diversified (different address-space
//! layouts, disjoint code layouts, ...), a memory-corruption exploit that
//! depends on concrete addresses cannot compromise all variants at once
//! without making them behave differently — and behavioural *divergence* is
//! exactly what the monitor detects and turns into a shutdown.
//!
//! This crate is the reproduction of ReMon's monitor as described in the
//! paper:
//!
//! * [`monitor::Monitor`] — the system-call gateway every variant thread
//!   calls instead of the kernel.  It performs lockstep comparison
//!   ([`lockstep`]), replication of I/O results from the master to the
//!   slaves, and cross-thread ordering of ordered calls via the *syscall
//!   ordering clock* ([`ordering`], §4.1 of the paper).
//! * [`lockstep::LockstepTable`] — the rendezvous/replication table,
//!   **sharded by logical thread index** so thread groups in different
//!   shards never contend on the same lock, with a lock-free poison flag
//!   that aborts every wait (rendezvous, replication *and* the injected
//!   agent's replay, via the monitor's poison hook) when divergence is
//!   detected.  [`MonitorConfig::shards`](monitor::MonitorConfig) sets the
//!   partitioning; `shards = 1` reproduces the original global table for
//!   ablations.
//! * [`policy::MonitoringPolicy`] — which calls are locksteped (everything,
//!   only security-sensitive calls, or nothing), matching the policy range
//!   evaluated in §5.1; [`policy::CallDisposition`] resolves a call's full
//!   lockstep/replicate/order treatment in one step.
//! * [`divergence`] — the comparison logic and the report produced when
//!   variants disagree.
//! * [`mvee::Mvee`] — the front end that wires a simulated kernel, a
//!   synchronization agent and a monitor together and hands out per-variant
//!   gateways.
//! * [`port::ThreadPort`] — the per-(variant, thread) syscall handle:
//!   acquired once, it caches the thread's shard binding (resolved through
//!   the [`config::Placement`] policy), sequence counter, agent context and
//!   deferred-comparison queue, turning thread identity into a type instead
//!   of a per-call `(variant, thread)` convention.
//! * [`async_port::AsyncThreadPort`] — the asynchronous transport: paired
//!   per-port submission/completion rings (virtio split-queue style), so a
//!   variant thread deposits a call descriptor and runs ahead while the
//!   monitor compares in the background.  Selected via
//!   [`config::Transport`]; calls the policy marks synchronous still block
//!   at the reap point.
//! * [`poller::PollerPool`] — polling monitor shards: with
//!   `Pollers::Pool(n)` a fixed set of `n` poller threads drains every
//!   port's rings through the lockstep table's non-blocking try/poll
//!   rendezvous, capping monitor-side threads at `n` instead of
//!   variants×threads (`Pollers::PerPort` keeps a dedicated gateway worker
//!   per port as the ablation baseline).
//! * [`config::MveeConfig`] — the one shared tuning block (policy, agent,
//!   transport, shards, batch, placement, timeout) every front end embeds.
//! * [`journal`] — the divergence journal: record a run's rendezvous
//!   schedule, arrival order and replicated outcomes into a CRC-protected
//!   binary stream, replay it offline to re-derive the verdict (same
//!   first-mismatch slot and variant) with zero live variants.
//! * [`remote`] — the distributed deployment: variant 0 becomes a *leader*
//!   that executes through a [`remote::LeaderPort`] and streams CRC-framed
//!   monitoring records over a byte channel ([`remote::Duplex`]: in-proc
//!   pipes, Unix socketpair or TCP loopback) to a *follower* monitor that
//!   compares asynchronously, acknowledges, and reports field-identical
//!   divergence verdicts back.  Selected via `Transport::Remote`.
//!
//! The crate deliberately knows nothing about *how* variants execute; the
//! `mvee-variant` crate drives real OS threads through the gateway.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod async_port;
pub mod config;
pub mod divergence;
pub mod frame;
pub mod journal;
pub mod lockstep;
pub mod monitor;
pub mod mvee;
pub mod ordering;
pub mod policy;
pub mod poller;
pub mod port;
pub mod remote;
pub mod snapshot;

pub use async_port::{AsyncThreadPort, SubmitOutcome, Ticket};
pub use config::{MveeConfig, Placement, Pollers, RecoveryPolicy, RemoteChannel, Transport};
pub use divergence::{DivergenceKind, DivergenceReport};
pub use journal::{
    Journal, JournalError, JournalMode, JournalRecorder, RecoveredJournal, ReplayError, ReplayedRun,
};
pub use monitor::{Monitor, MonitorConfig, MonitorError, MonitorStats};
pub use mvee::{Mvee, MveeBuilder, RespawnError, RespawnReport, VariantGateway};
pub use ordering::SyscallOrderingClock;
pub use policy::MonitoringPolicy;
pub use poller::PollerPool;
pub use port::ThreadPort;
pub use remote::{
    Duplex, Follower, FollowerHandle, LeaderPort, PeerFailure, PeerFailureKind, RemoteLeader,
    RemotePeer,
};
pub use snapshot::{SnapshotError, SnapshotRecord, SnapshotStore};
