//! The sharded lockstep rendezvous and result-replication table.
//!
//! Every monitored call of a variant thread maps to a *slot*, keyed by the
//! logical thread index and the thread's per-thread call sequence number.
//! The slot is where the monitor implements the two cross-variant
//! interactions the paper describes:
//!
//! * **Lockstep comparison** — under a lockstep policy, no variant may
//!   proceed past the call until all variants have arrived at the same slot
//!   with an equivalent call ([`LockstepTable::arrive`]).
//! * **Result replication** — for I/O calls the master executes the call once
//!   and publishes the outcome into the slot
//!   ([`LockstepTable::publish_outcome`]); slave variants block until the
//!   outcome is available ([`LockstepTable::wait_outcome`]).
//!
//! # Sharding
//!
//! A slot is only ever touched by the copies of one logical thread across the
//! variants (the key's thread index is assigned identically in every
//! variant).  The table exploits this: slots are partitioned by logical
//! thread index into [`LockstepTable::shard_count`] independent *shards*,
//! each with its own mutex-protected map and condition variable.  Threads
//! whose indices fall into different shards never contend on the same lock,
//! which is what lets the monitor scale to many-variant (8–16), many-thread
//! runs instead of funnelling every compared call through one global lock.
//! `shards = 1` reproduces the original single-table behaviour exactly and is
//! kept for apples-to-apples ablations (`ablation_sharding` bench).
//!
//! # Poisoning
//!
//! Divergence aborts are flagged in a single [`AtomicBool`], so the hot-path
//! check in every rendezvous loop is a lock-free load.  [`LockstepTable::
//! poison`] then broadcasts shard by shard — briefly taking one shard lock at
//! a time so a waiter between its poison check and its condvar wait cannot
//! miss the wake-up — rather than serializing all shards behind a global
//! poisoned mutex.
//!
//! # Batching
//!
//! The per-call rendezvous cost is one shard-lock acquisition plus one
//! condvar round per compared call.  For syscall-dense phases the monitor
//! amortizes that cost with [`LockstepTable::arrive_batch`]: a variant
//! thread deposits a bounded block of pending ([`SlotKey`],
//! [`ComparisonKey`]) pairs — a [`BatchArrival`] each — under a *single*
//! shard-lock acquisition and resolves them as a unit.  Every key still gets
//! its own [`ArrivalResult`], so a mismatch in the middle of a batch reports
//! the exact offending slot, and the other keys of the batch resolve
//! independently, exactly as a sequence of single [`LockstepTable::arrive`]
//! calls would.  All keys of a batch must belong to one logical thread (and
//! therefore one shard); this is what a per-thread deferred-comparison queue
//! produces naturally.
//!
//! # Slot lifetime
//!
//! Slots are reclaimed once every variant has consumed them **and** no
//! waiter still holds a reference.  Each blocked `arrive` (and each
//! unresolved key of an `arrive_batch`) registers in the slot's waiter
//! refcount, so a slot can never vanish underneath a waiter that is about to
//! re-inspect it; a late waiter always observes a clean
//! `Consistent`/`Mismatch`/`Poisoned` result instead of panicking on a
//! vanished slot.  Every registration is released **exactly once** — a key
//! that resolves before its batch's deadline must not be released again on
//! the timeout path — and the release site doubles as the reclaim check.
//! The table's size stays bounded by the number of in-flight calls, not by
//! the length of the execution.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard};

use mvee_kernel::syscall::{ComparisonKey, SyscallOutcome};
use mvee_sync_agent::guards::EventCount;

use crate::divergence::first_mismatch;

/// Identifies a monitored call: (logical thread, per-thread sequence number).
pub type SlotKey = (usize, u64);

/// Default number of rendezvous shards.
///
/// Eight shards keep threads of different thread groups off each other's
/// locks for the workloads in this repository (up to 16 variants × dozens of
/// threads) without wasting memory on mostly-empty maps.
pub const DEFAULT_SHARDS: usize = 8;

/// Upper bound on the number of keys one [`LockstepTable::arrive_batch`]
/// call may deposit.
///
/// The bound keeps a single shard-lock hold (all deposits happen under one
/// acquisition) and the per-wake-up resolution scan O(small); the monitor
/// clamps its batch knob to this value.
pub const MAX_BATCH: usize = 1024;

/// One pending comparison of a batched rendezvous: the slot it belongs to
/// and the key the depositing variant presents there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchArrival {
    /// The monitored call's slot.
    pub key: SlotKey,
    /// The depositing variant's comparison key for that call.
    pub cmp: ComparisonKey,
}

/// Result of a lockstep arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrivalResult {
    /// All variants arrived with equivalent calls.
    Consistent,
    /// A variant arrived with a different call; the tuple holds
    /// (diverging variant index, master key, diverging key).
    Mismatch(usize, ComparisonKey, ComparisonKey),
    /// Not every variant arrived before the timeout; the vector lists the
    /// variants that did arrive.
    Timeout(Vec<usize>),
    /// The table was poisoned because divergence was detected elsewhere.
    Poisoned,
}

#[derive(Debug, Default)]
struct Slot {
    keys: Vec<Option<ComparisonKey>>,
    outcome: Option<SyscallOutcome>,
    timestamp: Option<u64>,
    /// How many consumptions have been recorded (the reclaim criterion for
    /// tables too wide for the mask, which never quarantine).
    consumed: usize,
    /// Which variants have consumed this slot, as a bitmask.  Kept
    /// per-variant so a quarantine sweep can erase the victim's credit:
    /// an anonymous counter would let a swept variant's in-flight
    /// consumption count toward the *survivors'* quota and reclaim the
    /// slot before a survivor read its outcome.
    consumed_mask: u64,
    mismatch: bool,
    /// Number of `arrive` calls currently blocked on this slot.  The slot is
    /// only reclaimed when this drops to zero (see module docs).
    waiters: usize,
    /// How many variants this slot waits for: the live-variant count at slot
    /// creation.  Equal to the table's variant count until a quarantine
    /// shrinks the expected-arrival set (see
    /// [`LockstepTable::quarantine`]).
    expected: usize,
    /// Which variants this slot expects, as a bitmask (valid for tables of
    /// up to 64 variants; larger tables never quarantine).  Captured from
    /// the table's active mask at slot creation and extended when a
    /// re-admitted variant deposits into a pre-existing slot.
    mask: u64,
}

impl Slot {
    fn new(variants: usize, mask: u64) -> Self {
        let expected = if variants >= 64 {
            variants
        } else {
            mask.count_ones() as usize
        };
        Slot {
            keys: vec![None; variants],
            outcome: None,
            timestamp: None,
            consumed: 0,
            consumed_mask: 0,
            mismatch: false,
            waiters: 0,
            expected,
            mask,
        }
    }

    fn arrived(&self) -> usize {
        self.keys.iter().filter(|k| k.is_some()).count()
    }

    /// Whether every expected variant has consumed the slot.  Narrow tables
    /// compare the per-variant masks; wide tables (≥ 64 variants, which
    /// never quarantine) fall back to the counter.
    fn fully_consumed(&self) -> bool {
        if self.mask == u64::MAX {
            self.consumed >= self.expected
        } else {
            self.mask & !self.consumed_mask == 0
        }
    }

    /// Records `variant`'s membership in the expected-arrival set (idempotent)
    /// and deposits its comparison key.  Membership growth happens when a
    /// re-admitted variant reaches a slot created while it was quarantined.
    fn deposit(&mut self, variant: usize, cmp: ComparisonKey) {
        let bit = variant_bit(variant);
        if bit != 0 && self.mask & bit == 0 {
            self.mask |= bit;
            self.expected += 1;
        }
        self.keys[variant] = Some(cmp);
    }
}

/// The active-mask bit of a variant; zero for indices the 64-bit mask cannot
/// name (such variants are treated as permanently active — quarantine
/// asserts the table is at most 64 variants wide).
#[inline]
fn variant_bit(variant: usize) -> u64 {
    1u64.checked_shl(variant as u32).unwrap_or(0)
}

/// The all-active mask for a table of `variants` variants.
#[inline]
fn full_mask(variants: usize) -> u64 {
    if variants >= 64 {
        u64::MAX
    } else {
        (1u64 << variants) - 1
    }
}

/// One independent partition of the rendezvous table.
#[derive(Debug)]
struct Shard {
    slots: Mutex<HashMap<SlotKey, Slot>>,
    changed: Condvar,
}

impl Shard {
    fn new() -> Self {
        Shard {
            slots: Mutex::new(HashMap::new()),
            changed: Condvar::new(),
        }
    }
}

/// Wake signal shared between the rendezvous table and a polling monitor
/// shard ([`crate::poller`]).
///
/// A poller parks only when every ring it serves is empty and every
/// in-flight arrival is pending; anything that could change either — a ring
/// push, a rendezvous deposit, an outcome publication, poison — calls
/// [`PollWaker::raise`].  The epoch counter lets the poller detect a raise
/// that lands between its idle check and its park (snapshot the epoch, park
/// on `epoch changed || work visible`), closing the lost-wakeup window
/// without holding any lock across the park.
#[derive(Debug, Default)]
pub struct PollWaker {
    /// Bumped on every raise; pollers snapshot it before deciding to park.
    epoch: AtomicU64,
    /// The parking target.
    events: EventCount,
}

impl PollWaker {
    /// Creates a waker with epoch zero and no parked poller.
    pub fn new() -> Self {
        PollWaker::default()
    }

    /// Signals that state a poller may be waiting on has changed: bumps the
    /// epoch and wakes a parked poller, if any.
    pub fn raise(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
        self.events.notify();
    }

    /// The current raise epoch.  A poller snapshots this before its idle
    /// check; a change since the snapshot means a raise raced the check.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The event count a poller parks on.
    pub fn events(&self) -> &EventCount {
        &self.events
    }
}

/// The sharded rendezvous / replication table shared by all monitor threads.
#[derive(Debug)]
pub struct LockstepTable {
    variants: usize,
    /// Which variants are currently expected at new slots, as a bitmask.
    /// All bits set for the full quorum; [`LockstepTable::quarantine`]
    /// clears a bit, [`LockstepTable::readmit`] restores it.  Tables wider
    /// than 64 variants keep the mask saturated and never quarantine.
    active_mask: AtomicU64,
    shards: Box<[Shard]>,
    /// Optional thread→shard binding map (indexed `thread % len`), supplied
    /// by the monitor when a non-round-robin placement policy is configured.
    /// `None` keeps the historical `thread % shards` binding.
    placement_map: Option<Box<[usize]>>,
    poisoned: AtomicBool,
    /// Registered polling-shard wakers, raised on every deposit, outcome
    /// publication and poison.  Empty (and bypassed via `observed`) unless
    /// a poller pool is wired up, so the sync and per-port transports pay
    /// one relaxed load, nothing more.
    observers: Mutex<Vec<Arc<PollWaker>>>,
    observed: AtomicBool,
    /// Divergence-journal sink: every deposit and outcome publication is
    /// recorded here when the run is journaled (see [`crate::journal`]).
    /// The journal's mutex is a leaf lock — taken under the shard lock,
    /// never the other way around.
    journal: Option<Arc<crate::journal::JournalRecorder>>,
}

impl LockstepTable {
    /// Creates a table for `variants` variants with [`DEFAULT_SHARDS`]
    /// rendezvous shards.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is zero.
    pub fn new(variants: usize) -> Self {
        Self::with_shards(variants, DEFAULT_SHARDS)
    }

    /// Creates a table for `variants` variants partitioned into `shards`
    /// independent shards.  `shards = 1` reproduces the behaviour of the
    /// original unsharded table.
    ///
    /// # Panics
    ///
    /// Panics if `variants` or `shards` is zero.
    pub fn with_shards(variants: usize, shards: usize) -> Self {
        assert!(variants > 0, "need at least one variant");
        assert!(shards > 0, "need at least one shard");
        LockstepTable {
            variants,
            active_mask: AtomicU64::new(full_mask(variants)),
            shards: (0..shards).map(|_| Shard::new()).collect(),
            placement_map: None,
            poisoned: AtomicBool::new(false),
            observers: Mutex::new(Vec::new()),
            observed: AtomicBool::new(false),
            journal: None,
        }
    }

    /// Installs the divergence-journal sink; the monitor wires this at
    /// construction, before any port can deposit.
    pub(crate) fn set_journal(&mut self, journal: Arc<crate::journal::JournalRecorder>) {
        self.journal = Some(journal);
    }

    /// Records a deposit into the journal, when one is attached.  Called
    /// under the shard lock, so the journal's global arrival order embeds
    /// each shard's deposit order.
    #[inline]
    fn journal_arrival(&self, key: SlotKey, variant: usize, cmp: &ComparisonKey) {
        if let Some(journal) = &self.journal {
            journal.record_arrival(variant, key.0, key.1, self.shard_of(key.0), cmp);
        }
    }

    /// [`with_shards`](Self::with_shards) plus an explicit thread→shard
    /// binding map: thread `t`'s slots live in shard `map[t % map.len()]`.
    /// The monitor derives the map from its
    /// [`Placement`](crate::config::Placement) policy so the rendezvous
    /// lock, the ordering clock and the stat lane of a thread all share one
    /// shard binding.
    ///
    /// # Panics
    ///
    /// Panics if the map is empty or names a shard `>= shards`.
    pub fn with_placement_map(variants: usize, shards: usize, map: Vec<usize>) -> Self {
        assert!(!map.is_empty(), "placement map must not be empty");
        assert!(
            map.iter().all(|&s| s < shards),
            "placement map names a shard out of range"
        );
        let mut table = Self::with_shards(variants, shards);
        table.placement_map = Some(map.into_boxed_slice());
        table
    }

    /// Number of variants this table coordinates.
    pub fn variants(&self) -> usize {
        self.variants
    }

    /// Number of independent rendezvous shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a logical thread's slots live in: the placement map
    /// if one was supplied, `thread % shards` otherwise.
    pub fn shard_of(&self, thread: usize) -> usize {
        match &self.placement_map {
            Some(map) => map[thread % map.len()],
            None => thread % self.shards.len(),
        }
    }

    fn shard(&self, key: SlotKey) -> &Shard {
        &self.shards[self.shard_of(key.0)]
    }

    /// Number of live (unreclaimed) slots across all shards; used by tests to
    /// verify cleanup.
    pub fn live_slots(&self) -> usize {
        self.shards.iter().map(|s| s.slots.lock().len()).sum()
    }

    /// Live slot count per shard, for tests and the sharding ablation.
    pub fn live_slots_per_shard(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.slots.lock().len()).collect()
    }

    /// The variants currently recorded as arrived at `key`, for divergence
    /// reports.  Purely observational: it does not create a slot, register
    /// a waiter or disturb reclamation; an absent slot reads as no
    /// arrivals.
    pub fn arrivals(&self, key: SlotKey) -> Vec<usize> {
        self.shard(key)
            .slots
            .lock()
            .get(&key)
            .map(Self::arrived_variants)
            .unwrap_or_default()
    }

    /// Marks the table as poisoned and wakes every waiter.
    ///
    /// Called when divergence has been detected so that threads blocked in a
    /// rendezvous or waiting for a replicated result abort promptly instead
    /// of running into their timeouts.  The flag is a single atomic store;
    /// the wake-up is broadcast shard by shard (each shard lock is taken
    /// briefly, one at a time, never all together) so a poisoning thread
    /// cannot stall behind long-held rendezvous locks in unrelated shards.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        for shard in self.shards.iter() {
            // Taking (and immediately releasing) the shard lock before the
            // broadcast closes the window where a waiter has checked the
            // poison flag but not yet parked on the condvar.
            drop(shard.slots.lock());
            shard.changed.notify_all();
        }
        self.notify_observers();
    }

    /// Whether the table has been poisoned.  Lock-free.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Whether `variant` is in the expected-arrival set.  Lock-free.
    pub fn is_active(&self, variant: usize) -> bool {
        let bit = variant_bit(variant);
        bit == 0 || self.active_mask.load(Ordering::SeqCst) & bit != 0
    }

    /// Number of live (non-quarantined) variants.
    pub fn active_count(&self) -> usize {
        if self.variants >= 64 {
            self.variants
        } else {
            self.active_mask.load(Ordering::SeqCst).count_ones() as usize
        }
    }

    /// The live variants, in index order.
    pub fn active_variants(&self) -> Vec<usize> {
        (0..self.variants).filter(|&v| self.is_active(v)).collect()
    }

    /// Drops `victim` from the table's expected-arrival set: the
    /// degraded-quorum mode behind
    /// [`RecoveryPolicy::Quarantine`](crate::config::RecoveryPolicy).
    ///
    /// New slots no longer expect the victim; every existing slot sheds the
    /// victim's membership, its deposited key, and — when the victim's key
    /// was the only disagreeing one — its mismatch flag, so in-flight
    /// waiters re-resolve against the reduced variant set with exactly the
    /// verdicts a run that never included the victim would produce.  Slots
    /// the removal leaves fully consumed and unreferenced are reclaimed on
    /// the spot.  Every shard is then broadcast-woken so blocked survivors
    /// re-inspect their slots immediately instead of running into their
    /// deadlines.
    ///
    /// Returns `false` when the victim was already quarantined (the sweep
    /// is idempotent; only the first caller performs it).
    ///
    /// # Panics
    ///
    /// Panics on tables wider than 64 variants (the active mask cannot name
    /// the members) and on an out-of-range victim.
    pub fn quarantine(&self, victim: usize) -> bool {
        assert!(
            self.variants <= 64,
            "quarantine requires a table of at most 64 variants"
        );
        assert!(victim < self.variants, "quarantine victim out of range");
        let bit = variant_bit(victim);
        let prev = self.active_mask.fetch_and(!bit, Ordering::SeqCst);
        if prev & bit == 0 {
            return false;
        }
        for shard in self.shards.iter() {
            let mut slots = shard.slots.lock();
            slots.retain(|_, slot| {
                if slot.mask & bit != 0 {
                    slot.mask &= !bit;
                    slot.expected -= 1;
                    slot.keys[victim] = None;
                    // Erase the victim's consumption credit too: its
                    // membership is gone, so a consume it already made must
                    // not count toward the survivors' reclaim quota.
                    slot.consumed_mask &= !bit;
                    if slot.mismatch && first_mismatch(&slot.keys).is_none() {
                        slot.mismatch = false;
                    }
                }
                // The removal may leave a slot fully consumed with no
                // waiters — the state `consume` reclaims on.
                !(slot.waiters == 0 && slot.expected > 0 && slot.fully_consumed())
            });
            shard.changed.notify_all();
        }
        self.notify_observers();
        true
    }

    /// Restores a quarantined variant to the expected-arrival set: slots
    /// created from now on expect it again, and a deposit it makes into an
    /// older, still-open slot re-registers its membership there.  Existing
    /// slots it never reaches stay on the reduced quorum.  The caller
    /// (`Mvee::respawn_variant`) re-admits only at a quiescent batch
    /// boundary, with the victim's sequence numbers fast-forwarded to the
    /// survivors' frontier.
    pub fn readmit(&self, variant: usize) {
        assert!(variant < self.variants, "readmit variant out of range");
        self.active_mask
            .fetch_or(variant_bit(variant), Ordering::SeqCst);
        for shard in self.shards.iter() {
            drop(shard.slots.lock());
            shard.changed.notify_all();
        }
        self.notify_observers();
    }

    /// Registers a polling-shard waker: from now on every deposit, outcome
    /// publication and poison [`raise`](PollWaker::raise)s it, so a poller
    /// parked on the waker re-examines its pending arrivals.
    pub fn register_observer(&self, waker: Arc<PollWaker>) {
        self.observers.lock().push(waker);
        self.observed.store(true, Ordering::Release);
    }

    /// Raises every registered waker.  The no-observer fast path (sync and
    /// per-port transports) is a single relaxed-ish load.
    fn notify_observers(&self) {
        if !self.observed.load(Ordering::Acquire) {
            return;
        }
        for waker in self.observers.lock().iter() {
            waker.raise();
        }
    }

    /// The result a fully or partially arrived slot currently resolves to,
    /// or `None` while the rendezvous is still incomplete and clean.
    fn slot_result(&self, slot: &Slot) -> Option<ArrivalResult> {
        if slot.mismatch {
            let (idx, master, other) =
                first_mismatch(&slot.keys).expect("mismatch flag implies a mismatch");
            return Some(ArrivalResult::Mismatch(idx, master, other));
        }
        if slot.arrived() >= slot.expected {
            return Some(match first_mismatch(&slot.keys) {
                Some((idx, master, other)) => ArrivalResult::Mismatch(idx, master, other),
                None => ArrivalResult::Consistent,
            });
        }
        None
    }

    /// The variants that have arrived at `slot`, for a timeout report.
    fn arrived_variants(slot: &Slot) -> Vec<usize> {
        slot.keys
            .iter()
            .enumerate()
            .filter_map(|(i, k)| k.as_ref().map(|_| i))
            .collect()
    }

    /// Releases one waiter registration on `key` and reclaims the slot if it
    /// is fully consumed and unreferenced.  Must be called exactly once per
    /// registration (see the module docs on slot lifetime).
    fn release_waiter(&self, slots: &mut MutexGuard<'_, HashMap<SlotKey, Slot>>, key: SlotKey) {
        if let Some(slot) = slots.get_mut(&key) {
            slot.waiters -= 1;
            if slot.waiters == 0 && slot.fully_consumed() {
                slots.remove(&key);
            }
        }
    }

    /// A fresh slot expecting the currently active variant set.
    fn new_slot(&self) -> Slot {
        Slot::new(self.variants, self.active_mask.load(Ordering::SeqCst))
    }

    /// Registers variant `variant`'s arrival at `key` with comparison key
    /// `cmp` and waits until every expected variant has arrived (lockstep).
    pub fn arrive(
        &self,
        key: SlotKey,
        variant: usize,
        cmp: ComparisonKey,
        timeout: Duration,
    ) -> ArrivalResult {
        self.arrive_inner(key, variant, cmp, timeout, true)
    }

    /// Re-registers an arrival whose first verdict was superseded by a
    /// quarantine: identical to [`arrive`](Self::arrive) — the deposit is
    /// idempotent, so a key already present is simply re-presented — except
    /// that the deadline restarts and nothing is journaled (the original
    /// arrival already was; the journal keeps the pre-quarantine schedule).
    pub fn rearrive(
        &self,
        key: SlotKey,
        variant: usize,
        cmp: ComparisonKey,
        timeout: Duration,
    ) -> ArrivalResult {
        self.arrive_inner(key, variant, cmp, timeout, false)
    }

    fn arrive_inner(
        &self,
        key: SlotKey,
        variant: usize,
        cmp: ComparisonKey,
        timeout: Duration,
        journal: bool,
    ) -> ArrivalResult {
        let deadline = Instant::now() + timeout;
        let shard = self.shard(key);
        let mut slots = shard.slots.lock();
        if !self.is_active(variant) {
            // A quarantined lane's late arrival: refuse the deposit (it is
            // no longer part of any expected set) with the same verdict a
            // poisoned table reports — the caller shuts the lane down.
            return ArrivalResult::Poisoned;
        }
        if journal {
            self.journal_arrival(key, variant, &cmp);
        }
        let slot = slots.entry(key).or_insert_with(|| self.new_slot());
        slot.deposit(variant, cmp);
        if let Some(result) = self.slot_result(slot) {
            if matches!(result, ArrivalResult::Mismatch(..)) {
                slot.mismatch = true;
            }
            shard.changed.notify_all();
            drop(slots);
            self.notify_observers();
            return result;
        }
        // Not complete yet: register as a waiter so the slot cannot be
        // reclaimed while this thread sleeps, wake the shard (another variant
        // may be waiting for our arrival on a *different* slot of this
        // shard's map under the same condvar), then block.
        slot.waiters += 1;
        shard.changed.notify_all();
        self.notify_observers();
        let result = self.wait_for_rendezvous(shard, &mut slots, key, deadline);
        // The registration is released exactly once, here, whatever path
        // `wait_for_rendezvous` returned through.
        self.release_waiter(&mut slots, key);
        result
    }

    /// The blocking half of [`arrive`](Self::arrive): waits until the slot
    /// resolves, the table is poisoned, or the deadline passes.  Called with
    /// the slot's waiter refcount already taken; the caller releases it.
    fn wait_for_rendezvous(
        &self,
        shard: &Shard,
        slots: &mut MutexGuard<'_, HashMap<SlotKey, Slot>>,
        key: SlotKey,
        deadline: std::time::Instant,
    ) -> ArrivalResult {
        loop {
            if self.is_poisoned() {
                return ArrivalResult::Poisoned;
            }
            let Some(slot) = slots.get(&key) else {
                // Defensive: the waiter refcount makes this unreachable, but
                // a vanished slot means the rendezvous completed and was
                // consumed, so report the benign outcome instead of
                // panicking.
                return ArrivalResult::Consistent;
            };
            if let Some(result) = self.slot_result(slot) {
                return result;
            }
            if shard.changed.wait_until(slots, deadline).timed_out() {
                let Some(slot) = slots.get(&key) else {
                    return ArrivalResult::Consistent;
                };
                if let Some(result) = self.slot_result(slot) {
                    return result;
                }
                return ArrivalResult::Timeout(Self::arrived_variants(slot));
            }
        }
    }

    /// Deposits a whole block of pending comparisons under a **single**
    /// shard-lock acquisition and resolves them as a unit.
    ///
    /// Semantically equivalent to calling [`arrive`](Self::arrive) once per
    /// element of `batch` (each key receives its own [`ArrivalResult`], and a
    /// mismatch on one key does not disturb the verdicts of the others), but
    /// the lock/condvar cost is paid once per batch instead of once per call
    /// — the amortization the `ablation_batching` benchmark measures.  The
    /// one semantic difference is the deadline: the whole batch shares one
    /// `timeout` instead of each key restarting it, so keys a peer never
    /// arrives at report [`ArrivalResult::Timeout`] after a single deadline.
    ///
    /// Returns one result per batch element, in batch order.  Keys that
    /// resolve while later ones are still pending keep their verdicts; their
    /// waiter registrations are released exactly once on exit, never again on
    /// the timeout path.
    ///
    /// # Panics
    ///
    /// Panics if the batch exceeds [`MAX_BATCH`], spans more than one shard
    /// (all keys must share one logical thread's shard — a per-thread
    /// deferred-comparison queue guarantees this), or contains duplicate
    /// keys.
    pub fn arrive_batch(
        &self,
        variant: usize,
        batch: &[BatchArrival],
        timeout: Duration,
    ) -> Vec<ArrivalResult> {
        self.arrive_batch_inner(variant, batch, timeout, true)
    }

    /// The batched twin of [`rearrive`](Self::rearrive): re-deposits the
    /// given keys with a fresh shared deadline, journaling nothing.
    pub fn rearrive_batch(
        &self,
        variant: usize,
        batch: &[BatchArrival],
        timeout: Duration,
    ) -> Vec<ArrivalResult> {
        self.arrive_batch_inner(variant, batch, timeout, false)
    }

    fn arrive_batch_inner(
        &self,
        variant: usize,
        batch: &[BatchArrival],
        timeout: Duration,
        journal: bool,
    ) -> Vec<ArrivalResult> {
        assert!(
            batch.len() <= MAX_BATCH,
            "batch of {} exceeds MAX_BATCH ({MAX_BATCH})",
            batch.len()
        );
        if batch.is_empty() {
            return Vec::new();
        }
        let shard_idx = self.shard_of(batch[0].key.0);
        assert!(
            batch.iter().all(|a| self.shard_of(a.key.0) == shard_idx),
            "a batch must stay within one rendezvous shard"
        );
        // Hard assert, like the bound and shard checks above: the documented
        // contract promises a panic, and a silent duplicate would overwrite
        // the first deposit and double-register a waiter.  O(n²) on n ≤
        // MAX_BATCH keys, paid once per flush, off the per-call hot path.
        assert!(
            (1..batch.len()).all(|i| batch[..i].iter().all(|a| a.key != batch[i].key)),
            "a batch must not deposit the same slot twice"
        );
        let deadline = Instant::now() + timeout;
        let shard = &self.shards[shard_idx];
        let mut slots = shard.slots.lock();
        if !self.is_active(variant) {
            // Quarantined lane: refuse the whole batch, as `arrive` would.
            return vec![ArrivalResult::Poisoned; batch.len()];
        }

        // Deposit every key under the one lock hold.  Keys whose rendezvous
        // completes right here resolve immediately; the rest register a
        // waiter each so their slots survive the wait.
        let mut results: Vec<Option<ArrivalResult>> = vec![None; batch.len()];
        let mut holds_waiter = vec![false; batch.len()];
        let mut unresolved = 0usize;
        for (i, arrival) in batch.iter().enumerate() {
            if journal {
                self.journal_arrival(arrival.key, variant, &arrival.cmp);
            }
            let slot = slots.entry(arrival.key).or_insert_with(|| self.new_slot());
            slot.deposit(variant, arrival.cmp.clone());
            if let Some(result) = self.slot_result(slot) {
                if matches!(result, ArrivalResult::Mismatch(..)) {
                    slot.mismatch = true;
                }
                results[i] = Some(result);
            } else {
                slot.waiters += 1;
                holds_waiter[i] = true;
                unresolved += 1;
            }
        }
        shard.changed.notify_all();
        self.notify_observers();

        while unresolved > 0 {
            if self.is_poisoned() {
                for r in results.iter_mut().filter(|r| r.is_none()) {
                    *r = Some(ArrivalResult::Poisoned);
                }
                break;
            }
            // Resolve every key that completed since the last wake-up.
            for (i, arrival) in batch.iter().enumerate() {
                if results[i].is_some() {
                    continue;
                }
                let resolved = match slots.get(&arrival.key) {
                    // Defensive, as in `wait_for_rendezvous`: the waiter
                    // refcount makes a vanished slot unreachable.
                    None => Some(ArrivalResult::Consistent),
                    Some(slot) => self.slot_result(slot),
                };
                if let Some(result) = resolved {
                    results[i] = Some(result);
                    unresolved -= 1;
                }
            }
            if unresolved == 0 {
                break;
            }
            if shard.changed.wait_until(&mut slots, deadline).timed_out() {
                // Keys that completed right at the wire still resolve; the
                // rest report which variants did arrive.
                for (i, arrival) in batch.iter().enumerate() {
                    if results[i].is_some() {
                        continue;
                    }
                    results[i] = Some(match slots.get(&arrival.key) {
                        None => ArrivalResult::Consistent,
                        Some(slot) => self.slot_result(slot).unwrap_or_else(|| {
                            ArrivalResult::Timeout(Self::arrived_variants(slot))
                        }),
                    });
                }
                break;
            }
        }

        // Release every registration exactly once — including the ones whose
        // keys resolved long before the deadline — and reclaim on the way
        // out.  This is the single release site of the batch path.
        for (i, arrival) in batch.iter().enumerate() {
            if holds_waiter[i] {
                self.release_waiter(&mut slots, arrival.key);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every batch key resolves before return"))
            .collect()
    }

    /// Publishes the master's outcome (and, for ordered calls, the syscall
    /// ordering timestamp) into the slot and wakes waiting slaves.
    pub fn publish_outcome(&self, key: SlotKey, outcome: SyscallOutcome, timestamp: Option<u64>) {
        let shard = self.shard(key);
        let mut slots = shard.slots.lock();
        if let Some(journal) = &self.journal {
            journal.record_publish(key.0, key.1, timestamp, &outcome);
        }
        let slot = slots.entry(key).or_insert_with(|| self.new_slot());
        slot.outcome = Some(outcome);
        slot.timestamp = timestamp;
        shard.changed.notify_all();
        drop(slots);
        self.notify_observers();
    }

    /// Blocks until the master has published an outcome for `key`.
    ///
    /// Returns `None` on timeout or when the table is poisoned.
    pub fn wait_outcome(
        &self,
        key: SlotKey,
        timeout: Duration,
    ) -> Option<(SyscallOutcome, Option<u64>)> {
        self.wait_outcome_until(key, timeout, || false)
    }

    /// [`wait_outcome`](Self::wait_outcome) with an early-abort predicate,
    /// re-checked on every wake-up.  A quarantine broadcast-wakes every
    /// shard, so a slave parked on a dead publisher's slot passes through
    /// `abort` immediately — the monitor uses this to fail replication over
    /// to the new master without spending the whole rendezvous deadline.
    /// Returns `None` when `abort` fired and no outcome had been published.
    pub fn wait_outcome_until(
        &self,
        key: SlotKey,
        timeout: Duration,
        abort: impl Fn() -> bool,
    ) -> Option<(SyscallOutcome, Option<u64>)> {
        let deadline = std::time::Instant::now() + timeout;
        let shard = self.shard(key);
        let mut slots = shard.slots.lock();
        loop {
            if self.is_poisoned() {
                return None;
            }
            if let Some(slot) = slots.get(&key) {
                if let Some(outcome) = &slot.outcome {
                    return Some((outcome.clone(), slot.timestamp));
                }
            }
            if abort() {
                return None;
            }
            if shard.changed.wait_until(&mut slots, deadline).timed_out() {
                let slot = slots.get(&key)?;
                let outcome = slot.outcome.clone()?;
                return Some((outcome, slot.timestamp));
            }
        }
    }

    /// Marks `variant`'s use of the slot as finished; the slot is reclaimed
    /// once every expected variant has consumed it and no waiter still
    /// references it.  Consumption is tracked per variant so a quarantined
    /// variant finishing an in-flight call cannot spend a *survivor's*
    /// credit and reclaim the slot under it.
    pub fn consume(&self, key: SlotKey, variant: usize) {
        let shard = self.shard(key);
        let mut slots = shard.slots.lock();
        if let Some(slot) = slots.get_mut(&key) {
            slot.consumed += 1;
            slot.consumed_mask |= variant_bit(variant);
            if slot.fully_consumed() && slot.waiters == 0 {
                slots.remove(&key);
            }
        }
    }

    // --- Poll-mode rendezvous: the non-blocking mirror of the API above ---
    //
    // A polling monitor shard must never sleep inside one port's rendezvous,
    // or a cross-variant circular wait (thread A of v0 and thread B of v1
    // arriving in opposite order) deadlocks it the way it would deadlock a
    // naive blocking drain.  The `try_*` calls deposit exactly like their
    // blocking twins and return `Pending` with a token instead of parking;
    // `poll_*` re-examines a token without sleeping.  Deadlines are fixed at
    // deposit time — precisely where the blocking calls compute theirs — so
    // the `Timeout` verdicts (and their arrived-variant lists) are identical
    // to what the blocking path would report.  A `Pending` token holds the
    // slot's waiter registration; it is released exactly once, by the
    // `poll_*` call that resolves it, so slot reclamation is unchanged.

    /// Deposits variant `variant`'s arrival at `key` without blocking.
    ///
    /// Returns [`TryArrive::Ready`] when the rendezvous resolves at deposit
    /// time (all peers already arrived, a mismatch, or the table is
    /// poisoned) and [`TryArrive::Pending`] otherwise; poll the token with
    /// [`poll_arrival`](Self::poll_arrival).
    pub fn try_arrive(
        &self,
        key: SlotKey,
        variant: usize,
        cmp: ComparisonKey,
        timeout: Duration,
    ) -> TryArrive {
        self.try_arrive_inner(key, variant, cmp, timeout, true)
    }

    /// The poll-mode twin of [`rearrive`](Self::rearrive): re-deposits the
    /// key with a fresh deadline, journaling nothing.
    pub fn try_rearrive(
        &self,
        key: SlotKey,
        variant: usize,
        cmp: ComparisonKey,
        timeout: Duration,
    ) -> TryArrive {
        self.try_arrive_inner(key, variant, cmp, timeout, false)
    }

    fn try_arrive_inner(
        &self,
        key: SlotKey,
        variant: usize,
        cmp: ComparisonKey,
        timeout: Duration,
        journal: bool,
    ) -> TryArrive {
        let deadline = Instant::now() + timeout;
        let shard = self.shard(key);
        let mut slots = shard.slots.lock();
        if !self.is_active(variant) {
            return TryArrive::Ready(ArrivalResult::Poisoned);
        }
        if journal {
            self.journal_arrival(key, variant, &cmp);
        }
        let slot = slots.entry(key).or_insert_with(|| self.new_slot());
        slot.deposit(variant, cmp);
        if let Some(result) = self.slot_result(slot) {
            if matches!(result, ArrivalResult::Mismatch(..)) {
                slot.mismatch = true;
            }
            shard.changed.notify_all();
            drop(slots);
            self.notify_observers();
            return TryArrive::Ready(result);
        }
        slot.waiters += 1;
        shard.changed.notify_all();
        if self.is_poisoned() {
            // Same verdict the blocking path's first wake-up would return;
            // resolve immediately so no token (and no registration) escapes.
            self.release_waiter(&mut slots, key);
            return TryArrive::Ready(ArrivalResult::Poisoned);
        }
        drop(slots);
        self.notify_observers();
        TryArrive::Pending(ArrivalToken { key, deadline })
    }

    /// Checks a pending arrival without sleeping.
    ///
    /// `Ok` resolves the token (releasing its waiter registration) with the
    /// same verdict the blocking [`arrive`](Self::arrive) would have
    /// returned; `Err` hands the still-pending token back.
    pub fn poll_arrival(&self, token: ArrivalToken) -> Result<ArrivalResult, ArrivalToken> {
        let shard = self.shard(token.key);
        let mut slots = shard.slots.lock();
        if self.is_poisoned() {
            self.release_waiter(&mut slots, token.key);
            return Ok(ArrivalResult::Poisoned);
        }
        let resolved = match slots.get(&token.key) {
            // Defensive, as in `wait_for_rendezvous`: the waiter refcount
            // makes a vanished slot unreachable.
            None => Some(ArrivalResult::Consistent),
            Some(slot) => self.slot_result(slot),
        };
        if let Some(result) = resolved {
            self.release_waiter(&mut slots, token.key);
            return Ok(result);
        }
        if Instant::now() >= token.deadline {
            // The slot was just inspected and is incomplete: report which
            // variants did arrive, exactly like the blocking timeout path
            // (whose at-the-wire re-check this poll already performed).
            let arrived = slots
                .get(&token.key)
                .map(Self::arrived_variants)
                .unwrap_or_default();
            self.release_waiter(&mut slots, token.key);
            return Ok(ArrivalResult::Timeout(arrived));
        }
        Err(token)
    }

    /// Deposits a whole block of pending comparisons without blocking: the
    /// poll-mode mirror of [`arrive_batch`](Self::arrive_batch), with the
    /// same single-lock deposit, the same per-key verdicts and the same
    /// shared batch deadline.
    ///
    /// # Panics
    ///
    /// As [`arrive_batch`](Self::arrive_batch): oversized, shard-spanning
    /// or duplicate-key batches panic.
    pub fn try_arrive_batch(
        &self,
        variant: usize,
        batch: &[BatchArrival],
        timeout: Duration,
    ) -> TryBatch {
        self.try_arrive_batch_inner(variant, batch, timeout, true)
    }

    /// The poll-mode twin of [`rearrive_batch`](Self::rearrive_batch):
    /// re-deposits the keys with a fresh shared deadline, journaling
    /// nothing.
    pub fn try_rearrive_batch(
        &self,
        variant: usize,
        batch: &[BatchArrival],
        timeout: Duration,
    ) -> TryBatch {
        self.try_arrive_batch_inner(variant, batch, timeout, false)
    }

    fn try_arrive_batch_inner(
        &self,
        variant: usize,
        batch: &[BatchArrival],
        timeout: Duration,
        journal: bool,
    ) -> TryBatch {
        assert!(
            batch.len() <= MAX_BATCH,
            "batch of {} exceeds MAX_BATCH ({MAX_BATCH})",
            batch.len()
        );
        if batch.is_empty() {
            return TryBatch::Ready(Vec::new());
        }
        let shard_idx = self.shard_of(batch[0].key.0);
        assert!(
            batch.iter().all(|a| self.shard_of(a.key.0) == shard_idx),
            "a batch must stay within one rendezvous shard"
        );
        assert!(
            (1..batch.len()).all(|i| batch[..i].iter().all(|a| a.key != batch[i].key)),
            "a batch must not deposit the same slot twice"
        );
        let deadline = Instant::now() + timeout;
        let shard = &self.shards[shard_idx];
        let mut slots = shard.slots.lock();
        if !self.is_active(variant) {
            return TryBatch::Ready(vec![ArrivalResult::Poisoned; batch.len()]);
        }
        let mut token = BatchToken {
            shard_idx,
            deadline,
            keys: batch.iter().map(|a| a.key).collect(),
            holds_waiter: vec![false; batch.len()],
            results: vec![None; batch.len()],
            unresolved: 0,
        };
        for (i, arrival) in batch.iter().enumerate() {
            if journal {
                self.journal_arrival(arrival.key, variant, &arrival.cmp);
            }
            let slot = slots.entry(arrival.key).or_insert_with(|| self.new_slot());
            slot.deposit(variant, arrival.cmp.clone());
            if let Some(result) = self.slot_result(slot) {
                if matches!(result, ArrivalResult::Mismatch(..)) {
                    slot.mismatch = true;
                }
                token.results[i] = Some(result);
            } else {
                slot.waiters += 1;
                token.holds_waiter[i] = true;
                token.unresolved += 1;
            }
        }
        shard.changed.notify_all();
        if token.unresolved > 0 && self.is_poisoned() {
            for r in token.results.iter_mut().filter(|r| r.is_none()) {
                *r = Some(ArrivalResult::Poisoned);
            }
            token.unresolved = 0;
        }
        if token.unresolved == 0 {
            let results = token.resolve(self, &mut slots);
            drop(slots);
            self.notify_observers();
            return TryBatch::Ready(results);
        }
        drop(slots);
        self.notify_observers();
        TryBatch::Pending(token)
    }

    /// Checks a pending batch without sleeping: resolves every key that
    /// completed since the deposit (or since the last poll), fills
    /// `Poisoned` / `Timeout` verdicts when the table poisons or the batch
    /// deadline passes, and returns `Ok` — releasing every held waiter
    /// registration exactly once — as soon as no key is left unresolved.
    pub fn poll_batch(&self, mut token: BatchToken) -> Result<Vec<ArrivalResult>, BatchToken> {
        let shard = &self.shards[token.shard_idx];
        let mut slots = shard.slots.lock();
        if self.is_poisoned() {
            for r in token.results.iter_mut().filter(|r| r.is_none()) {
                *r = Some(ArrivalResult::Poisoned);
            }
            token.unresolved = 0;
        } else {
            for i in 0..token.keys.len() {
                if token.results[i].is_some() {
                    continue;
                }
                let resolved = match slots.get(&token.keys[i]) {
                    None => Some(ArrivalResult::Consistent),
                    Some(slot) => self.slot_result(slot),
                };
                if let Some(result) = resolved {
                    token.results[i] = Some(result);
                    token.unresolved -= 1;
                }
            }
            if token.unresolved > 0 && Instant::now() >= token.deadline {
                for i in 0..token.keys.len() {
                    if token.results[i].is_some() {
                        continue;
                    }
                    token.results[i] = Some(match slots.get(&token.keys[i]) {
                        None => ArrivalResult::Consistent,
                        Some(slot) => ArrivalResult::Timeout(Self::arrived_variants(slot)),
                    });
                }
                token.unresolved = 0;
            }
        }
        if token.unresolved == 0 {
            return Ok(token.resolve(self, &mut slots));
        }
        Err(token)
    }

    /// Checks for the master's published outcome without blocking.
    ///
    /// Mirrors [`wait_outcome`](Self::wait_outcome): `Ready(Some(..))` when
    /// an outcome is already published, `Ready(None)` when the table is
    /// poisoned, `Pending` otherwise; poll the token with
    /// [`poll_outcome`](Self::poll_outcome).  No waiter registration is
    /// taken — outcome waits never pin a slot, exactly as on the blocking
    /// path.
    pub fn try_wait_outcome(&self, key: SlotKey, timeout: Duration) -> TryOutcome {
        let deadline = Instant::now() + timeout;
        let shard = self.shard(key);
        let slots = shard.slots.lock();
        if self.is_poisoned() {
            return TryOutcome::Ready(None);
        }
        if let Some(slot) = slots.get(&key) {
            if let Some(outcome) = &slot.outcome {
                return TryOutcome::Ready(Some((outcome.clone(), slot.timestamp)));
            }
        }
        TryOutcome::Pending(OutcomeToken { key, deadline })
    }

    /// Checks a pending outcome wait without sleeping.
    ///
    /// `Ok(Some(..))` — the outcome arrived; `Ok(None)` — poisoned or the
    /// deadline passed with nothing published (the verdict blocking
    /// [`wait_outcome`](Self::wait_outcome) reports as `None`); `Err` —
    /// still pending.
    pub fn poll_outcome(
        &self,
        token: OutcomeToken,
    ) -> Result<Option<(SyscallOutcome, Option<u64>)>, OutcomeToken> {
        let shard = self.shard(token.key);
        let slots = shard.slots.lock();
        if self.is_poisoned() {
            return Ok(None);
        }
        if let Some(slot) = slots.get(&token.key) {
            if let Some(outcome) = &slot.outcome {
                return Ok(Some((outcome.clone(), slot.timestamp)));
            }
        }
        if Instant::now() >= token.deadline {
            // The at-the-wire re-check just happened above; nothing was
            // published.
            return Ok(None);
        }
        Err(token)
    }
}

/// Outcome of a non-blocking arrival deposit
/// ([`LockstepTable::try_arrive`]).
#[derive(Debug)]
pub enum TryArrive {
    /// The rendezvous resolved at deposit time.
    Ready(ArrivalResult),
    /// Peers are still missing; poll with
    /// [`LockstepTable::poll_arrival`].
    Pending(ArrivalToken),
}

/// A pending single-slot arrival: holds the slot's waiter registration
/// until a [`LockstepTable::poll_arrival`] call resolves it.  The deadline
/// was fixed when the arrival was deposited, so timeout verdicts match the
/// blocking path's.
#[derive(Debug, PartialEq, Eq)]
pub struct ArrivalToken {
    key: SlotKey,
    deadline: Instant,
}

impl ArrivalToken {
    /// The slot this arrival is waiting on.
    pub fn key(&self) -> SlotKey {
        self.key
    }

    /// When this arrival times out (fixed at deposit).
    pub fn deadline(&self) -> Instant {
        self.deadline
    }
}

/// Outcome of a non-blocking batch deposit
/// ([`LockstepTable::try_arrive_batch`]).
#[derive(Debug)]
pub enum TryBatch {
    /// Every key of the batch resolved at deposit time (in batch order).
    Ready(Vec<ArrivalResult>),
    /// At least one key is still pending; poll with
    /// [`LockstepTable::poll_batch`].
    Pending(BatchToken),
}

/// A pending batched arrival: tracks which keys already resolved (they keep
/// their verdicts) and holds one waiter registration per initially
/// unresolved key, all released by the [`LockstepTable::poll_batch`] call
/// that completes the batch.
#[derive(Debug)]
pub struct BatchToken {
    shard_idx: usize,
    deadline: Instant,
    keys: Vec<SlotKey>,
    holds_waiter: Vec<bool>,
    results: Vec<Option<ArrivalResult>>,
    unresolved: usize,
}

impl BatchToken {
    /// When this batch times out (fixed at deposit).
    pub fn deadline(&self) -> Instant {
        self.deadline
    }

    /// Releases every held waiter registration (the single release site of
    /// the poll-mode batch path) and unwraps the per-key verdicts.
    fn resolve(
        self,
        table: &LockstepTable,
        slots: &mut MutexGuard<'_, HashMap<SlotKey, Slot>>,
    ) -> Vec<ArrivalResult> {
        for (i, key) in self.keys.iter().enumerate() {
            if self.holds_waiter[i] {
                table.release_waiter(slots, *key);
            }
        }
        self.results
            .into_iter()
            .map(|r| r.expect("every batch key resolves before return"))
            .collect()
    }
}

/// Outcome of a non-blocking outcome check
/// ([`LockstepTable::try_wait_outcome`]).
#[derive(Debug)]
pub enum TryOutcome {
    /// Resolved: the published outcome (with its ordering timestamp), or
    /// `None` when the table is poisoned — the same `None` the blocking
    /// [`LockstepTable::wait_outcome`] reports.
    Ready(Option<(SyscallOutcome, Option<u64>)>),
    /// Nothing published yet; poll with [`LockstepTable::poll_outcome`].
    Pending(OutcomeToken),
}

/// A pending outcome wait.  Carries no waiter registration (outcome waits
/// never pin slots); the deadline was fixed when the wait began.
#[derive(Debug, PartialEq, Eq)]
pub struct OutcomeToken {
    key: SlotKey,
    deadline: Instant,
}

impl OutcomeToken {
    /// The slot this wait is watching.
    pub fn key(&self) -> SlotKey {
        self.key
    }

    /// When this wait times out (fixed when the wait began).
    pub fn deadline(&self) -> Instant {
        self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvee_kernel::syscall::{SyscallRequest, Sysno};
    use std::sync::Arc;

    fn cmp(no: Sysno, payload: &[u8]) -> ComparisonKey {
        SyscallRequest::new(no)
            .with_payload(payload)
            .comparison_key()
    }

    #[test]
    fn single_variant_arrival_is_immediately_consistent() {
        let table = LockstepTable::new(1);
        let r = table.arrive(
            (0, 0),
            0,
            cmp(Sysno::Write, b"x"),
            Duration::from_millis(50),
        );
        assert_eq!(r, ArrivalResult::Consistent);
    }

    #[test]
    fn two_variants_rendezvous_and_agree() {
        let table = Arc::new(LockstepTable::new(2));
        let t2 = Arc::clone(&table);
        let handle = std::thread::spawn(move || {
            t2.arrive((0, 0), 1, cmp(Sysno::Open, b""), Duration::from_secs(2))
        });
        std::thread::sleep(Duration::from_millis(10));
        let r0 = table.arrive((0, 0), 0, cmp(Sysno::Open, b""), Duration::from_secs(2));
        let r1 = handle.join().unwrap();
        assert_eq!(r0, ArrivalResult::Consistent);
        assert_eq!(r1, ArrivalResult::Consistent);
    }

    #[test]
    fn mismatched_calls_are_reported_to_both_sides() {
        let table = Arc::new(LockstepTable::new(2));
        let t2 = Arc::clone(&table);
        let handle = std::thread::spawn(move || {
            t2.arrive((0, 0), 1, cmp(Sysno::Mprotect, b""), Duration::from_secs(2))
        });
        std::thread::sleep(Duration::from_millis(10));
        let r0 = table.arrive((0, 0), 0, cmp(Sysno::Write, b"hi"), Duration::from_secs(2));
        let r1 = handle.join().unwrap();
        assert!(matches!(r0, ArrivalResult::Mismatch(1, _, _)));
        assert!(matches!(r1, ArrivalResult::Mismatch(1, _, _)));
    }

    #[test]
    fn missing_variant_causes_timeout_listing_arrivals() {
        let table = LockstepTable::new(2);
        let r = table.arrive(
            (3, 7),
            0,
            cmp(Sysno::Write, b"x"),
            Duration::from_millis(50),
        );
        assert_eq!(r, ArrivalResult::Timeout(vec![0]));
    }

    #[test]
    fn outcome_publication_wakes_waiters() {
        let table = Arc::new(LockstepTable::new(2));
        let t2 = Arc::clone(&table);
        let handle = std::thread::spawn(move || t2.wait_outcome((1, 5), Duration::from_secs(2)));
        std::thread::sleep(Duration::from_millis(10));
        table.publish_outcome((1, 5), SyscallOutcome::ok(42), Some(9));
        let (outcome, ts) = handle.join().unwrap().unwrap();
        assert_eq!(outcome.result, Ok(42));
        assert_eq!(ts, Some(9));
    }

    #[test]
    fn wait_outcome_times_out_when_master_never_publishes() {
        let table = LockstepTable::new(2);
        assert!(table
            .wait_outcome((0, 0), Duration::from_millis(40))
            .is_none());
    }

    #[test]
    fn slots_are_reclaimed_after_all_variants_consume() {
        let table = LockstepTable::new(2);
        table.publish_outcome((0, 0), SyscallOutcome::ok(1), None);
        assert_eq!(table.live_slots(), 1);
        table.consume((0, 0), 0);
        assert_eq!(table.live_slots(), 1);
        table.consume((0, 0), 1);
        assert_eq!(table.live_slots(), 0);
    }

    #[test]
    fn poison_wakes_blocked_arrivals() {
        let table = Arc::new(LockstepTable::new(2));
        let t2 = Arc::clone(&table);
        let handle = std::thread::spawn(move || {
            t2.arrive((0, 0), 0, cmp(Sysno::Write, b"x"), Duration::from_secs(10))
        });
        std::thread::sleep(Duration::from_millis(20));
        table.poison();
        assert_eq!(handle.join().unwrap(), ArrivalResult::Poisoned);
        assert!(table.is_poisoned());
    }

    #[test]
    fn distinct_slots_do_not_interfere() {
        let table = LockstepTable::new(1);
        assert_eq!(
            table.arrive(
                (0, 0),
                0,
                cmp(Sysno::Write, b"a"),
                Duration::from_millis(20)
            ),
            ArrivalResult::Consistent
        );
        assert_eq!(
            table.arrive((1, 0), 0, cmp(Sysno::Open, b"b"), Duration::from_millis(20)),
            ArrivalResult::Consistent
        );
        assert_eq!(table.live_slots(), 2);
    }

    #[test]
    fn shards_partition_slots_by_thread_index() {
        let table = LockstepTable::with_shards(1, 4);
        assert_eq!(table.shard_count(), 4);
        for thread in 0..8usize {
            let _ = table.arrive(
                (thread, 0),
                0,
                cmp(Sysno::Write, b"s"),
                Duration::from_millis(10),
            );
        }
        // Threads 0..8 over 4 shards: two live slots in every shard.
        assert_eq!(table.live_slots_per_shard(), vec![2, 2, 2, 2]);
        assert_eq!(table.shard_of(5), table.shard_of(1));
        assert_ne!(table.shard_of(5), table.shard_of(2));
    }

    #[test]
    fn single_shard_table_behaves_like_the_unsharded_original() {
        let table = Arc::new(LockstepTable::with_shards(2, 1));
        assert_eq!(table.shard_count(), 1);
        let t2 = Arc::clone(&table);
        let handle = std::thread::spawn(move || {
            t2.arrive((7, 3), 1, cmp(Sysno::Open, b""), Duration::from_secs(2))
        });
        std::thread::sleep(Duration::from_millis(10));
        let r0 = table.arrive((7, 3), 0, cmp(Sysno::Open, b""), Duration::from_secs(2));
        assert_eq!(r0, ArrivalResult::Consistent);
        assert_eq!(handle.join().unwrap(), ArrivalResult::Consistent);
    }

    #[test]
    fn poison_wakes_waiters_in_every_shard() {
        let table = Arc::new(LockstepTable::with_shards(2, 4));
        let mut handles = Vec::new();
        for thread in 0..4usize {
            let t = Arc::clone(&table);
            handles.push(std::thread::spawn(move || {
                t.arrive(
                    (thread, 0),
                    0,
                    cmp(Sysno::Write, b"x"),
                    Duration::from_secs(10),
                )
            }));
        }
        std::thread::sleep(Duration::from_millis(30));
        table.poison();
        for h in handles {
            assert_eq!(h.join().unwrap(), ArrivalResult::Poisoned);
        }
    }

    #[test]
    fn consume_defers_reclaim_while_a_waiter_is_blocked() {
        // Regression test for the reclaim race: a slot consumed by every
        // variant while an `arrive` waiter is still blocked on it must stay
        // alive until the waiter leaves — with the old code the waiter's
        // re-lookup panicked on the vanished slot.
        let table = Arc::new(LockstepTable::new(2));
        let t2 = Arc::clone(&table);
        let waiter = std::thread::spawn(move || {
            t2.arrive(
                (0, 0),
                0,
                cmp(Sysno::Write, b"x"),
                Duration::from_millis(300),
            )
        });
        std::thread::sleep(Duration::from_millis(50));
        // Both variants consume the slot out from under the blocked waiter.
        table.consume((0, 0), 0);
        table.consume((0, 0), 1);
        assert_eq!(
            table.live_slots(),
            1,
            "slot must survive while the waiter holds it"
        );
        // The waiter times out cleanly (variant 1 never arrived) instead of
        // panicking, and reclaims the slot on its way out.
        assert_eq!(waiter.join().unwrap(), ArrivalResult::Timeout(vec![0]));
        assert_eq!(table.live_slots(), 0);
    }

    #[test]
    fn empty_batch_resolves_to_nothing() {
        let table = LockstepTable::new(2);
        assert!(table
            .arrive_batch(0, &[], Duration::from_millis(10))
            .is_empty());
        assert_eq!(table.live_slots(), 0);
    }

    #[test]
    fn single_variant_batch_is_immediately_consistent() {
        let table = LockstepTable::new(1);
        let batch: Vec<BatchArrival> = (0..4u64)
            .map(|seq| BatchArrival {
                key: (0, seq),
                cmp: cmp(Sysno::Brk, b""),
            })
            .collect();
        let results = table.arrive_batch(0, &batch, Duration::from_millis(50));
        assert_eq!(results, vec![ArrivalResult::Consistent; 4]);
        for seq in 0..4u64 {
            table.consume((0, seq), 0);
        }
        assert_eq!(table.live_slots(), 0);
    }

    #[test]
    fn two_variants_batch_rendezvous_and_agree() {
        let table = Arc::new(LockstepTable::new(2));
        let batch: Vec<BatchArrival> = (0..8u64)
            .map(|seq| BatchArrival {
                key: (0, seq),
                cmp: cmp(Sysno::Brk, &[seq as u8]),
            })
            .collect();
        let t2 = Arc::clone(&table);
        let b2 = batch.clone();
        let handle = std::thread::spawn(move || t2.arrive_batch(1, &b2, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        let r0 = table.arrive_batch(0, &batch, Duration::from_secs(5));
        let r1 = handle.join().unwrap();
        assert_eq!(r0, vec![ArrivalResult::Consistent; 8]);
        assert_eq!(r1, vec![ArrivalResult::Consistent; 8]);
        for seq in 0..8u64 {
            table.consume((0, seq), 0);
            table.consume((0, seq), 1);
        }
        assert_eq!(table.live_slots(), 0);
    }

    #[test]
    fn mid_batch_mismatch_reports_the_exact_slot_and_spares_the_rest() {
        // Key 2 of 5 diverges; the batch must pin the mismatch to exactly
        // that slot while the other four keys still resolve Consistent —
        // identical to what five sequential `arrive` calls would report.
        let table = Arc::new(LockstepTable::new(2));
        let mk = |variant: usize| -> Vec<BatchArrival> {
            (0..5u64)
                .map(|seq| BatchArrival {
                    key: (0, seq),
                    cmp: if seq == 2 && variant == 1 {
                        cmp(Sysno::Mprotect, b"evil")
                    } else {
                        cmp(Sysno::Brk, &[seq as u8])
                    },
                })
                .collect()
        };
        let t2 = Arc::clone(&table);
        let handle = std::thread::spawn(move || t2.arrive_batch(1, &mk(1), Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        let r0 = table.arrive_batch(0, &mk(0), Duration::from_secs(5));
        let r1 = handle.join().unwrap();
        for results in [&r0, &r1] {
            for (seq, result) in results.iter().enumerate() {
                if seq == 2 {
                    assert!(
                        matches!(result, ArrivalResult::Mismatch(1, _, _)),
                        "key 2 must be the mismatch, got {result:?}"
                    );
                } else {
                    assert_eq!(result, &ArrivalResult::Consistent, "key {seq}");
                }
            }
        }
        for seq in 0..5u64 {
            table.consume((0, seq), 0);
            table.consume((0, seq), 1);
        }
        assert_eq!(table.live_slots(), 0);
    }

    #[test]
    fn poison_unblocks_a_batched_waiter() {
        let table = Arc::new(LockstepTable::new(2));
        let batch: Vec<BatchArrival> = (0..3u64)
            .map(|seq| BatchArrival {
                key: (0, seq),
                cmp: cmp(Sysno::Brk, b""),
            })
            .collect();
        let t2 = Arc::clone(&table);
        let handle =
            std::thread::spawn(move || t2.arrive_batch(0, &batch, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(20));
        table.poison();
        assert_eq!(
            handle.join().unwrap(),
            vec![ArrivalResult::Poisoned; 3],
            "poison must resolve every unresolved key of the batch"
        );
    }

    #[test]
    fn partial_batch_resolution_releases_each_waiter_exactly_once() {
        // The waiter-refcount audit test: variant 1 arrives at only the
        // first key of variant 0's three-key batch and then never again.
        // The first key resolves long before the deadline, the other two
        // time out — and every registration must be released exactly once:
        // a double release would underflow (panic) or corrupt the refcount
        // so the resolved slot either vanishes under variant 1 or leaks.
        let table = Arc::new(LockstepTable::new(2));
        let batch: Vec<BatchArrival> = (0..3u64)
            .map(|seq| BatchArrival {
                key: (7, seq),
                cmp: cmp(Sysno::Brk, &[seq as u8]),
            })
            .collect();
        let t2 = Arc::clone(&table);
        let batcher =
            std::thread::spawn(move || t2.arrive_batch(0, &batch, Duration::from_millis(400)));
        std::thread::sleep(Duration::from_millis(50));
        let r1 = table.arrive((7, 0), 1, cmp(Sysno::Brk, &[0]), Duration::from_secs(5));
        assert_eq!(r1, ArrivalResult::Consistent);
        let r0 = batcher.join().unwrap();
        assert_eq!(
            r0,
            vec![
                ArrivalResult::Consistent,
                ArrivalResult::Timeout(vec![0]),
                ArrivalResult::Timeout(vec![0]),
            ]
        );
        // With the refcounts balanced, consuming every key from both sides
        // reclaims everything; a leaked registration would pin a slot alive.
        for seq in 0..3u64 {
            table.consume((7, seq), 0);
            table.consume((7, seq), 1);
        }
        assert_eq!(table.live_slots(), 0, "a waiter registration leaked");
    }

    #[test]
    fn batch_interoperates_with_single_arrivals() {
        // One variant batches while the other rendezvouses key by key; the
        // two APIs must meet in the same slots.
        let table = Arc::new(LockstepTable::new(2));
        let batch: Vec<BatchArrival> = (0..6u64)
            .map(|seq| BatchArrival {
                key: (0, seq),
                cmp: cmp(Sysno::Brk, &[seq as u8]),
            })
            .collect();
        let t2 = Arc::clone(&table);
        let handle = std::thread::spawn(move || t2.arrive_batch(0, &batch, Duration::from_secs(5)));
        for seq in 0..6u64 {
            let r = table.arrive(
                (0, seq),
                1,
                cmp(Sysno::Brk, &[seq as u8]),
                Duration::from_secs(5),
            );
            assert_eq!(r, ArrivalResult::Consistent);
        }
        assert_eq!(handle.join().unwrap(), vec![ArrivalResult::Consistent; 6]);
        for seq in 0..6u64 {
            table.consume((0, seq), 0);
            table.consume((0, seq), 1);
        }
        assert_eq!(table.live_slots(), 0);
    }

    #[test]
    #[should_panic(expected = "one rendezvous shard")]
    fn batch_spanning_shards_panics() {
        let table = LockstepTable::with_shards(2, 4);
        let batch = vec![
            BatchArrival {
                key: (0, 0),
                cmp: cmp(Sysno::Brk, b""),
            },
            BatchArrival {
                key: (1, 0),
                cmp: cmp(Sysno::Brk, b""),
            },
        ];
        let _ = table.arrive_batch(0, &batch, Duration::from_millis(10));
    }

    #[test]
    fn try_arrive_resolves_like_the_blocking_path() {
        let table = LockstepTable::new(2);
        // First variant: pending with a token.
        let token = match table.try_arrive((0, 0), 0, cmp(Sysno::Brk, b"x"), Duration::from_secs(5))
        {
            TryArrive::Pending(t) => t,
            TryArrive::Ready(r) => panic!("must be pending, got {r:?}"),
        };
        assert_eq!(token.key(), (0, 0));
        // Still pending before the peer arrives.
        let token = table.poll_arrival(token).expect_err("still pending");
        // Second variant completes the rendezvous synchronously at deposit.
        match table.try_arrive((0, 0), 1, cmp(Sysno::Brk, b"x"), Duration::from_secs(5)) {
            TryArrive::Ready(ArrivalResult::Consistent) => {}
            other => panic!("peer deposit must resolve Ready(Consistent), got {other:?}"),
        }
        assert_eq!(table.poll_arrival(token), Ok(ArrivalResult::Consistent));
        table.consume((0, 0), 0);
        table.consume((0, 0), 1);
        assert_eq!(table.live_slots(), 0, "poll released its registration");
    }

    #[test]
    fn poll_timeout_reports_the_same_arrivals_as_blocking() {
        let table = LockstepTable::new(3);
        let token =
            match table.try_arrive((0, 0), 1, cmp(Sysno::Brk, b"x"), Duration::from_millis(30)) {
                TryArrive::Pending(t) => t,
                TryArrive::Ready(r) => panic!("must be pending, got {r:?}"),
            };
        std::thread::sleep(Duration::from_millis(60));
        // Same verdict shape the blocking arrive reports on its deadline:
        // the list of variants that did arrive.
        assert_eq!(
            table.poll_arrival(token),
            Ok(ArrivalResult::Timeout(vec![1]))
        );
    }

    #[test]
    fn poison_resolves_pending_polls() {
        let table = LockstepTable::new(2);
        let token = match table.try_arrive((0, 0), 0, cmp(Sysno::Brk, b"x"), Duration::from_secs(5))
        {
            TryArrive::Pending(t) => t,
            TryArrive::Ready(r) => panic!("must be pending, got {r:?}"),
        };
        table.poison();
        assert_eq!(table.poll_arrival(token), Ok(ArrivalResult::Poisoned));
        // New deposits resolve poisoned immediately, with no token escaping.
        match table.try_arrive((0, 1), 0, cmp(Sysno::Brk, b"x"), Duration::from_secs(5)) {
            TryArrive::Ready(ArrivalResult::Poisoned) => {}
            other => panic!("deposit on a poisoned table must be Ready(Poisoned), got {other:?}"),
        }
    }

    #[test]
    fn try_batch_mirrors_arrive_batch_verdicts() {
        let table = Arc::new(LockstepTable::new(2));
        let mk = |variant: usize| -> Vec<BatchArrival> {
            (0..4u64)
                .map(|seq| BatchArrival {
                    key: (0, seq),
                    cmp: if seq == 2 && variant == 1 {
                        cmp(Sysno::Mprotect, b"evil")
                    } else {
                        cmp(Sysno::Brk, &[seq as u8])
                    },
                })
                .collect()
        };
        // Variant 0 deposits first: everything pends.
        let token = match table.try_arrive_batch(0, &mk(0), Duration::from_secs(5)) {
            TryBatch::Pending(t) => t,
            TryBatch::Ready(r) => panic!("must be pending, got {r:?}"),
        };
        let token = table.poll_batch(token).expect_err("still pending");
        // Variant 1's deposit completes every slot at deposit time.
        let r1 = match table.try_arrive_batch(1, &mk(1), Duration::from_secs(5)) {
            TryBatch::Ready(r) => r,
            TryBatch::Pending(_) => panic!("peer deposit must resolve the whole batch"),
        };
        let r0 = table.poll_batch(token).expect("resolved");
        for results in [&r0, &r1] {
            for (seq, result) in results.iter().enumerate() {
                if seq == 2 {
                    assert!(matches!(result, ArrivalResult::Mismatch(1, _, _)));
                } else {
                    assert_eq!(result, &ArrivalResult::Consistent);
                }
            }
        }
        for seq in 0..4u64 {
            table.consume((0, seq), 0);
            table.consume((0, seq), 1);
        }
        assert_eq!(table.live_slots(), 0, "batch polls released every waiter");
    }

    #[test]
    fn try_wait_outcome_polls_to_the_published_value() {
        let table = LockstepTable::new(2);
        let token = match table.try_wait_outcome((1, 5), Duration::from_secs(5)) {
            TryOutcome::Pending(t) => t,
            TryOutcome::Ready(r) => panic!("must be pending, got {r:?}"),
        };
        assert_eq!(token.key(), (1, 5));
        let token = table.poll_outcome(token).expect_err("still pending");
        table.publish_outcome((1, 5), SyscallOutcome::ok(42), Some(9));
        assert_eq!(
            table.poll_outcome(token),
            Ok(Some((SyscallOutcome::ok(42), Some(9))))
        );
        // An expired wait with nothing published reports `None`, like the
        // blocking path.
        let token = match table.try_wait_outcome((2, 0), Duration::from_millis(20)) {
            TryOutcome::Pending(t) => t,
            TryOutcome::Ready(r) => panic!("must be pending, got {r:?}"),
        };
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(table.poll_outcome(token), Ok(None));
    }

    #[test]
    fn observers_are_raised_on_deposits_and_publishes() {
        let table = LockstepTable::new(2);
        let waker = Arc::new(PollWaker::new());
        table.register_observer(Arc::clone(&waker));
        let e0 = waker.epoch();
        let _ = table.try_arrive((0, 0), 0, cmp(Sysno::Brk, b"x"), Duration::from_secs(1));
        assert!(waker.epoch() > e0, "a deposit must raise the waker");
        let e1 = waker.epoch();
        table.publish_outcome((0, 1), SyscallOutcome::ok(0), None);
        assert!(waker.epoch() > e1, "a publish must raise the waker");
        let e2 = waker.epoch();
        table.poison();
        assert!(waker.epoch() > e2, "poison must raise the waker");
    }

    #[test]
    fn concurrent_rendezvous_across_shards_complete() {
        const VARIANTS: usize = 4;
        const THREADS: usize = 8;
        const OPS: u64 = 50;
        let table = Arc::new(LockstepTable::with_shards(VARIANTS, 4));
        let mut handles = Vec::new();
        for variant in 0..VARIANTS {
            for thread in 0..THREADS {
                let t = Arc::clone(&table);
                handles.push(std::thread::spawn(move || {
                    for seq in 0..OPS {
                        let r = t.arrive(
                            (thread, seq),
                            variant,
                            cmp(Sysno::Brk, b""),
                            Duration::from_secs(10),
                        );
                        assert_eq!(r, ArrivalResult::Consistent);
                        t.consume((thread, seq), variant);
                    }
                }));
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(table.live_slots(), 0);
    }
}
