//! The lockstep rendezvous and result-replication table.
//!
//! Every monitored call of a variant thread maps to a *slot*, keyed by the
//! logical thread index and the thread's per-thread call sequence number.
//! The slot is where the monitor implements the two cross-variant
//! interactions the paper describes:
//!
//! * **Lockstep comparison** — under a lockstep policy, no variant may
//!   proceed past the call until all variants have arrived at the same slot
//!   with an equivalent call ([`LockstepTable::arrive`]).
//! * **Result replication** — for I/O calls the master executes the call once
//!   and publishes the outcome into the slot
//!   ([`LockstepTable::publish_outcome`]); slave variants block until the
//!   outcome is available ([`LockstepTable::wait_outcome`]).
//!
//! Slots are reclaimed once every variant has consumed them, so the table's
//! size is bounded by the number of in-flight calls, not by the length of the
//! execution.

use std::collections::HashMap;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use mvee_kernel::syscall::{ComparisonKey, SyscallOutcome};

use crate::divergence::first_mismatch;

/// Identifies a monitored call: (logical thread, per-thread sequence number).
pub type SlotKey = (usize, u64);

/// Result of a lockstep arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrivalResult {
    /// All variants arrived with equivalent calls.
    Consistent,
    /// A variant arrived with a different call; the tuple holds
    /// (diverging variant index, master key, diverging key).
    Mismatch(usize, ComparisonKey, ComparisonKey),
    /// Not every variant arrived before the timeout; the vector lists the
    /// variants that did arrive.
    Timeout(Vec<usize>),
    /// The table was poisoned because divergence was detected elsewhere.
    Poisoned,
}

#[derive(Debug, Default)]
struct Slot {
    keys: Vec<Option<ComparisonKey>>,
    outcome: Option<SyscallOutcome>,
    timestamp: Option<u64>,
    consumed: usize,
    mismatch: bool,
}

impl Slot {
    fn new(variants: usize) -> Self {
        Slot {
            keys: vec![None; variants],
            outcome: None,
            timestamp: None,
            consumed: 0,
            mismatch: false,
        }
    }

    fn arrived(&self) -> usize {
        self.keys.iter().filter(|k| k.is_some()).count()
    }
}

/// The rendezvous / replication table shared by all monitor threads.
#[derive(Debug)]
pub struct LockstepTable {
    variants: usize,
    slots: Mutex<HashMap<SlotKey, Slot>>,
    changed: Condvar,
    poisoned: Mutex<bool>,
}

impl LockstepTable {
    /// Creates a table for `variants` variants.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is zero.
    pub fn new(variants: usize) -> Self {
        assert!(variants > 0, "need at least one variant");
        LockstepTable {
            variants,
            slots: Mutex::new(HashMap::new()),
            changed: Condvar::new(),
            poisoned: Mutex::new(false),
        }
    }

    /// Number of variants this table coordinates.
    pub fn variants(&self) -> usize {
        self.variants
    }

    /// Number of live (unreclaimed) slots; used by tests to verify cleanup.
    pub fn live_slots(&self) -> usize {
        self.slots.lock().len()
    }

    /// Marks the table as poisoned and wakes every waiter.
    ///
    /// Called when divergence has been detected so that threads blocked in a
    /// rendezvous or waiting for a replicated result abort promptly instead
    /// of running into their timeouts.
    pub fn poison(&self) {
        *self.poisoned.lock() = true;
        self.changed.notify_all();
    }

    /// Whether the table has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        *self.poisoned.lock()
    }

    /// Registers variant `variant`'s arrival at `key` with comparison key
    /// `cmp` and waits until every variant has arrived (lockstep).
    pub fn arrive(
        &self,
        key: SlotKey,
        variant: usize,
        cmp: ComparisonKey,
        timeout: Duration,
    ) -> ArrivalResult {
        let deadline = std::time::Instant::now() + timeout;
        let mut slots = self.slots.lock();
        let slot = slots.entry(key).or_insert_with(|| Slot::new(self.variants));
        slot.keys[variant] = Some(cmp);
        let complete = slot.arrived() == self.variants;
        if complete {
            if let Some((idx, master, other)) = first_mismatch(&slot.keys) {
                slot.mismatch = true;
                self.changed.notify_all();
                return ArrivalResult::Mismatch(idx, master, other);
            }
            self.changed.notify_all();
            return ArrivalResult::Consistent;
        }
        self.changed.notify_all();
        loop {
            if *self.poisoned.lock() {
                return ArrivalResult::Poisoned;
            }
            let slot = slots
                .get(&key)
                .expect("slot cannot vanish while a waiter holds it");
            if slot.mismatch {
                let (idx, master, other) =
                    first_mismatch(&slot.keys).expect("mismatch flag implies a mismatch");
                return ArrivalResult::Mismatch(idx, master, other);
            }
            if slot.arrived() == self.variants {
                if let Some((idx, master, other)) = first_mismatch(&slot.keys) {
                    return ArrivalResult::Mismatch(idx, master, other);
                }
                return ArrivalResult::Consistent;
            }
            let timed_out = self.changed.wait_until(&mut slots, deadline).timed_out();
            if timed_out {
                let slot = slots.get(&key).expect("slot present");
                if slot.arrived() == self.variants {
                    continue;
                }
                let arrived = slot
                    .keys
                    .iter()
                    .enumerate()
                    .filter_map(|(i, k)| k.as_ref().map(|_| i))
                    .collect();
                return ArrivalResult::Timeout(arrived);
            }
        }
    }

    /// Publishes the master's outcome (and, for ordered calls, the syscall
    /// ordering timestamp) into the slot and wakes waiting slaves.
    pub fn publish_outcome(&self, key: SlotKey, outcome: SyscallOutcome, timestamp: Option<u64>) {
        let mut slots = self.slots.lock();
        let slot = slots.entry(key).or_insert_with(|| Slot::new(self.variants));
        slot.outcome = Some(outcome);
        slot.timestamp = timestamp;
        self.changed.notify_all();
    }

    /// Blocks until the master has published an outcome for `key`.
    ///
    /// Returns `None` on timeout or when the table is poisoned.
    pub fn wait_outcome(
        &self,
        key: SlotKey,
        timeout: Duration,
    ) -> Option<(SyscallOutcome, Option<u64>)> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slots = self.slots.lock();
        loop {
            if *self.poisoned.lock() {
                return None;
            }
            if let Some(slot) = slots.get(&key) {
                if let Some(outcome) = &slot.outcome {
                    return Some((outcome.clone(), slot.timestamp));
                }
            }
            if self.changed.wait_until(&mut slots, deadline).timed_out() {
                let published = slots.get(&key).and_then(|s| s.outcome.clone());
                return published.map(|o| {
                    let ts = slots.get(&key).and_then(|s| s.timestamp);
                    (o, ts)
                });
            }
        }
    }

    /// Marks `variant`'s use of the slot as finished; the slot is reclaimed
    /// once every variant has consumed it.
    pub fn consume(&self, key: SlotKey) {
        let mut slots = self.slots.lock();
        let remove = if let Some(slot) = slots.get_mut(&key) {
            slot.consumed += 1;
            slot.consumed >= self.variants
        } else {
            false
        };
        if remove {
            slots.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvee_kernel::syscall::{SyscallRequest, Sysno};
    use std::sync::Arc;

    fn cmp(no: Sysno, payload: &[u8]) -> ComparisonKey {
        SyscallRequest::new(no)
            .with_payload(payload)
            .comparison_key()
    }

    #[test]
    fn single_variant_arrival_is_immediately_consistent() {
        let table = LockstepTable::new(1);
        let r = table.arrive(
            (0, 0),
            0,
            cmp(Sysno::Write, b"x"),
            Duration::from_millis(50),
        );
        assert_eq!(r, ArrivalResult::Consistent);
    }

    #[test]
    fn two_variants_rendezvous_and_agree() {
        let table = Arc::new(LockstepTable::new(2));
        let t2 = Arc::clone(&table);
        let handle = std::thread::spawn(move || {
            t2.arrive((0, 0), 1, cmp(Sysno::Open, b""), Duration::from_secs(2))
        });
        std::thread::sleep(Duration::from_millis(10));
        let r0 = table.arrive((0, 0), 0, cmp(Sysno::Open, b""), Duration::from_secs(2));
        let r1 = handle.join().unwrap();
        assert_eq!(r0, ArrivalResult::Consistent);
        assert_eq!(r1, ArrivalResult::Consistent);
    }

    #[test]
    fn mismatched_calls_are_reported_to_both_sides() {
        let table = Arc::new(LockstepTable::new(2));
        let t2 = Arc::clone(&table);
        let handle = std::thread::spawn(move || {
            t2.arrive((0, 0), 1, cmp(Sysno::Mprotect, b""), Duration::from_secs(2))
        });
        std::thread::sleep(Duration::from_millis(10));
        let r0 = table.arrive((0, 0), 0, cmp(Sysno::Write, b"hi"), Duration::from_secs(2));
        let r1 = handle.join().unwrap();
        assert!(matches!(r0, ArrivalResult::Mismatch(1, _, _)));
        assert!(matches!(r1, ArrivalResult::Mismatch(1, _, _)));
    }

    #[test]
    fn missing_variant_causes_timeout_listing_arrivals() {
        let table = LockstepTable::new(2);
        let r = table.arrive(
            (3, 7),
            0,
            cmp(Sysno::Write, b"x"),
            Duration::from_millis(50),
        );
        assert_eq!(r, ArrivalResult::Timeout(vec![0]));
    }

    #[test]
    fn outcome_publication_wakes_waiters() {
        let table = Arc::new(LockstepTable::new(2));
        let t2 = Arc::clone(&table);
        let handle = std::thread::spawn(move || t2.wait_outcome((1, 5), Duration::from_secs(2)));
        std::thread::sleep(Duration::from_millis(10));
        table.publish_outcome((1, 5), SyscallOutcome::ok(42), Some(9));
        let (outcome, ts) = handle.join().unwrap().unwrap();
        assert_eq!(outcome.result, Ok(42));
        assert_eq!(ts, Some(9));
    }

    #[test]
    fn wait_outcome_times_out_when_master_never_publishes() {
        let table = LockstepTable::new(2);
        assert!(table
            .wait_outcome((0, 0), Duration::from_millis(40))
            .is_none());
    }

    #[test]
    fn slots_are_reclaimed_after_all_variants_consume() {
        let table = LockstepTable::new(2);
        table.publish_outcome((0, 0), SyscallOutcome::ok(1), None);
        assert_eq!(table.live_slots(), 1);
        table.consume((0, 0));
        assert_eq!(table.live_slots(), 1);
        table.consume((0, 0));
        assert_eq!(table.live_slots(), 0);
    }

    #[test]
    fn poison_wakes_blocked_arrivals() {
        let table = Arc::new(LockstepTable::new(2));
        let t2 = Arc::clone(&table);
        let handle = std::thread::spawn(move || {
            t2.arrive((0, 0), 0, cmp(Sysno::Write, b"x"), Duration::from_secs(10))
        });
        std::thread::sleep(Duration::from_millis(20));
        table.poison();
        assert_eq!(handle.join().unwrap(), ArrivalResult::Poisoned);
        assert!(table.is_poisoned());
    }

    #[test]
    fn distinct_slots_do_not_interfere() {
        let table = LockstepTable::new(1);
        assert_eq!(
            table.arrive(
                (0, 0),
                0,
                cmp(Sysno::Write, b"a"),
                Duration::from_millis(20)
            ),
            ArrivalResult::Consistent
        );
        assert_eq!(
            table.arrive((1, 0), 0, cmp(Sysno::Open, b"b"), Duration::from_millis(20)),
            ArrivalResult::Consistent
        );
        assert_eq!(table.live_slots(), 2);
    }
}
