//! The monitor: the system-call gateway variants call instead of the kernel.
//!
//! In the real ReMon the monitor interposes on system calls with ptrace and a
//! small in-process broker; in this reproduction every variant thread calls
//! [`Monitor::syscall`] directly.  The information flow is identical to a
//! ptrace stop: the monitor sees the call number, the normalized arguments
//! and the calling (variant, thread) pair, decides whether to compare,
//! replicate, order or simply forward the call, and only then lets the
//! variant proceed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use mvee_kernel::kernel::Kernel;
use mvee_kernel::process::Pid;
use mvee_kernel::syscall::{SyscallClass, SyscallOutcome, SyscallRequest, Sysno};

use crate::divergence::{DivergenceKind, DivergenceReport};
use crate::lockstep::{ArrivalResult, LockstepTable, SlotKey};
use crate::ordering::SyscallOrderingClock;
use crate::policy::MonitoringPolicy;

/// Spin-then-yield wait with a deadline; returns `false` on timeout.
///
/// Used by the ordering clock and a few monitor-internal waits where a
/// condition variable would be heavier than the expected wait time.
pub fn wait_until_with_timeout(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    let mut spins = 0u32;
    loop {
        if cond() {
            return true;
        }
        if std::time::Instant::now() >= deadline {
            return cond();
        }
        spins += 1;
        if spins.is_multiple_of(64) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Monitor configuration.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Number of variants under monitoring.
    pub variants: usize,
    /// The lockstep policy.
    pub policy: MonitoringPolicy,
    /// How long a rendezvous or replication wait may take before the monitor
    /// declares divergence.
    pub lockstep_timeout: Duration,
    /// Maximum number of logical threads per variant.
    pub max_threads: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            variants: 2,
            policy: MonitoringPolicy::StrictLockstep,
            lockstep_timeout: Duration::from_secs(5),
            max_threads: 64,
        }
    }
}

/// Errors the gateway returns to a variant thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorError {
    /// Divergence was detected on this very call; the report describes it.
    Diverged(DivergenceReport),
    /// The MVEE has already been shut down (divergence detected elsewhere);
    /// the variant thread must terminate.
    ShutDown,
}

impl std::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorError::Diverged(report) => write!(f, "{}", report.summary()),
            MonitorError::ShutDown => write!(f, "MVEE has been shut down"),
        }
    }
}

impl std::error::Error for MonitorError {}

/// Aggregate counters the monitor maintains.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MonitorStats {
    /// Total calls that entered the gateway.
    pub total_syscalls: u64,
    /// Calls that required a lockstep rendezvous.
    pub lockstep_syscalls: u64,
    /// Calls whose results were replicated from the master.
    pub replicated_syscalls: u64,
    /// Calls ordered with the syscall ordering clock.
    pub ordered_syscalls: u64,
    /// Divergences detected.
    pub divergences: u64,
    /// `mvee_self_aware` queries answered.
    pub self_aware_queries: u64,
}

#[derive(Debug, Default)]
struct StatCounters {
    total_syscalls: AtomicU64,
    lockstep_syscalls: AtomicU64,
    replicated_syscalls: AtomicU64,
    ordered_syscalls: AtomicU64,
    divergences: AtomicU64,
    self_aware_queries: AtomicU64,
}

/// The MVEE monitor.
pub struct Monitor {
    config: MonitorConfig,
    kernel: std::sync::Arc<Kernel>,
    /// Kernel process backing each variant.
    pids: Vec<Pid>,
    lockstep: LockstepTable,
    /// Per-variant syscall ordering clocks.  The master's clock hands out
    /// timestamps; each slave's clock gates execution (§4.1).
    ordering_clocks: Vec<SyscallOrderingClock>,
    /// Per (variant, thread) sequence numbers for monitored calls.
    sequences: Vec<AtomicU64>,
    stats: StatCounters,
    diverged: AtomicBool,
    divergence_report: Mutex<Option<DivergenceReport>>,
}

impl Monitor {
    /// Creates a monitor over an existing kernel and pre-spawned variant
    /// processes (`pids[i]` backs variant `i`).
    ///
    /// # Panics
    ///
    /// Panics if `pids.len() != config.variants` or if `config.variants == 0`.
    pub fn new(config: MonitorConfig, kernel: std::sync::Arc<Kernel>, pids: Vec<Pid>) -> Self {
        assert!(config.variants > 0, "need at least one variant");
        assert_eq!(
            pids.len(),
            config.variants,
            "one kernel process per variant is required"
        );
        Monitor {
            lockstep: LockstepTable::new(config.variants),
            ordering_clocks: (0..config.variants)
                .map(|_| SyscallOrderingClock::new())
                .collect(),
            sequences: (0..config.variants * config.max_threads)
                .map(|_| AtomicU64::new(0))
                .collect(),
            stats: StatCounters::default(),
            diverged: AtomicBool::new(false),
            divergence_report: Mutex::new(None),
            config,
            kernel,
            pids,
        }
    }

    /// The monitor configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// The kernel process id backing `variant`.
    pub fn pid_of(&self, variant: usize) -> Pid {
        self.pids[variant]
    }

    /// Whether divergence has been detected.
    pub fn has_diverged(&self) -> bool {
        self.diverged.load(Ordering::Acquire)
    }

    /// The divergence report, if any.
    pub fn divergence(&self) -> Option<DivergenceReport> {
        self.divergence_report.lock().clone()
    }

    /// A snapshot of the monitor's counters.
    pub fn stats(&self) -> MonitorStats {
        MonitorStats {
            total_syscalls: self.stats.total_syscalls.load(Ordering::Relaxed),
            lockstep_syscalls: self.stats.lockstep_syscalls.load(Ordering::Relaxed),
            replicated_syscalls: self.stats.replicated_syscalls.load(Ordering::Relaxed),
            ordered_syscalls: self.stats.ordered_syscalls.load(Ordering::Relaxed),
            divergences: self.stats.divergences.load(Ordering::Relaxed),
            self_aware_queries: self.stats.self_aware_queries.load(Ordering::Relaxed),
        }
    }

    fn seq_slot(&self, variant: usize, thread: usize) -> &AtomicU64 {
        &self.sequences[variant * self.config.max_threads + thread]
    }

    fn record_divergence(&self, report: DivergenceReport) -> MonitorError {
        self.stats.divergences.fetch_add(1, Ordering::Relaxed);
        let mut slot = self.divergence_report.lock();
        if slot.is_none() {
            *slot = Some(report.clone());
        }
        drop(slot);
        self.diverged.store(true, Ordering::Release);
        // Wake every thread blocked in a rendezvous or replication wait so
        // the whole MVEE shuts down promptly.
        self.lockstep.poison();
        MonitorError::Diverged(report)
    }

    /// The single entry point: thread `thread` of variant `variant` issues
    /// the system call described by `req`.
    ///
    /// Returns the outcome the variant observes, or an error instructing the
    /// variant to terminate.
    pub fn syscall(
        &self,
        variant: usize,
        thread: usize,
        req: &SyscallRequest,
    ) -> Result<SyscallOutcome, MonitorError> {
        assert!(variant < self.config.variants, "unknown variant index");
        assert!(
            thread < self.config.max_threads,
            "thread index out of range"
        );

        if self.has_diverged() {
            return Err(MonitorError::ShutDown);
        }
        self.stats.total_syscalls.fetch_add(1, Ordering::Relaxed);

        // The self-awareness pseudo call (§4.5): answered by the monitor, not
        // the kernel.  Returns 0 for the master and the 1-based slave index
        // for slaves.
        if req.no == Sysno::MveeSelfAware {
            self.stats
                .self_aware_queries
                .fetch_add(1, Ordering::Relaxed);
            return Ok(SyscallOutcome::ok(variant as i64));
        }

        let seq = self
            .seq_slot(variant, thread)
            .fetch_add(1, Ordering::AcqRel);
        let key: SlotKey = (thread, seq);

        let lockstep = self.config.policy.requires_lockstep(req.no);
        let replicate = Self::is_replicated(req.no);
        let ordered = !replicate && req.no.needs_ordering();

        if lockstep {
            self.stats.lockstep_syscalls.fetch_add(1, Ordering::Relaxed);
            match self.lockstep.arrive(
                key,
                variant,
                req.comparison_key(),
                self.config.lockstep_timeout,
            ) {
                ArrivalResult::Consistent => {}
                ArrivalResult::Mismatch(bad_variant, master_key, bad_key) => {
                    return Err(self.record_divergence(DivergenceReport {
                        kind: DivergenceKind::SyscallMismatch {
                            master: master_key.no,
                            variant: bad_key.no,
                        },
                        thread,
                        sequence: seq,
                        variant: bad_variant,
                    }));
                }
                ArrivalResult::Timeout(arrived) => {
                    let missing = (0..self.config.variants)
                        .find(|v| !arrived.contains(v))
                        .unwrap_or(0);
                    return Err(self.record_divergence(DivergenceReport {
                        kind: DivergenceKind::RendezvousTimeout { arrived },
                        thread,
                        sequence: seq,
                        variant: missing,
                    }));
                }
                ArrivalResult::Poisoned => return Err(MonitorError::ShutDown),
            }
        }

        if replicate {
            self.stats
                .replicated_syscalls
                .fetch_add(1, Ordering::Relaxed);
            return self.run_replicated(variant, thread, seq, key, req);
        }
        if ordered {
            self.stats.ordered_syscalls.fetch_add(1, Ordering::Relaxed);
            return self.run_ordered(variant, thread, seq, key, req);
        }
        // Neither replicated nor ordered: the variant executes against its
        // own kernel process directly (sched_yield, gettid-style queries that
        // happen to differ, exit of a single thread, ...).
        self.lockstep.consume(key);
        Ok(self.kernel.execute(self.pids[variant], thread as u64, req))
    }

    /// Whether results for this call flow from the master to the slaves.
    fn is_replicated(no: Sysno) -> bool {
        matches!(
            no.class(),
            SyscallClass::Io | SyscallClass::ReadOnlyInfo | SyscallClass::BlockingSync
        )
    }

    fn run_replicated(
        &self,
        variant: usize,
        thread: usize,
        seq: u64,
        key: SlotKey,
        req: &SyscallRequest,
    ) -> Result<SyscallOutcome, MonitorError> {
        if variant == 0 {
            // Master: execute once, publish, done.
            let outcome = self.kernel.execute(self.pids[0], thread as u64, req);
            self.lockstep.publish_outcome(key, outcome.clone(), None);
            self.lockstep.consume(key);
            Ok(outcome)
        } else {
            match self
                .lockstep
                .wait_outcome(key, self.config.lockstep_timeout)
            {
                Some((outcome, _)) => {
                    self.lockstep.consume(key);
                    Ok(outcome)
                }
                None => {
                    if self.has_diverged() {
                        return Err(MonitorError::ShutDown);
                    }
                    Err(self.record_divergence(DivergenceReport {
                        kind: DivergenceKind::RendezvousTimeout {
                            arrived: vec![variant],
                        },
                        thread,
                        sequence: seq,
                        variant: 0,
                    }))
                }
            }
        }
    }

    fn run_ordered(
        &self,
        variant: usize,
        thread: usize,
        seq: u64,
        key: SlotKey,
        req: &SyscallRequest,
    ) -> Result<SyscallOutcome, MonitorError> {
        if variant == 0 {
            // Master: claim a timestamp, execute, publish the timestamp so the
            // slaves can replay the cross-thread order.
            let ts = self.ordering_clocks[0].claim_timestamp();
            let outcome = self.kernel.execute(self.pids[0], thread as u64, req);
            self.lockstep
                .publish_outcome(key, outcome.clone(), Some(ts));
            self.lockstep.consume(key);
            Ok(outcome)
        } else {
            let (_, ts) = match self
                .lockstep
                .wait_outcome(key, self.config.lockstep_timeout)
            {
                Some(v) => v,
                None => {
                    if self.has_diverged() {
                        return Err(MonitorError::ShutDown);
                    }
                    return Err(self.record_divergence(DivergenceReport {
                        kind: DivergenceKind::RendezvousTimeout {
                            arrived: vec![variant],
                        },
                        thread,
                        sequence: seq,
                        variant: 0,
                    }));
                }
            };
            let ts = ts.unwrap_or(0);
            if !self.ordering_clocks[variant].wait_for_turn(ts, self.config.lockstep_timeout) {
                if self.has_diverged() {
                    return Err(MonitorError::ShutDown);
                }
                return Err(self.record_divergence(DivergenceReport {
                    kind: DivergenceKind::RendezvousTimeout {
                        arrived: vec![variant],
                    },
                    thread,
                    sequence: seq,
                    variant,
                }));
            }
            let outcome = self.kernel.execute(self.pids[variant], thread as u64, req);
            self.ordering_clocks[variant].advance();
            self.lockstep.consume(key);
            Ok(outcome)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvee_kernel::syscall::SyscallArg;
    use mvee_kernel::vfs::OpenFlags;
    use std::sync::Arc;

    fn make_monitor(variants: usize, policy: MonitoringPolicy) -> (Arc<Monitor>, Arc<Kernel>) {
        let kernel = Arc::new(Kernel::new_manual_clock());
        kernel.install_file("/input", b"some input data");
        let pids = (0..variants).map(|_| kernel.spawn_process()).collect();
        let config = MonitorConfig {
            variants,
            policy,
            lockstep_timeout: Duration::from_millis(500),
            max_threads: 8,
        };
        (
            Arc::new(Monitor::new(config, Arc::clone(&kernel), pids)),
            kernel,
        )
    }

    fn open_req(path: &str) -> SyscallRequest {
        SyscallRequest::new(Sysno::Open)
            .with_path(path)
            .with_arg(SyscallArg::Flags(OpenFlags::READ.bits()))
    }

    #[test]
    fn self_aware_call_reports_variant_index() {
        let (monitor, _) = make_monitor(3, MonitoringPolicy::StrictLockstep);
        for v in 0..3 {
            let out = monitor
                .syscall(v, 0, &SyscallRequest::new(Sysno::MveeSelfAware))
                .unwrap();
            assert_eq!(out.result, Ok(v as i64));
        }
        assert_eq!(monitor.stats().self_aware_queries, 3);
    }

    #[test]
    fn replicated_open_gives_all_variants_the_same_fd() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::StrictLockstep);
        let m = Arc::clone(&monitor);
        let slave = std::thread::spawn(move || m.syscall(1, 0, &open_req("/input")).unwrap());
        let master = monitor.syscall(0, 0, &open_req("/input")).unwrap();
        let slave = slave.join().unwrap();
        assert_eq!(master.result, slave.result);
        assert_eq!(master.result, Ok(3));
        assert!(!monitor.has_diverged());
    }

    #[test]
    fn replicated_read_copies_master_payload_to_slaves() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::StrictLockstep);
        // Both variants open the file first.
        let m = Arc::clone(&monitor);
        let t = std::thread::spawn(move || {
            m.syscall(1, 0, &open_req("/input")).unwrap();
            m.syscall(
                1,
                0,
                &SyscallRequest::new(Sysno::Read).with_fd(3).with_int(4),
            )
            .unwrap()
        });
        monitor.syscall(0, 0, &open_req("/input")).unwrap();
        let master = monitor
            .syscall(
                0,
                0,
                &SyscallRequest::new(Sysno::Read).with_fd(3).with_int(4),
            )
            .unwrap();
        let slave = t.join().unwrap();
        assert_eq!(master.payload, b"some");
        assert_eq!(slave.payload, b"some");
    }

    #[test]
    fn lockstep_detects_divergent_write_payloads() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::StrictLockstep);
        let m = Arc::clone(&monitor);
        let slave = std::thread::spawn(move || {
            m.syscall(
                1,
                0,
                &SyscallRequest::new(Sysno::Write)
                    .with_fd(1)
                    .with_payload(b"evil"),
            )
        });
        let master = monitor.syscall(
            0,
            0,
            &SyscallRequest::new(Sysno::Write)
                .with_fd(1)
                .with_payload(b"good"),
        );
        let slave = slave.join().unwrap();
        assert!(master.is_err() || slave.is_err());
        assert!(monitor.has_diverged());
        let report = monitor.divergence().unwrap();
        assert!(matches!(
            report.kind,
            DivergenceKind::SyscallMismatch { .. }
        ));
        assert!(monitor.stats().divergences >= 1);
    }

    #[test]
    fn lockstep_detects_divergent_call_numbers() {
        // The attack scenario: the compromised slave issues mprotect while
        // the master issues a write.
        let (monitor, _) = make_monitor(2, MonitoringPolicy::StrictLockstep);
        let m = Arc::clone(&monitor);
        let slave = std::thread::spawn(move || {
            m.syscall(
                1,
                0,
                &SyscallRequest::new(Sysno::Mprotect)
                    .with_arg(SyscallArg::Pointer(0x7fff_0000))
                    .with_int(4096)
                    .with_arg(SyscallArg::Flags(7)),
            )
        });
        let master = monitor.syscall(
            0,
            0,
            &SyscallRequest::new(Sysno::Write)
                .with_fd(1)
                .with_payload(b"response"),
        );
        let slave_result = slave.join().unwrap();
        assert!(master.is_err() || slave_result.is_err());
        assert!(monitor.has_diverged());
    }

    #[test]
    fn missing_variant_triggers_timeout_divergence() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::StrictLockstep);
        let result = monitor.syscall(0, 0, &open_req("/input"));
        assert!(result.is_err());
        let report = monitor.divergence().unwrap();
        assert!(matches!(
            report.kind,
            DivergenceKind::RendezvousTimeout { .. }
        ));
    }

    #[test]
    fn calls_after_divergence_are_rejected() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::StrictLockstep);
        let _ = monitor.syscall(0, 0, &open_req("/input"));
        assert!(monitor.has_diverged());
        let r = monitor.syscall(0, 1, &SyscallRequest::new(Sysno::SchedYield));
        assert_eq!(r, Err(MonitorError::ShutDown));
    }

    #[test]
    fn ordered_brk_executes_in_each_variants_own_address_space() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::NoComparison);
        let m = Arc::clone(&monitor);
        let slave = std::thread::spawn(move || {
            m.syscall(1, 0, &SyscallRequest::new(Sysno::Brk).with_int(0))
                .unwrap()
        });
        let master = monitor
            .syscall(0, 0, &SyscallRequest::new(Sysno::Brk).with_int(0))
            .unwrap();
        let slave = slave.join().unwrap();
        // Both get their own break value; with identical layouts they match.
        assert_eq!(master.result, slave.result);
        assert!(monitor.stats().ordered_syscalls >= 2);
    }

    #[test]
    fn ordering_clock_makes_slave_follow_master_cross_thread_order() {
        // Master: thread 0 brk, then thread 1 brk (timestamps 0 and 1).
        // Slave: thread 1 arrives first but must wait for thread 0.
        let (monitor, kernel) = make_monitor(2, MonitoringPolicy::NoComparison);
        let brk = |m: &Monitor, v: usize, t: usize| {
            m.syscall(v, t, &SyscallRequest::new(Sysno::Brk).with_int(0))
        };
        brk(&monitor, 0, 0).unwrap();
        brk(&monitor, 0, 1).unwrap();

        let m = Arc::clone(&monitor);
        let slave_t1 = std::thread::spawn(move || brk(&m, 1, 1));
        std::thread::sleep(Duration::from_millis(50));
        // Slave thread 1 is stalled on the ordering clock until thread 0 runs.
        brk(&monitor, 1, 0).unwrap();
        slave_t1.join().unwrap().unwrap();
        assert!(!monitor.has_diverged());
        assert_eq!(monitor.stats().ordered_syscalls, 4);
        assert!(kernel.process_syscall_count(monitor.pid_of(1)) >= 1);
    }

    #[test]
    fn relaxed_policy_skips_lockstep_for_non_sensitive_calls() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::SecuritySensitiveOnly);
        // gettimeofday is not security sensitive: the master proceeds without
        // waiting for the slave to arrive.
        let master = monitor
            .syscall(0, 0, &SyscallRequest::new(Sysno::Gettimeofday))
            .unwrap();
        assert_eq!(monitor.stats().lockstep_syscalls, 0);
        // The slave arrives later and still receives the replicated result.
        let slave = monitor
            .syscall(1, 0, &SyscallRequest::new(Sysno::Gettimeofday))
            .unwrap();
        assert_eq!(master.payload, slave.payload);
        // A sensitive call under the same policy still requires lockstep: the
        // master alone times out into a divergence.
        let r = monitor.syscall(0, 0, &open_req("/input"));
        assert!(r.is_err());
        assert_eq!(monitor.stats().lockstep_syscalls, 1);
    }

    #[test]
    fn stats_track_call_categories() {
        let (monitor, _) = make_monitor(1, MonitoringPolicy::StrictLockstep);
        monitor.syscall(0, 0, &open_req("/input")).unwrap();
        monitor
            .syscall(0, 0, &SyscallRequest::new(Sysno::Brk).with_int(0))
            .unwrap();
        monitor
            .syscall(0, 0, &SyscallRequest::new(Sysno::SchedYield))
            .unwrap();
        let s = monitor.stats();
        assert_eq!(s.total_syscalls, 3);
        assert_eq!(s.replicated_syscalls, 1);
        assert_eq!(s.ordered_syscalls, 1);
        assert_eq!(s.divergences, 0);
    }

    #[test]
    #[should_panic(expected = "one kernel process per variant")]
    fn monitor_requires_one_pid_per_variant() {
        let kernel = Arc::new(Kernel::new_manual_clock());
        let pid = kernel.spawn_process();
        let config = MonitorConfig {
            variants: 2,
            ..Default::default()
        };
        let _ = Monitor::new(config, kernel, vec![pid]);
    }
}
