//! The monitor: the system-call gateway variants call instead of the kernel.
//!
//! In the real ReMon the monitor interposes on system calls with ptrace and a
//! small in-process broker; in this reproduction every variant thread calls
//! [`Monitor::syscall`] directly.  The information flow is identical to a
//! ptrace stop: the monitor sees the call number, the normalized arguments
//! and the calling (variant, thread) pair, decides whether to compare,
//! replicate, order or simply forward the call, and only then lets the
//! variant proceed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use mvee_kernel::kernel::Kernel;
use mvee_kernel::process::Pid;
use mvee_kernel::syscall::{SyscallOutcome, SyscallRequest, Sysno};

use crate::divergence::{DivergenceKind, DivergenceReport};
use crate::lockstep::{ArrivalResult, LockstepTable, SlotKey, DEFAULT_SHARDS};
use crate::ordering::ShardedOrderingClock;
use crate::policy::MonitoringPolicy;

/// Spin-then-yield wait with a deadline; returns `false` on timeout.
///
/// Used by the ordering clock and a few monitor-internal waits where a
/// condition variable would be heavier than the expected wait time.  Thin
/// wrapper over the shared [`Waiter`](mvee_sync_agent::guards::Waiter)
/// spin/yield helper so the monitor and the agents use one tested wait loop.
pub fn wait_until_with_timeout(timeout: Duration, cond: impl FnMut() -> bool) -> bool {
    mvee_sync_agent::guards::Waiter::default().wait_until_deadline(timeout, cond)
}

/// Monitor configuration.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Number of variants under monitoring.
    pub variants: usize,
    /// The lockstep policy.
    pub policy: MonitoringPolicy,
    /// How long a rendezvous or replication wait may take before the monitor
    /// declares divergence.
    pub lockstep_timeout: Duration,
    /// Maximum number of logical threads per variant.
    pub max_threads: usize,
    /// Number of rendezvous/ordering shards the monitor state is partitioned
    /// into (see [`crate::lockstep`]).  `1` reproduces the original global
    /// table and global ordering clock.
    pub shards: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            variants: 2,
            policy: MonitoringPolicy::StrictLockstep,
            lockstep_timeout: Duration::from_secs(5),
            max_threads: 64,
            shards: DEFAULT_SHARDS,
        }
    }
}

/// Errors the gateway returns to a variant thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorError {
    /// Divergence was detected on this very call; the report describes it.
    Diverged(DivergenceReport),
    /// The MVEE has already been shut down (divergence detected elsewhere);
    /// the variant thread must terminate.
    ShutDown,
}

impl std::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorError::Diverged(report) => write!(f, "{}", report.summary()),
            MonitorError::ShutDown => write!(f, "MVEE has been shut down"),
        }
    }
}

impl std::error::Error for MonitorError {}

/// Aggregate counters the monitor maintains.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MonitorStats {
    /// Total calls that entered the gateway.
    pub total_syscalls: u64,
    /// Calls that required a lockstep rendezvous.
    pub lockstep_syscalls: u64,
    /// Calls whose results were replicated from the master.
    pub replicated_syscalls: u64,
    /// Calls ordered with the syscall ordering clock.
    pub ordered_syscalls: u64,
    /// Divergences detected.
    pub divergences: u64,
    /// `mvee_self_aware` queries answered.
    pub self_aware_queries: u64,
}

#[derive(Debug, Default)]
struct StatCounters {
    total_syscalls: AtomicU64,
    lockstep_syscalls: AtomicU64,
    replicated_syscalls: AtomicU64,
    ordered_syscalls: AtomicU64,
    divergences: AtomicU64,
    self_aware_queries: AtomicU64,
}

/// Per (variant, thread) fast-path state, touched on every monitored call.
///
/// Holding the per-thread sequence counter and the thread's precomputed
/// shard index together keeps the hot path to one cache line of thread-local
/// monitor state: no shared counter is touched before the call has been
/// classified.  The 64-byte alignment keeps neighbouring threads' `seq`
/// counters off each other's cache lines (their `fetch_add`s would otherwise
/// false-share — the exact contention this refactor removes elsewhere).
#[derive(Debug)]
#[repr(align(64))]
struct ThreadState {
    /// Next per-thread sequence number for monitored calls.
    seq: AtomicU64,
    /// The shard this thread's slots and ordering clock live in; identical
    /// across variants because it depends only on the logical thread index.
    shard: usize,
}

/// The MVEE monitor.
pub struct Monitor {
    config: MonitorConfig,
    kernel: std::sync::Arc<Kernel>,
    /// Kernel process backing each variant.
    pids: Vec<Pid>,
    lockstep: LockstepTable,
    /// Per-variant sharded syscall ordering clocks.  The master's clocks hand
    /// out timestamps; each slave's clocks gate execution (§4.1), one clock
    /// per thread-group shard.
    ordering_clocks: Vec<ShardedOrderingClock>,
    /// Per (variant, thread) fast-path state.
    threads: Vec<ThreadState>,
    stats: StatCounters,
    diverged: AtomicBool,
    divergence_report: Mutex<Option<DivergenceReport>>,
    /// Called once when divergence is first recorded, after the lockstep
    /// table has been poisoned.  The MVEE front end installs a hook that
    /// poisons the synchronization agent, so threads blocked inside agent
    /// waits (replay, full buffers) abort as promptly as the rendezvous
    /// waiters do.
    poison_hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl Monitor {
    /// Creates a monitor over an existing kernel and pre-spawned variant
    /// processes (`pids[i]` backs variant `i`).
    ///
    /// # Panics
    ///
    /// Panics if `pids.len() != config.variants` or if `config.variants == 0`.
    pub fn new(config: MonitorConfig, kernel: std::sync::Arc<Kernel>, pids: Vec<Pid>) -> Self {
        assert!(config.variants > 0, "need at least one variant");
        assert_eq!(
            pids.len(),
            config.variants,
            "one kernel process per variant is required"
        );
        let shards = config.shards.max(1);
        Monitor {
            lockstep: LockstepTable::with_shards(config.variants, shards),
            ordering_clocks: (0..config.variants)
                .map(|_| ShardedOrderingClock::new(shards))
                .collect(),
            threads: (0..config.variants * config.max_threads)
                .map(|i| ThreadState {
                    seq: AtomicU64::new(0),
                    shard: (i % config.max_threads) % shards,
                })
                .collect(),
            stats: StatCounters::default(),
            diverged: AtomicBool::new(false),
            divergence_report: Mutex::new(None),
            poison_hook: Mutex::new(None),
            config,
            kernel,
            pids,
        }
    }

    /// Installs a hook invoked (once) when divergence is recorded, after the
    /// rendezvous table has been poisoned.  Used to propagate the shutdown to
    /// components the monitor does not own, such as the synchronization
    /// agent's blocking waits.
    pub fn set_poison_hook(&self, hook: impl Fn() + Send + Sync + 'static) {
        *self.poison_hook.lock() = Some(Box::new(hook));
    }

    /// Number of rendezvous/ordering shards the monitor state is split into.
    pub fn shard_count(&self) -> usize {
        self.lockstep.shard_count()
    }

    /// The monitor configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// The kernel process id backing `variant`.
    pub fn pid_of(&self, variant: usize) -> Pid {
        self.pids[variant]
    }

    /// Whether divergence has been detected.
    pub fn has_diverged(&self) -> bool {
        self.diverged.load(Ordering::Acquire)
    }

    /// The divergence report, if any.
    pub fn divergence(&self) -> Option<DivergenceReport> {
        self.divergence_report.lock().clone()
    }

    /// A snapshot of the monitor's counters.
    pub fn stats(&self) -> MonitorStats {
        MonitorStats {
            total_syscalls: self.stats.total_syscalls.load(Ordering::Relaxed),
            lockstep_syscalls: self.stats.lockstep_syscalls.load(Ordering::Relaxed),
            replicated_syscalls: self.stats.replicated_syscalls.load(Ordering::Relaxed),
            ordered_syscalls: self.stats.ordered_syscalls.load(Ordering::Relaxed),
            divergences: self.stats.divergences.load(Ordering::Relaxed),
            self_aware_queries: self.stats.self_aware_queries.load(Ordering::Relaxed),
        }
    }

    fn thread_state(&self, variant: usize, thread: usize) -> &ThreadState {
        &self.threads[variant * self.config.max_threads + thread]
    }

    fn record_divergence(&self, report: DivergenceReport) -> MonitorError {
        self.stats.divergences.fetch_add(1, Ordering::Relaxed);
        let mut slot = self.divergence_report.lock();
        if slot.is_none() {
            *slot = Some(report.clone());
        }
        drop(slot);
        self.diverged.store(true, Ordering::Release);
        // Wake every thread blocked in a rendezvous or replication wait so
        // the whole MVEE shuts down promptly, then let the front end poison
        // the agent so replay waits abort too.
        self.lockstep.poison();
        if let Some(hook) = &*self.poison_hook.lock() {
            hook();
        }
        MonitorError::Diverged(report)
    }

    /// The single entry point: thread `thread` of variant `variant` issues
    /// the system call described by `req`.
    ///
    /// Returns the outcome the variant observes, or an error instructing the
    /// variant to terminate.
    pub fn syscall(
        &self,
        variant: usize,
        thread: usize,
        req: &SyscallRequest,
    ) -> Result<SyscallOutcome, MonitorError> {
        assert!(variant < self.config.variants, "unknown variant index");
        assert!(
            thread < self.config.max_threads,
            "thread index out of range"
        );

        if self.has_diverged() {
            return Err(MonitorError::ShutDown);
        }
        self.stats.total_syscalls.fetch_add(1, Ordering::Relaxed);

        // The self-awareness pseudo call (§4.5): answered by the monitor, not
        // the kernel.  Returns 0 for the master and the 1-based slave index
        // for slaves.
        if req.no == Sysno::MveeSelfAware {
            self.stats
                .self_aware_queries
                .fetch_add(1, Ordering::Relaxed);
            return Ok(SyscallOutcome::ok(variant as i64));
        }

        let state = self.thread_state(variant, thread);
        let seq = state.seq.fetch_add(1, Ordering::AcqRel);
        let shard = state.shard;
        let key: SlotKey = (thread, seq);

        let disposition = self.config.policy.disposition(req.no);

        if disposition.lockstep {
            self.stats.lockstep_syscalls.fetch_add(1, Ordering::Relaxed);
            match self.lockstep.arrive(
                key,
                variant,
                req.comparison_key(),
                self.config.lockstep_timeout,
            ) {
                ArrivalResult::Consistent => {}
                ArrivalResult::Mismatch(bad_variant, master_key, bad_key) => {
                    return Err(self.record_divergence(DivergenceReport {
                        kind: DivergenceKind::SyscallMismatch {
                            master: master_key.no,
                            variant: bad_key.no,
                        },
                        thread,
                        sequence: seq,
                        variant: bad_variant,
                    }));
                }
                ArrivalResult::Timeout(arrived) => {
                    let missing = (0..self.config.variants)
                        .find(|v| !arrived.contains(v))
                        .unwrap_or(0);
                    return Err(self.record_divergence(DivergenceReport {
                        kind: DivergenceKind::RendezvousTimeout { arrived },
                        thread,
                        sequence: seq,
                        variant: missing,
                    }));
                }
                ArrivalResult::Poisoned => return Err(MonitorError::ShutDown),
            }
        }

        if disposition.replicate {
            self.stats
                .replicated_syscalls
                .fetch_add(1, Ordering::Relaxed);
            return self.run_replicated(variant, thread, seq, key, req);
        }
        if disposition.ordered {
            self.stats.ordered_syscalls.fetch_add(1, Ordering::Relaxed);
            return self.run_ordered(variant, thread, seq, shard, key, req);
        }
        // Neither replicated nor ordered: the variant executes against its
        // own kernel process directly (sched_yield, gettid-style queries that
        // happen to differ, exit of a single thread, ...).
        self.lockstep.consume(key);
        Ok(self.kernel.execute(self.pids[variant], thread as u64, req))
    }

    fn run_replicated(
        &self,
        variant: usize,
        thread: usize,
        seq: u64,
        key: SlotKey,
        req: &SyscallRequest,
    ) -> Result<SyscallOutcome, MonitorError> {
        if variant == 0 {
            // Master: execute once, publish, done.
            let outcome = self.kernel.execute(self.pids[0], thread as u64, req);
            self.lockstep.publish_outcome(key, outcome.clone(), None);
            self.lockstep.consume(key);
            Ok(outcome)
        } else {
            match self
                .lockstep
                .wait_outcome(key, self.config.lockstep_timeout)
            {
                Some((outcome, _)) => {
                    self.lockstep.consume(key);
                    Ok(outcome)
                }
                None => {
                    if self.has_diverged() {
                        return Err(MonitorError::ShutDown);
                    }
                    Err(self.record_divergence(DivergenceReport {
                        kind: DivergenceKind::RendezvousTimeout {
                            arrived: vec![variant],
                        },
                        thread,
                        sequence: seq,
                        variant: 0,
                    }))
                }
            }
        }
    }

    fn run_ordered(
        &self,
        variant: usize,
        thread: usize,
        seq: u64,
        shard: usize,
        key: SlotKey,
        req: &SyscallRequest,
    ) -> Result<SyscallOutcome, MonitorError> {
        if variant == 0 {
            // Master: claim a timestamp on this thread group's shard clock,
            // execute, publish the timestamp so the slaves can replay the
            // cross-thread order within the shard.
            let ts = self.ordering_clocks[0].clock(shard).claim_timestamp();
            let outcome = self.kernel.execute(self.pids[0], thread as u64, req);
            self.lockstep
                .publish_outcome(key, outcome.clone(), Some(ts));
            self.lockstep.consume(key);
            Ok(outcome)
        } else {
            let (_, ts) = match self
                .lockstep
                .wait_outcome(key, self.config.lockstep_timeout)
            {
                Some(v) => v,
                None => {
                    if self.has_diverged() {
                        return Err(MonitorError::ShutDown);
                    }
                    return Err(self.record_divergence(DivergenceReport {
                        kind: DivergenceKind::RendezvousTimeout {
                            arrived: vec![variant],
                        },
                        thread,
                        sequence: seq,
                        variant: 0,
                    }));
                }
            };
            let ts = ts.unwrap_or(0);
            let clock = self.ordering_clocks[variant].clock(shard);
            // The wait also breaks on divergence: a poisoned MVEE must not
            // keep slave threads spinning out their full lockstep timeout on
            // a turn that will never come.
            let turn_reached = wait_until_with_timeout(self.config.lockstep_timeout, || {
                self.has_diverged() || clock.now() >= ts
            });
            if self.has_diverged() {
                return Err(MonitorError::ShutDown);
            }
            if !turn_reached {
                return Err(self.record_divergence(DivergenceReport {
                    kind: DivergenceKind::RendezvousTimeout {
                        arrived: vec![variant],
                    },
                    thread,
                    sequence: seq,
                    variant,
                }));
            }
            let outcome = self.kernel.execute(self.pids[variant], thread as u64, req);
            clock.advance();
            self.lockstep.consume(key);
            Ok(outcome)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvee_kernel::syscall::SyscallArg;
    use mvee_kernel::vfs::OpenFlags;
    use std::sync::Arc;

    fn make_monitor_sharded(
        variants: usize,
        policy: MonitoringPolicy,
        shards: usize,
    ) -> (Arc<Monitor>, Arc<Kernel>) {
        let kernel = Arc::new(Kernel::new_manual_clock());
        kernel.install_file("/input", b"some input data");
        let pids = (0..variants).map(|_| kernel.spawn_process()).collect();
        let config = MonitorConfig {
            variants,
            policy,
            lockstep_timeout: Duration::from_millis(500),
            max_threads: 8,
            shards,
        };
        (
            Arc::new(Monitor::new(config, Arc::clone(&kernel), pids)),
            kernel,
        )
    }

    /// Single-shard monitor: the original global-table behaviour, used by the
    /// tests whose scenarios rely on a global cross-thread order.
    fn make_monitor(variants: usize, policy: MonitoringPolicy) -> (Arc<Monitor>, Arc<Kernel>) {
        make_monitor_sharded(variants, policy, 1)
    }

    fn open_req(path: &str) -> SyscallRequest {
        SyscallRequest::new(Sysno::Open)
            .with_path(path)
            .with_arg(SyscallArg::Flags(OpenFlags::READ.bits()))
    }

    #[test]
    fn self_aware_call_reports_variant_index() {
        let (monitor, _) = make_monitor(3, MonitoringPolicy::StrictLockstep);
        for v in 0..3 {
            let out = monitor
                .syscall(v, 0, &SyscallRequest::new(Sysno::MveeSelfAware))
                .unwrap();
            assert_eq!(out.result, Ok(v as i64));
        }
        assert_eq!(monitor.stats().self_aware_queries, 3);
    }

    #[test]
    fn replicated_open_gives_all_variants_the_same_fd() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::StrictLockstep);
        let m = Arc::clone(&monitor);
        let slave = std::thread::spawn(move || m.syscall(1, 0, &open_req("/input")).unwrap());
        let master = monitor.syscall(0, 0, &open_req("/input")).unwrap();
        let slave = slave.join().unwrap();
        assert_eq!(master.result, slave.result);
        assert_eq!(master.result, Ok(3));
        assert!(!monitor.has_diverged());
    }

    #[test]
    fn replicated_read_copies_master_payload_to_slaves() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::StrictLockstep);
        // Both variants open the file first.
        let m = Arc::clone(&monitor);
        let t = std::thread::spawn(move || {
            m.syscall(1, 0, &open_req("/input")).unwrap();
            m.syscall(
                1,
                0,
                &SyscallRequest::new(Sysno::Read).with_fd(3).with_int(4),
            )
            .unwrap()
        });
        monitor.syscall(0, 0, &open_req("/input")).unwrap();
        let master = monitor
            .syscall(
                0,
                0,
                &SyscallRequest::new(Sysno::Read).with_fd(3).with_int(4),
            )
            .unwrap();
        let slave = t.join().unwrap();
        assert_eq!(master.payload, b"some");
        assert_eq!(slave.payload, b"some");
    }

    #[test]
    fn lockstep_detects_divergent_write_payloads() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::StrictLockstep);
        let m = Arc::clone(&monitor);
        let slave = std::thread::spawn(move || {
            m.syscall(
                1,
                0,
                &SyscallRequest::new(Sysno::Write)
                    .with_fd(1)
                    .with_payload(b"evil"),
            )
        });
        let master = monitor.syscall(
            0,
            0,
            &SyscallRequest::new(Sysno::Write)
                .with_fd(1)
                .with_payload(b"good"),
        );
        let slave = slave.join().unwrap();
        assert!(master.is_err() || slave.is_err());
        assert!(monitor.has_diverged());
        let report = monitor.divergence().unwrap();
        assert!(matches!(
            report.kind,
            DivergenceKind::SyscallMismatch { .. }
        ));
        assert!(monitor.stats().divergences >= 1);
    }

    #[test]
    fn lockstep_detects_divergent_call_numbers() {
        // The attack scenario: the compromised slave issues mprotect while
        // the master issues a write.
        let (monitor, _) = make_monitor(2, MonitoringPolicy::StrictLockstep);
        let m = Arc::clone(&monitor);
        let slave = std::thread::spawn(move || {
            m.syscall(
                1,
                0,
                &SyscallRequest::new(Sysno::Mprotect)
                    .with_arg(SyscallArg::Pointer(0x7fff_0000))
                    .with_int(4096)
                    .with_arg(SyscallArg::Flags(7)),
            )
        });
        let master = monitor.syscall(
            0,
            0,
            &SyscallRequest::new(Sysno::Write)
                .with_fd(1)
                .with_payload(b"response"),
        );
        let slave_result = slave.join().unwrap();
        assert!(master.is_err() || slave_result.is_err());
        assert!(monitor.has_diverged());
    }

    #[test]
    fn missing_variant_triggers_timeout_divergence() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::StrictLockstep);
        let result = monitor.syscall(0, 0, &open_req("/input"));
        assert!(result.is_err());
        let report = monitor.divergence().unwrap();
        assert!(matches!(
            report.kind,
            DivergenceKind::RendezvousTimeout { .. }
        ));
    }

    #[test]
    fn calls_after_divergence_are_rejected() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::StrictLockstep);
        let _ = monitor.syscall(0, 0, &open_req("/input"));
        assert!(monitor.has_diverged());
        let r = monitor.syscall(0, 1, &SyscallRequest::new(Sysno::SchedYield));
        assert_eq!(r, Err(MonitorError::ShutDown));
    }

    #[test]
    fn ordered_brk_executes_in_each_variants_own_address_space() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::NoComparison);
        let m = Arc::clone(&monitor);
        let slave = std::thread::spawn(move || {
            m.syscall(1, 0, &SyscallRequest::new(Sysno::Brk).with_int(0))
                .unwrap()
        });
        let master = monitor
            .syscall(0, 0, &SyscallRequest::new(Sysno::Brk).with_int(0))
            .unwrap();
        let slave = slave.join().unwrap();
        // Both get their own break value; with identical layouts they match.
        assert_eq!(master.result, slave.result);
        assert!(monitor.stats().ordered_syscalls >= 2);
    }

    #[test]
    fn ordering_clock_makes_slave_follow_master_cross_thread_order() {
        // Master: thread 0 brk, then thread 1 brk (timestamps 0 and 1).
        // Slave: thread 1 arrives first but must wait for thread 0.
        let (monitor, kernel) = make_monitor(2, MonitoringPolicy::NoComparison);
        let brk = |m: &Monitor, v: usize, t: usize| {
            m.syscall(v, t, &SyscallRequest::new(Sysno::Brk).with_int(0))
        };
        brk(&monitor, 0, 0).unwrap();
        brk(&monitor, 0, 1).unwrap();

        let m = Arc::clone(&monitor);
        let slave_t1 = std::thread::spawn(move || brk(&m, 1, 1));
        std::thread::sleep(Duration::from_millis(50));
        // Slave thread 1 is stalled on the ordering clock until thread 0 runs.
        brk(&monitor, 1, 0).unwrap();
        slave_t1.join().unwrap().unwrap();
        assert!(!monitor.has_diverged());
        assert_eq!(monitor.stats().ordered_syscalls, 4);
        assert!(kernel.process_syscall_count(monitor.pid_of(1)) >= 1);
    }

    #[test]
    fn relaxed_policy_skips_lockstep_for_non_sensitive_calls() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::SecuritySensitiveOnly);
        // gettimeofday is not security sensitive: the master proceeds without
        // waiting for the slave to arrive.
        let master = monitor
            .syscall(0, 0, &SyscallRequest::new(Sysno::Gettimeofday))
            .unwrap();
        assert_eq!(monitor.stats().lockstep_syscalls, 0);
        // The slave arrives later and still receives the replicated result.
        let slave = monitor
            .syscall(1, 0, &SyscallRequest::new(Sysno::Gettimeofday))
            .unwrap();
        assert_eq!(master.payload, slave.payload);
        // A sensitive call under the same policy still requires lockstep: the
        // master alone times out into a divergence.
        let r = monitor.syscall(0, 0, &open_req("/input"));
        assert!(r.is_err());
        assert_eq!(monitor.stats().lockstep_syscalls, 1);
    }

    #[test]
    fn stats_track_call_categories() {
        let (monitor, _) = make_monitor(1, MonitoringPolicy::StrictLockstep);
        monitor.syscall(0, 0, &open_req("/input")).unwrap();
        monitor
            .syscall(0, 0, &SyscallRequest::new(Sysno::Brk).with_int(0))
            .unwrap();
        monitor
            .syscall(0, 0, &SyscallRequest::new(Sysno::SchedYield))
            .unwrap();
        let s = monitor.stats();
        assert_eq!(s.total_syscalls, 3);
        assert_eq!(s.replicated_syscalls, 1);
        assert_eq!(s.ordered_syscalls, 1);
        assert_eq!(s.divergences, 0);
    }

    #[test]
    fn default_config_is_sharded() {
        let (monitor, _) = {
            let kernel = Arc::new(Kernel::new_manual_clock());
            let pids = (0..2).map(|_| kernel.spawn_process()).collect();
            let config = MonitorConfig::default();
            (
                Arc::new(Monitor::new(config, Arc::clone(&kernel), pids)),
                (),
            )
        };
        assert_eq!(monitor.shard_count(), crate::lockstep::DEFAULT_SHARDS);
    }

    #[test]
    fn sharded_monitor_replicates_across_thread_groups() {
        // Threads 0 and 1 land in different shards (shards = 4); both must
        // still see the master's replicated outcomes.
        let (monitor, _) = make_monitor_sharded(2, MonitoringPolicy::StrictLockstep, 4);
        for thread in 0..2usize {
            let m = Arc::clone(&monitor);
            let slave =
                std::thread::spawn(move || m.syscall(1, thread, &open_req("/input")).unwrap());
            let master = monitor.syscall(0, thread, &open_req("/input")).unwrap();
            assert_eq!(master.result, slave.join().unwrap().result);
        }
        assert!(!monitor.has_diverged());
    }

    #[test]
    fn divergence_in_one_shard_poisons_waiters_in_other_shards() {
        // Thread 2's mismatch must promptly wake thread 0's rendezvous even
        // though they wait on different shards.
        let (monitor, _) = make_monitor_sharded(2, MonitoringPolicy::StrictLockstep, 4);
        let m = Arc::clone(&monitor);
        let stuck = std::thread::spawn(move || {
            // Only variant 0 arrives on thread 0: blocks until poisoned.
            m.syscall(0, 0, &open_req("/input"))
        });
        std::thread::sleep(Duration::from_millis(30));
        let m = Arc::clone(&monitor);
        let slave = std::thread::spawn(move || {
            m.syscall(1, 2, &SyscallRequest::new(Sysno::Mprotect).with_int(4096))
        });
        let master = monitor.syscall(
            0,
            2,
            &SyscallRequest::new(Sysno::Write)
                .with_fd(1)
                .with_payload(b"ok"),
        );
        let slave = slave.join().unwrap();
        assert!(master.is_err() || slave.is_err());
        assert!(monitor.has_diverged());
        // The cross-shard waiter aborts with ShutDown/Diverged well before
        // its own 500 ms timeout would fire.
        assert!(stuck.join().unwrap().is_err());
    }

    #[test]
    fn divergence_unblocks_ordered_turn_waiters_promptly() {
        // A slave blocked on its ordering-clock turn must abort on divergence
        // instead of spinning out the full (here: 10 s) lockstep timeout.
        let kernel = Arc::new(Kernel::new_manual_clock());
        kernel.install_file("/input", b"some input data");
        let pids = (0..2).map(|_| kernel.spawn_process()).collect();
        let config = MonitorConfig {
            variants: 2,
            // Ordered calls (brk) skip the rendezvous under this policy, so
            // the master can record its cross-thread order alone; the
            // security-sensitive calls below still compare and diverge.
            policy: MonitoringPolicy::SecuritySensitiveOnly,
            lockstep_timeout: Duration::from_secs(10),
            max_threads: 8,
            shards: 1,
        };
        let monitor = Arc::new(Monitor::new(config, Arc::clone(&kernel), pids));
        let brk = |m: &Monitor, v: usize, t: usize| {
            m.syscall(v, t, &SyscallRequest::new(Sysno::Brk).with_int(0))
        };
        // Master: thread 0 then thread 1 (timestamps 0 and 1).
        brk(&monitor, 0, 0).unwrap();
        brk(&monitor, 0, 1).unwrap();
        // Slave thread 1 stalls on the ordering clock until slave thread 0
        // runs — which it never will.
        let m = Arc::clone(&monitor);
        let stuck = std::thread::spawn(move || {
            let start = std::time::Instant::now();
            let r = brk(&m, 1, 1);
            (r, start.elapsed())
        });
        std::thread::sleep(Duration::from_millis(100));
        // Divergence on an unrelated thread: both calls are
        // security-sensitive, so they rendezvous and mismatch.
        let m = Arc::clone(&monitor);
        let slave = std::thread::spawn(move || {
            m.syscall(1, 2, &SyscallRequest::new(Sysno::Mprotect).with_int(4096))
        });
        let master = monitor.syscall(0, 2, &open_req("/input"));
        assert!(master.is_err() || slave.join().unwrap().is_err());
        let (result, elapsed) = stuck.join().unwrap();
        assert!(result.is_err());
        assert!(
            elapsed < Duration::from_secs(5),
            "ordered waiter took {elapsed:?} to notice the divergence"
        );
    }

    #[test]
    fn ordering_is_preserved_within_a_shard() {
        // With 4 shards, threads 0 and 4 share shard 0: the slave's thread 4
        // must wait for thread 0's earlier ordered call, exactly as in the
        // unsharded design.
        let (monitor, _) = make_monitor_sharded(2, MonitoringPolicy::NoComparison, 4);
        let brk = |m: &Monitor, v: usize, t: usize| {
            m.syscall(v, t, &SyscallRequest::new(Sysno::Brk).with_int(0))
        };
        brk(&monitor, 0, 0).unwrap();
        brk(&monitor, 0, 4).unwrap();

        let m = Arc::clone(&monitor);
        let slave_t4 = std::thread::spawn(move || brk(&m, 1, 4));
        std::thread::sleep(Duration::from_millis(50));
        brk(&monitor, 1, 0).unwrap();
        slave_t4.join().unwrap().unwrap();
        assert!(!monitor.has_diverged());
        assert_eq!(monitor.stats().ordered_syscalls, 4);
    }

    #[test]
    #[should_panic(expected = "one kernel process per variant")]
    fn monitor_requires_one_pid_per_variant() {
        let kernel = Arc::new(Kernel::new_manual_clock());
        let pid = kernel.spawn_process();
        let config = MonitorConfig {
            variants: 2,
            ..Default::default()
        };
        let _ = Monitor::new(config, kernel, vec![pid]);
    }
}
