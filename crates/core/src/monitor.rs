//! The monitor: the system-call gateway variants call instead of the kernel.
//!
//! In the real ReMon the monitor interposes on system calls with ptrace and a
//! small in-process broker; in this reproduction every variant thread calls
//! [`Monitor::syscall`] directly.  The information flow is identical to a
//! ptrace stop: the monitor sees the call number, the normalized arguments
//! and the calling (variant, thread) pair, decides whether to compare,
//! replicate, order or simply forward the call, and only then lets the
//! variant proceed.
//!
//! # Batched comparisons
//!
//! With [`MonitorConfig::batch`] above 1, the monitor defers the comparisons
//! of *compare-only* calls (see
//! [`CallDisposition::defer_compare`](crate::policy::CallDisposition)) into a
//! per-(variant, thread) queue instead of rendezvousing on every call.  The
//! queue is flushed — deposited into the rendezvous table as one
//! [`LockstepTable::arrive_batch`] block — when it reaches `batch` entries,
//! before any synchronous monitored call (so comparisons never reorder
//! against a replication point), at the agents' replication points (the
//! front end installs a hook, see `MveeBuilder`), and dropped outright on
//! divergence (the batched waiters are woken by the poison broadcast).
//!
//! Deferred comparisons live in a *disjoint* slot-key space (the sequence
//! number's [`DEFERRED_SEQ_BIT`] is set) so a deferred comparison can never
//! collide with the replication/ordering slot of the same call, whose
//! lifetime is governed by the ordinary consume protocol.
//!
//! The trade-off is dMVX-style bounded-window detection: a divergent
//! compare-only call may execute in its own variant's (simulated) address
//! space up to `batch - 1` calls before the mismatch is reported, but never
//! past a replication point — the flush-before-synchronous rule means no
//! externally visible I/O happens while a deferred comparison is pending.
//! `batch = 1` disables deferral and reproduces the per-call rendezvous
//! exactly, which is what the `ablation_batching` benchmark compares
//! against.  Deferral decisions are a pure function of the call stream
//! (policy disposition plus the batch counter), so non-divergent variants
//! always flush at the same per-thread call positions and their batches
//! meet; a variant whose *structure* diverges (it defers where the others
//! rendezvous synchronously) is caught by the rendezvous timeout instead of
//! a key mismatch.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use mvee_kernel::kernel::Kernel;
use mvee_kernel::process::Pid;
use mvee_kernel::syscall::{SyscallOutcome, SyscallRequest, Sysno};
use mvee_sync_agent::guards::{WaitStrategy, Waiter};

use crate::config::{Placement, RecoveryPolicy, Transport};
use crate::divergence::{DivergenceKind, DivergenceReport};
use crate::journal::{ClassKind, JournalHeader, JournalRecorder, JOURNAL_VERSION};
use crate::lockstep::{
    ArrivalResult, BatchArrival, LockstepTable, SlotKey, DEFAULT_SHARDS, MAX_BATCH,
};
use crate::ordering::ShardedOrderingClock;
use crate::policy::{CallDisposition, MonitoringPolicy};

/// Set on the sequence number of a deferred comparison's slot key.
///
/// Keeps the deferred-comparison slots in a key space disjoint from the
/// replication/ordering slots of the same calls: the latter are consumed by
/// the execution machinery while the comparison is still pending, and a
/// shared slot could be reclaimed (or resurrected empty) between the two
/// uses.  The bit is stripped again when a batched mismatch is reported, so
/// divergence reports always carry the original per-thread sequence number.
pub const DEFERRED_SEQ_BIT: u64 = 1 << 63;

/// Monitor configuration.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Number of variants under monitoring.
    pub variants: usize,
    /// The lockstep policy.
    pub policy: MonitoringPolicy,
    /// How long a rendezvous or replication wait may take before the monitor
    /// declares divergence.
    pub lockstep_timeout: Duration,
    /// Maximum number of logical threads per variant.
    pub max_threads: usize,
    /// Number of threads the workload actually uses (≤ `max_threads`).
    /// [`Placement::Grouped`] scales its block size to this count: scaling
    /// against the 64-slot table capacity instead would collapse an
    /// 8-thread run into one shard.
    pub workload_threads: usize,
    /// Number of rendezvous/ordering shards the monitor state is partitioned
    /// into (see [`crate::lockstep`]).  `1` reproduces the original global
    /// table and global ordering clock.
    pub shards: usize,
    /// How many deferred comparisons a variant thread may accumulate before
    /// its batch is flushed to the rendezvous table (see the module docs).
    /// `1` disables deferral and reproduces the per-call rendezvous exactly;
    /// values above [`MAX_BATCH`] are clamped.
    pub batch: usize,
    /// How logical threads are bound to shards (see
    /// [`Placement`](crate::config::Placement)).  [`Placement::RoundRobin`]
    /// reproduces the historical `thread % shards` binding.
    pub placement: Placement,
    /// How variant threads hand calls to the monitor (see
    /// [`Transport`](crate::config::Transport)): blocking in the pipeline
    /// directly, or through per-port submission/completion rings drained by
    /// a gateway worker or a polling pool ([`crate::async_port`],
    /// [`crate::poller`]).
    pub transport: Transport,
    /// How the transport's ring waiters (reapers parked on completion
    /// rings, gateway workers parked on submission rings, polling shards
    /// parked on their aggregated wakers) wait: the adaptive
    /// spin → yield → park escalation (default) or the legacy spin-yield
    /// loop.  Mirrors the agents' `AgentConfig::wait` knob so the
    /// `ablation_agent` comparison covers the transport too.
    pub wait: WaitStrategy,
    /// Busy-spin iterations before a ring waiter starts yielding; the same
    /// budget `AgentConfig::spin_before_yield` gives the agents.
    pub spin_before_yield: u32,
    /// Divergence-journal sink, when the run is being recorded (see
    /// [`crate::journal`]).  `None` — the default — keeps the journal hooks
    /// off the hot path entirely.
    pub journal: Option<Arc<JournalRecorder>>,
    /// What happens to the run when a variant diverges: poison everything
    /// (default) or quarantine only the blamed variant and keep serving on
    /// a degraded quorum (see [`RecoveryPolicy`]).
    pub recovery: RecoveryPolicy,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            variants: 2,
            policy: MonitoringPolicy::StrictLockstep,
            lockstep_timeout: Duration::from_secs(5),
            max_threads: 64,
            workload_threads: 64,
            shards: DEFAULT_SHARDS,
            batch: 1,
            placement: Placement::RoundRobin,
            transport: Transport::Sync,
            wait: WaitStrategy::Adaptive,
            spin_before_yield: 64,
            journal: None,
            recovery: RecoveryPolicy::PoisonAll,
        }
    }
}

impl MonitorConfig {
    /// The waiter the async transport's ring loops use, built from the
    /// configured wait strategy and spin budget — the same discipline the
    /// agents get from `AgentConfig::waiter`.
    pub fn ring_waiter(&self) -> Waiter {
        Waiter::with_strategy(self.spin_before_yield, self.wait)
    }
}

/// Errors the gateway returns to a variant thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorError {
    /// Divergence was detected on this very call; the report describes it.
    Diverged(DivergenceReport),
    /// The MVEE has already been shut down (divergence detected elsewhere);
    /// the variant thread must terminate.
    ShutDown,
    /// The replication channel to the remote peer failed (distributed runs
    /// only, see [`crate::remote`]): the carried failure names the missing
    /// peer and how it was lost.
    Peer(crate::remote::PeerFailure),
}

impl std::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorError::Diverged(report) => write!(f, "{}", report.summary()),
            MonitorError::ShutDown => write!(f, "MVEE has been shut down"),
            MonitorError::Peer(failure) => write!(f, "{failure}"),
        }
    }
}

impl std::error::Error for MonitorError {}

/// How a rendezvous verdict settles once routed through the recovery
/// policy.  `Retry` only occurs under
/// [`RecoveryPolicy::Quarantine`](crate::config::RecoveryPolicy): the
/// verdict was superseded by a quarantine and the caller must re-present
/// its arrival (blocking callers loop on
/// [`LockstepTable::rearrive`](crate::lockstep::LockstepTable::rearrive);
/// polling callers re-enter their pending state via `try_rearrive`).
#[derive(Debug)]
pub(crate) enum ArrivalSettle {
    /// The rendezvous is consistent; proceed.
    Done,
    /// The call fails with this error (divergence, shutdown, ...).
    Fail(MonitorError),
    /// A quarantine superseded the verdict; re-present the arrival.
    Retry,
}

/// How a batch's verdicts settle once routed through the recovery policy.
#[derive(Debug)]
pub(crate) enum BatchSettle {
    /// Every key settled; the result is the batch's overall outcome.
    Done(Result<(), MonitorError>),
    /// These batch indices (in batch order) must be re-presented; their
    /// slots were deliberately not consumed.  Every other key settled and
    /// was consumed.
    Retry(Vec<usize>),
}

/// Aggregate counters the monitor maintains.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MonitorStats {
    /// Total calls that entered the gateway.
    pub total_syscalls: u64,
    /// Calls that required a lockstep rendezvous.
    pub lockstep_syscalls: u64,
    /// Calls whose results were replicated from the master.
    pub replicated_syscalls: u64,
    /// Calls ordered with the syscall ordering clock.
    pub ordered_syscalls: u64,
    /// Divergences detected.
    pub divergences: u64,
    /// `mvee_self_aware` queries answered.
    pub self_aware_queries: u64,
    /// Compared calls whose comparison was deferred into a batch (a subset
    /// of `lockstep_syscalls`).
    pub batched_comparisons: u64,
    /// Batches flushed to the rendezvous table.
    pub batch_flushes: u64,
    /// Divergence-detection lag, summed over mismatching arrivals: how many
    /// leader sync ops completed between a mismatching arrival reaching the
    /// follower and its verdict ([`Transport::Remote`](crate::config::Transport)
    /// only — the in-proc transports compare before the call returns, so
    /// their lag is zero by construction, and the journal does not carry
    /// it).
    pub detection_lag_sync_ops: u64,
    /// Variants dropped from the expected-arrival set by
    /// [`RecoveryPolicy::Quarantine`] instead of poisoning the run.
    pub quarantines: u64,
    /// Quarantined variants restored to the quorum by
    /// `Mvee::respawn_variant`.
    pub respawns: u64,
    /// Gateway entries served while at least one variant was quarantined
    /// (the degraded-quorum window).
    pub degraded_calls: u64,
}

/// One stripe of monitor counters, padded to a cache line so lanes of
/// different shards never false-share.  The monitor keeps one lane per
/// shard; every counting site passes the calling thread's (cached) shard
/// index as its lane, the same striping discipline the agents'
/// `SharedStats` uses.
#[derive(Debug, Default)]
#[repr(align(64))]
struct StatLane {
    total_syscalls: AtomicU64,
    lockstep_syscalls: AtomicU64,
    replicated_syscalls: AtomicU64,
    ordered_syscalls: AtomicU64,
    divergences: AtomicU64,
    self_aware_queries: AtomicU64,
    batched_comparisons: AtomicU64,
    batch_flushes: AtomicU64,
    detection_lag_sync_ops: AtomicU64,
    quarantines: AtomicU64,
    respawns: AtomicU64,
    degraded_calls: AtomicU64,
}

impl StatLane {
    fn snapshot(&self) -> MonitorStats {
        MonitorStats {
            total_syscalls: self.total_syscalls.load(Ordering::Relaxed),
            lockstep_syscalls: self.lockstep_syscalls.load(Ordering::Relaxed),
            replicated_syscalls: self.replicated_syscalls.load(Ordering::Relaxed),
            ordered_syscalls: self.ordered_syscalls.load(Ordering::Relaxed),
            divergences: self.divergences.load(Ordering::Relaxed),
            self_aware_queries: self.self_aware_queries.load(Ordering::Relaxed),
            batched_comparisons: self.batched_comparisons.load(Ordering::Relaxed),
            batch_flushes: self.batch_flushes.load(Ordering::Relaxed),
            detection_lag_sync_ops: self.detection_lag_sync_ops.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            degraded_calls: self.degraded_calls.load(Ordering::Relaxed),
        }
    }
}

impl MonitorStats {
    fn add(&mut self, other: &MonitorStats) {
        self.total_syscalls += other.total_syscalls;
        self.lockstep_syscalls += other.lockstep_syscalls;
        self.replicated_syscalls += other.replicated_syscalls;
        self.ordered_syscalls += other.ordered_syscalls;
        self.divergences += other.divergences;
        self.self_aware_queries += other.self_aware_queries;
        self.batched_comparisons += other.batched_comparisons;
        self.batch_flushes += other.batch_flushes;
        self.detection_lag_sync_ops += other.detection_lag_sync_ops;
        self.quarantines += other.quarantines;
        self.respawns += other.respawns;
        self.degraded_calls += other.degraded_calls;
    }
}

/// Per (variant, thread) fast-path state, touched on every monitored call.
///
/// Holding the per-thread sequence counter and the thread's precomputed
/// shard index together keeps the hot path to one cache line of thread-local
/// monitor state: no shared counter is touched before the call has been
/// classified.  The 64-byte alignment keeps neighbouring threads' `seq`
/// counters off each other's cache lines (their `fetch_add`s would otherwise
/// false-share — the exact contention this refactor removes elsewhere).
#[derive(Debug)]
#[repr(align(64))]
struct ThreadState {
    /// Next per-thread sequence number for monitored calls.
    seq: AtomicU64,
    /// The shard this thread's slots and ordering clock live in; identical
    /// across variants because it depends only on the logical thread index
    /// and the (shared) placement policy.
    shard: usize,
    /// Whether a [`ThreadPort`](crate::port::ThreadPort) currently owns this
    /// (variant, thread)'s gateway state.  At most one port may be live at a
    /// time — the port keeps the sequence counter and deferred queue in
    /// thread-local storage, and a second writer would corrupt the key
    /// stream.  The flag also hands the counter back on port drop.
    port_live: AtomicBool,
    /// Deferred comparisons awaiting the next batch flush.  In steady state
    /// only this (variant, thread)'s own calls — and the agent's
    /// replication-point hook, which runs on the same OS thread — touch the
    /// queue, so the mutex is uncontended; the lock only arbitrates against
    /// the divergence path dropping every queue.  A live `ThreadPort`
    /// bypasses this queue entirely: the port owns its batch locally.
    pending: Mutex<Vec<BatchArrival>>,
}

/// The MVEE monitor.
pub struct Monitor {
    config: MonitorConfig,
    kernel: std::sync::Arc<Kernel>,
    /// Kernel process backing each variant.
    pids: Vec<Pid>,
    lockstep: LockstepTable,
    /// Per-variant sharded syscall ordering clocks.  The master's clocks hand
    /// out timestamps; each slave's clocks gate execution (§4.1), one clock
    /// per thread-group shard.
    ordering_clocks: Vec<ShardedOrderingClock>,
    /// Per (variant, thread) fast-path state.
    threads: Vec<ThreadState>,
    /// Per-shard counter lanes (see [`StatLane`]).
    stats: Box<[StatLane]>,
    diverged: AtomicBool,
    divergence_report: Mutex<Option<DivergenceReport>>,
    /// Called once when divergence is first recorded, after the lockstep
    /// table has been poisoned.  The MVEE front end installs a hook that
    /// poisons the synchronization agent, so threads blocked inside agent
    /// waits (replay, full buffers) abort as promptly as the rendezvous
    /// waiters do.
    poison_hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
    /// Per-variant quarantine flags ([`RecoveryPolicy::Quarantine`] only):
    /// a quarantined variant's further gateway entries return `ShutDown`
    /// and its lockstep deposits are refused, while the survivors keep
    /// serving.  Also the serialization point for quarantine decisions —
    /// the flags only flip under [`Monitor::quarantine_reports`]'s lock, so
    /// two concurrent divergences cannot drop the quorum below its floor.
    quarantined: Box<[AtomicBool]>,
    /// The divergence report behind each quarantine, in quarantine order.
    /// Kept separate from `divergence_report`, which stays reserved for the
    /// run-ending poison.
    quarantine_reports: Mutex<Vec<DivergenceReport>>,
    /// Called on every quarantine (`readmitted == false`) and re-admission
    /// (`readmitted == true`) with the variant index.  The front end wires
    /// the sync agent's lane hooks here.
    lane_hook: Mutex<Option<LaneHook>>,
}

/// A quarantine/re-admission observer: `(variant, readmitted)`.
type LaneHook = Box<dyn Fn(usize, bool) + Send + Sync>;

impl Monitor {
    /// Creates a monitor over an existing kernel and pre-spawned variant
    /// processes (`pids[i]` backs variant `i`).
    ///
    /// # Panics
    ///
    /// Panics if `pids.len() != config.variants` or if `config.variants == 0`.
    pub fn new(mut config: MonitorConfig, kernel: std::sync::Arc<Kernel>, pids: Vec<Pid>) -> Self {
        assert!(config.variants > 0, "need at least one variant");
        assert_eq!(
            pids.len(),
            config.variants,
            "one kernel process per variant is required"
        );
        config.batch = config.batch.clamp(1, MAX_BATCH);
        let shards = config.shards.max(1);
        // One thread→shard binding, derived from the placement policy once
        // and shared by the rendezvous table, the ordering clocks and the
        // stat lanes — a thread's entire monitor footprint lives in one
        // shard.  Grouped blocks scale to the *workload's* thread count,
        // not the table capacity.
        let workload_threads = config.workload_threads.clamp(1, config.max_threads);
        let placement_map: Vec<usize> = (0..config.max_threads)
            .map(|t| config.placement.shard_for(t, workload_threads, shards))
            .collect();
        // Reuse the shared map for the per-thread state: the lockstep
        // table's binding and `ThreadState::shard` must never
        // desynchronize.
        let threads = (0..config.variants * config.max_threads)
            .map(|i| ThreadState {
                seq: AtomicU64::new(0),
                shard: placement_map[i % config.max_threads],
                port_live: AtomicBool::new(false),
                pending: Mutex::new(Vec::new()),
            })
            .collect();
        let mut lockstep =
            LockstepTable::with_placement_map(config.variants, shards, placement_map);
        if let Some(recorder) = &config.journal {
            recorder.begin(JournalHeader {
                version: JOURNAL_VERSION,
                variants: config.variants as u16,
                threads: config.max_threads as u16,
                shards: shards as u16,
                batch: config.batch as u16,
            });
            // The table emits the Arrival/Publish records itself — one
            // choke point all three transports (sync ports, per-port
            // workers, polling shards) already funnel through.
            lockstep.set_journal(Arc::clone(recorder));
        }
        Monitor {
            lockstep,
            ordering_clocks: (0..config.variants)
                .map(|_| ShardedOrderingClock::new(shards))
                .collect(),
            threads,
            stats: (0..shards).map(|_| StatLane::default()).collect(),
            diverged: AtomicBool::new(false),
            divergence_report: Mutex::new(None),
            poison_hook: Mutex::new(None),
            quarantined: (0..config.variants)
                .map(|_| AtomicBool::new(false))
                .collect(),
            quarantine_reports: Mutex::new(Vec::new()),
            lane_hook: Mutex::new(None),
            config,
            kernel,
            pids,
        }
    }

    /// Installs a hook invoked (once) when divergence is recorded, after the
    /// rendezvous table has been poisoned.  Used to propagate the shutdown to
    /// components the monitor does not own, such as the synchronization
    /// agent's blocking waits.
    pub fn set_poison_hook(&self, hook: impl Fn() + Send + Sync + 'static) {
        *self.poison_hook.lock() = Some(Box::new(hook));
    }

    /// Installs the lane hook: called with `(variant, false)` on every
    /// quarantine and `(variant, true)` on every re-admission.  The front
    /// end forwards these to the sync agent's lane hooks.
    pub fn set_lane_hook(&self, hook: impl Fn(usize, bool) + Send + Sync + 'static) {
        *self.lane_hook.lock() = Some(Box::new(hook));
    }

    /// Whether `variant` is currently quarantined.
    pub fn is_quarantined(&self, variant: usize) -> bool {
        self.quarantined[variant].load(Ordering::Acquire)
    }

    /// The currently quarantined variants, in index order.
    pub fn quarantined_variants(&self) -> Vec<usize> {
        (0..self.config.variants)
            .filter(|&v| self.is_quarantined(v))
            .collect()
    }

    /// The divergence reports behind every quarantine so far, in quarantine
    /// order.  Unlike [`divergence`](Self::divergence) — which stays `None`
    /// while the run keeps serving — these do not imply the run ended.
    pub fn quarantine_reports(&self) -> Vec<DivergenceReport> {
        self.quarantine_reports.lock().clone()
    }

    /// The variant currently acting as replication master: the
    /// lowest-indexed live variant.  Variant 0 until a quarantine fails it
    /// over.
    pub fn master_variant(&self) -> usize {
        (0..self.config.variants)
            .find(|&v| self.lockstep.is_active(v))
            .unwrap_or(0)
    }

    /// Attempts to quarantine `blamed` for the failure `report` describes.
    ///
    /// Returns `true` when the variant is quarantined on return (including
    /// the idempotent already-quarantined case) and `false` when the quorum
    /// floor forbids dropping another variant — the caller then falls back
    /// to poisoning the run.  The decision is serialized under the
    /// quarantine-report lock so concurrent divergences cannot race the
    /// quorum below `min_quorum`.
    fn quarantine_variant(
        &self,
        blamed: usize,
        min_quorum: usize,
        report: &DivergenceReport,
    ) -> bool {
        let mut reports = self.quarantine_reports.lock();
        if self.quarantined[blamed].load(Ordering::Acquire) {
            return true;
        }
        // The active mask cannot name variants past 64; such tables never
        // quarantine (the config cannot produce them, this is belt and
        // braces).
        if self.config.variants > 64 || self.lockstep.active_count() <= min_quorum {
            return false;
        }
        self.quarantined[blamed].store(true, Ordering::Release);
        let mut recorded = report.clone();
        recorded.variant = blamed;
        let lane = self
            .thread_state(0, recorded.thread % self.config.max_threads)
            .shard;
        self.lane(lane).quarantines.fetch_add(1, Ordering::Relaxed);
        if let Some(journal) = &self.config.journal {
            journal.record_diverge(&recorded);
        }
        reports.push(recorded);
        drop(reports);
        // Drop the victim's monitor-owned deferred comparisons (its
        // port-local queues die with the refused flush), then sweep it out
        // of the rendezvous table — this wakes every survivor blocked on a
        // slot the victim will never complete.
        for thread in 0..self.config.max_threads {
            self.thread_state(blamed, thread).pending.lock().clear();
        }
        self.lockstep.quarantine(blamed);
        if let Some(hook) = &*self.lane_hook.lock() {
            hook(blamed, false);
        }
        true
    }

    /// Restores a quarantined variant to the quorum at a quiescent batch
    /// boundary: fast-forwards its per-thread sequence counters and
    /// ordering clocks to the survivors' frontier, clears its quarantine
    /// flag, and re-admits it into the lockstep expected-arrival set.
    ///
    /// The caller (`Mvee::respawn_variant`) must guarantee quiescence — no
    /// survivor call in flight — or the fast-forwarded counters could trail
    /// slots the survivors have already reclaimed.
    ///
    /// # Panics
    ///
    /// Panics if `variant` is not quarantined.
    pub(crate) fn readmit_variant(&self, variant: usize) {
        assert!(
            self.is_quarantined(variant),
            "variant {variant} is not quarantined"
        );
        let survivor = self.master_variant();
        for thread in 0..self.config.max_threads {
            let frontier = (0..self.config.variants)
                .filter(|&v| self.lockstep.is_active(v))
                .map(|v| self.thread_state(v, thread).seq.load(Ordering::Acquire))
                .max()
                .unwrap_or(0);
            self.thread_state(variant, thread)
                .seq
                .store(frontier, Ordering::Release);
        }
        for shard in 0..self.lockstep.shard_count() {
            let now = self.ordering_clocks[survivor].clock(shard).now();
            self.ordering_clocks[variant].clock(shard).resync(now);
        }
        self.quarantined[variant].store(false, Ordering::Release);
        self.lockstep.readmit(variant);
        let lane = self.thread_state(0, 0).shard;
        self.lane(lane).respawns.fetch_add(1, Ordering::Relaxed);
        if let Some(hook) = &*self.lane_hook.lock() {
            hook(variant, true);
        }
    }

    /// Routes a proven failure through the recovery policy: under
    /// [`RecoveryPolicy::PoisonAll`] the failure poisons the run; under
    /// [`RecoveryPolicy::Quarantine`] the blamed variant is dropped from
    /// the quorum and the *surviving* caller retries its wait, while the
    /// blamed caller itself is handed the divergence without poisoning
    /// anything.  `report` is recorded as-is on the poison path; the
    /// quarantine record names the blamed variant.
    pub(crate) fn fault(
        &self,
        caller: usize,
        blamed: usize,
        report: DivergenceReport,
    ) -> ArrivalSettle {
        if self.is_quarantined(caller) {
            // A quarantined caller finishing an in-flight call gets no say:
            // its waits legitimately starve (survivor slots no longer hold
            // outcomes for it), and letting it indict a survivor — or
            // poison the run at the quorum floor — would turn its own
            // removal into the very teardown quarantine exists to avoid.
            return ArrivalSettle::Fail(MonitorError::ShutDown);
        }
        match self.config.recovery {
            RecoveryPolicy::PoisonAll => ArrivalSettle::Fail(self.record_divergence(report)),
            RecoveryPolicy::Quarantine { min_quorum } => {
                if !self.quarantine_variant(blamed, min_quorum, &report) {
                    return ArrivalSettle::Fail(self.record_divergence(report));
                }
                if caller == blamed {
                    ArrivalSettle::Fail(MonitorError::Diverged(report))
                } else {
                    ArrivalSettle::Retry
                }
            }
        }
    }

    /// Number of rendezvous/ordering shards the monitor state is split into.
    pub fn shard_count(&self) -> usize {
        self.lockstep.shard_count()
    }

    /// Total deferred comparisons currently pending across every (variant,
    /// thread) queue; tests use this to verify flush and abandon behaviour.
    pub fn live_deferred(&self) -> usize {
        self.threads.iter().map(|t| t.pending.lock().len()).sum()
    }

    /// Live waiter registrations in the rendezvous table; zero once every
    /// in-flight arrival has resolved or been released.  The fault suites
    /// assert this on shutdown to prove nothing leaked a slot.
    pub fn live_slots(&self) -> usize {
        self.lockstep.live_slots()
    }

    /// The monitor configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// The kernel process id backing `variant`.
    pub fn pid_of(&self, variant: usize) -> Pid {
        self.pids[variant]
    }

    /// Whether divergence has been detected.
    pub fn has_diverged(&self) -> bool {
        self.diverged.load(Ordering::Acquire)
    }

    /// The divergence report, if any.
    pub fn divergence(&self) -> Option<DivergenceReport> {
        self.divergence_report.lock().clone()
    }

    /// A snapshot of the monitor's counters, summed over all stat lanes.
    pub fn stats(&self) -> MonitorStats {
        let mut total = MonitorStats::default();
        for lane in self.stats.iter() {
            total.add(&lane.snapshot());
        }
        total
    }

    /// A snapshot of one shard's counter lane — the per-shard view the
    /// striped monitor stats expose, mirroring the agents' `lane_snapshot`.
    pub fn lane_stats(&self, lane: usize) -> MonitorStats {
        self.stats[lane % self.stats.len()].snapshot()
    }

    fn thread_state(&self, variant: usize, thread: usize) -> &ThreadState {
        &self.threads[variant * self.config.max_threads + thread]
    }

    fn lane(&self, lane: usize) -> &StatLane {
        &self.stats[lane % self.stats.len()]
    }

    /// Registers a [`ThreadPort`](crate::port::ThreadPort) as the owner of
    /// (variant, thread)'s gateway state; returns the sequence number the
    /// port continues from and the thread's resolved shard binding.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or if a live port already owns this
    /// (variant, thread).
    pub(crate) fn acquire_port(&self, variant: usize, thread: usize) -> (u64, usize) {
        assert!(variant < self.config.variants, "unknown variant index");
        assert!(
            thread < self.config.max_threads,
            "thread index out of range"
        );
        let state = self.thread_state(variant, thread);
        assert!(
            !state.port_live.swap(true, Ordering::AcqRel),
            "a live ThreadPort already owns (variant {variant}, thread {thread})"
        );
        (state.seq.load(Ordering::Acquire), state.shard)
    }

    /// Hands a dropped port's sequence counter back so a later port (or the
    /// legacy index-addressed path) continues the per-thread key stream.
    pub(crate) fn release_port(&self, variant: usize, thread: usize, next_seq: u64) {
        let state = self.thread_state(variant, thread);
        state.seq.store(next_seq, Ordering::Release);
        state.port_live.store(false, Ordering::Release);
    }

    /// The rendezvous table; the polling shards drive its try/poll mirror
    /// directly.
    pub(crate) fn lockstep(&self) -> &LockstepTable {
        &self.lockstep
    }

    /// Variant `variant`'s ordering clock for `shard`; the polling shards
    /// claim, check (`try_turn`) and advance it directly.
    pub(crate) fn ordering_clock(
        &self,
        variant: usize,
        shard: usize,
    ) -> &crate::ordering::SyscallOrderingClock {
        self.ordering_clocks[variant].clock(shard)
    }

    /// Executes `req` against `variant`'s kernel process.
    pub(crate) fn execute_kernel(
        &self,
        variant: usize,
        thread: usize,
        req: &SyscallRequest,
    ) -> SyscallOutcome {
        self.kernel.execute(self.pids[variant], thread as u64, req)
    }

    pub(crate) fn record_divergence(&self, report: DivergenceReport) -> MonitorError {
        // Count the divergence in the diverging thread's own lane (the shard
        // binding depends only on the thread index, so variant 0's state is
        // as good as any) so the per-shard `lane_stats` view attributes it
        // correctly.
        let lane = self
            .thread_state(0, report.thread % self.config.max_threads)
            .shard;
        self.lane(lane).divergences.fetch_add(1, Ordering::Relaxed);
        if let Some(journal) = &self.config.journal {
            journal.record_diverge(&report);
        }
        let mut slot = self.divergence_report.lock();
        if slot.is_none() {
            *slot = Some(report.clone());
        }
        drop(slot);
        self.diverged.store(true, Ordering::Release);
        // Wake every thread blocked in a rendezvous or replication wait so
        // the whole MVEE shuts down promptly (this also resolves every
        // batched waiter), drop the deferred comparisons that will never be
        // flushed, then let the front end poison the agent so replay waits
        // abort too.
        self.lockstep.poison();
        self.abandon_deferred();
        if let Some(hook) = &*self.poison_hook.lock() {
            hook();
        }
        MonitorError::Diverged(report)
    }

    /// Drops every thread's deferred comparisons without resolving them.
    ///
    /// Called on divergence/poison: the table is (about to be) poisoned, so
    /// the deposits would only come back [`ArrivalResult::Poisoned`], and
    /// the variants are shutting down anyway.  Peers already blocked in a
    /// batch flush are woken by the poison broadcast.
    pub fn abandon_deferred(&self) {
        for state in self.threads.iter() {
            state.pending.lock().clear();
        }
    }

    /// Flushes (variant, thread)'s deferred comparisons, if any: deposits
    /// them as one [`LockstepTable::arrive_batch`] block, consumes the batch
    /// slots, and turns the first non-consistent per-key result into the
    /// divergence it proves.
    ///
    /// Called from the syscall gateway (batch full, or a synchronous call
    /// needs the comparisons resolved first) and from the agents'
    /// replication-point hook.
    pub fn flush_deferred(&self, variant: usize, thread: usize) -> Result<(), MonitorError> {
        let state = self.thread_state(variant, thread);
        // While a ThreadPort owns this (variant, thread) the monitor-side
        // queue is unused — the port batches locally and flushes inline
        // before its own sync ops — so the agents' replication hook (which
        // still fires for every batched front end) must not pay a mutex
        // acquisition here just to find the queue empty.
        if state.port_live.load(Ordering::Acquire) {
            return Ok(());
        }
        let batch = {
            let mut pending = state.pending.lock();
            if pending.is_empty() {
                return Ok(());
            }
            std::mem::take(&mut *pending)
        };
        self.resolve_batch(variant, thread, state.shard, &batch)
    }

    /// Deposits a drained batch of deferred comparisons as one
    /// [`LockstepTable::arrive_batch`] block, consumes the batch slots, and
    /// turns the first non-consistent per-key result into the divergence it
    /// proves.  Shared by [`flush_deferred`](Self::flush_deferred) (the
    /// monitor-owned queues) and [`ThreadPort`](crate::port::ThreadPort)
    /// (the port-local queues).
    pub(crate) fn resolve_batch(
        &self,
        variant: usize,
        thread: usize,
        lane: usize,
        batch: &[BatchArrival],
    ) -> Result<(), MonitorError> {
        self.count_batch_flush(lane);
        let results = self
            .lockstep
            .arrive_batch(variant, batch, self.config.lockstep_timeout);
        let mut batch: Vec<BatchArrival> = batch.to_vec();
        let mut results = results;
        loop {
            match self.settle_batch_results(variant, thread, &batch, results) {
                BatchSettle::Done(outcome) => return outcome,
                BatchSettle::Retry(indices) => {
                    // Re-present only the unsettled keys: the settled ones
                    // were consumed, and re-depositing them could resurrect
                    // reclaimed slots the peers will never revisit.
                    batch = indices.into_iter().map(|i| batch[i].clone()).collect();
                    results =
                        self.lockstep
                            .rearrive_batch(variant, &batch, self.config.lockstep_timeout);
                }
            }
        }
    }

    /// Counts a batch flush in `lane`'s stripe; the polling shards call this
    /// where [`resolve_batch`](Self::resolve_batch) would.
    pub(crate) fn count_batch_flush(&self, lane: usize) {
        self.lane(lane)
            .batch_flushes
            .fetch_add(1, Ordering::Relaxed);
        if let Some(journal) = &self.config.journal {
            journal.record_class(ClassKind::BatchFlush, lane);
        }
    }

    /// Turns a batch's per-key [`ArrivalResult`]s into the first divergence
    /// they prove, routed through the recovery policy.  Settled slots are
    /// consumed on the way (even past a mismatch, so surviving slots are
    /// reclaimed); keys whose verdicts a quarantine superseded are *not*
    /// consumed and come back as [`BatchSettle::Retry`] indices for the
    /// caller to re-present.  Shared by the blocking
    /// [`resolve_batch`](Self::resolve_batch) and the polling shards, whose
    /// verdicts must map identically.
    pub(crate) fn settle_batch_results(
        &self,
        caller: usize,
        thread: usize,
        batch: &[BatchArrival],
        results: Vec<ArrivalResult>,
    ) -> BatchSettle {
        let mut failure = None;
        let mut retries: Vec<usize> = Vec::new();
        for (i, (arrival, result)) in batch.iter().zip(results).enumerate() {
            if failure.is_some() {
                // Consume every remaining slot past a failure so the
                // surviving slots are reclaimed rather than leaked.
                self.lockstep.consume(arrival.key, caller);
                continue;
            }
            let sequence = arrival.key.1 & !DEFERRED_SEQ_BIT;
            let settle = match result {
                ArrivalResult::Consistent => ArrivalSettle::Done,
                ArrivalResult::Mismatch(bad_variant, master_key, bad_key) => self.fault(
                    caller,
                    bad_variant,
                    DivergenceReport {
                        kind: DivergenceKind::SyscallMismatch {
                            master: master_key.no,
                            variant: bad_key.no,
                        },
                        thread,
                        sequence,
                        variant: bad_variant,
                    },
                ),
                ArrivalResult::Timeout(arrived) => {
                    if self.has_diverged() {
                        ArrivalSettle::Fail(MonitorError::ShutDown)
                    } else {
                        self.timeout_fault(caller, thread, sequence, arrived)
                    }
                }
                ArrivalResult::Poisoned => ArrivalSettle::Fail(MonitorError::ShutDown),
            };
            match settle {
                ArrivalSettle::Done => self.lockstep.consume(arrival.key, caller),
                ArrivalSettle::Fail(error) => {
                    self.lockstep.consume(arrival.key, caller);
                    failure = Some(error);
                }
                ArrivalSettle::Retry => retries.push(i),
            }
        }
        if let Some(error) = failure {
            // The run is over (or this lane is): nothing will re-present
            // the retry-marked keys, so consume them too.
            for i in retries {
                self.lockstep.consume(batch[i].key, caller);
            }
            return BatchSettle::Done(Err(error));
        }
        if retries.is_empty() {
            BatchSettle::Done(Ok(()))
        } else {
            BatchSettle::Retry(retries)
        }
    }

    /// Routes a rendezvous timeout through the recovery policy, blaming the
    /// first *live* variant missing from the arrival set.  When every live
    /// variant did arrive the verdict is stale — it was computed before a
    /// quarantine shrank the expected set — and the caller simply retries
    /// (under [`RecoveryPolicy::PoisonAll`] nothing is ever inactive, so
    /// this degenerates to the historical blame-first-missing behaviour).
    fn timeout_fault(
        &self,
        caller: usize,
        thread: usize,
        sequence: u64,
        arrived: Vec<usize>,
    ) -> ArrivalSettle {
        let missing = (0..self.config.variants)
            .filter(|&v| self.lockstep.is_active(v))
            .find(|v| !arrived.contains(v));
        let Some(missing) = missing else {
            return match self.config.recovery {
                RecoveryPolicy::Quarantine { .. } => ArrivalSettle::Retry,
                RecoveryPolicy::PoisonAll => {
                    ArrivalSettle::Fail(self.record_divergence(DivergenceReport {
                        kind: DivergenceKind::RendezvousTimeout { arrived },
                        thread,
                        sequence,
                        variant: 0,
                    }))
                }
            };
        };
        self.fault(
            caller,
            missing,
            DivergenceReport {
                kind: DivergenceKind::RendezvousTimeout { arrived },
                thread,
                sequence,
                variant: missing,
            },
        )
    }

    /// Shared gateway prologue: the divergence gate, the total-call counter
    /// and the self-awareness pseudo call (§4.5, answered by the monitor and
    /// not the kernel: 0 for the master, the variant index for slaves).
    ///
    /// Returns `Ok(Some(outcome))` when the call was answered without
    /// consuming a sequence number, `Ok(None)` when the caller must carry on
    /// with the full gateway path.
    pub(crate) fn gate_and_count(
        &self,
        variant: usize,
        thread: usize,
        lane: usize,
        req: &SyscallRequest,
    ) -> Result<Option<SyscallOutcome>, MonitorError> {
        if self.has_diverged() {
            return Err(MonitorError::ShutDown);
        }
        if self.is_quarantined(variant) {
            // A quarantined lane must terminate: its deposits are refused
            // and no peer waits for it.  `ShutDown` is the same "stop this
            // thread" instruction a poisoned run hands out, without a new
            // divergence record.
            return Err(MonitorError::ShutDown);
        }
        let self_aware = req.no == Sysno::MveeSelfAware;
        self.count_enter(variant, thread, lane, self_aware);
        if self_aware {
            return Ok(Some(SyscallOutcome::ok(variant as i64)));
        }
        Ok(None)
    }

    /// Counts (and journals) one gateway entry without the divergence gate
    /// or the self-awareness answer.  The follower pump applies the
    /// leader's `Enter` frames through this, so a remote run's counters and
    /// journal mirror the in-proc gateway exactly.
    pub(crate) fn count_enter(&self, variant: usize, thread: usize, lane: usize, self_aware: bool) {
        self.lane(lane)
            .total_syscalls
            .fetch_add(1, Ordering::Relaxed);
        if self.lockstep.active_count() < self.config.variants {
            self.lane(lane)
                .degraded_calls
                .fetch_add(1, Ordering::Relaxed);
        }
        if let Some(journal) = &self.config.journal {
            journal.record_enter(variant, thread, lane, self_aware);
        }
        if self_aware {
            self.lane(lane)
                .self_aware_queries
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds `sync_ops` leader sync ops to `lane`'s divergence-detection-lag
    /// counter: how far the leader had run ahead (in replication points)
    /// when a mismatching arrival's verdict landed.  Remote transport only.
    pub(crate) fn count_detection_lag(&self, lane: usize, sync_ops: u64) {
        self.lane(lane)
            .detection_lag_sync_ops
            .fetch_add(sync_ops, Ordering::Relaxed);
    }

    pub(crate) fn count_lockstep(&self, lane: usize) {
        self.lane(lane)
            .lockstep_syscalls
            .fetch_add(1, Ordering::Relaxed);
        if let Some(journal) = &self.config.journal {
            journal.record_class(ClassKind::Lockstep, lane);
        }
    }

    pub(crate) fn count_batched(&self, lane: usize) {
        self.lane(lane)
            .batched_comparisons
            .fetch_add(1, Ordering::Relaxed);
        if let Some(journal) = &self.config.journal {
            journal.record_class(ClassKind::Batched, lane);
        }
    }

    pub(crate) fn count_replicated(&self, lane: usize) {
        self.lane(lane)
            .replicated_syscalls
            .fetch_add(1, Ordering::Relaxed);
        if let Some(journal) = &self.config.journal {
            journal.record_class(ClassKind::Replicated, lane);
        }
    }

    pub(crate) fn count_ordered(&self, lane: usize) {
        self.lane(lane)
            .ordered_syscalls
            .fetch_add(1, Ordering::Relaxed);
        if let Some(journal) = &self.config.journal {
            journal.record_class(ClassKind::Ordered, lane);
        }
    }

    /// The synchronous (unbatched) lockstep rendezvous for one call.
    pub(crate) fn arrive_sync(
        &self,
        key: SlotKey,
        variant: usize,
        thread: usize,
        seq: u64,
        req: &SyscallRequest,
    ) -> Result<(), MonitorError> {
        let cmp = req.comparison_key();
        let mut result =
            self.lockstep
                .arrive(key, variant, cmp.clone(), self.config.lockstep_timeout);
        loop {
            match self.settle_sync_arrival(result, variant, thread, seq) {
                ArrivalSettle::Done => return Ok(()),
                ArrivalSettle::Fail(error) => return Err(error),
                ArrivalSettle::Retry => {
                    result = self.lockstep.rearrive(
                        key,
                        variant,
                        cmp.clone(),
                        self.config.lockstep_timeout,
                    );
                }
            }
        }
    }

    /// Turns a synchronous (unbatched) rendezvous verdict into the
    /// divergence it proves, routed through the recovery policy.  Shared by
    /// [`arrive_sync`](Self::arrive_sync) and the polling shards so both
    /// transports report byte-identical divergence verdicts; a
    /// [`ArrivalSettle::Retry`] tells the caller a quarantine superseded
    /// the verdict and the arrival must be re-presented
    /// (`rearrive`/`try_rearrive`).
    pub(crate) fn settle_sync_arrival(
        &self,
        result: ArrivalResult,
        caller: usize,
        thread: usize,
        seq: u64,
    ) -> ArrivalSettle {
        match result {
            ArrivalResult::Consistent => ArrivalSettle::Done,
            ArrivalResult::Mismatch(bad_variant, master_key, bad_key) => self.fault(
                caller,
                bad_variant,
                DivergenceReport {
                    kind: DivergenceKind::SyscallMismatch {
                        master: master_key.no,
                        variant: bad_key.no,
                    },
                    thread,
                    sequence: seq,
                    variant: bad_variant,
                },
            ),
            ArrivalResult::Timeout(arrived) => self.timeout_fault(caller, thread, seq, arrived),
            ArrivalResult::Poisoned => ArrivalSettle::Fail(MonitorError::ShutDown),
        }
    }

    /// The gateway tail after any lockstep comparison has been resolved:
    /// replicate, order, or execute directly.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn dispatch_resolved(
        &self,
        variant: usize,
        thread: usize,
        seq: u64,
        shard: usize,
        key: SlotKey,
        disposition: CallDisposition,
        req: &SyscallRequest,
    ) -> Result<SyscallOutcome, MonitorError> {
        if self.is_quarantined(variant) {
            // The comparison may have settled Consistent *because* a
            // quarantine swept this variant's key out of the slot; its
            // in-flight call must stop here rather than chase outcome
            // publications the survivors no longer hold for it.
            return Err(MonitorError::ShutDown);
        }
        if disposition.replicate {
            self.count_replicated(shard);
            return self.run_replicated(variant, thread, seq, key, req);
        }
        if disposition.ordered {
            self.count_ordered(shard);
            return self.run_ordered(variant, thread, seq, shard, key, req);
        }
        // Neither replicated nor ordered: the variant executes against its
        // own kernel process directly (sched_yield, gettid-style queries that
        // happen to differ, exit of a single thread, ...).
        self.lockstep.consume(key, variant);
        Ok(self.kernel.execute(self.pids[variant], thread as u64, req))
    }

    /// The legacy index-addressed entry point: thread `thread` of variant
    /// `variant` issues the system call described by `req`.
    ///
    /// Returns the outcome the variant observes, or an error instructing the
    /// variant to terminate.
    ///
    /// This path re-resolves the `(variant, thread)` pair — bounds asserts,
    /// `ThreadState` indexing, a shared sequence counter and a mutex-guarded
    /// deferred queue — on **every** call.  New code should acquire a
    /// [`ThreadPort`](crate::port::ThreadPort) once (via
    /// `Mvee::thread_port` / `VariantGateway::thread`) and issue calls
    /// through it; the port caches all of that state and owns its batch
    /// queue locally.  This method remains public for the port/index
    /// equivalence harness and the ablation benchmarks.  Do not interleave
    /// it with a live `ThreadPort` for the same (variant, thread): the two
    /// sequence counters would fork the rendezvous key stream.
    pub fn syscall(
        &self,
        variant: usize,
        thread: usize,
        req: &SyscallRequest,
    ) -> Result<SyscallOutcome, MonitorError> {
        assert!(variant < self.config.variants, "unknown variant index");
        assert!(
            thread < self.config.max_threads,
            "thread index out of range"
        );

        let state = self.thread_state(variant, thread);
        let shard = state.shard;
        if let Some(answered) = self.gate_and_count(variant, thread, shard, req)? {
            return Ok(answered);
        }

        let seq = state.seq.fetch_add(1, Ordering::AcqRel);
        let key: SlotKey = (thread, seq);

        let disposition = self.config.policy.disposition(req.no);
        let defer = self.config.batch > 1 && disposition.defer_compare;

        // Any synchronous interaction point resolves the deferred
        // comparisons first, so comparisons stay in per-thread program order
        // and no replicated result is handed out while a comparison from an
        // earlier call is still pending.
        if !defer && (disposition.lockstep || disposition.replicate || disposition.ordered) {
            self.flush_deferred(variant, thread)?;
        }

        if disposition.lockstep {
            self.count_lockstep(shard);
            if defer {
                self.count_batched(shard);
                let full = {
                    let mut pending = state.pending.lock();
                    pending.push(BatchArrival {
                        key: (thread, seq | DEFERRED_SEQ_BIT),
                        cmp: req.comparison_key(),
                    });
                    pending.len() >= self.config.batch
                };
                // Close the race with a concurrent divergence: the entry
                // check above can pass just before another thread records
                // divergence and `abandon_deferred` clears the queues, and a
                // push landing after that would neither be flushed (every
                // later call returns `ShutDown` at the top) nor dropped —
                // leaking the entry and letting a never-compared call return
                // `Ok`.  `diverged` is stored before the queues are cleared,
                // so seeing it clean here means our push is visible to the
                // abandon, and seeing it set means we must clean up
                // ourselves.
                if self.has_diverged() {
                    state.pending.lock().clear();
                    return Err(MonitorError::ShutDown);
                }
                if full {
                    self.flush_deferred(variant, thread)?;
                }
            } else {
                self.arrive_sync(key, variant, thread, seq, req)?;
            }
        }

        self.dispatch_resolved(variant, thread, seq, shard, key, disposition, req)
    }

    fn run_replicated(
        &self,
        variant: usize,
        thread: usize,
        seq: u64,
        key: SlotKey,
        req: &SyscallRequest,
    ) -> Result<SyscallOutcome, MonitorError> {
        loop {
            // The master role follows the quorum: the lowest live variant
            // (variant 0 until a quarantine fails it over) executes once
            // and publishes.
            let master = self.master_variant();
            if variant == master {
                let outcome = self.kernel.execute(self.pids[variant], thread as u64, req);
                self.lockstep.publish_outcome(key, outcome.clone(), None);
                self.lockstep.consume(key, variant);
                return Ok(outcome);
            }
            match self
                .lockstep
                .wait_outcome_until(key, self.config.lockstep_timeout, || {
                    self.master_variant() != master || self.is_quarantined(variant)
                }) {
                Some((outcome, _)) => {
                    self.lockstep.consume(key, variant);
                    return Ok(outcome);
                }
                None => {
                    if self.has_diverged() {
                        return Err(MonitorError::ShutDown);
                    }
                    // The slave reached this call but the master never
                    // published an outcome for it.  Under `PoisonAll`,
                    // blame the *waiting* variant — it is the one whose
                    // call stream reached a point the publisher's never did
                    // — name the missing publisher, and report the slot's
                    // real arrival set (not a fabricated `vec![variant]`,
                    // which used to masquerade the timed-out slave as the
                    // only arrival while blaming the master).  Under
                    // `Quarantine`, the dead publisher is the one that gets
                    // dropped; this waiter retries, and may itself become
                    // the new master on the next pass.
                    let report = DivergenceReport {
                        kind: DivergenceKind::ReplicationTimeout {
                            publisher: master,
                            arrived: self.lockstep.arrivals(key),
                        },
                        thread,
                        sequence: seq,
                        variant,
                    };
                    match self.fault(variant, master, report) {
                        ArrivalSettle::Done => unreachable!("fault never settles Done"),
                        ArrivalSettle::Fail(error) => return Err(error),
                        ArrivalSettle::Retry => continue,
                    }
                }
            }
        }
    }

    fn run_ordered(
        &self,
        variant: usize,
        thread: usize,
        seq: u64,
        shard: usize,
        key: SlotKey,
        req: &SyscallRequest,
    ) -> Result<SyscallOutcome, MonitorError> {
        let master = self.master_variant();
        if variant == master {
            // Master: claim a timestamp on this thread group's shard clock,
            // execute, publish the timestamp so the slaves can replay the
            // cross-thread order within the shard.
            let ts = self.ordering_clocks[variant].clock(shard).claim_timestamp();
            let outcome = self.kernel.execute(self.pids[variant], thread as u64, req);
            self.lockstep
                .publish_outcome(key, outcome.clone(), Some(ts));
            self.lockstep.consume(key, variant);
            Ok(outcome)
        } else {
            let (_, ts) = loop {
                // Re-read mastership each pass, like `run_replicated`: a
                // quarantine may have failed the publisher over mid-wait,
                // and this waiter may itself have become the new master —
                // then it claims a timestamp and publishes in the dead
                // publisher's stead.
                let master = self.master_variant();
                if variant == master {
                    let clock = self.ordering_clocks[variant].clock(shard);
                    let ts = clock.claim_timestamp();
                    let outcome = self.kernel.execute(self.pids[variant], thread as u64, req);
                    self.lockstep
                        .publish_outcome(key, outcome.clone(), Some(ts));
                    self.lockstep.consume(key, variant);
                    return Ok(outcome);
                }
                match self
                    .lockstep
                    .wait_outcome_until(key, self.config.lockstep_timeout, || {
                        self.master_variant() != master || self.is_quarantined(variant)
                    }) {
                    Some(v) => break v,
                    None => {
                        if self.has_diverged() {
                            return Err(MonitorError::ShutDown);
                        }
                        if self.master_variant() != master {
                            // The wait broke because mastership moved, not
                            // because anyone is provably silent: retry
                            // against the new master without blaming it.
                            continue;
                        }
                        // Same attribution as `run_replicated`: the waiting
                        // slave diverged relative to the master's (absent)
                        // timestamp publication, and the report names the
                        // missing publisher plus the slot's real arrival
                        // set.  Under `Quarantine` the publisher is
                        // dropped; this waiter retries, and may itself
                        // become the new master on the next pass.
                        let report = DivergenceReport {
                            kind: DivergenceKind::ReplicationTimeout {
                                publisher: master,
                                arrived: self.lockstep.arrivals(key),
                            },
                            thread,
                            sequence: seq,
                            variant,
                        };
                        match self.fault(variant, master, report) {
                            ArrivalSettle::Done => unreachable!("fault never settles Done"),
                            ArrivalSettle::Fail(error) => return Err(error),
                            ArrivalSettle::Retry => continue,
                        }
                    }
                }
            };
            let ts = ts.unwrap_or(0);
            let clock = self.ordering_clocks[variant].clock(shard);
            // The wait also breaks on divergence: a poisoned MVEE must not
            // keep slave threads spinning out their full lockstep timeout on
            // a turn that will never come.
            let turn_reached = Waiter::default()
                .wait_until_deadline(self.config.lockstep_timeout, || {
                    self.has_diverged() || self.is_quarantined(variant) || clock.now() >= ts
                });
            if self.has_diverged() || self.is_quarantined(variant) {
                // Poisoned run or quarantined lane: either way this thread
                // must stop instead of spinning out a turn that will never
                // come (a quarantined lane's clock never advances again).
                return Err(MonitorError::ShutDown);
            }
            if !turn_reached {
                return Err(self.record_divergence(DivergenceReport {
                    kind: DivergenceKind::RendezvousTimeout {
                        arrived: vec![variant],
                    },
                    thread,
                    sequence: seq,
                    variant,
                }));
            }
            let outcome = self.kernel.execute(self.pids[variant], thread as u64, req);
            clock.advance();
            self.lockstep.consume(key, variant);
            Ok(outcome)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvee_kernel::syscall::SyscallArg;
    use mvee_kernel::vfs::OpenFlags;
    use std::sync::Arc;

    fn make_monitor_config(
        variants: usize,
        policy: MonitoringPolicy,
        shards: usize,
        batch: usize,
    ) -> (Arc<Monitor>, Arc<Kernel>) {
        let kernel = Arc::new(Kernel::new_manual_clock());
        kernel.install_file("/input", b"some input data");
        let pids = (0..variants).map(|_| kernel.spawn_process()).collect();
        let config = MonitorConfig {
            variants,
            policy,
            lockstep_timeout: Duration::from_millis(500),
            max_threads: 8,
            shards,
            batch,
            ..MonitorConfig::default()
        };
        (
            Arc::new(Monitor::new(config, Arc::clone(&kernel), pids)),
            kernel,
        )
    }

    fn make_monitor_sharded(
        variants: usize,
        policy: MonitoringPolicy,
        shards: usize,
    ) -> (Arc<Monitor>, Arc<Kernel>) {
        make_monitor_config(variants, policy, shards, 1)
    }

    /// Single-shard monitor: the original global-table behaviour, used by the
    /// tests whose scenarios rely on a global cross-thread order.
    fn make_monitor(variants: usize, policy: MonitoringPolicy) -> (Arc<Monitor>, Arc<Kernel>) {
        make_monitor_sharded(variants, policy, 1)
    }

    fn open_req(path: &str) -> SyscallRequest {
        SyscallRequest::new(Sysno::Open)
            .with_path(path)
            .with_arg(SyscallArg::Flags(OpenFlags::READ.bits()))
    }

    #[test]
    fn self_aware_call_reports_variant_index() {
        let (monitor, _) = make_monitor(3, MonitoringPolicy::StrictLockstep);
        for v in 0..3 {
            let out = monitor
                .syscall(v, 0, &SyscallRequest::new(Sysno::MveeSelfAware))
                .unwrap();
            assert_eq!(out.result, Ok(v as i64));
        }
        assert_eq!(monitor.stats().self_aware_queries, 3);
    }

    #[test]
    fn replicated_open_gives_all_variants_the_same_fd() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::StrictLockstep);
        let m = Arc::clone(&monitor);
        let slave = std::thread::spawn(move || m.syscall(1, 0, &open_req("/input")).unwrap());
        let master = monitor.syscall(0, 0, &open_req("/input")).unwrap();
        let slave = slave.join().unwrap();
        assert_eq!(master.result, slave.result);
        assert_eq!(master.result, Ok(3));
        assert!(!monitor.has_diverged());
    }

    #[test]
    fn replicated_read_copies_master_payload_to_slaves() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::StrictLockstep);
        // Both variants open the file first.
        let m = Arc::clone(&monitor);
        let t = std::thread::spawn(move || {
            m.syscall(1, 0, &open_req("/input")).unwrap();
            m.syscall(
                1,
                0,
                &SyscallRequest::new(Sysno::Read).with_fd(3).with_int(4),
            )
            .unwrap()
        });
        monitor.syscall(0, 0, &open_req("/input")).unwrap();
        let master = monitor
            .syscall(
                0,
                0,
                &SyscallRequest::new(Sysno::Read).with_fd(3).with_int(4),
            )
            .unwrap();
        let slave = t.join().unwrap();
        assert_eq!(master.payload, b"some");
        assert_eq!(slave.payload, b"some");
    }

    #[test]
    fn lockstep_detects_divergent_write_payloads() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::StrictLockstep);
        let m = Arc::clone(&monitor);
        let slave = std::thread::spawn(move || {
            m.syscall(
                1,
                0,
                &SyscallRequest::new(Sysno::Write)
                    .with_fd(1)
                    .with_payload(b"evil"),
            )
        });
        let master = monitor.syscall(
            0,
            0,
            &SyscallRequest::new(Sysno::Write)
                .with_fd(1)
                .with_payload(b"good"),
        );
        let slave = slave.join().unwrap();
        assert!(master.is_err() || slave.is_err());
        assert!(monitor.has_diverged());
        let report = monitor.divergence().unwrap();
        assert!(matches!(
            report.kind,
            DivergenceKind::SyscallMismatch { .. }
        ));
        assert!(monitor.stats().divergences >= 1);
    }

    #[test]
    fn lockstep_detects_divergent_call_numbers() {
        // The attack scenario: the compromised slave issues mprotect while
        // the master issues a write.
        let (monitor, _) = make_monitor(2, MonitoringPolicy::StrictLockstep);
        let m = Arc::clone(&monitor);
        let slave = std::thread::spawn(move || {
            m.syscall(
                1,
                0,
                &SyscallRequest::new(Sysno::Mprotect)
                    .with_arg(SyscallArg::Pointer(0x7fff_0000))
                    .with_int(4096)
                    .with_arg(SyscallArg::Flags(7)),
            )
        });
        let master = monitor.syscall(
            0,
            0,
            &SyscallRequest::new(Sysno::Write)
                .with_fd(1)
                .with_payload(b"response"),
        );
        let slave_result = slave.join().unwrap();
        assert!(master.is_err() || slave_result.is_err());
        assert!(monitor.has_diverged());
    }

    #[test]
    fn missing_variant_triggers_timeout_divergence() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::StrictLockstep);
        let result = monitor.syscall(0, 0, &open_req("/input"));
        assert!(result.is_err());
        let report = monitor.divergence().unwrap();
        assert!(matches!(
            report.kind,
            DivergenceKind::RendezvousTimeout { .. }
        ));
    }

    #[test]
    fn calls_after_divergence_are_rejected() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::StrictLockstep);
        let _ = monitor.syscall(0, 0, &open_req("/input"));
        assert!(monitor.has_diverged());
        let r = monitor.syscall(0, 1, &SyscallRequest::new(Sysno::SchedYield));
        assert_eq!(r, Err(MonitorError::ShutDown));
    }

    #[test]
    fn ordered_brk_executes_in_each_variants_own_address_space() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::NoComparison);
        let m = Arc::clone(&monitor);
        let slave = std::thread::spawn(move || {
            m.syscall(1, 0, &SyscallRequest::new(Sysno::Brk).with_int(0))
                .unwrap()
        });
        let master = monitor
            .syscall(0, 0, &SyscallRequest::new(Sysno::Brk).with_int(0))
            .unwrap();
        let slave = slave.join().unwrap();
        // Both get their own break value; with identical layouts they match.
        assert_eq!(master.result, slave.result);
        assert!(monitor.stats().ordered_syscalls >= 2);
    }

    #[test]
    fn ordering_clock_makes_slave_follow_master_cross_thread_order() {
        // Master: thread 0 brk, then thread 1 brk (timestamps 0 and 1).
        // Slave: thread 1 arrives first but must wait for thread 0.
        let (monitor, kernel) = make_monitor(2, MonitoringPolicy::NoComparison);
        let brk = |m: &Monitor, v: usize, t: usize| {
            m.syscall(v, t, &SyscallRequest::new(Sysno::Brk).with_int(0))
        };
        brk(&monitor, 0, 0).unwrap();
        brk(&monitor, 0, 1).unwrap();

        let m = Arc::clone(&monitor);
        let slave_t1 = std::thread::spawn(move || brk(&m, 1, 1));
        std::thread::sleep(Duration::from_millis(50));
        // Slave thread 1 is stalled on the ordering clock until thread 0 runs.
        brk(&monitor, 1, 0).unwrap();
        slave_t1.join().unwrap().unwrap();
        assert!(!monitor.has_diverged());
        assert_eq!(monitor.stats().ordered_syscalls, 4);
        assert!(kernel.process_syscall_count(monitor.pid_of(1)) >= 1);
    }

    #[test]
    fn relaxed_policy_skips_lockstep_for_non_sensitive_calls() {
        let (monitor, _) = make_monitor(2, MonitoringPolicy::SecuritySensitiveOnly);
        // gettimeofday is not security sensitive: the master proceeds without
        // waiting for the slave to arrive.
        let master = monitor
            .syscall(0, 0, &SyscallRequest::new(Sysno::Gettimeofday))
            .unwrap();
        assert_eq!(monitor.stats().lockstep_syscalls, 0);
        // The slave arrives later and still receives the replicated result.
        let slave = monitor
            .syscall(1, 0, &SyscallRequest::new(Sysno::Gettimeofday))
            .unwrap();
        assert_eq!(master.payload, slave.payload);
        // A sensitive call under the same policy still requires lockstep: the
        // master alone times out into a divergence.
        let r = monitor.syscall(0, 0, &open_req("/input"));
        assert!(r.is_err());
        assert_eq!(monitor.stats().lockstep_syscalls, 1);
    }

    #[test]
    fn stats_track_call_categories() {
        let (monitor, _) = make_monitor(1, MonitoringPolicy::StrictLockstep);
        monitor.syscall(0, 0, &open_req("/input")).unwrap();
        monitor
            .syscall(0, 0, &SyscallRequest::new(Sysno::Brk).with_int(0))
            .unwrap();
        monitor
            .syscall(0, 0, &SyscallRequest::new(Sysno::SchedYield))
            .unwrap();
        let s = monitor.stats();
        assert_eq!(s.total_syscalls, 3);
        assert_eq!(s.replicated_syscalls, 1);
        assert_eq!(s.ordered_syscalls, 1);
        assert_eq!(s.divergences, 0);
    }

    #[test]
    fn default_config_is_sharded() {
        let (monitor, _) = {
            let kernel = Arc::new(Kernel::new_manual_clock());
            let pids = (0..2).map(|_| kernel.spawn_process()).collect();
            let config = MonitorConfig::default();
            (
                Arc::new(Monitor::new(config, Arc::clone(&kernel), pids)),
                (),
            )
        };
        assert_eq!(monitor.shard_count(), crate::lockstep::DEFAULT_SHARDS);
    }

    #[test]
    fn sharded_monitor_replicates_across_thread_groups() {
        // Threads 0 and 1 land in different shards (shards = 4); both must
        // still see the master's replicated outcomes.
        let (monitor, _) = make_monitor_sharded(2, MonitoringPolicy::StrictLockstep, 4);
        for thread in 0..2usize {
            let m = Arc::clone(&monitor);
            let slave =
                std::thread::spawn(move || m.syscall(1, thread, &open_req("/input")).unwrap());
            let master = monitor.syscall(0, thread, &open_req("/input")).unwrap();
            assert_eq!(master.result, slave.join().unwrap().result);
        }
        assert!(!monitor.has_diverged());
    }

    #[test]
    fn divergence_in_one_shard_poisons_waiters_in_other_shards() {
        // Thread 2's mismatch must promptly wake thread 0's rendezvous even
        // though they wait on different shards.
        let (monitor, _) = make_monitor_sharded(2, MonitoringPolicy::StrictLockstep, 4);
        let m = Arc::clone(&monitor);
        let stuck = std::thread::spawn(move || {
            // Only variant 0 arrives on thread 0: blocks until poisoned.
            m.syscall(0, 0, &open_req("/input"))
        });
        std::thread::sleep(Duration::from_millis(30));
        let m = Arc::clone(&monitor);
        let slave = std::thread::spawn(move || {
            m.syscall(1, 2, &SyscallRequest::new(Sysno::Mprotect).with_int(4096))
        });
        let master = monitor.syscall(
            0,
            2,
            &SyscallRequest::new(Sysno::Write)
                .with_fd(1)
                .with_payload(b"ok"),
        );
        let slave = slave.join().unwrap();
        assert!(master.is_err() || slave.is_err());
        assert!(monitor.has_diverged());
        // The cross-shard waiter aborts with ShutDown/Diverged well before
        // its own 500 ms timeout would fire.
        assert!(stuck.join().unwrap().is_err());
    }

    #[test]
    fn divergence_unblocks_ordered_turn_waiters_promptly() {
        // A slave blocked on its ordering-clock turn must abort on divergence
        // instead of spinning out the full (here: 10 s) lockstep timeout.
        let kernel = Arc::new(Kernel::new_manual_clock());
        kernel.install_file("/input", b"some input data");
        let pids = (0..2).map(|_| kernel.spawn_process()).collect();
        let config = MonitorConfig {
            variants: 2,
            // Ordered calls (brk) skip the rendezvous under this policy, so
            // the master can record its cross-thread order alone; the
            // security-sensitive calls below still compare and diverge.
            policy: MonitoringPolicy::SecuritySensitiveOnly,
            lockstep_timeout: Duration::from_secs(10),
            max_threads: 8,
            shards: 1,
            batch: 1,
            ..MonitorConfig::default()
        };
        let monitor = Arc::new(Monitor::new(config, Arc::clone(&kernel), pids));
        let brk = |m: &Monitor, v: usize, t: usize| {
            m.syscall(v, t, &SyscallRequest::new(Sysno::Brk).with_int(0))
        };
        // Master: thread 0 then thread 1 (timestamps 0 and 1).
        brk(&monitor, 0, 0).unwrap();
        brk(&monitor, 0, 1).unwrap();
        // Slave thread 1 stalls on the ordering clock until slave thread 0
        // runs — which it never will.
        let m = Arc::clone(&monitor);
        let stuck = std::thread::spawn(move || {
            let start = std::time::Instant::now();
            let r = brk(&m, 1, 1);
            (r, start.elapsed())
        });
        std::thread::sleep(Duration::from_millis(100));
        // Divergence on an unrelated thread: both calls are
        // security-sensitive, so they rendezvous and mismatch.
        let m = Arc::clone(&monitor);
        let slave = std::thread::spawn(move || {
            m.syscall(1, 2, &SyscallRequest::new(Sysno::Mprotect).with_int(4096))
        });
        let master = monitor.syscall(0, 2, &open_req("/input"));
        assert!(master.is_err() || slave.join().unwrap().is_err());
        let (result, elapsed) = stuck.join().unwrap();
        assert!(result.is_err());
        assert!(
            elapsed < Duration::from_secs(5),
            "ordered waiter took {elapsed:?} to notice the divergence"
        );
    }

    #[test]
    fn ordering_is_preserved_within_a_shard() {
        // With 4 shards, threads 0 and 4 share shard 0: the slave's thread 4
        // must wait for thread 0's earlier ordered call, exactly as in the
        // unsharded design.
        let (monitor, _) = make_monitor_sharded(2, MonitoringPolicy::NoComparison, 4);
        let brk = |m: &Monitor, v: usize, t: usize| {
            m.syscall(v, t, &SyscallRequest::new(Sysno::Brk).with_int(0))
        };
        brk(&monitor, 0, 0).unwrap();
        brk(&monitor, 0, 4).unwrap();

        let m = Arc::clone(&monitor);
        let slave_t4 = std::thread::spawn(move || brk(&m, 1, 4));
        std::thread::sleep(Duration::from_millis(50));
        brk(&monitor, 1, 0).unwrap();
        slave_t4.join().unwrap().unwrap();
        assert!(!monitor.has_diverged());
        assert_eq!(monitor.stats().ordered_syscalls, 4);
    }

    /// Drives `ops` brk calls on thread 0 of every variant (one OS thread
    /// per variant) and returns the monitor for inspection.
    fn run_brk_stream(monitor: &Arc<Monitor>, variants: usize, ops: u64) {
        let mut handles = Vec::new();
        for variant in 0..variants {
            let m = Arc::clone(monitor);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ops {
                    m.syscall(variant, 0, &SyscallRequest::new(Sysno::Brk).with_int(0))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn batched_brk_stream_is_clean_and_actually_batches() {
        let (monitor, _) = make_monitor_config(2, MonitoringPolicy::StrictLockstep, 4, 8);
        run_brk_stream(&monitor, 2, 32);
        assert!(!monitor.has_diverged());
        let s = monitor.stats();
        assert_eq!(s.lockstep_syscalls, 64);
        assert_eq!(s.batched_comparisons, 64);
        // 32 deferrable calls per variant at batch 8: four full flushes each.
        assert_eq!(s.batch_flushes, 8);
        assert_eq!(monitor.live_deferred(), 0);
    }

    #[test]
    fn batch_one_defers_nothing() {
        let (monitor, _) = make_monitor_config(2, MonitoringPolicy::StrictLockstep, 4, 1);
        run_brk_stream(&monitor, 2, 8);
        let s = monitor.stats();
        assert_eq!(s.batched_comparisons, 0);
        assert_eq!(s.batch_flushes, 0);
        assert_eq!(s.lockstep_syscalls, 16);
    }

    #[test]
    fn batched_and_unbatched_runs_agree_on_clean_verdicts() {
        for batch in [1usize, 2, 8] {
            let (monitor, _) = make_monitor_config(2, MonitoringPolicy::StrictLockstep, 4, batch);
            run_brk_stream(&monitor, 2, 16);
            assert!(!monitor.has_diverged(), "batch={batch}");
            let s = monitor.stats();
            assert_eq!(s.lockstep_syscalls, 32, "batch={batch}");
            assert_eq!(s.ordered_syscalls, 32, "batch={batch}");
        }
    }

    #[test]
    fn mid_batch_mismatch_reports_the_original_sequence_number() {
        // Both variants defer three mprotect comparisons; the slave's second
        // one carries different (compared) arguments.  The flush — forced by
        // a synchronous write — must blame exactly call #1, with the
        // deferred-keyspace bit stripped from the reported sequence.
        let (monitor, _) = make_monitor_config(2, MonitoringPolicy::StrictLockstep, 4, 8);
        let mprotect = |len: i64| {
            SyscallRequest::new(Sysno::Mprotect)
                .with_arg(SyscallArg::Pointer(0x7000_0000))
                .with_int(len)
        };
        let write = SyscallRequest::new(Sysno::Write)
            .with_fd(1)
            .with_payload(b"flush");
        let m = Arc::clone(&monitor);
        let w = write.clone();
        let slave = std::thread::spawn(move || {
            for len in [4096i64, 8192, 4096] {
                m.syscall(1, 0, &mprotect(len))?;
            }
            m.syscall(1, 0, &w)
        });
        let master = (|| {
            for _ in 0..3 {
                monitor.syscall(0, 0, &mprotect(4096))?;
            }
            monitor.syscall(0, 0, &write)
        })();
        let slave = slave.join().unwrap();
        assert!(master.is_err() || slave.is_err());
        assert!(monitor.has_diverged());
        let report = monitor.divergence().unwrap();
        assert!(matches!(
            report.kind,
            DivergenceKind::SyscallMismatch { .. }
        ));
        assert_eq!(report.sequence, 1, "must blame the exact mid-batch slot");
        assert_eq!(report.variant, 1);
        assert!(
            report.sequence & crate::monitor::DEFERRED_SEQ_BIT == 0,
            "reported sequence must be in the original key space"
        );
    }

    #[test]
    fn synchronous_call_flushes_a_partial_batch() {
        // Two deferred brks (batch 8, never full) must still be compared
        // before the variants' next replicated call completes.
        let (monitor, _) = make_monitor_config(2, MonitoringPolicy::StrictLockstep, 4, 8);
        let mut handles = Vec::new();
        for variant in 0..2 {
            let m = Arc::clone(&monitor);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2 {
                    m.syscall(variant, 0, &SyscallRequest::new(Sysno::Brk).with_int(0))
                        .unwrap();
                }
                m.syscall(variant, 0, &open_req("/input")).unwrap()
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = monitor.stats();
        assert_eq!(s.batched_comparisons, 4);
        assert_eq!(s.batch_flushes, 2, "one flush per variant at the open");
        assert_eq!(monitor.live_deferred(), 0);
        assert!(!monitor.has_diverged());
    }

    #[test]
    fn divergence_abandons_deferred_comparisons() {
        let (monitor, _) = make_monitor_config(2, MonitoringPolicy::StrictLockstep, 4, 8);
        // Variant 0 defers one brk comparison, then only variant 0 arrives
        // at a synchronous open: rendezvous timeout, divergence.
        monitor
            .syscall(0, 0, &SyscallRequest::new(Sysno::Brk).with_int(0))
            .unwrap();
        assert_eq!(monitor.live_deferred(), 1);
        let r = monitor.syscall(0, 0, &open_req("/input"));
        assert!(r.is_err());
        assert!(monitor.has_diverged());
        assert_eq!(
            monitor.live_deferred(),
            0,
            "divergence must drop pending batches"
        );
    }

    #[test]
    fn replication_timeout_blames_the_waiting_slave_and_names_the_publisher() {
        // Regression: the timeout path used to emit
        // `RendezvousTimeout { arrived: vec![variant] }` with `variant: 0`
        // — blaming the master for a slave's timeout and presenting the
        // timed-out slave as the only arrival.  A slave waiting on a
        // replicated outcome (recv: replicated, never locksteped) that the
        // master never publishes must be reported as the diverging party,
        // with the missing publisher named and the real arrival set.
        let (monitor, _) = make_monitor(2, MonitoringPolicy::StrictLockstep);
        let r = monitor.syscall(1, 0, &SyscallRequest::new(Sysno::Recv).with_fd(3));
        assert!(r.is_err());
        let report = monitor
            .divergence()
            .expect("timeout must record divergence");
        assert_eq!(
            report.variant, 1,
            "the waiting slave is the diverging party"
        );
        assert_eq!(report.thread, 0);
        assert_eq!(report.sequence, 0);
        match report.kind {
            DivergenceKind::ReplicationTimeout { publisher, arrived } => {
                assert_eq!(publisher, 0, "the master never published");
                assert!(
                    arrived.is_empty(),
                    "a replication-only call carries no rendezvous arrivals, got {arrived:?}"
                );
            }
            other => panic!("expected ReplicationTimeout, got {other:?}"),
        }
    }

    #[test]
    fn ordered_publisher_timeout_blames_the_waiting_slave() {
        // Same attribution on the ordered path: under NoComparison a brk is
        // ordered (timestamp-published), so a slave issuing one the master
        // never issued times out waiting for the publication.
        let (monitor, _) = make_monitor(2, MonitoringPolicy::NoComparison);
        let r = monitor.syscall(1, 0, &SyscallRequest::new(Sysno::Brk).with_int(0));
        assert!(r.is_err());
        let report = monitor
            .divergence()
            .expect("timeout must record divergence");
        assert_eq!(report.variant, 1);
        assert!(matches!(
            report.kind,
            DivergenceKind::ReplicationTimeout { publisher: 0, .. }
        ));
    }

    #[test]
    fn mid_batch_divergence_on_the_legacy_path_releases_each_waiter_once() {
        // Pin: when divergence lands while other threads stream deferrable
        // calls through the legacy index-addressed path, the poison sweep
        // must release every rendezvous waiter exactly once.  A
        // double-release underflows `Slot::waiters` (a debug-assert panic
        // that would surface in the `join` below) and a missed release
        // leaks the slot (`live_deferred` stays nonzero).
        let (monitor, _) = make_monitor_config(2, MonitoringPolicy::StrictLockstep, 2, 4);
        let mut streams = Vec::new();
        for variant in 0..2 {
            let m = Arc::clone(&monitor);
            streams.push(std::thread::spawn(move || {
                // Stream until the divergence shuts the MVEE down (bounded
                // so a missed shutdown fails the test instead of hanging).
                for _ in 0..2_000_000 {
                    if m.syscall(variant, 0, &SyscallRequest::new(Sysno::Brk).with_int(0))
                        .is_err()
                    {
                        break;
                    }
                }
            }));
        }
        // Mid-stream, thread 1 diverges: mismatched calls at its first slot.
        let m = Arc::clone(&monitor);
        let slave = std::thread::spawn(move || {
            m.syscall(1, 1, &SyscallRequest::new(Sysno::Mprotect).with_int(4096))
        });
        let master = monitor.syscall(
            0,
            1,
            &SyscallRequest::new(Sysno::Write)
                .with_fd(1)
                .with_payload(b"x"),
        );
        let slave = slave.join().expect("diverging slave must not panic");
        assert!(
            master.is_err() || slave.is_err(),
            "the mismatch must be detected"
        );
        for s in streams {
            s.join()
                .expect("stream thread must not panic (no waiter double-release)");
        }
        assert!(monitor.has_diverged());
        assert_eq!(
            monitor.live_deferred(),
            0,
            "post-divergence deferred queues must be dropped, not leaked"
        );
        // And the shutdown is absorbing: later calls answer ShutDown without
        // re-queueing comparisons.
        let r = monitor.syscall(0, 0, &SyscallRequest::new(Sysno::Brk).with_int(0));
        assert_eq!(r, Err(MonitorError::ShutDown));
        assert_eq!(monitor.live_deferred(), 0);
    }

    #[test]
    fn oversized_batch_knob_is_clamped() {
        let (monitor, _) = make_monitor_config(1, MonitoringPolicy::StrictLockstep, 1, usize::MAX);
        assert_eq!(monitor.config().batch, crate::lockstep::MAX_BATCH);
        let (unbatched, _) = make_monitor_config(1, MonitoringPolicy::StrictLockstep, 1, 0);
        assert_eq!(unbatched.config().batch, 1);
    }

    #[test]
    #[should_panic(expected = "one kernel process per variant")]
    fn monitor_requires_one_pid_per_variant() {
        let kernel = Arc::new(Kernel::new_manual_clock());
        let pid = kernel.spawn_process();
        let config = MonitorConfig {
            variants: 2,
            ..Default::default()
        };
        let _ = Monitor::new(config, kernel, vec![pid]);
    }
}
