//! The MVEE front end: wiring a kernel, a monitor and a synchronization agent
//! together and handing out per-variant gateways.
//!
//! This mirrors ReMon's bootstrap process (§4 of the paper): the bootstrap
//! sets up the variants (here: one simulated kernel process per variant,
//! optionally with a diversified address-space layout), the monitors and the
//! shared buffers, injects the synchronization agent, and then hands control
//! to the monitors.

use std::sync::Arc;
use std::time::Duration;

use mvee_kernel::kernel::Kernel;
use mvee_kernel::process::Pid;
use mvee_kernel::syscall::{SyscallOutcome, SyscallRequest};
use mvee_sync_agent::agents::{build_agent, AgentKind};
use mvee_sync_agent::context::{AgentConfig, SyncContext, VariantRole};
use mvee_sync_agent::{AgentStats, SyncAgent};

use crate::async_port::AsyncThreadPort;
use crate::config::{
    MveeConfig, Placement, Pollers, RecoveryPolicy, Transport, DEFAULT_RING_DEPTH,
};
use crate::divergence::DivergenceReport;
use crate::journal::{Journal, JournalError, ReplayError};
use crate::monitor::{Monitor, MonitorConfig, MonitorError, MonitorStats};
use crate::policy::MonitoringPolicy;
use crate::poller::PollerPool;
use crate::port::ThreadPort;
use crate::snapshot::{SnapshotRecord, SnapshotStore};

/// Per-variant address-space layout (ASLR / DCL diversity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VariantLayout {
    /// Program-break base address.
    pub brk_base: u64,
    /// Top of the `mmap` allocation area.
    pub mmap_top: u64,
}

impl VariantLayout {
    /// The default, undiversified layout.
    pub fn default_layout() -> Self {
        VariantLayout {
            brk_base: mvee_kernel::mem::DEFAULT_BRK_BASE,
            mmap_top: mvee_kernel::mem::DEFAULT_MMAP_TOP,
        }
    }
}

/// Builder for an [`Mvee`].
///
/// The tuning knobs (policy, agent, shards, batch, placement, timeout) all
/// live in one shared [`MveeConfig`]; the builder's setters delegate into
/// it, and [`MveeBuilder::config`] swaps the whole block in at once — which
/// is how `RunConfig` and `NginxServerConfig` forward their embedded
/// configuration.
#[derive(Debug, Clone)]
pub struct MveeBuilder {
    variants: usize,
    threads: usize,
    config: MveeConfig,
    layouts: Option<Vec<VariantLayout>>,
    manual_clock: bool,
}

impl Default for MveeBuilder {
    fn default() -> Self {
        MveeBuilder {
            variants: 2,
            threads: 4,
            config: MveeConfig::default(),
            layouts: None,
            manual_clock: false,
        }
    }
}

impl MveeBuilder {
    /// Sets the number of variants.
    pub fn variants(mut self, variants: usize) -> Self {
        self.variants = variants;
        self
    }

    /// Sets the number of logical worker threads per variant.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Replaces the whole shared tuning block (see [`MveeConfig`]).
    pub fn config(mut self, config: MveeConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the monitoring policy.
    pub fn policy(mut self, policy: MonitoringPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Selects the synchronization agent.
    pub fn agent(mut self, kind: AgentKind) -> Self {
        self.config.agent = kind;
        self
    }

    /// Overrides the agent configuration (buffer capacity, clock count, ...).
    pub fn agent_config(mut self, config: AgentConfig) -> Self {
        self.config.agent_config = config;
        self
    }

    /// Sets how blocked agent threads wait (adaptive spin → yield → park by
    /// default; `WaitStrategy::SpinYield` restores the legacy fixed loop
    /// for ablation runs).
    pub fn wait_strategy(mut self, wait: mvee_sync_agent::guards::WaitStrategy) -> Self {
        self.config = self.config.with_wait_strategy(wait);
        self
    }

    /// Sets the rendezvous / replication timeout.
    pub fn lockstep_timeout(mut self, timeout: Duration) -> Self {
        self.config.lockstep_timeout = timeout;
        self
    }

    /// Supplies per-variant address-space layouts (diversity).  The vector
    /// length must match the variant count.
    pub fn layouts(mut self, layouts: Vec<VariantLayout>) -> Self {
        self.layouts = Some(layouts);
        self
    }

    /// Uses a manually driven virtual clock (deterministic tests).
    pub fn manual_clock(mut self, manual: bool) -> Self {
        self.manual_clock = manual;
        self
    }

    /// Sets the number of rendezvous/ordering shards the monitor partitions
    /// its hot-path state into.  `1` reproduces the original global table.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config = self.config.with_shards(shards);
        self
    }

    /// Sets the monitor's comparison batch size (see
    /// [`MonitorConfig::batch`]): how many deferred comparisons a variant
    /// thread may accumulate per rendezvous-table flush.  `1` (the default)
    /// disables deferral and reproduces the per-call rendezvous exactly.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn batch(mut self, batch: usize) -> Self {
        self.config = self.config.with_batch(batch);
        self
    }

    /// Sets the shard/core [`Placement`] policy resolved at
    /// [`ThreadPort`] acquisition time.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.config.placement = placement;
        self
    }

    /// Selects the divergence-journal mode (see [`crate::journal`]):
    /// [`JournalMode::Off`](crate::journal::JournalMode::Off) (the default),
    /// `Record` to stream the run's schedule and outcomes into a
    /// [`JournalRecorder`](crate::journal::JournalRecorder), or `Replay` to
    /// carry a decoded [`Journal`](crate::journal::Journal) for
    /// [`Mvee::replay_recorded`].
    pub fn journal(mut self, journal: crate::journal::JournalMode) -> Self {
        self.config = self.config.with_journal(journal);
        self
    }

    /// Selects the [`RecoveryPolicy`]: what happens once a divergence is
    /// proven.  [`RecoveryPolicy::PoisonAll`] (the default) tears the run
    /// down; [`RecoveryPolicy::Quarantine`] drops only the blamed variant
    /// and keeps serving on the surviving quorum, from which
    /// [`Mvee::respawn_variant`] can later replay it back.
    pub fn recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.config = self.config.with_recovery(recovery);
        self
    }

    /// Enables periodic state snapshots: every `every` sync ops (per
    /// variant, at the agent's replication points — a transport-invariant
    /// choke point), the variant's private kernel state is captured into
    /// the [`SnapshotStore`].  [`Mvee::respawn_variant`] restores from the
    /// latest such snapshot instead of replaying from process start.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn snapshot_every(mut self, every: u64) -> Self {
        self.config = self.config.with_snapshot_every(Some(every));
        self
    }

    /// Selects the variant↔monitor transport: [`Transport::Sync`] (the
    /// default — calls block inline in the monitor pipeline) or
    /// [`Transport::AsyncRings`] (per-port submission/completion rings with
    /// a monitor-side gateway worker; see
    /// [`AsyncThreadPort`](crate::async_port::AsyncThreadPort)).
    ///
    /// # Panics
    ///
    /// Panics on an async ring depth of zero.
    pub fn transport(mut self, transport: Transport) -> Self {
        self.config = self.config.with_transport(transport);
        self
    }

    /// Builds the MVEE: spawns one kernel process per variant, constructs the
    /// monitor and injects the synchronization agent.
    ///
    /// # Panics
    ///
    /// Panics if a layout vector of the wrong length was supplied, or if
    /// the configured async ring depth is smaller than the comparison
    /// batch size (a port could then fill its ring with deferred calls
    /// that never reach a flush point the monitor side can serve).
    pub fn build(self) -> Mvee {
        if let Transport::AsyncRings { depth, .. } = self.config.transport {
            let batch = self.config.batch.clamp(1, crate::lockstep::MAX_BATCH);
            assert!(
                depth >= batch,
                "async ring depth ({depth}) must be at least the comparison batch \
                 size ({batch}): a ring smaller than one batch cannot hold the \
                 deferred calls a single flush resolves"
            );
        }
        let kernel = Arc::new(if self.manual_clock {
            Kernel::new_manual_clock()
        } else {
            Kernel::new()
        });
        let layouts = self
            .layouts
            .unwrap_or_else(|| vec![VariantLayout::default_layout(); self.variants]);
        assert_eq!(
            layouts.len(),
            self.variants,
            "one layout per variant is required"
        );
        let pids: Vec<Pid> = layouts
            .iter()
            .map(|l| kernel.spawn_process_with_layout(l.brk_base, l.mmap_top))
            .collect();
        let monitor_config = MonitorConfig {
            variants: self.variants,
            policy: self.config.policy,
            lockstep_timeout: self.config.lockstep_timeout,
            max_threads: mvee_sync_agent::context::MAX_THREADS,
            workload_threads: self.threads.max(1),
            shards: self.config.shards,
            batch: self.config.batch,
            placement: self.config.placement.clone(),
            transport: self.config.transport,
            wait: self.config.agent_config.wait,
            spin_before_yield: self.config.agent_config.spin_before_yield,
            journal: self.config.journal.recorder().cloned(),
            recovery: self.config.recovery,
        };
        let monitor = Arc::new(Monitor::new(
            monitor_config,
            Arc::clone(&kernel),
            pids.clone(),
        ));
        // A pooled async transport shares one fixed set of polling monitor
        // shards across every port the MVEE hands out.
        let pollers = match self.config.transport {
            Transport::AsyncRings {
                pollers: Pollers::Pool(n),
                ..
            } => Some(Arc::new(PollerPool::new(&monitor, n))),
            Transport::AsyncRings {
                pollers: Pollers::Auto,
                ..
            } => {
                // Sized once at build time from the machine the MVEE
                // actually runs on; half the cores, bounded, so the poller
                // pool never crowds out the variants it serves.
                let parallelism = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                let n = Pollers::auto_pool_size(parallelism);
                Some(Arc::new(PollerPool::new(&monitor, n)))
            }
            _ => None,
        };
        let agent_config = self
            .config
            .agent_config
            .with_variants(self.variants)
            .with_threads(self.threads.max(1));
        let agent: Arc<dyn SyncAgent> = Arc::from(build_agent(self.config.agent, agent_config));
        // Divergence must unblock agent waits (replay, full buffers) as
        // promptly as it unblocks rendezvous waiters, or the shutdown can
        // deadlock behind a recording that will never continue.
        monitor.set_poison_hook({
            let agent = Arc::clone(&agent);
            move || agent.poison()
        });
        // Quarantine and re-admission reach the agent through the lane
        // hook, so an agent that tracks per-variant drain state can stop
        // (resp. resume) expecting the variant without being poisoned.
        monitor.set_lane_hook({
            let agent = Arc::clone(&agent);
            move |variant, readmitted| {
                if readmitted {
                    agent.readmit_lane(variant);
                } else {
                    agent.quarantine_lane(variant);
                }
            }
        });
        // With batched comparisons on, the agent's replication points become
        // flush points: a sync op must not record or replay while the
        // calling thread still has unresolved comparisons queued, and a
        // poisoned agent abandons whatever is left.  The hook holds the
        // monitor weakly — the monitor already holds the agent through the
        // poison hook, and a strong reference back would leak the pair.
        let journal_recorder = self.config.journal.recorder().cloned();
        // Snapshots are taken from inside the same hook, right after the
        // flush: the replication point is the one choke point every
        // transport — blocking ports, gateway workers, poller pools, the
        // remote leader — funnels through, so the capture boundary is
        // identical no matter how the variant's calls reach the monitor.
        let snapshots = self
            .config
            .snapshot_every
            .map(|every| Arc::new(SnapshotStore::new(self.variants, every)));
        if self.config.batch > 1 || journal_recorder.is_some() || snapshots.is_some() {
            let weak_monitor = Arc::downgrade(&monitor);
            let hook_kernel = Arc::clone(&kernel);
            let hook_snapshots = snapshots.clone();
            let hook_pids = pids.clone();
            agent.set_replication_hook(Arc::new(move |event| {
                let Some(monitor) = weak_monitor.upgrade() else {
                    return;
                };
                match event {
                    mvee_sync_agent::ReplicationEvent::SyncOp(ctx) => {
                        let variant = ctx.role.variant_index();
                        if let Some(recorder) = &journal_recorder {
                            recorder.record_sync_op(variant, ctx.thread);
                        }
                        // A flush failure has already recorded the
                        // divergence and poisoned table + agent; the thread
                        // learns about it at its next monitored call.
                        let _ = monitor.flush_deferred(variant, ctx.thread);
                        let Some(store) = &hook_snapshots else {
                            return;
                        };
                        let Some(sync_ops) = store.tick(variant) else {
                            return;
                        };
                        // A dead lane's state is exactly what a respawn
                        // must NOT roll forward to; keep its last good
                        // snapshot instead.
                        if monitor.is_quarantined(variant) || monitor.has_diverged() {
                            return;
                        }
                        if let Some(image) = hook_kernel.capture_process(hook_pids[variant]) {
                            store.install(SnapshotRecord {
                                variant,
                                sync_ops,
                                journal_records: journal_recorder
                                    .as_ref()
                                    .map_or(0, |rec| rec.records()),
                                clock_ns: hook_kernel.clock().now_nanos(),
                                image,
                            });
                        }
                    }
                    mvee_sync_agent::ReplicationEvent::Poisoned => monitor.abandon_deferred(),
                }
            }));
        }
        // A remote transport splits the pair here: the follower's reader +
        // pump threads take one end of the channel, the leader front end
        // the other.  Everything above (kernel, monitor, agent, hooks) is
        // shared — the leader executes through the same monitor instance,
        // only its rendezvous evidence travels by wire.
        let remote = match self.config.transport {
            Transport::Remote { channel } => {
                let (leader_end, follower_end) = crate::remote::Duplex::pair(channel)
                    .expect("establishing the replication channel failed");
                let follower = crate::remote::Follower::spawn(Arc::clone(&monitor), follower_end);
                let leader = crate::remote::RemoteLeader::connect(
                    Arc::clone(&monitor),
                    Arc::clone(&agent),
                    leader_end,
                );
                Some(RemoteParts {
                    leader,
                    follower: Some(follower),
                })
            }
            _ => None,
        };
        let journal = self.config.journal.clone();
        Mvee {
            kernel,
            monitor,
            agent,
            agent_kind: self.config.agent,
            pids,
            variants: self.variants,
            threads: self.threads,
            pollers,
            journal,
            snapshots,
            remote,
        }
    }
}

/// The two ends of a distributed MVEE's replication link, owned by the
/// front end so teardown is ordered: the leader's write half closes first
/// (its `Bye` lets the follower drain to a clean EOF), then the follower
/// handle joins its threads.
struct RemoteParts {
    leader: Arc<crate::remote::RemoteLeader>,
    follower: Option<crate::remote::FollowerHandle>,
}

impl Drop for RemoteParts {
    fn drop(&mut self) {
        self.leader.shutdown();
        self.follower.take();
    }
}

/// A fully wired multi-variant execution environment.
pub struct Mvee {
    kernel: Arc<Kernel>,
    monitor: Arc<Monitor>,
    agent: Arc<dyn SyncAgent>,
    agent_kind: AgentKind,
    pids: Vec<Pid>,
    variants: usize,
    threads: usize,
    /// The shared polling shards (`Pollers::Pool(n)` transports only).
    pollers: Option<Arc<PollerPool>>,
    /// The journal mode the MVEE was built with (see [`crate::journal`]).
    journal: crate::journal::JournalMode,
    /// Per-variant snapshot slots (`snapshot_every` builds only).
    snapshots: Option<Arc<SnapshotStore>>,
    /// The replication link of a distributed MVEE (`Transport::Remote`):
    /// the leader front end plus the follower's thread handle.
    remote: Option<RemoteParts>,
}

impl Mvee {
    /// Starts building an MVEE.
    pub fn builder() -> MveeBuilder {
        MveeBuilder::default()
    }

    /// Number of variants.
    pub fn variants(&self) -> usize {
        self.variants
    }

    /// Number of logical worker threads per variant.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The simulated kernel.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The monitor.
    pub fn monitor(&self) -> &Arc<Monitor> {
        &self.monitor
    }

    /// The injected synchronization agent.
    pub fn agent(&self) -> &Arc<dyn SyncAgent> {
        &self.agent
    }

    /// Which agent design is injected.
    pub fn agent_kind(&self) -> AgentKind {
        self.agent_kind
    }

    /// The kernel process backing variant `v`.
    pub fn pid_of(&self, v: usize) -> Pid {
        self.pids[v]
    }

    /// Divergence report, if the monitor detected one.
    pub fn divergence(&self) -> Option<DivergenceReport> {
        self.monitor.divergence()
    }

    /// Monitor counters.
    pub fn monitor_stats(&self) -> MonitorStats {
        self.monitor.stats()
    }

    /// Agent counters.
    pub fn agent_stats(&self) -> AgentStats {
        self.agent.stats()
    }

    /// The divergence-journal recorder, when the MVEE was built with
    /// [`JournalMode::Record`](crate::journal::JournalMode::Record).
    ///
    /// Call [`JournalRecorder::finish`](crate::journal::JournalRecorder::finish)
    /// on it — at shutdown or mid-run — to snapshot the encoded journal.
    pub fn journal_recorder(&self) -> Option<&Arc<crate::journal::JournalRecorder>> {
        self.journal.recorder()
    }

    /// Snapshots and encodes the journal recorded so far, if recording.
    pub fn finish_journal(&self) -> Option<Vec<u8>> {
        self.journal.recorder().map(|rec| rec.finish())
    }

    /// Replays the journal the MVEE was built with
    /// ([`JournalMode::Replay`](crate::journal::JournalMode::Replay)),
    /// re-deriving verdicts offline with zero live variants.
    ///
    /// Returns `None` when the MVEE is not in replay mode.
    pub fn replay_recorded(
        &self,
    ) -> Option<Result<crate::journal::ReplayedRun, crate::journal::ReplayError>> {
        self.journal
            .replay_source()
            .map(|journal| crate::journal::replay_journal(journal))
    }

    /// Returns the gateway for variant `v`; the variant execution engine
    /// hands one to every variant's OS threads, each of which then acquires
    /// its own [`ThreadPort`] via [`VariantGateway::thread`].
    pub fn gateway(&self, variant: usize) -> VariantGateway {
        assert!(variant < self.variants, "unknown variant index");
        VariantGateway {
            variant,
            monitor: Arc::clone(&self.monitor),
            agent: Arc::clone(&self.agent),
            pollers: self.pollers.clone(),
            remote: self.remote.as_ref().map(|parts| Arc::clone(&parts.leader)),
        }
    }

    /// Number of monitor-side poller threads: `n` under
    /// `Pollers::Pool(n)` — independent of variants×threads — and `0` for
    /// the sync and per-port transports (which spawn no shared pollers).
    pub fn poller_threads(&self) -> usize {
        self.pollers.as_ref().map_or(0, |p| p.worker_count())
    }

    /// Acquires the [`ThreadPort`] for logical thread `thread` of variant
    /// `variant` — the per-thread syscall handle the redesigned gateway is
    /// built around.  Shorthand for `mvee.gateway(variant).thread(thread)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or if a live port already owns this
    /// (variant, thread).
    pub fn thread_port(&self, variant: usize, thread: usize) -> ThreadPort {
        self.gateway(variant).thread(thread)
    }

    /// Acquires the [`AsyncThreadPort`] for logical thread `thread` of
    /// variant `variant`: the ring-based transport, with the depth taken
    /// from the configured [`Transport`] (or the default depth when the
    /// MVEE was built with the synchronous transport).  Shorthand for
    /// `mvee.gateway(variant).async_thread(thread)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or if a live port already owns this
    /// (variant, thread).
    pub fn async_thread_port(&self, variant: usize, thread: usize) -> AsyncThreadPort {
        self.gateway(variant).async_thread(thread)
    }

    /// Acquires the [`LeaderPort`](crate::remote::LeaderPort) for logical
    /// thread `thread` of the leader (variant 0) of a distributed MVEE —
    /// the remote counterpart of [`thread_port`](Self::thread_port).
    ///
    /// # Panics
    ///
    /// Panics when the MVEE was not built with `Transport::Remote`, on an
    /// out-of-range thread index, or if a live port already owns
    /// (variant 0, thread).
    pub fn leader_port(&self, thread: usize) -> crate::remote::LeaderPort {
        let parts = self
            .remote
            .as_ref()
            .expect("leader_port requires Transport::Remote");
        parts.leader.port(thread)
    }

    /// Waits until the follower of a distributed MVEE has fully processed
    /// every frame streamed so far, making its counters and verdicts final
    /// — the remote quiescence point the equivalence harness compares at.
    /// A non-remote MVEE is trivially quiescent: `Ok(())`.
    pub fn remote_barrier(&self) -> Result<(), MonitorError> {
        match &self.remote {
            Some(parts) => parts.leader.barrier(),
            None => Ok(()),
        }
    }

    /// Kills the follower of a distributed MVEE: the pump stops, poisons
    /// the rendezvous table and closes its half of the channel, so the
    /// leader observes a [`Disconnected`](crate::remote::PeerFailureKind)
    /// follower.  Fault-injection hook for the resilience tests; a no-op on
    /// non-remote MVEEs.
    pub fn abort_follower(&self) {
        if let Some(parts) = &self.remote {
            if let Some(follower) = &parts.follower {
                follower.abort();
            }
        }
    }

    /// The replication-channel failure of a distributed MVEE, if either
    /// side observed one (`None` for non-remote MVEEs and healthy links).
    pub fn remote_fault(&self) -> Option<crate::remote::PeerFailure> {
        let parts = self.remote.as_ref()?;
        parts
            .leader
            .failure()
            .or_else(|| parts.follower.as_ref().and_then(|f| f.fault()))
    }

    /// The snapshot store, when the MVEE was built with
    /// [`snapshot_every`](MveeBuilder::snapshot_every).
    pub fn snapshot_store(&self) -> Option<&Arc<SnapshotStore>> {
        self.snapshots.as_ref()
    }

    /// The most recent snapshot of `variant`, if snapshots are enabled and
    /// one has been taken.
    pub fn latest_snapshot(&self, variant: usize) -> Option<Arc<SnapshotRecord>> {
        self.snapshots.as_ref()?.latest(variant)
    }

    /// The currently quarantined variants, in index order (empty unless the
    /// MVEE runs under [`RecoveryPolicy::Quarantine`] and a divergence was
    /// proven).
    pub fn quarantined_variants(&self) -> Vec<usize> {
        self.monitor.quarantined_variants()
    }

    /// The divergence reports behind every quarantine so far.  Unlike
    /// [`divergence`](Self::divergence) — which stays `None` while the run
    /// keeps serving — these do not imply the run ended.
    pub fn quarantine_reports(&self) -> Vec<DivergenceReport> {
        self.monitor.quarantine_reports()
    }

    /// Replays a quarantined variant back into the quorum.
    ///
    /// The recovery sequence is the dMVX one the paper's line of work
    /// builds towards:
    ///
    /// 1. **Restore** — the variant's private kernel state rolls back to
    ///    its last agreed snapshot (when snapshots are enabled and one was
    ///    taken; otherwise the variant keeps its state as of the
    ///    quarantine, which for this emulated kernel is the state the
    ///    survivors agreed on up to the divergent call).
    /// 2. **Replay** — when the run records a journal, the journal is
    ///    salvaged ([`Journal::recover_from_bytes`] — the variant may have
    ///    died mid-write) and re-validated through the replay machinery;
    ///    the suffix past the snapshot's journal position is what catches
    ///    the variant up to the survivors' frontier.
    /// 3. **Re-admit** — the variant's sequence counters and ordering
    ///    clocks fast-forward to the survivors' frontier and it rejoins
    ///    the lockstep expected-arrival set; subsequent calls compare
    ///    across the full quorum again.
    ///
    /// The caller must guarantee a quiescent batch boundary: no survivor
    /// call in flight (the equivalence and fault suites join their worker
    /// threads first).  Respawning is only meaningful while the run is
    /// still serving — a fully diverged (poisoned) run cannot be rejoined.
    pub fn respawn_variant(&self, variant: usize) -> Result<RespawnReport, RespawnError> {
        assert!(variant < self.variants, "unknown variant index");
        if self.monitor.has_diverged() {
            return Err(RespawnError::Diverged);
        }
        if !self.monitor.is_quarantined(variant) {
            return Err(RespawnError::NotQuarantined);
        }
        let snapshot = self.latest_snapshot(variant);
        if let Some(snapshot) = &snapshot {
            self.kernel
                .restore_process(self.pids[variant], &snapshot.image);
        }
        let mut replayed_records = 0;
        let mut dropped_bytes = 0;
        if let Some(recorder) = self.journal.recorder() {
            let bytes = recorder.finish();
            let recovered = Journal::recover_from_bytes(&bytes).map_err(RespawnError::Journal)?;
            dropped_bytes = recovered.dropped_bytes;
            // Validate the full salvaged history (the verdicts must
            // re-derive), then count the suffix past the snapshot as the
            // catch-up work.
            crate::journal::replay_journal(&recovered.journal).map_err(RespawnError::Replay)?;
            let from = snapshot.as_ref().map_or(0, |s| s.journal_records);
            replayed_records = (recovered.journal.records.len() as u64).saturating_sub(from);
        }
        self.monitor.readmit_variant(variant);
        Ok(RespawnReport {
            variant,
            restored_sync_ops: snapshot.as_ref().map(|s| s.sync_ops),
            replayed_records,
            dropped_bytes,
        })
    }
}

/// What [`Mvee::respawn_variant`] did to bring a variant back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RespawnReport {
    /// The respawned variant.
    pub variant: usize,
    /// The sync-op position of the snapshot the variant restored from
    /// (`None` when no snapshot was available and the variant rejoined
    /// from its quarantine-time state).
    pub restored_sync_ops: Option<u64>,
    /// Journal records past the snapshot that were replayed to catch the
    /// variant up (0 when the run does not record a journal).
    pub replayed_records: u64,
    /// Torn-suffix bytes the journal salvage discarded (0 for a clean
    /// journal).
    pub dropped_bytes: usize,
}

/// Why [`Mvee::respawn_variant`] refused or failed.
#[derive(Debug)]
pub enum RespawnError {
    /// The variant is live — there is nothing to respawn.
    NotQuarantined,
    /// The whole run has diverged (poisoned); there is no quorum to rejoin.
    Diverged,
    /// The recorded journal's header was unreadable, so nothing could be
    /// salvaged.
    Journal(JournalError),
    /// The salvaged journal does not replay consistently — the recorded
    /// history itself is suspect, so the variant stays quarantined.
    Replay(ReplayError),
}

impl std::fmt::Display for RespawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RespawnError::NotQuarantined => write!(f, "variant is not quarantined"),
            RespawnError::Diverged => write!(f, "the run has fully diverged"),
            RespawnError::Journal(e) => write!(f, "journal unrecoverable: {e}"),
            RespawnError::Replay(e) => write!(f, "journal does not replay: {e}"),
        }
    }
}

impl std::error::Error for RespawnError {}

/// A per-variant handle: the system-call gateway plus the sync-agent hooks.
#[derive(Clone)]
pub struct VariantGateway {
    variant: usize,
    monitor: Arc<Monitor>,
    agent: Arc<dyn SyncAgent>,
    pollers: Option<Arc<PollerPool>>,
    /// The leader front end of a distributed MVEE; `Some` only under
    /// `Transport::Remote`, where variant 0's ports come from
    /// [`leader_thread`](Self::leader_thread) instead of the in-proc
    /// factories.
    remote: Option<Arc<crate::remote::RemoteLeader>>,
}

impl VariantGateway {
    /// Zero-based variant index (0 is the master).
    pub fn variant_index(&self) -> usize {
        self.variant
    }

    /// The variant's replication role.
    pub fn role(&self) -> VariantRole {
        VariantRole::from_variant_index(self.variant)
    }

    /// Whether this gateway belongs to the master variant.
    pub fn is_master(&self) -> bool {
        self.variant == 0
    }

    /// Acquires the [`ThreadPort`] for logical thread `thread`: the
    /// per-thread handle every variant OS thread should issue its monitored
    /// calls and sync ops through.  The port caches the thread's shard
    /// binding (resolved via the configured
    /// [`Placement`](crate::config::Placement)), sequence counter, agent
    /// context and deferred-comparison queue; see
    /// [`ThreadPort`](crate::port::ThreadPort).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range thread index, if a live port already
    /// owns this (variant, thread), or for the leader (variant 0) of a
    /// distributed MVEE — its calls travel by wire, so acquire a
    /// [`leader_thread`](Self::leader_thread) port instead.
    pub fn thread(&self, thread: usize) -> ThreadPort {
        assert!(
            !(self.remote.is_some() && self.variant == 0),
            "variant 0 of a distributed MVEE is the remote leader: use \
             leader_thread / Mvee::leader_port instead of an in-proc port"
        );
        ThreadPort::new(
            Arc::clone(&self.monitor),
            Arc::clone(&self.agent),
            self.variant,
            thread,
        )
    }

    /// Acquires the [`AsyncThreadPort`] for logical thread `thread`: the
    /// asynchronous ring transport (see the [`async_port`](crate::async_port)
    /// module docs).  The ring depth comes from the monitor's configured
    /// [`Transport`]; an MVEE built with [`Transport::Sync`] still hands out
    /// async ports on request, at the default depth, which is how the
    /// equivalence harness runs both transports against one configuration.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range thread index or if a live port already
    /// owns this (variant, thread).
    pub fn async_thread(&self, thread: usize) -> AsyncThreadPort {
        assert!(
            !(self.remote.is_some() && self.variant == 0),
            "variant 0 of a distributed MVEE is the remote leader: use \
             leader_thread / Mvee::leader_port instead of an in-proc port"
        );
        let depth = self
            .monitor
            .config()
            .transport
            .depth()
            .unwrap_or(DEFAULT_RING_DEPTH);
        match &self.pollers {
            Some(pool) => AsyncThreadPort::new_pooled(
                Arc::clone(&self.monitor),
                Arc::clone(&self.agent),
                self.variant,
                thread,
                depth,
                pool,
            ),
            None => AsyncThreadPort::new(
                Arc::clone(&self.monitor),
                Arc::clone(&self.agent),
                self.variant,
                thread,
                depth,
            ),
        }
    }

    /// Acquires the [`LeaderPort`](crate::remote::LeaderPort) for logical
    /// thread `thread` — the leader-side syscall handle of a distributed
    /// MVEE (this gateway must belong to variant 0).
    ///
    /// # Panics
    ///
    /// Panics when the MVEE is not remote, when this gateway is not
    /// variant 0's, on an out-of-range thread index, or if a live port
    /// already owns (variant 0, thread).
    pub fn leader_thread(&self, thread: usize) -> crate::remote::LeaderPort {
        assert!(
            self.variant == 0,
            "only variant 0 of a distributed MVEE runs behind the leader port"
        );
        let leader = self
            .remote
            .as_ref()
            .expect("leader_thread requires Transport::Remote");
        leader.port(thread)
    }

    /// Builds the sync context for logical thread `thread`.
    pub fn sync_context(&self, thread: usize) -> SyncContext {
        SyncContext::new(self.role(), thread)
    }

    /// Issues a system call on behalf of `thread` through the legacy
    /// index-addressed path.
    ///
    /// Prefer acquiring a [`ThreadPort`] with [`thread`](Self::thread) and
    /// calling [`ThreadPort::syscall`](crate::port::ThreadPort::syscall):
    /// this method pays the per-call re-resolution cost the port design
    /// removes.  It remains public for the port/index equivalence harness
    /// and ablation benchmarks; do not mix it with a live port for the same
    /// (variant, thread).
    pub fn syscall(
        &self,
        thread: usize,
        req: &SyscallRequest,
    ) -> Result<SyscallOutcome, MonitorError> {
        self.monitor.syscall(self.variant, thread, req)
    }

    /// Brackets a sync op: `before_sync_op`, the closure, `after_sync_op`.
    pub fn sync_op<T>(&self, thread: usize, addr: u64, op: impl FnOnce() -> T) -> T {
        let ctx = self.sync_context(thread);
        self.agent.before_sync_op(&ctx, addr);
        let result = op();
        self.agent.after_sync_op(&ctx, addr);
        result
    }

    /// Direct access to the injected agent.
    pub fn agent(&self) -> &Arc<dyn SyncAgent> {
        &self.agent
    }

    /// The transport the MVEE was configured with — what
    /// [`thread_port`](crate::mvee::Mvee::thread_port)-style factories use
    /// to decide between sync and async ports.
    pub fn transport(&self) -> Transport {
        self.monitor.config().transport
    }

    /// Whether the MVEE has shut down due to divergence.
    pub fn is_shut_down(&self) -> bool {
        self.monitor.has_diverged()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvee_kernel::syscall::Sysno;

    #[test]
    fn builder_wires_variants_and_agent() {
        let mvee = Mvee::builder()
            .variants(3)
            .threads(4)
            .agent(AgentKind::TotalOrder)
            .manual_clock(true)
            .build();
        assert_eq!(mvee.variants(), 3);
        assert_eq!(mvee.agent_kind(), AgentKind::TotalOrder);
        assert_eq!(mvee.pid_of(0), 0);
        assert_eq!(mvee.pid_of(2), 2);
        assert!(mvee.divergence().is_none());
        assert_eq!(
            mvee.monitor().shard_count(),
            crate::lockstep::DEFAULT_SHARDS
        );
    }

    #[test]
    fn builder_shards_knob_reaches_the_monitor() {
        let mvee = Mvee::builder()
            .variants(2)
            .shards(3)
            .manual_clock(true)
            .build();
        assert_eq!(mvee.monitor().shard_count(), 3);
        let unsharded = Mvee::builder()
            .variants(2)
            .shards(1)
            .manual_clock(true)
            .build();
        assert_eq!(unsharded.monitor().shard_count(), 1);
    }

    #[test]
    fn builder_batch_knob_reaches_the_monitor() {
        let mvee = Mvee::builder()
            .variants(2)
            .batch(8)
            .manual_clock(true)
            .build();
        assert_eq!(mvee.monitor().config().batch, 8);
        let unbatched = Mvee::builder().variants(2).manual_clock(true).build();
        assert_eq!(unbatched.monitor().config().batch, 1);
    }

    #[test]
    fn sync_op_flushes_deferred_comparisons() {
        // Each variant defers two brk comparisons (batch 8, never full);
        // reaching the agent's replication point must flush them.
        let mvee = Mvee::builder()
            .variants(2)
            .batch(8)
            .manual_clock(true)
            .build();
        let mut handles = Vec::new();
        for v in 0..2 {
            let gw = mvee.gateway(v);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2 {
                    gw.syscall(0, &SyscallRequest::new(Sysno::Brk).with_int(0))
                        .unwrap();
                }
                gw.sync_op(0, 0x1000, || ());
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = mvee.monitor_stats();
        assert_eq!(stats.batched_comparisons, 4);
        assert_eq!(
            stats.batch_flushes, 2,
            "one flush per variant at the sync op"
        );
        assert_eq!(mvee.monitor().live_deferred(), 0);
        assert!(!mvee.monitor().has_diverged());
    }

    #[test]
    fn agent_poison_abandons_deferred_comparisons() {
        let mvee = Mvee::builder()
            .variants(2)
            .batch(8)
            .manual_clock(true)
            .build();
        mvee.gateway(0)
            .syscall(0, &SyscallRequest::new(Sysno::Brk).with_int(0))
            .unwrap();
        assert_eq!(mvee.monitor().live_deferred(), 1);
        mvee.agent().poison();
        assert_eq!(
            mvee.monitor().live_deferred(),
            0,
            "poisoning the agent must drop pending batches"
        );
    }

    #[test]
    fn gateways_report_roles() {
        let mvee = Mvee::builder().variants(2).manual_clock(true).build();
        assert!(mvee.gateway(0).is_master());
        assert!(!mvee.gateway(1).is_master());
        assert_eq!(mvee.gateway(1).role(), VariantRole::Slave { index: 0 });
    }

    #[test]
    fn gateway_syscall_reaches_the_monitor() {
        let mvee = Mvee::builder().variants(1).manual_clock(true).build();
        let gw = mvee.gateway(0);
        let out = gw.syscall(0, &SyscallRequest::new(Sysno::Getpid)).unwrap();
        assert!(out.is_ok());
        assert_eq!(mvee.monitor_stats().total_syscalls, 1);
    }

    #[test]
    fn gateway_sync_op_records_in_master() {
        let mvee = Mvee::builder().variants(2).manual_clock(true).build();
        let gw = mvee.gateway(0);
        let v = gw.sync_op(0, 0x1000, || 7);
        assert_eq!(v, 7);
        assert_eq!(mvee.agent_stats().ops_recorded, 1);
    }

    #[test]
    fn divergence_poisons_the_injected_agent() {
        let mvee = Mvee::builder()
            .variants(2)
            .manual_clock(true)
            .lockstep_timeout(std::time::Duration::from_millis(50))
            .build();
        assert!(!mvee.agent().is_poisoned());
        // Only variant 0 arrives at a locksteped call: rendezvous timeout,
        // divergence, and the poison hook must reach the agent.
        let r = mvee
            .gateway(0)
            .syscall(0, &SyscallRequest::new(Sysno::Write).with_payload(b"x"));
        assert!(r.is_err());
        assert!(mvee.divergence().is_some());
        assert!(mvee.agent().is_poisoned());
    }

    #[test]
    fn diversified_layouts_produce_different_heap_bases() {
        let layouts = vec![
            VariantLayout {
                brk_base: 0x5555_0000_0000,
                mmap_top: 0x7fff_0000_0000,
            },
            VariantLayout {
                brk_base: 0x5655_4000_0000,
                mmap_top: 0x7ffd_8000_0000,
            },
        ];
        let mvee = Mvee::builder()
            .variants(2)
            .layouts(layouts)
            .policy(MonitoringPolicy::NoComparison)
            .manual_clock(true)
            .build();
        let b0 = mvee
            .gateway(0)
            .syscall(0, &SyscallRequest::new(Sysno::Brk).with_int(0))
            .unwrap();
        let b1 = mvee
            .gateway(1)
            .syscall(0, &SyscallRequest::new(Sysno::Brk).with_int(0))
            .unwrap();
        assert_ne!(b0.result, b1.result);
    }

    #[test]
    #[should_panic(expected = "one layout per variant")]
    fn mismatched_layout_count_panics() {
        let _ = Mvee::builder()
            .variants(3)
            .layouts(vec![VariantLayout::default_layout()])
            .build();
    }

    #[test]
    #[should_panic(expected = "must be at least the comparison batch")]
    fn ring_depth_smaller_than_batch_panics_at_build_time() {
        let _ = Mvee::builder()
            .variants(1)
            .batch(8)
            .transport(Transport::AsyncRings {
                depth: 4,
                pollers: Pollers::PerPort,
            })
            .manual_clock(true)
            .build();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_poller_pool_is_rejected_before_build() {
        let _ = Mvee::builder().transport(Transport::AsyncRings {
            depth: 8,
            pollers: Pollers::Pool(0),
        });
    }

    #[test]
    fn pool_transport_spawns_exactly_n_pollers_and_no_port_workers() {
        let mvee = Mvee::builder()
            .variants(4)
            .threads(4)
            .transport(Transport::AsyncRings {
                depth: 8,
                pollers: Pollers::Pool(2),
            })
            .manual_clock(true)
            .build();
        assert_eq!(mvee.poller_threads(), 2);
        let mut ports = Vec::new();
        for v in 0..4 {
            for t in 0..4 {
                ports.push(mvee.async_thread_port(v, t));
            }
        }
        assert!(
            ports.iter().all(|p| !p.has_dedicated_worker()),
            "pooled ports must not spawn gateway workers"
        );
        assert_eq!(
            mvee.poller_threads(),
            2,
            "16 live ports, still exactly 2 monitor-side threads"
        );
        drop(ports);
        // Per-port mode keeps the old shape: a worker per port, no pollers.
        let per_port = Mvee::builder()
            .variants(2)
            .transport(Transport::async_default())
            .manual_clock(true)
            .build();
        assert_eq!(per_port.poller_threads(), 0);
        assert!(per_port.async_thread_port(0, 0).has_dedicated_worker());
    }
}
