//! The syscall ordering clock (§4.1 of the paper), sharded per thread group.
//!
//! ReMon orders related system calls across the threads of a variant with
//! Lamport-style logical clocks: the monitor assigns the master variant's
//! ordered calls increasing timestamps, and a slave variant's thread may only
//! execute its copy of an ordered call once the slave's private clock has
//! reached the recorded timestamp.  After the call completes the slave
//! increments its clock, releasing whichever thread holds the next timestamp.
//!
//! This forces the *cross-thread order* of ordered calls (file-descriptor
//! allocation, memory-management calls, ...) in every slave to match the
//! master's order — which is exactly what makes FD numbers and allocator
//! behaviour consistent across variants (§3.1).
//!
//! # Sharding
//!
//! A single clock per variant serializes *every* ordered call of that
//! variant, even calls issued by threads that never interact — the same
//! global-ordering bottleneck the paper's total-order agent suffers from.
//! [`ShardedOrderingClock`] therefore keeps one [`SyscallOrderingClock`] per
//! monitor shard: threads are assigned to shards by logical thread index
//! (identically in every variant), ordered calls of threads in the same
//! shard keep the full §4.1 cross-thread guarantee, and threads in different
//! shards order independently.  Calls whose *results* must agree across all
//! threads (FD allocation and other I/O) are replicated from the master
//! rather than ordered, so relaxing cross-shard order never leaks divergent
//! observable state.  `shards = 1` restores the original single-clock
//! behaviour.

use std::sync::atomic::{AtomicU64, Ordering};

use mvee_sync_agent::guards::Waiter;

/// A per-variant, per-shard syscall ordering clock.
#[derive(Debug, Default)]
pub struct SyscallOrderingClock {
    time: AtomicU64,
}

impl SyscallOrderingClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time.
    pub fn now(&self) -> u64 {
        self.time.load(Ordering::Acquire)
    }

    /// Master side: claims the next timestamp (returns the pre-increment
    /// value).
    pub fn claim_timestamp(&self) -> u64 {
        self.time.fetch_add(1, Ordering::AcqRel)
    }

    /// Slave side: blocks until the clock reaches `timestamp`, then returns
    /// `true`.  Returns `false` if `timeout` elapses first (which the caller
    /// escalates to a divergence).
    pub fn wait_for_turn(&self, timestamp: u64, timeout: std::time::Duration) -> bool {
        Waiter::default()
            .wait_until_deadline(timeout, || self.time.load(Ordering::Acquire) >= timestamp)
    }

    /// Slave side, poll mode: the non-blocking mirror of
    /// [`wait_for_turn`](Self::wait_for_turn) — one lock-free check of the
    /// same condition, for a polling monitor shard that must never sleep
    /// inside one port's turn wait.
    pub fn try_turn(&self, timestamp: u64) -> bool {
        self.time.load(Ordering::Acquire) >= timestamp
    }

    /// Slave side: marks the ordered call as finished, advancing the clock.
    pub fn advance(&self) -> u64 {
        self.time.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Fast-forwards (or rewinds) the clock to `time`.  Used when a
    /// quarantined variant is re-admitted at a quiescent boundary: its clock
    /// stopped ticking while the survivors' advanced, so it resyncs to a
    /// survivor's position before rejoining the ordered stream.
    pub fn resync(&self, time: u64) {
        self.time.store(time, Ordering::Release);
    }
}

/// One variant's wall of per-shard ordering clocks.
///
/// The shard for a call is derived from the issuing thread's logical index,
/// which is assigned identically in every variant — so the master's claimed
/// timestamp and the slave's wait always refer to the same shard clock.
#[derive(Debug)]
pub struct ShardedOrderingClock {
    clocks: Box<[SyscallOrderingClock]>,
}

impl ShardedOrderingClock {
    /// Creates `shards` independent clocks, all at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one ordering shard");
        ShardedOrderingClock {
            clocks: (0..shards).map(|_| SyscallOrderingClock::new()).collect(),
        }
    }

    /// Number of shard clocks.
    pub fn shard_count(&self) -> usize {
        self.clocks.len()
    }

    /// The shard a logical thread's ordered calls go through.
    pub fn shard_of(&self, thread: usize) -> usize {
        thread % self.clocks.len()
    }

    /// The clock backing `shard`.
    pub fn clock(&self, shard: usize) -> &SyscallOrderingClock {
        &self.clocks[shard]
    }

    /// Sum of all shard clocks — the total number of ordered calls this
    /// variant has claimed/advanced through.
    pub fn total_time(&self) -> u64 {
        self.clocks.iter().map(|c| c.now()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn master_claims_monotonically_increasing_timestamps() {
        let c = SyscallOrderingClock::new();
        assert_eq!(c.claim_timestamp(), 0);
        assert_eq!(c.claim_timestamp(), 1);
        assert_eq!(c.claim_timestamp(), 2);
        assert_eq!(c.now(), 3);
    }

    #[test]
    fn slave_wait_returns_immediately_when_time_reached() {
        let c = SyscallOrderingClock::new();
        assert!(c.wait_for_turn(0, Duration::from_millis(10)));
        c.advance();
        assert!(c.wait_for_turn(1, Duration::from_millis(10)));
    }

    #[test]
    fn slave_wait_times_out_when_turn_never_comes() {
        let c = SyscallOrderingClock::new();
        assert!(!c.wait_for_turn(5, Duration::from_millis(30)));
    }

    #[test]
    fn out_of_order_threads_are_serialized_by_the_clock() {
        // Thread B holds timestamp 1 and must wait for thread A (timestamp 0).
        let clock = Arc::new(SyscallOrderingClock::new());
        let order = Arc::new(AtomicU64::new(0));

        let c_b = Arc::clone(&clock);
        let o_b = Arc::clone(&order);
        let thread_b = std::thread::spawn(move || {
            assert!(c_b.wait_for_turn(1, Duration::from_secs(2)));
            let pos = o_b.fetch_add(1, Ordering::SeqCst);
            c_b.advance();
            pos
        });

        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(order.load(Ordering::SeqCst), 0, "B must still be waiting");

        let c_a = Arc::clone(&clock);
        let o_a = Arc::clone(&order);
        let thread_a = std::thread::spawn(move || {
            assert!(c_a.wait_for_turn(0, Duration::from_secs(2)));
            let pos = o_a.fetch_add(1, Ordering::SeqCst);
            c_a.advance();
            pos
        });

        assert_eq!(thread_a.join().unwrap(), 0);
        assert_eq!(thread_b.join().unwrap(), 1);
        assert_eq!(clock.now(), 2);
    }

    #[test]
    fn sharded_clock_maps_threads_to_stable_shards() {
        let c = ShardedOrderingClock::new(4);
        assert_eq!(c.shard_count(), 4);
        assert_eq!(c.shard_of(0), 0);
        assert_eq!(c.shard_of(5), 1);
        assert_eq!(c.shard_of(4), c.shard_of(0));
    }

    #[test]
    fn shard_clocks_tick_independently() {
        let c = ShardedOrderingClock::new(2);
        assert_eq!(c.clock(0).claim_timestamp(), 0);
        assert_eq!(c.clock(0).claim_timestamp(), 1);
        // Shard 1 is untouched by shard 0's claims.
        assert_eq!(c.clock(1).claim_timestamp(), 0);
        assert_eq!(c.total_time(), 3);
    }

    #[test]
    fn single_shard_clock_restores_global_ordering() {
        let c = ShardedOrderingClock::new(1);
        for thread in 0..5usize {
            assert_eq!(c.shard_of(thread), 0);
        }
        assert_eq!(c.clock(0).claim_timestamp(), 0);
        assert_eq!(c.clock(0).claim_timestamp(), 1);
    }
}
