//! The syscall ordering clock (§4.1 of the paper).
//!
//! ReMon orders related system calls across the threads of a variant with
//! Lamport-style logical clocks: the monitor assigns the master variant's
//! ordered calls increasing timestamps, and a slave variant's thread may only
//! execute its copy of an ordered call once the slave's private clock has
//! reached the recorded timestamp.  After the call completes the slave
//! increments its clock, releasing whichever thread holds the next timestamp.
//!
//! This forces the *cross-thread order* of ordered calls (file-descriptor
//! allocation, memory-management calls, ...) in every slave to match the
//! master's order — which is exactly what makes FD numbers and allocator
//! behaviour consistent across variants (§3.1).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::monitor::wait_until_with_timeout;

/// A per-variant syscall ordering clock.
#[derive(Debug, Default)]
pub struct SyscallOrderingClock {
    time: AtomicU64,
}

impl SyscallOrderingClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time.
    pub fn now(&self) -> u64 {
        self.time.load(Ordering::Acquire)
    }

    /// Master side: claims the next timestamp (returns the pre-increment
    /// value).
    pub fn claim_timestamp(&self) -> u64 {
        self.time.fetch_add(1, Ordering::AcqRel)
    }

    /// Slave side: blocks until the clock reaches `timestamp`, then returns
    /// `true`.  Returns `false` if `timeout` elapses first (which the caller
    /// escalates to a divergence).
    pub fn wait_for_turn(&self, timestamp: u64, timeout: std::time::Duration) -> bool {
        wait_until_with_timeout(timeout, || self.time.load(Ordering::Acquire) >= timestamp)
    }

    /// Slave side: marks the ordered call as finished, advancing the clock.
    pub fn advance(&self) -> u64 {
        self.time.fetch_add(1, Ordering::AcqRel) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn master_claims_monotonically_increasing_timestamps() {
        let c = SyscallOrderingClock::new();
        assert_eq!(c.claim_timestamp(), 0);
        assert_eq!(c.claim_timestamp(), 1);
        assert_eq!(c.claim_timestamp(), 2);
        assert_eq!(c.now(), 3);
    }

    #[test]
    fn slave_wait_returns_immediately_when_time_reached() {
        let c = SyscallOrderingClock::new();
        assert!(c.wait_for_turn(0, Duration::from_millis(10)));
        c.advance();
        assert!(c.wait_for_turn(1, Duration::from_millis(10)));
    }

    #[test]
    fn slave_wait_times_out_when_turn_never_comes() {
        let c = SyscallOrderingClock::new();
        assert!(!c.wait_for_turn(5, Duration::from_millis(30)));
    }

    #[test]
    fn out_of_order_threads_are_serialized_by_the_clock() {
        // Thread B holds timestamp 1 and must wait for thread A (timestamp 0).
        let clock = Arc::new(SyscallOrderingClock::new());
        let order = Arc::new(AtomicU64::new(0));

        let c_b = Arc::clone(&clock);
        let o_b = Arc::clone(&order);
        let thread_b = std::thread::spawn(move || {
            assert!(c_b.wait_for_turn(1, Duration::from_secs(2)));
            let pos = o_b.fetch_add(1, Ordering::SeqCst);
            c_b.advance();
            pos
        });

        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(order.load(Ordering::SeqCst), 0, "B must still be waiting");

        let c_a = Arc::clone(&clock);
        let o_a = Arc::clone(&order);
        let thread_a = std::thread::spawn(move || {
            assert!(c_a.wait_for_turn(0, Duration::from_secs(2)));
            let pos = o_a.fetch_add(1, Ordering::SeqCst);
            c_a.advance();
            pos
        });

        assert_eq!(thread_a.join().unwrap(), 0);
        assert_eq!(thread_b.join().unwrap(), 1);
        assert_eq!(clock.now(), 2);
    }
}
