//! Monitoring policies: which system calls are locksteped.
//!
//! The paper's correctness evaluation (§5.1) exercises "a variety of
//! monitoring policies ranging from strict lockstepping on all system calls
//! to lockstepping only on security-sensitive system calls".  The policy
//! never changes *replication* (I/O results always flow from the master to
//! the slaves, or the variants would receive inconsistent inputs); it only
//! changes which calls require a full cross-variant rendezvous and argument
//! comparison before proceeding.

use serde::{Deserialize, Serialize};

use mvee_kernel::syscall::{SyscallClass, Sysno};

/// How the monitor handles one monitored call: the policy-resolved
/// combination of rendezvous, replication and ordering.
///
/// Exactly one of `replicate` and `ordered` can be set (replication already
/// implies the master's execution order); `lockstep` composes with either.
/// The monitor's hot path computes this once per call instead of re-deriving
/// each property separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallDisposition {
    /// The call requires a cross-variant rendezvous and comparison.
    pub lockstep: bool,
    /// The call's result flows from the master to the slaves.
    pub replicate: bool,
    /// The call executes in every variant but follows the master's
    /// cross-thread order via the syscall ordering clock.
    pub ordered: bool,
    /// The comparison may be *deferred* into the monitor's per-thread batch
    /// and resolved at the next flush point (batch full, next synchronous
    /// monitored call, or an agent replication point) instead of blocking
    /// the caller right now.
    ///
    /// Only compare-only calls qualify: address-space calls execute against
    /// each variant's own address space, so nothing but the comparison
    /// couples the variants and the caller can proceed the moment its own
    /// kernel has answered.  Calls whose results are replicated (I/O,
    /// read-only info, blocking sync) must still rendezvous synchronously —
    /// the caller cannot proceed without the master's outcome — and
    /// process-lifecycle calls stay synchronous so a thread can never exit
    /// with an unflushed batch behind it.  Deferral trades a bounded
    /// detection window (at most `MonitorConfig::batch` calls, never past a
    /// replication point) for one shard-lock acquisition per batch instead
    /// of per call.
    pub defer_compare: bool,
}

/// Which system calls the monitor compares in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum MonitoringPolicy {
    /// Every monitored call is compared across all variants before any
    /// variant may proceed — the paper's default, strongest setting.
    #[default]
    StrictLockstep,
    /// Only security-sensitive calls (those that open new channels to the
    /// outside world or change memory protections) are compared; everything
    /// else is replicated/ordered without a rendezvous.
    SecuritySensitiveOnly,
    /// No comparison at all.  Only useful for overhead ablations; an MVEE
    /// running this policy provides no protection.
    NoComparison,
}

impl MonitoringPolicy {
    /// Whether `sysno` requires a lockstep rendezvous under this policy.
    ///
    /// Blocking calls are never locksteped regardless of policy (§4.1: the
    /// monitor cannot hold all variants inside a rendezvous that may never
    /// complete); they are replicated from the master instead.
    pub fn requires_lockstep(self, sysno: Sysno) -> bool {
        if sysno.may_block() {
            return false;
        }
        match self {
            MonitoringPolicy::StrictLockstep => {
                sysno.needs_ordering() || sysno.is_security_sensitive()
            }
            MonitoringPolicy::SecuritySensitiveOnly => sysno.is_security_sensitive(),
            MonitoringPolicy::NoComparison => false,
        }
    }

    /// Resolves how the monitor must handle `sysno` under this policy.
    ///
    /// Replication is policy-independent (I/O results always flow from the
    /// master to the slaves, or the variants would receive inconsistent
    /// inputs); the policy only decides the `lockstep` component.
    pub fn disposition(self, sysno: Sysno) -> CallDisposition {
        let replicate = matches!(
            sysno.class(),
            SyscallClass::Io | SyscallClass::ReadOnlyInfo | SyscallClass::BlockingSync
        );
        let lockstep = self.requires_lockstep(sysno);
        CallDisposition {
            lockstep,
            replicate,
            ordered: !replicate && sysno.needs_ordering(),
            // `!replicate` is implied by the address-space class but spelled
            // out because it is the load-bearing half of the invariant:
            // deferral must never cover a call whose outcome the caller
            // still has to wait for.
            defer_compare: lockstep && !replicate && sysno.class() == SyscallClass::AddressSpace,
        }
    }

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            MonitoringPolicy::StrictLockstep => "strict-lockstep",
            MonitoringPolicy::SecuritySensitiveOnly => "security-sensitive-only",
            MonitoringPolicy::NoComparison => "no-comparison",
        }
    }

    /// All policies evaluated by the correctness experiment.
    pub fn all() -> [MonitoringPolicy; 3] {
        [
            MonitoringPolicy::StrictLockstep,
            MonitoringPolicy::SecuritySensitiveOnly,
            MonitoringPolicy::NoComparison,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_policy_locksteps_ordered_and_sensitive_calls() {
        let p = MonitoringPolicy::StrictLockstep;
        assert!(p.requires_lockstep(Sysno::Open));
        assert!(p.requires_lockstep(Sysno::Write));
        assert!(p.requires_lockstep(Sysno::Mprotect));
        assert!(p.requires_lockstep(Sysno::Brk));
        // Pure queries are not locksteped even under the strict policy.
        assert!(!p.requires_lockstep(Sysno::Gettid));
        assert!(!p.requires_lockstep(Sysno::SchedYield));
    }

    #[test]
    fn blocking_calls_are_never_locksteped() {
        for p in MonitoringPolicy::all() {
            assert!(!p.requires_lockstep(Sysno::FutexWait), "{:?}", p);
            assert!(!p.requires_lockstep(Sysno::Accept), "{:?}", p);
            assert!(!p.requires_lockstep(Sysno::Recv), "{:?}", p);
        }
    }

    #[test]
    fn sensitive_only_policy_is_a_subset_of_strict() {
        let strict = MonitoringPolicy::StrictLockstep;
        let relaxed = MonitoringPolicy::SecuritySensitiveOnly;
        for sysno in [
            Sysno::Open,
            Sysno::Read,
            Sysno::Write,
            Sysno::Close,
            Sysno::Brk,
            Sysno::Mmap,
            Sysno::Mprotect,
            Sysno::Socket,
            Sysno::Gettimeofday,
            Sysno::Clone,
        ] {
            if relaxed.requires_lockstep(sysno) {
                assert!(strict.requires_lockstep(sysno), "{:?}", sysno);
            }
        }
        // And it is a strict subset: some strict-locksteped calls are relaxed.
        assert!(strict.requires_lockstep(Sysno::Brk));
        assert!(!relaxed.requires_lockstep(Sysno::Brk));
    }

    #[test]
    fn no_comparison_policy_never_locksteps() {
        let p = MonitoringPolicy::NoComparison;
        for sysno in [Sysno::Open, Sysno::Write, Sysno::Mprotect, Sysno::ExitGroup] {
            assert!(!p.requires_lockstep(sysno));
        }
    }

    #[test]
    fn disposition_is_consistent_with_its_parts() {
        for policy in MonitoringPolicy::all() {
            for sysno in [
                Sysno::Open,
                Sysno::Read,
                Sysno::Write,
                Sysno::Brk,
                Sysno::Mmap,
                Sysno::Mprotect,
                Sysno::Gettimeofday,
                Sysno::SchedYield,
                Sysno::FutexWait,
            ] {
                let d = policy.disposition(sysno);
                assert_eq!(d.lockstep, policy.requires_lockstep(sysno), "{sysno:?}");
                assert!(
                    !(d.replicate && d.ordered),
                    "{sysno:?}: replication already implies the master's order"
                );
            }
        }
    }

    #[test]
    fn only_compared_address_space_calls_may_defer() {
        let strict = MonitoringPolicy::StrictLockstep;
        // Address-space calls are compare-only: deferrable.
        for sysno in [Sysno::Brk, Sysno::Mmap, Sysno::Mprotect, Sysno::Munmap] {
            assert!(strict.disposition(sysno).defer_compare, "{sysno:?}");
        }
        // Replicated results must rendezvous synchronously.
        for sysno in [Sysno::Open, Sysno::Write, Sysno::Read, Sysno::Gettimeofday] {
            assert!(!strict.disposition(sysno).defer_compare, "{sysno:?}");
        }
        // Process-lifecycle calls stay synchronous so exits flush batches.
        for sysno in [Sysno::Clone, Sysno::Exit, Sysno::ExitGroup] {
            assert!(!strict.disposition(sysno).defer_compare, "{sysno:?}");
        }
        // A call the policy does not compare has nothing to defer.
        assert!(
            !MonitoringPolicy::SecuritySensitiveOnly
                .disposition(Sysno::Brk)
                .defer_compare
        );
        assert!(
            MonitoringPolicy::SecuritySensitiveOnly
                .disposition(Sysno::Mprotect)
                .defer_compare
        );
        for sysno in [Sysno::Brk, Sysno::Mmap, Sysno::Mprotect] {
            assert!(
                !MonitoringPolicy::NoComparison
                    .disposition(sysno)
                    .defer_compare
            );
        }
    }

    #[test]
    fn deferral_implies_a_compared_unreplicated_call() {
        for policy in MonitoringPolicy::all() {
            for sysno in [
                Sysno::Open,
                Sysno::Read,
                Sysno::Write,
                Sysno::Brk,
                Sysno::Mmap,
                Sysno::Mprotect,
                Sysno::Madvise,
                Sysno::Gettimeofday,
                Sysno::SchedYield,
                Sysno::FutexWait,
                Sysno::Clone,
                Sysno::ExitGroup,
            ] {
                let d = policy.disposition(sysno);
                if d.defer_compare {
                    assert!(d.lockstep, "{sysno:?}: deferral without a comparison");
                    assert!(
                        !d.replicate,
                        "{sysno:?}: deferral would starve a replicated result"
                    );
                }
            }
        }
    }

    #[test]
    fn replication_is_policy_independent() {
        for policy in MonitoringPolicy::all() {
            assert!(policy.disposition(Sysno::Read).replicate);
            assert!(policy.disposition(Sysno::Gettimeofday).replicate);
            assert!(!policy.disposition(Sysno::Brk).replicate);
            assert!(policy.disposition(Sysno::Brk).ordered);
        }
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(MonitoringPolicy::StrictLockstep.name(), "strict-lockstep");
        assert_eq!(
            MonitoringPolicy::SecuritySensitiveOnly.name(),
            "security-sensitive-only"
        );
        assert_eq!(MonitoringPolicy::NoComparison.name(), "no-comparison");
        assert_eq!(
            MonitoringPolicy::default(),
            MonitoringPolicy::StrictLockstep
        );
    }
}
