//! Polling monitor shards: a fixed pool of poller threads drains many
//! ports' submission rings through non-blocking rendezvous.
//!
//! The per-port gateway worker ([`crate::async_port`]) spends its life
//! *blocked* — inside a rendezvous, an outcome wait or an ordering turn —
//! so the monitor side costs variants×threads OS threads, and on a small
//! CPU budget their context switches eat the latency win the rings bought
//! (see BASELINES.md).  A shared drain thread could not fix that as long
//! as rendezvous blocked: cross-thread submission order legitimately
//! differs between variants (the paper's premise), so a worker stuck in
//! thread A's rendezvous for variant 0 may be the only thing that could
//! deposit thread B's arrival, which variant 1 is blocked waiting for —
//! a circular wait across variants.
//!
//! The poll-mode rendezvous primitives ([`LockstepTable::try_arrive`],
//! [`LockstepTable::try_arrive_batch`], [`LockstepTable::try_wait_outcome`]
//! and their `poll_*` mirrors, plus
//! [`SyscallOrderingClock::try_turn`](crate::ordering::SyscallOrderingClock::try_turn))
//! remove the blocking, and this module builds the event loop on top:
//!
//! * [`PollerPool`] owns `n` poller threads (`Pollers::Pool(n)`), created
//!   with the MVEE and shared by every [`AsyncThreadPort`] the build hands
//!   out — monitor-side threads are exactly `n`, independent of
//!   variants×threads.
//! * Each poller round-robins its assigned ports: drain the submission
//!   ring → advance the port's state machine one non-blocking step at a
//!   time (deposit → `Pending(token)` → poll → verdict) → post
//!   completions.  No step ever sleeps on one port's progress, so the
//!   circular wait above just interleaves.
//! * The per-port state machine runs the **identical** monitor pipeline —
//!   `gate_and_count`, the same rendezvous keys and batch discipline, the
//!   shared verdict settlers (`settle_sync_arrival` /
//!   `settle_batch_results`, including their quarantine-retry protocol) and
//!   the same timeout attribution with deadlines fixed at deposit — so
//!   verdicts are byte-identical to the blocking transports by
//!   construction (`tests/polling_equivalence.rs` proves it by property).
//! * A poller parks on its [`PollWaker`]'s event count only when every
//!   ring it serves is empty and every in-flight arrival is pending.  Ring
//!   pushes raise the waker directly; rendezvous deposits, outcome
//!   publications and poison raise it through the lockstep table's
//!   observer list; ordering-clock turns and expired deadlines are
//!   re-checked from the park condition (the event count's bounded park
//!   turns a missed edge into a poll).
//!
//! [`LockstepTable::try_arrive`]: crate::lockstep::LockstepTable::try_arrive
//! [`LockstepTable::try_arrive_batch`]: crate::lockstep::LockstepTable::try_arrive_batch
//! [`LockstepTable::try_wait_outcome`]: crate::lockstep::LockstepTable::try_wait_outcome
//! [`LockstepTable`]: crate::lockstep::LockstepTable
//! [`AsyncThreadPort`]: crate::async_port::AsyncThreadPort

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;

use mvee_kernel::syscall::{SyscallOutcome, SyscallRequest};
use mvee_sync_agent::guards::EventCount;
use mvee_sync_agent::spsc::DescRing;

use crate::async_port::{Completion, Submission, Ticket};
use crate::divergence::{DivergenceKind, DivergenceReport};
use crate::lockstep::{
    ArrivalResult, ArrivalToken, BatchArrival, BatchToken, OutcomeToken, PollWaker, SlotKey,
    TryArrive, TryBatch, TryOutcome,
};
use crate::monitor::{ArrivalSettle, BatchSettle, Monitor, MonitorError, DEFERRED_SEQ_BIT};
use crate::policy::CallDisposition;

/// The completion signal a pooled port's `Drop` waits on: raised once by
/// the poller after the port's `Close` has flushed trailing comparisons
/// and released the (variant, thread) binding.
#[derive(Debug, Default)]
pub(crate) struct TaskDone {
    finished: AtomicBool,
    events: EventCount,
}

impl TaskDone {
    /// Whether the poller has finished serving (and released) the port.
    pub(crate) fn is_finished(&self) -> bool {
        self.finished.load(Ordering::Acquire)
    }

    /// The event count a dropping port parks on.
    pub(crate) fn events(&self) -> &EventCount {
        &self.events
    }

    fn finish(&self) {
        self.finished.store(true, Ordering::Release);
        self.events.notify_all();
    }
}

/// What [`PollerPool::register`] hands back to a pooled
/// [`AsyncThreadPort`](crate::async_port::AsyncThreadPort): the ring pair
/// the port talks through, the waker of the poller serving it, and the
/// close signal its `Drop` waits on.
pub(crate) struct PortRegistration {
    pub(crate) submissions: Arc<DescRing<Submission>>,
    pub(crate) completions: Arc<DescRing<Completion>>,
    pub(crate) waker: Arc<PollWaker>,
    pub(crate) done: Arc<TaskDone>,
}

/// A fixed pool of polling monitor shards (see the [module docs](self)).
///
/// Built by [`Mvee`](crate::mvee::Mvee) when the transport is
/// `Transport::AsyncRings { pollers: Pollers::Pool(n), .. }`; every pooled
/// async port registers here and is assigned to one of the `n` pollers
/// round-robin.  The pool shuts its pollers down when the last reference —
/// the `Mvee` plus every live pooled port holds one — is dropped.
pub struct PollerPool {
    shards: Vec<ShardHandle>,
    next: AtomicUsize,
}

struct ShardHandle {
    intake: Arc<Intake>,
    waker: Arc<PollWaker>,
    worker: Option<JoinHandle<()>>,
}

/// The registration mailbox between `register` (any thread) and one poller.
#[derive(Default)]
struct Intake {
    new_tasks: Mutex<Vec<PortTask>>,
    shutdown: AtomicBool,
}

impl PollerPool {
    /// Spawns `workers` poller threads serving the given monitor.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero (the builder rejects `Pollers::Pool(0)`
    /// before ever getting here).
    pub(crate) fn new(monitor: &Arc<Monitor>, workers: usize) -> Self {
        assert!(workers > 0, "a polling pool needs at least one worker");
        let shards = (0..workers)
            .map(|k| {
                let intake = Arc::new(Intake::default());
                let waker = Arc::new(PollWaker::new());
                // Rendezvous deposits, outcome publications and poison must
                // wake a parked poller: they are exactly the events that
                // resolve a Pending token.
                monitor.lockstep().register_observer(Arc::clone(&waker));
                let worker = {
                    let monitor = Arc::clone(monitor);
                    let intake = Arc::clone(&intake);
                    let waker = Arc::clone(&waker);
                    std::thread::Builder::new()
                        .name(format!("mvee-poll-{k}"))
                        .spawn(move || serve_shard(&monitor, &intake, &waker))
                        .expect("spawning a poller thread failed")
                };
                ShardHandle {
                    intake,
                    waker,
                    worker: Some(worker),
                }
            })
            .collect();
        PollerPool {
            shards,
            next: AtomicUsize::new(0),
        }
    }

    /// Number of poller threads — the monitor-side thread count under
    /// `Pollers::Pool(n)`, independent of variants×threads.
    pub fn worker_count(&self) -> usize {
        self.shards.len()
    }

    /// Registers a (variant, thread) port with the pool: acquires the
    /// monitor-side binding **on the caller's stack** (so the one-live-port
    /// panic surfaces where the port is created), builds the ring pair and
    /// hands the port task to the next poller round-robin.
    pub(crate) fn register(
        &self,
        monitor: &Arc<Monitor>,
        variant: usize,
        thread: usize,
        depth: usize,
    ) -> PortRegistration {
        let (seq, shard) = monitor.acquire_port(variant, thread);
        let batch = monitor.config().batch;
        let submissions = Arc::new(DescRing::new(depth));
        let completions = Arc::new(DescRing::new(depth));
        let done = Arc::new(TaskDone::default());
        let task = PortTask {
            variant,
            thread,
            shard,
            batch,
            seq,
            pending: Vec::with_capacity(batch),
            submissions: Arc::clone(&submissions),
            completions: Arc::clone(&completions),
            queue: VecDeque::new(),
            outbox: VecDeque::new(),
            state: TaskState::Idle,
            done: Arc::clone(&done),
        };
        let k = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let handle = &self.shards[k];
        handle.intake.new_tasks.lock().push(task);
        handle.waker.raise();
        PortRegistration {
            submissions,
            completions,
            waker: Arc::clone(&handle.waker),
            done,
        }
    }
}

impl Drop for PollerPool {
    fn drop(&mut self) {
        // The last reference is gone: every pooled port has closed (each
        // held an `Arc<PollerPool>`), so the pollers are idle.  Tell them
        // to exit and join.
        for shard in &self.shards {
            shard.intake.shutdown.store(true, Ordering::Release);
            shard.waker.raise();
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

impl std::fmt::Debug for PollerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PollerPool")
            .field("workers", &self.shards.len())
            .finish()
    }
}

/// One poller thread: round-robin over the assigned port tasks, advancing
/// each without ever blocking on any one port's progress, parking only
/// when nothing can move.
fn serve_shard(monitor: &Arc<Monitor>, intake: &Intake, waker: &PollWaker) {
    let waiter = monitor.config().ring_waiter();
    let mut tasks: Vec<PortTask> = Vec::new();
    loop {
        // Snapshot the raise epoch *before* looking at any work, so a raise
        // racing the pass below is caught by the park condition.
        let epoch = waker.epoch();
        tasks.append(&mut intake.new_tasks.lock());
        let mut progressed = false;
        let mut i = 0;
        while i < tasks.len() {
            match advance_task(monitor, &mut tasks[i]) {
                Advance::Finished => {
                    let task = tasks.swap_remove(i);
                    task.done.finish();
                    progressed = true;
                }
                Advance::Progress => {
                    progressed = true;
                    i += 1;
                }
                Advance::Idle => i += 1,
            }
        }
        if progressed {
            continue;
        }
        if intake.shutdown.load(Ordering::Acquire)
            && tasks.is_empty()
            && intake.new_tasks.lock().is_empty()
        {
            return;
        }
        // Everything is pending: park until a raise (ring push, rendezvous
        // deposit/publish, poison, registration, shutdown) or until a
        // deadline or ordering turn demands another pass.  Turn advances
        // and passed deadlines raise no event, but the event count's
        // bounded park re-evaluates this condition periodically, so they
        // degrade to a poll instead of a hang.
        let deadline = tasks.iter().filter_map(PortTask::wait_deadline).min();
        waiter.wait_until_event(waker.events(), || {
            waker.epoch() != epoch
                || intake.shutdown.load(Ordering::Acquire)
                || deadline.is_some_and(|d| Instant::now() >= d)
                || tasks.iter().any(|t| t.wake_ready(monitor))
        });
    }
}

/// What one round-robin visit did with a task.
enum Advance {
    /// The task's `Close` completed: the port binding is released and the
    /// task must be retired.
    Finished,
    /// At least one step moved (submissions drained, a state transition, a
    /// completion posted).
    Progress,
    /// Nothing could move; the task is waiting on peers.
    Idle,
}

/// Drains the task's submission ring and advances its state machine until
/// it can no longer move.
fn advance_task(monitor: &Monitor, task: &mut PortTask) -> Advance {
    let mut progress = task.flush_outbox();
    loop {
        // Quiet pops: one `space` notification per drain burst is enough
        // for a variant parked on a full submission ring, and skips the
        // per-entry notify fence on the poller's hottest loop.
        let mut drained = false;
        while let Some(submission) = task.submissions.try_pop_quiet() {
            task.queue.push_back(submission);
            drained = true;
        }
        if drained {
            progress = true;
            task.submissions.space_events().notify();
        }
        match task.step(monitor) {
            Step::Progress => {
                progress = true;
                task.flush_outbox();
            }
            Step::Blocked => break,
            Step::Finished => {
                task.flush_outbox();
                return Advance::Finished;
            }
        }
    }
    if progress {
        Advance::Progress
    } else {
        Advance::Idle
    }
}

/// Result of one state-machine step.
enum Step {
    /// Something changed (a deposit, a verdict, a completion); step again.
    Progress,
    /// The current wait is still pending (or the queue is empty); move on
    /// to the next task.
    Blocked,
    /// `Close` fully processed; retire the task.
    Finished,
}

/// The in-flight call a pending wait belongs to.
struct CallCtx {
    ticket: Ticket,
    req: SyscallRequest,
    seq: u64,
    disposition: CallDisposition,
}

/// What to do once an in-flight batch flush resolves.
enum AfterFlush {
    /// Resume the pre-flush of a synchronous call (comparison not yet
    /// deposited).
    ThenCall(CallCtx),
    /// Resume the dispatch tail of a deferred call whose comparison rode in
    /// the flushed batch (batch-full flush).
    ThenDispatch(CallCtx),
    /// The flush was an explicit barrier ([`Submission::Flush`]); post its
    /// verdict under this ticket.
    Barrier(Ticket),
    /// The flush was the close-time drain; release the port next.
    ThenClose,
}

/// Where a port task stands in its current submission — the polling mirror
/// of the positions a blocking gateway worker sleeps at.
enum TaskState {
    /// Between submissions.
    Idle,
    /// A deferred-comparison batch is deposited and waiting for peers.
    Flushing {
        token: BatchToken,
        batch: Vec<BatchArrival>,
        next: AfterFlush,
    },
    /// A synchronous lockstep arrival is deposited and waiting for peers.
    AwaitArrival { token: ArrivalToken, call: CallCtx },
    /// A replicated/ordered slave is waiting for the master's published
    /// outcome.
    AwaitOutcome { token: OutcomeToken, call: CallCtx },
    /// An ordered slave holds the master's timestamp and is waiting for its
    /// shard-clock turn.  The deadline was fixed when the turn wait began,
    /// exactly like the blocking path's `wait_until_deadline`.
    AwaitTurn {
        ts: u64,
        deadline: Instant,
        call: CallCtx,
    },
}

/// One port served by a poller: the monitor-side half of a pooled
/// [`AsyncThreadPort`](crate::async_port::AsyncThreadPort), carrying the
/// same per-thread state a blocking gateway worker keeps on its stack.
struct PortTask {
    variant: usize,
    thread: usize,
    /// The shard (stat lane + ordering clock) this thread is bound to.
    shard: usize,
    /// Cached comparison batch size (1 = no deferral).
    batch: usize,
    /// Next per-thread sequence number.
    seq: u64,
    /// Port-local deferred-comparison queue, identical to
    /// [`ThreadPort`](crate::port::ThreadPort)'s.
    pending: Vec<BatchArrival>,
    submissions: Arc<DescRing<Submission>>,
    completions: Arc<DescRing<Completion>>,
    /// Submissions drained from the ring but not yet started (the state
    /// machine runs them strictly in order).
    queue: VecDeque<Submission>,
    /// Completions awaiting space in the completion ring; the poller never
    /// blocks pushing one.
    outbox: VecDeque<Completion>,
    state: TaskState,
    done: Arc<TaskDone>,
}

impl PortTask {
    /// Moves completions from the outbox into the completion ring until it
    /// fills up, waking any parked reaper once per burst: the quiet pushes
    /// skip the per-entry notify fence and the single `ready` notification
    /// after the burst covers everything deposited.
    fn flush_outbox(&mut self) -> bool {
        let mut progress = false;
        while let Some(completion) = self.outbox.pop_front() {
            match self.completions.try_push_quiet(completion) {
                Ok(()) => progress = true,
                Err(back) => {
                    self.outbox.push_front(back);
                    break;
                }
            }
        }
        if progress {
            self.completions.ready_events().notify();
        }
        progress
    }

    fn complete(&mut self, ticket: Ticket, result: Result<SyscallOutcome, MonitorError>) {
        self.outbox.push_back(Completion { ticket, result });
    }

    /// The deadline of the current wait, if any — feeds the poller's park
    /// condition so timeout verdicts fire without an external wake.
    fn wait_deadline(&self) -> Option<Instant> {
        match &self.state {
            TaskState::Idle => None,
            TaskState::Flushing { token, .. } => Some(token.deadline()),
            TaskState::AwaitArrival { token, .. } => Some(token.deadline()),
            TaskState::AwaitOutcome { token, .. } => Some(token.deadline()),
            TaskState::AwaitTurn { deadline, .. } => Some(*deadline),
        }
    }

    /// Whether this task could move right now — the non-edge-triggered half
    /// of the poller's park condition (ring pushes raise the waker, but
    /// ordering-clock turns and completion-ring drains do not).
    fn wake_ready(&self, monitor: &Monitor) -> bool {
        if !self.submissions.is_empty() {
            return true;
        }
        if !self.outbox.is_empty() && !self.completions.is_full() {
            return true;
        }
        match &self.state {
            TaskState::AwaitTurn { ts, .. } => {
                monitor.has_diverged()
                    || monitor.is_quarantined(self.variant)
                    || monitor
                        .ordering_clock(self.variant, self.shard)
                        .try_turn(*ts)
            }
            _ => false,
        }
    }

    /// Advances the state machine by one non-blocking step.
    fn step(&mut self, monitor: &Monitor) -> Step {
        match std::mem::replace(&mut self.state, TaskState::Idle) {
            TaskState::Idle => {
                let Some(submission) = self.queue.pop_front() else {
                    return Step::Blocked;
                };
                match submission {
                    Submission::Call { ticket, req } => self.start_call(monitor, ticket, req),
                    Submission::Flush { ticket } => {
                        self.begin_flush(monitor, AfterFlush::Barrier(ticket))
                    }
                    Submission::Close => self.begin_close(monitor),
                }
            }
            TaskState::Flushing { token, batch, next } => {
                match monitor.lockstep().poll_batch(token) {
                    Ok(results) => self.settle_flush(monitor, batch, results, next),
                    Err(token) => {
                        self.state = TaskState::Flushing { token, batch, next };
                        Step::Blocked
                    }
                }
            }
            TaskState::AwaitArrival { token, call } => {
                match monitor.lockstep().poll_arrival(token) {
                    Ok(result) => self.settle_arrival(monitor, result, call),
                    Err(token) => {
                        self.state = TaskState::AwaitArrival { token, call };
                        Step::Blocked
                    }
                }
            }
            TaskState::AwaitOutcome { token, call } => {
                if monitor.is_quarantined(self.variant) {
                    // The publisher's slot may already be consumed and
                    // reclaimed by the survivors; a quarantined lane must
                    // terminate, not wait out the deadline (outcome tokens
                    // hold no waiter registration to release).
                    self.complete(call.ticket, Err(MonitorError::ShutDown));
                    return Step::Progress;
                }
                if monitor.master_variant() == self.variant {
                    // Mastership failed over to this lane mid-wait: publish
                    // in the dead publisher's stead instead of waiting for
                    // an outcome that will never come.
                    let key: SlotKey = (self.thread, call.seq);
                    return self.master_publish(monitor, call, key);
                }
                match monitor.lockstep().poll_outcome(token) {
                    Ok(resolved) => self.finish_wait(monitor, call, resolved),
                    Err(token) => {
                        self.state = TaskState::AwaitOutcome { token, call };
                        Step::Blocked
                    }
                }
            }
            TaskState::AwaitTurn { ts, deadline, call } => {
                self.try_run_turn(monitor, call, ts, deadline)
            }
        }
    }

    /// Starts a [`Submission::Call`]: the same prologue as
    /// [`ThreadPort::syscall`](crate::port::ThreadPort::syscall), stopping
    /// at the first wait instead of blocking in it.
    fn start_call(&mut self, monitor: &Monitor, ticket: Ticket, req: SyscallRequest) -> Step {
        match monitor.gate_and_count(self.variant, self.thread, self.shard, &req) {
            Ok(None) => {}
            Ok(Some(answered)) => {
                self.complete(ticket, Ok(answered));
                return Step::Progress;
            }
            Err(e) => {
                // The MVEE is shutting down: this port's deferred
                // comparisons will never be flushed; drop them.
                self.pending.clear();
                self.complete(ticket, Err(e));
                return Step::Progress;
            }
        }
        let seq = self.seq;
        self.seq += 1;
        let disposition = monitor.config().policy.disposition(req.no);
        let call = CallCtx {
            ticket,
            req,
            seq,
            disposition,
        };
        let defer = self.batch > 1 && disposition.defer_compare;
        if !defer
            && (disposition.lockstep || disposition.replicate || disposition.ordered)
            && !self.pending.is_empty()
        {
            // Synchronous interaction points resolve the deferred
            // comparisons first, exactly as on the blocking paths.
            return self.begin_flush(monitor, AfterFlush::ThenCall(call));
        }
        self.continue_call(monitor, call)
    }

    /// The comparison stage, entered directly or after a pre-flush.
    fn continue_call(&mut self, monitor: &Monitor, call: CallCtx) -> Step {
        let disposition = call.disposition;
        if disposition.lockstep {
            monitor.count_lockstep(self.shard);
            if self.batch > 1 && disposition.defer_compare {
                monitor.count_batched(self.shard);
                self.pending.push(BatchArrival {
                    key: (self.thread, call.seq | DEFERRED_SEQ_BIT),
                    cmp: call.req.comparison_key(),
                });
                // Mirror the blocking transports' divergence race check: a
                // divergence recorded between the entry gate and this push
                // means the deferred comparison will never be resolved, so
                // the call must not complete `Ok`.
                if monitor.has_diverged() {
                    self.pending.clear();
                    self.complete(call.ticket, Err(MonitorError::ShutDown));
                    return Step::Progress;
                }
                if self.pending.len() >= self.batch {
                    return self.begin_flush(monitor, AfterFlush::ThenDispatch(call));
                }
                return self.dispatch(monitor, call);
            }
            let key: SlotKey = (self.thread, call.seq);
            let timeout = monitor.config().lockstep_timeout;
            return match monitor.lockstep().try_arrive(
                key,
                self.variant,
                call.req.comparison_key(),
                timeout,
            ) {
                TryArrive::Ready(result) => self.settle_arrival(monitor, result, call),
                TryArrive::Pending(token) => {
                    // The deposit itself is progress: a peer may resolve on
                    // it right now.
                    self.state = TaskState::AwaitArrival { token, call };
                    Step::Progress
                }
            };
        }
        self.dispatch(monitor, call)
    }

    /// Resolves a synchronous arrival verdict, re-depositing with a fresh
    /// deadline whenever the monitor quarantines a peer out of the
    /// rendezvous — the poll-mode mirror of `arrive_sync`'s retry loop.
    /// The re-deposit never blocks: a still-pending retry parks the task
    /// back in [`TaskState::AwaitArrival`].
    fn settle_arrival(&mut self, monitor: &Monitor, result: ArrivalResult, call: CallCtx) -> Step {
        let mut result = result;
        loop {
            match monitor.settle_sync_arrival(result, self.variant, self.thread, call.seq) {
                ArrivalSettle::Done => return self.dispatch(monitor, call),
                ArrivalSettle::Fail(e) => {
                    self.complete(call.ticket, Err(e));
                    return Step::Progress;
                }
                ArrivalSettle::Retry => {
                    let key: SlotKey = (self.thread, call.seq);
                    let timeout = monitor.config().lockstep_timeout;
                    match monitor.lockstep().try_rearrive(
                        key,
                        self.variant,
                        call.req.comparison_key(),
                        timeout,
                    ) {
                        TryArrive::Ready(next) => result = next,
                        TryArrive::Pending(token) => {
                            self.state = TaskState::AwaitArrival { token, call };
                            return Step::Progress;
                        }
                    }
                }
            }
        }
    }

    /// Resolves a flushed batch's verdicts, re-presenting the unconsumed
    /// keys of a quarantined peer's rendezvous without blocking — the
    /// poll-mode mirror of `resolve_batch`'s retry loop.
    fn settle_flush(
        &mut self,
        monitor: &Monitor,
        batch: Vec<BatchArrival>,
        results: Vec<ArrivalResult>,
        next: AfterFlush,
    ) -> Step {
        let (mut batch, mut results) = (batch, results);
        loop {
            match monitor.settle_batch_results(self.variant, self.thread, &batch, results) {
                BatchSettle::Done(flushed) => return self.after_flush(monitor, flushed, next),
                BatchSettle::Retry(indices) => {
                    let sub: Vec<BatchArrival> =
                        indices.iter().map(|&i| batch[i].clone()).collect();
                    let timeout = monitor.config().lockstep_timeout;
                    match monitor
                        .lockstep()
                        .try_rearrive_batch(self.variant, &sub, timeout)
                    {
                        TryBatch::Ready(redone) => {
                            batch = sub;
                            results = redone;
                        }
                        TryBatch::Pending(token) => {
                            self.state = TaskState::Flushing {
                                token,
                                batch: sub,
                                next,
                            };
                            return Step::Progress;
                        }
                    }
                }
            }
        }
    }

    /// The gateway tail after any lockstep comparison has been resolved:
    /// replicate, order, or execute directly — the polling mirror of
    /// [`Monitor::dispatch_resolved`](crate::monitor::Monitor).
    fn dispatch(&mut self, monitor: &Monitor, call: CallCtx) -> Step {
        let disposition = call.disposition;
        let key: SlotKey = (self.thread, call.seq);
        if disposition.replicate {
            monitor.count_replicated(self.shard);
            if self.variant == monitor.master_variant() {
                return self.master_publish(monitor, call, key);
            }
            return self.await_outcome(monitor, call, key);
        }
        if disposition.ordered {
            monitor.count_ordered(self.shard);
            if self.variant == monitor.master_variant() {
                return self.master_publish(monitor, call, key);
            }
            return self.await_outcome(monitor, call, key);
        }
        // Neither replicated nor ordered: execute against the variant's own
        // kernel process directly.
        monitor.lockstep().consume(key, self.variant);
        let outcome = monitor.execute_kernel(self.variant, self.thread, &call.req);
        self.complete(call.ticket, Ok(outcome));
        Step::Progress
    }

    /// Master tail of a replicated/ordered call: execute once, publish the
    /// outcome (with the claimed timestamp for ordered calls), done.  The
    /// master lane is the lowest *active* variant, so after a quarantine a
    /// surviving slave can land here mid-call.
    fn master_publish(&mut self, monitor: &Monitor, call: CallCtx, key: SlotKey) -> Step {
        let ts = if call.disposition.ordered {
            Some(
                monitor
                    .ordering_clock(self.variant, self.shard)
                    .claim_timestamp(),
            )
        } else {
            None
        };
        let outcome = monitor.execute_kernel(self.variant, self.thread, &call.req);
        monitor.lockstep().publish_outcome(key, outcome.clone(), ts);
        monitor.lockstep().consume(key, self.variant);
        self.complete(call.ticket, Ok(outcome));
        Step::Progress
    }

    /// Slave side of replicate/order: check for the master's published
    /// outcome without sleeping.
    fn await_outcome(&mut self, monitor: &Monitor, call: CallCtx, key: SlotKey) -> Step {
        match monitor
            .lockstep()
            .try_wait_outcome(key, monitor.config().lockstep_timeout)
        {
            TryOutcome::Ready(resolved) => self.finish_wait(monitor, call, resolved),
            TryOutcome::Pending(token) => {
                self.state = TaskState::AwaitOutcome { token, call };
                Step::Progress
            }
        }
    }

    /// An outcome wait resolved (or timed out / poisoned): the polling
    /// mirror of `run_replicated` / `run_ordered`'s wait tail, with the
    /// identical divergence attribution.
    fn finish_wait(
        &mut self,
        monitor: &Monitor,
        call: CallCtx,
        resolved: Option<(SyscallOutcome, Option<u64>)>,
    ) -> Step {
        let key: SlotKey = (self.thread, call.seq);
        let Some((outcome, ts)) = resolved else {
            if monitor.has_diverged() {
                self.complete(call.ticket, Err(MonitorError::ShutDown));
                return Step::Progress;
            }
            // The slave reached this call but the master never published an
            // outcome for it: name the missing publisher, report the slot's
            // real arrival set.  Under PoisonAll the waiting variant is
            // blamed and the run poisons, byte-identical to the blocking
            // path; under Quarantine the stalled publisher is dropped and
            // this lane either inherits mastership or re-waits on the new
            // master's publication.
            let master = monitor.master_variant();
            if master == self.variant {
                // Mastership already failed over to this lane: publish
                // rather than indict (blaming here would name *itself*).
                return self.master_publish(monitor, call, key);
            }
            let report = DivergenceReport {
                kind: DivergenceKind::ReplicationTimeout {
                    publisher: master,
                    arrived: monitor.lockstep().arrivals(key),
                },
                thread: self.thread,
                sequence: call.seq,
                variant: self.variant,
            };
            return match monitor.fault(self.variant, master, report) {
                ArrivalSettle::Fail(e) => {
                    self.complete(call.ticket, Err(e));
                    Step::Progress
                }
                _ => {
                    if monitor.master_variant() == self.variant {
                        self.master_publish(monitor, call, key)
                    } else {
                        self.await_outcome(monitor, call, key)
                    }
                }
            };
        };
        if call.disposition.replicate {
            monitor.lockstep().consume(key, self.variant);
            self.complete(call.ticket, Ok(outcome));
            return Step::Progress;
        }
        // Ordered slave: the outcome itself is discarded (each variant
        // executes its own copy); the timestamp gates the turn.
        let ts = ts.unwrap_or(0);
        let deadline = Instant::now() + monitor.config().lockstep_timeout;
        self.try_run_turn(monitor, call, ts, deadline)
    }

    /// Ordered slave's turn wait, one poll at a time.
    fn try_run_turn(
        &mut self,
        monitor: &Monitor,
        call: CallCtx,
        ts: u64,
        deadline: Instant,
    ) -> Step {
        // Divergence breaks the wait first, exactly like the blocking
        // path's `has_diverged || turn` condition.  A lane quarantined
        // while parked in a turn wait must bail out the same way: its
        // clock will never advance again, and letting it time out would
        // poison the surviving quorum.
        if monitor.has_diverged() || monitor.is_quarantined(self.variant) {
            self.complete(call.ticket, Err(MonitorError::ShutDown));
            return Step::Progress;
        }
        let clock = monitor.ordering_clock(self.variant, self.shard);
        if clock.try_turn(ts) {
            let key: SlotKey = (self.thread, call.seq);
            let outcome = monitor.execute_kernel(self.variant, self.thread, &call.req);
            clock.advance();
            monitor.lockstep().consume(key, self.variant);
            self.complete(call.ticket, Ok(outcome));
            return Step::Progress;
        }
        if Instant::now() >= deadline {
            let err = monitor.record_divergence(DivergenceReport {
                kind: DivergenceKind::RendezvousTimeout {
                    arrived: vec![self.variant],
                },
                thread: self.thread,
                sequence: call.seq,
                variant: self.variant,
            });
            self.complete(call.ticket, Err(err));
            return Step::Progress;
        }
        self.state = TaskState::AwaitTurn { ts, deadline, call };
        Step::Blocked
    }

    /// Deposits the pending batch without blocking, or resolves `next`
    /// immediately when there is nothing to flush (matching the blocking
    /// flush's empty-queue early return, which counts nothing).
    fn begin_flush(&mut self, monitor: &Monitor, next: AfterFlush) -> Step {
        let batch = std::mem::take(&mut self.pending);
        if batch.is_empty() {
            return self.after_flush(monitor, Ok(()), next);
        }
        monitor.count_batch_flush(self.shard);
        let timeout = monitor.config().lockstep_timeout;
        match monitor
            .lockstep()
            .try_arrive_batch(self.variant, &batch, timeout)
        {
            TryBatch::Ready(results) => self.settle_flush(monitor, batch, results, next),
            TryBatch::Pending(token) => {
                self.state = TaskState::Flushing { token, batch, next };
                Step::Progress
            }
        }
    }

    fn after_flush(
        &mut self,
        monitor: &Monitor,
        flushed: Result<(), MonitorError>,
        next: AfterFlush,
    ) -> Step {
        match next {
            AfterFlush::ThenCall(call) => match flushed {
                Ok(()) => self.continue_call(monitor, call),
                Err(e) => {
                    self.complete(call.ticket, Err(e));
                    Step::Progress
                }
            },
            AfterFlush::ThenDispatch(call) => match flushed {
                Ok(()) => self.dispatch(monitor, call),
                Err(e) => {
                    self.complete(call.ticket, Err(e));
                    Step::Progress
                }
            },
            AfterFlush::Barrier(ticket) => {
                self.complete(ticket, flushed.map(|()| SyscallOutcome::ok(0)));
                Step::Progress
            }
            // A close-time flush failure has already recorded the
            // divergence; `Close` has nowhere to report it, exactly like
            // `ThreadPort`'s drop.
            AfterFlush::ThenClose => self.finish_close(monitor),
        }
    }

    /// Starts [`Submission::Close`]: flush trailing deferred comparisons
    /// (or drop them if the MVEE is poisoned — the table would only answer
    /// `Poisoned`), then release the binding.  Mirrors `ThreadPort::drop`.
    fn begin_close(&mut self, monitor: &Monitor) -> Step {
        if monitor.has_diverged() {
            self.pending.clear();
            return self.finish_close(monitor);
        }
        self.begin_flush(monitor, AfterFlush::ThenClose)
    }

    /// Hands the sequence counter back so a later port continues the key
    /// stream, and retires the task.
    fn finish_close(&mut self, monitor: &Monitor) -> Step {
        monitor.release_port(self.variant, self.thread, self.seq);
        Step::Finished
    }
}
