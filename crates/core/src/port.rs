//! Per-thread syscall handles: the redesigned gateway hot path.
//!
//! The original gateway addressed every call by a raw `(variant, thread)`
//! pair — `Monitor::syscall(variant, thread, req)` re-asserted bounds,
//! re-indexed the per-thread state, bumped a shared atomic sequence counter
//! and locked a mutex-guarded deferred-comparison queue on **every** call.
//! GHUMVEE/ReMon-style monitors bind monitor state to the variant thread
//! once, at attach time; [`ThreadPort`] is that binding.
//!
//! A port is acquired once per (variant, thread) —
//! [`VariantGateway::thread`](crate::mvee::VariantGateway::thread) or
//! [`Mvee::thread_port`](crate::mvee::Mvee::thread_port) — and caches
//! everything the per-call path used to re-derive:
//!
//! * the **shard binding**, resolved through the configured
//!   [`Placement`](crate::config::Placement) policy at acquisition time;
//! * the **sequence counter**, now a plain [`Cell`] instead of a shared
//!   atomic (no cross-thread `fetch_add` traffic);
//! * the agent [`SyncContext`], built once instead of per sync op;
//! * the monitor **stat lane** of its shard;
//! * the **deferred-comparison batch queue**, now a port-local [`RefCell`]
//!   instead of a monitor-side mutex — the queue was always logically
//!   thread-local, and the port makes that ownership a type-level fact.
//!
//! That last point is why `ThreadPort` is deliberately `Send + !Sync`: the
//! handle may move to the OS thread that runs the logical thread, but two
//! OS threads can never share one, so the queue and counter need no
//! synchronization at all.  The monitor enforces the other half of the
//! contract at acquisition time: at most one live port per (variant,
//! thread) (a second acquisition panics), and the sequence counter is
//! handed back on drop so a later port — or the legacy index path — resumes
//! the same rendezvous key stream.
//!
//! ```compile_fail
//! // ThreadPort is !Sync by design: the deferred batch queue is owned by
//! // exactly one OS thread.
//! fn require_sync<T: Sync>() {}
//! require_sync::<mvee_core::port::ThreadPort>();
//! ```

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use mvee_kernel::syscall::{SyscallOutcome, SyscallRequest};
use mvee_sync_agent::context::{SyncContext, VariantRole};
use mvee_sync_agent::SyncAgent;

use crate::lockstep::BatchArrival;
use crate::monitor::{Monitor, MonitorError, DEFERRED_SEQ_BIT};

/// A per-(variant, thread) syscall handle.
///
/// Acquired once (see the [module docs](self)); every monitored call and
/// sync-op bracket of that logical thread then goes through the port.  The
/// port is `Send` (move it into the OS thread that runs the logical thread)
/// but `!Sync` (it owns unsynchronized per-thread state).
///
/// Dropping the port releases the (variant, thread) binding and hands the
/// sequence counter back to the monitor, so ports can be re-acquired across
/// phases of a workload.
pub struct ThreadPort {
    monitor: Arc<Monitor>,
    agent: Arc<dyn SyncAgent>,
    /// The agent context, built once at acquisition.
    ctx: SyncContext,
    variant: usize,
    thread: usize,
    /// The shard (and stat lane) this thread's monitor state is bound to,
    /// resolved through the placement policy at acquisition time.
    shard: usize,
    /// Cached comparison batch size (1 = no deferral).
    batch: usize,
    /// Next per-thread sequence number; plain `Cell`, this port is the only
    /// writer.
    seq: Cell<u64>,
    /// Port-local deferred-comparison queue (see the module docs).
    pending: RefCell<Vec<BatchArrival>>,
}

impl ThreadPort {
    /// Binds a port to (variant, thread).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or if a live `ThreadPort` already
    /// owns this (variant, thread).
    pub(crate) fn new(
        monitor: Arc<Monitor>,
        agent: Arc<dyn SyncAgent>,
        variant: usize,
        thread: usize,
    ) -> Self {
        let (seq, shard) = monitor.acquire_port(variant, thread);
        let batch = monitor.config().batch;
        ThreadPort {
            ctx: SyncContext::new(VariantRole::from_variant_index(variant), thread),
            agent,
            variant,
            thread,
            shard,
            batch,
            seq: Cell::new(seq),
            pending: RefCell::new(Vec::with_capacity(batch)),
            monitor,
        }
    }

    /// Zero-based variant index (0 is the master).
    pub fn variant_index(&self) -> usize {
        self.variant
    }

    /// Logical thread index within the variant.
    pub fn thread_index(&self) -> usize {
        self.thread
    }

    /// The shard this thread's rendezvous/ordering/stat state is bound to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The variant's replication role.
    pub fn role(&self) -> VariantRole {
        self.ctx.role
    }

    /// Whether this port belongs to the master variant.
    pub fn is_master(&self) -> bool {
        self.variant == 0
    }

    /// The agent context this port passes on every sync op.
    pub fn sync_context(&self) -> &SyncContext {
        &self.ctx
    }

    /// Direct access to the injected synchronization agent.
    pub fn agent(&self) -> &Arc<dyn SyncAgent> {
        &self.agent
    }

    /// The monitor this port issues calls against.
    pub fn monitor(&self) -> &Arc<Monitor> {
        &self.monitor
    }

    /// Whether the MVEE has shut down due to divergence.
    pub fn is_shut_down(&self) -> bool {
        self.monitor.has_diverged()
    }

    /// Deferred comparisons queued in this port, awaiting the next flush.
    pub fn pending_comparisons(&self) -> usize {
        self.pending.borrow().len()
    }

    /// Issues a system call on behalf of this port's logical thread.
    ///
    /// Semantically identical to the legacy
    /// [`Monitor::syscall`](crate::monitor::Monitor::syscall) for this
    /// (variant, thread) — same rendezvous keys, same verdicts, same stats —
    /// but the per-call index math, the shared sequence counter and the
    /// deferred-queue mutex are gone.
    pub fn syscall(&self, req: &SyscallRequest) -> Result<SyscallOutcome, MonitorError> {
        let monitor = &*self.monitor;
        match monitor.gate_and_count(self.variant, self.thread, self.shard, req) {
            Ok(None) => {}
            Ok(Some(answered)) => return Ok(answered),
            Err(e) => {
                // The MVEE is shutting down: this port's deferred
                // comparisons will never be flushed; drop them.
                self.pending.borrow_mut().clear();
                return Err(e);
            }
        }

        let seq = self.seq.get();
        self.seq.set(seq + 1);
        let key = (self.thread, seq);

        let disposition = monitor.config().policy.disposition(req.no);
        let defer = self.batch > 1 && disposition.defer_compare;

        // Synchronous interaction points resolve the deferred comparisons
        // first, exactly as on the legacy path: comparisons stay in
        // per-thread program order, and no replicated result is handed out
        // while an earlier comparison is still pending.
        if !defer && (disposition.lockstep || disposition.replicate || disposition.ordered) {
            self.flush()?;
        }

        if disposition.lockstep {
            monitor.count_lockstep(self.shard);
            if defer {
                monitor.count_batched(self.shard);
                let full = {
                    let mut pending = self.pending.borrow_mut();
                    pending.push(BatchArrival {
                        key: (self.thread, seq | DEFERRED_SEQ_BIT),
                        cmp: req.comparison_key(),
                    });
                    pending.len() >= self.batch
                };
                // Mirror the legacy divergence race check: a divergence
                // recorded elsewhere between the entry gate and this push
                // means the deferred comparison will never be resolved, so
                // the call must not return `Ok`.  The queue is local, so
                // unlike the legacy path there is nothing to leak — just
                // drop it and shut down.
                if monitor.has_diverged() {
                    self.pending.borrow_mut().clear();
                    return Err(MonitorError::ShutDown);
                }
                if full {
                    self.flush()?;
                }
            } else {
                monitor.arrive_sync(key, self.variant, self.thread, seq, req)?;
            }
        }

        monitor.dispatch_resolved(
            self.variant,
            self.thread,
            seq,
            self.shard,
            key,
            disposition,
            req,
        )
    }

    /// Flushes this port's deferred comparisons, if any: deposits them as
    /// one batched rendezvous block and turns the first non-consistent
    /// per-key result into the divergence it proves.
    ///
    /// Called automatically on batch-full, before any synchronous monitored
    /// call and at every replication point
    /// ([`before_sync_op`](Self::before_sync_op)); public so workloads with
    /// out-of-band quiescence points can force resolution early.
    pub fn flush(&self) -> Result<(), MonitorError> {
        let batch = std::mem::take(&mut *self.pending.borrow_mut());
        if batch.is_empty() {
            return Ok(());
        }
        self.monitor
            .resolve_batch(self.variant, self.thread, self.shard, &batch)
    }

    /// Brackets the *start* of a sync op: flushes this port's deferred
    /// comparisons (a replication point must never overtake a pending
    /// comparison), then enters the agent.
    ///
    /// On the legacy path the flush happened through the replication hook
    /// the front end installs on the agent; the port performs it inline —
    /// same position in the call stream, no hook indirection.
    pub fn before_sync_op(&self, addr: u64) {
        if !self.pending.borrow().is_empty() {
            // A flush failure has already recorded the divergence and
            // poisoned table + agent; the thread learns about it at its next
            // monitored call, exactly like the hook-based path.
            let _ = self.flush();
        }
        self.agent.before_sync_op(&self.ctx, addr);
    }

    /// Brackets the end of a sync op.
    pub fn after_sync_op(&self, addr: u64) {
        self.agent.after_sync_op(&self.ctx, addr);
    }

    /// Convenience: brackets `op` between [`before_sync_op`]
    /// (Self::before_sync_op) and [`after_sync_op`](Self::after_sync_op).
    pub fn sync_op<T>(&self, addr: u64, op: impl FnOnce() -> T) -> T {
        self.before_sync_op(addr);
        let result = op();
        self.after_sync_op(addr);
        result
    }
}

impl Drop for ThreadPort {
    fn drop(&mut self) {
        // Ports are advertised as re-acquirable "across phases of a
        // workload", so a drop is *not* evidence of shutdown: a thread may
        // hand its port back mid-run with compare-only calls still
        // deferred, and silently discarding them would let those calls
        // return `Ok` without ever being compared — a missed-divergence
        // window.  Flush them here; the peers' equivalent drops (or their
        // next synchronous calls) meet the batch in the rendezvous table
        // exactly as an inline flush would.  A flush failure has already
        // recorded the divergence, and `Drop` has nowhere to report the
        // error anyway — the next monitored call returns `ShutDown`.
        //
        // Only a poisoned MVEE drops the queue outright: the table would
        // answer `Poisoned` and the variants are terminating.
        if self.monitor.has_diverged() {
            self.pending.borrow_mut().clear();
        } else {
            let _ = self.flush();
        }
        // Hand the sequence counter back so a later port (or the legacy
        // path) continues the key stream.
        self.monitor
            .release_port(self.variant, self.thread, self.seq.get());
    }
}

impl std::fmt::Debug for ThreadPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPort")
            .field("variant", &self.variant)
            .field("thread", &self.thread)
            .field("shard", &self.shard)
            .field("batch", &self.batch)
            .field("seq", &self.seq.get())
            .field("pending", &self.pending.borrow().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Placement;
    use crate::mvee::Mvee;
    use crate::policy::MonitoringPolicy;
    use mvee_kernel::syscall::Sysno;

    fn assert_send<T: Send>() {}

    #[test]
    fn thread_port_is_send() {
        // The compile_fail doctest in the module docs pins !Sync; this pins
        // the Send half of the contract.
        assert_send::<ThreadPort>();
    }

    #[test]
    fn port_answers_self_awareness_with_the_variant_index() {
        let mvee = Mvee::builder().variants(3).manual_clock(true).build();
        for v in 0..3 {
            let port = mvee.thread_port(v, 0);
            let out = port
                .syscall(&SyscallRequest::new(Sysno::MveeSelfAware))
                .unwrap();
            assert_eq!(out.result, Ok(v as i64));
        }
        assert_eq!(mvee.monitor_stats().self_aware_queries, 3);
    }

    #[test]
    fn acquiring_a_second_live_port_panics() {
        let mvee = Mvee::builder().variants(1).manual_clock(true).build();
        let _port = mvee.thread_port(0, 0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _second = mvee.thread_port(0, 0);
        }));
        assert!(result.is_err(), "second acquisition must panic");
    }

    #[test]
    fn dropping_a_port_hands_the_sequence_back() {
        let mvee = Mvee::builder().variants(1).manual_clock(true).build();
        {
            let port = mvee.thread_port(0, 0);
            port.syscall(&SyscallRequest::new(Sysno::Getpid)).unwrap();
            port.syscall(&SyscallRequest::new(Sysno::Getpid)).unwrap();
        }
        // Re-acquired port continues the sequence: the monitor's total count
        // keeps growing and no rendezvous key is ever reused (a reuse would
        // corrupt the lockstep table; with one variant it would still show
        // up as a bogus mismatch against the slot's stale key).
        let port = mvee.thread_port(0, 0);
        port.syscall(&SyscallRequest::new(Sysno::Getpid)).unwrap();
        assert_eq!(mvee.monitor_stats().total_syscalls, 3);
    }

    #[test]
    fn port_batches_and_flushes_like_the_legacy_path() {
        let mvee = Mvee::builder()
            .variants(2)
            .batch(8)
            .manual_clock(true)
            .build();
        let mut handles = Vec::new();
        for v in 0..2 {
            let port = mvee.thread_port(v, 0);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2 {
                    port.syscall(&SyscallRequest::new(Sysno::Brk).with_int(0))
                        .unwrap();
                }
                assert_eq!(port.pending_comparisons(), 2);
                // The sync op is a replication point: the port flushes
                // inline before entering the agent.
                port.sync_op(0x1000, || ());
                assert_eq!(port.pending_comparisons(), 0);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = mvee.monitor_stats();
        assert_eq!(stats.batched_comparisons, 4);
        assert_eq!(stats.batch_flushes, 2, "one flush per variant");
        assert!(!mvee.monitor().has_diverged());
    }

    #[test]
    fn port_shard_binding_follows_the_placement_policy() {
        // Grouped blocks scale to the *workload's* 8 threads, not the
        // 64-slot table capacity: blocks of two threads per shard.
        let mvee = Mvee::builder()
            .variants(1)
            .threads(8)
            .shards(4)
            .placement(Placement::Grouped)
            .manual_clock(true)
            .build();
        let a = mvee.thread_port(0, 0);
        assert_eq!(a.shard(), 0);
        drop(a);
        let b = mvee.thread_port(0, 1);
        assert_eq!(b.shard(), 0, "contiguous threads share a shard");
        drop(b);
        let c = mvee.thread_port(0, 2);
        assert_eq!(c.shard(), 1);
        drop(c);
        let d = mvee.thread_port(0, 7);
        assert_eq!(d.shard(), 3, "the 8 threads cover all 4 shards");
    }

    #[test]
    fn port_detects_divergence_like_the_index_path() {
        let mvee = Mvee::builder()
            .variants(2)
            .manual_clock(true)
            .lockstep_timeout(std::time::Duration::from_millis(200))
            .build();
        let master = mvee.thread_port(0, 0);
        let slave = mvee.thread_port(1, 0);
        let s = std::thread::spawn(move || {
            slave.syscall(
                &SyscallRequest::new(Sysno::Write)
                    .with_fd(1)
                    .with_payload(b"evil"),
            )
        });
        let m = master.syscall(
            &SyscallRequest::new(Sysno::Write)
                .with_fd(1)
                .with_payload(b"good"),
        );
        let s = s.join().unwrap();
        assert!(m.is_err() || s.is_err());
        assert!(mvee.monitor().has_diverged());
        assert!(master.is_shut_down());
        // Later calls through the port are rejected.
        assert_eq!(
            master.syscall(&SyscallRequest::new(Sysno::SchedYield)),
            Err(MonitorError::ShutDown)
        );
    }

    #[test]
    fn dropping_a_port_flushes_pending_comparisons() {
        // Regression: drop used to clear the pending queue outright,
        // silently discarding deferred comparisons even though ports are
        // documented as re-acquirable across workload phases — a
        // missed-divergence window.  Here each variant defers one
        // *mismatched* compare-only call and then drops its port mid-phase:
        // the drop-flush must rendezvous and catch the mismatch.
        let mvee = Mvee::builder()
            .variants(2)
            .batch(8)
            .manual_clock(true)
            .lockstep_timeout(std::time::Duration::from_secs(5))
            .build();
        let mut handles = Vec::new();
        for v in 0..2 {
            let port = mvee.thread_port(v, 0);
            handles.push(std::thread::spawn(move || {
                let len = if v == 0 { 4096 } else { 666 };
                let r = port.syscall(&SyscallRequest::new(Sysno::Mprotect).with_int(len));
                assert!(
                    r.is_ok(),
                    "the compare-only call is deferred, not compared yet"
                );
                assert_eq!(port.pending_comparisons(), 1);
                drop(port); // end of phase: must flush, not discard
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let report = mvee
            .divergence()
            .expect("the drop-flush must detect the deferred mismatch");
        assert!(matches!(
            report.kind,
            crate::divergence::DivergenceKind::SyscallMismatch { .. }
        ));
        assert_eq!(report.variant, 1);
        assert_eq!(report.sequence, 0);
        // The next phase's re-acquired port observes the shutdown.
        let port = mvee.thread_port(0, 0);
        assert_eq!(
            port.syscall(&SyscallRequest::new(Sysno::SchedYield)),
            Err(MonitorError::ShutDown)
        );
    }

    #[test]
    fn clean_drop_flushes_and_the_next_phase_continues() {
        // The matching-comparison half of the drop-flush contract: trailing
        // deferred comparisons are resolved (counted as a flush), nothing
        // diverges, and the next phase re-acquires cleanly.
        let mvee = Mvee::builder()
            .variants(2)
            .batch(8)
            .manual_clock(true)
            .build();
        for phase in 0..2 {
            let mut handles = Vec::new();
            for v in 0..2 {
                let port = mvee.thread_port(v, 0);
                handles.push(std::thread::spawn(move || {
                    let calls = if phase == 0 { 2 } else { 1 };
                    for _ in 0..calls {
                        port.syscall(&SyscallRequest::new(Sysno::Brk).with_int(0))
                            .unwrap();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        }
        let stats = mvee.monitor_stats();
        assert!(!mvee.monitor().has_diverged());
        assert_eq!(stats.batched_comparisons, 6);
        assert_eq!(stats.batch_flushes, 4, "one flush per variant per phase");
        assert_eq!(mvee.monitor().live_deferred(), 0);
    }

    #[test]
    fn port_under_relaxed_policy_skips_lockstep() {
        let mvee = Mvee::builder()
            .variants(1)
            .policy(MonitoringPolicy::NoComparison)
            .manual_clock(true)
            .build();
        let port = mvee.thread_port(0, 0);
        port.syscall(&SyscallRequest::new(Sysno::Brk).with_int(0))
            .unwrap();
        let stats = mvee.monitor_stats();
        assert_eq!(stats.lockstep_syscalls, 0);
        assert_eq!(stats.ordered_syscalls, 1);
    }
}
