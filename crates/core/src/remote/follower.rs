//! The follower monitor: consumes the leader's frame stream, drives the
//! in-proc rendezvous machinery on the leader's behalf, compares
//! asynchronously and acknowledges progress.
//!
//! [`Follower::spawn`] starts two threads over the follower end of a
//! [`Duplex`]:
//!
//! * a **reader** that decodes frames off the channel into an inbox (it
//!   never touches monitor state, so a slow rendezvous cannot back up the
//!   raw byte stream), and
//! * a **pump** that applies the records: counter records
//!   ([`Enter`](WireRecord::Enter), [`Class`](WireRecord::Class),
//!   [`SyncOp`](WireRecord::SyncOp)) update the monitor's stat lanes
//!   directly, while rendezvous records ([`Arrive`](WireRecord::Arrive),
//!   [`Batch`](WireRecord::Batch), [`Publish`](WireRecord::Publish)) are
//!   queued per leader thread and deposited into the
//!   [`LockstepTable`](crate::lockstep::LockstepTable) as variant 0 —
//!   through the same non-blocking try/poll interface and the same verdict
//!   mappers the polling shards use, so a remote run's divergence reports
//!   are field-identical to an in-proc run's.
//!
//! The pump acknowledges the longest *contiguous* prefix of fully
//! processed frames.  A synchronous arrival acks only once its rendezvous
//! resolved — that ack is what unblocks the leader, making the leader
//! block exactly where the in-proc master blocks.  Deferred batches ack at
//! resolution too, but the leader never waits for those watermarks, so
//! comparison stays asynchronous; the distance it ran ahead (measured in
//! leader sync ops) is recorded as the divergence-detection lag when a
//! deferred comparison turns out to diverge.
//!
//! The pump never blocks on any single rendezvous: per-thread queues
//! advance independently, and the pump parks on a [`PollWaker`] registered
//! with the table — a slave deposit, an outcome publication, poison, a new
//! frame, or an abort all wake it.
//!
//! If the stream dies (torn connection, garbage, leader gone without
//! [`Bye`](WireRecord::Bye)) the pump records a typed [`PeerFailure`]
//! naming the leader and poisons the rendezvous table so every in-proc
//! slave thread unblocks promptly.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;

use mvee_kernel::syscall::{ComparisonKey, SyscallOutcome};

use crate::frame::{FrameReader, ReadFrameError};
use crate::lockstep::{ArrivalToken, BatchArrival, BatchToken, PollWaker, TryArrive, TryBatch};
use crate::monitor::{Monitor, MonitorError};
use crate::remote::transport::Duplex;
use crate::remote::wire::WireRecord;
use crate::remote::{PeerFailure, PeerFailureKind, RemotePeer};

/// Namespace for [`Follower::spawn`].
#[derive(Debug)]
pub struct Follower;

/// Handle to a running follower: fault inspection, abort, and join-on-drop.
///
/// Drop order contract: close the leader end of the channel (or let
/// [`RemoteLeader`](crate::remote::RemoteLeader) drop) **before** dropping
/// this handle — the reader thread unblocks only when the leader's write
/// half closes.
#[derive(Debug)]
pub struct FollowerHandle {
    fault: Arc<Mutex<Option<PeerFailure>>>,
    stop: Arc<AtomicBool>,
    waker: Arc<PollWaker>,
    reader: Option<JoinHandle<()>>,
    pump: Option<JoinHandle<()>>,
}

impl Follower {
    /// Starts the reader and pump threads over the follower end of a
    /// replication channel, applying the stream to `monitor`.
    pub fn spawn(monitor: Arc<Monitor>, duplex: Duplex) -> FollowerHandle {
        let (rx, tx) = duplex.into_split();
        let fault = Arc::new(Mutex::new(None));
        let stop = Arc::new(AtomicBool::new(false));
        let waker = Arc::new(PollWaker::new());
        let inbox = Arc::new(Inbox {
            queue: Mutex::new(VecDeque::new()),
            reader_done: AtomicBool::new(false),
        });
        let reader = {
            let inbox = Arc::clone(&inbox);
            let fault = Arc::clone(&fault);
            let waker = Arc::clone(&waker);
            std::thread::Builder::new()
                .name("mvee-follower-rx".into())
                .spawn(move || read_leader_stream(rx, &inbox, &fault, &waker))
                .expect("spawning the follower reader thread failed")
        };
        let pump = {
            let fault = Arc::clone(&fault);
            let stop = Arc::clone(&stop);
            let waker = Arc::clone(&waker);
            std::thread::Builder::new()
                .name("mvee-follower-pump".into())
                .spawn(move || Pump::new(monitor, tx, inbox, fault, stop, waker).run())
                .expect("spawning the follower pump thread failed")
        };
        FollowerHandle {
            fault,
            stop,
            waker,
            reader: Some(reader),
            pump: Some(pump),
        }
    }
}

impl FollowerHandle {
    /// The channel failure the follower observed, if any.
    pub fn fault(&self) -> Option<PeerFailure> {
        *self.fault.lock()
    }

    /// Asks the pump to stop at its next pass — simulating follower death
    /// for the fault tests.  The pump poisons the rendezvous table and
    /// closes its write half on the way out, so the leader observes EOF.
    pub fn abort(&self) {
        self.stop.store(true, Ordering::Release);
        self.waker.raise();
    }
}

impl Drop for FollowerHandle {
    fn drop(&mut self) {
        if let Some(pump) = self.pump.take() {
            let _ = pump.join();
        }
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// Decoded frames handed from the reader to the pump.
struct Inbox {
    queue: Mutex<VecDeque<WireRecord>>,
    reader_done: AtomicBool,
}

fn set_fault(fault: &Mutex<Option<PeerFailure>>, waker: &PollWaker, kind: PeerFailureKind) {
    let mut slot = fault.lock();
    if slot.is_none() {
        *slot = Some(PeerFailure {
            peer: RemotePeer::Leader,
            kind,
        });
    }
    drop(slot);
    waker.raise();
}

/// The reader thread: frames off the wire into the inbox, nothing else.
fn read_leader_stream(
    rx: Box<dyn Read + Send>,
    inbox: &Inbox,
    fault: &Mutex<Option<PeerFailure>>,
    waker: &PollWaker,
) {
    let mut frames = FrameReader::new(rx);
    loop {
        match frames.read_frame() {
            Ok(Some(body)) => match WireRecord::decode(body) {
                Ok(record) => {
                    let is_bye = matches!(record, WireRecord::Bye);
                    inbox.queue.lock().push_back(record);
                    waker.raise();
                    if is_bye {
                        // The leader closes its write half after `Bye`;
                        // stop here rather than read the EOF.
                        break;
                    }
                }
                Err(_) => {
                    set_fault(fault, waker, PeerFailureKind::Corrupt);
                    break;
                }
            },
            // EOF at a frame boundary without a `Bye`: the leader vanished.
            Ok(None) => {
                set_fault(fault, waker, PeerFailureKind::Disconnected);
                break;
            }
            Err(ReadFrameError::Io(_)) => {
                set_fault(fault, waker, PeerFailureKind::Disconnected);
                break;
            }
            // Truncated / oversized / CRC-mismatching frame.
            Err(_) => {
                set_fault(fault, waker, PeerFailureKind::Corrupt);
                break;
            }
        }
    }
    inbox.reader_done.store(true, Ordering::Release);
    waker.raise();
}

/// A rendezvous record queued behind its thread's earlier records.
enum LaneOp {
    Arrive {
        stat_lane: usize,
        seq: u64,
        will_publish: bool,
        cmp: ComparisonKey,
    },
    Batch {
        stat_lane: usize,
        calls: Vec<(u64, ComparisonKey)>,
    },
    Publish {
        seq: u64,
        timestamp: Option<u64>,
        outcome: SyscallOutcome,
    },
}

/// A deposited rendezvous awaiting peers.
struct Pending {
    /// Stream index of the frame; acked once the rendezvous resolves.
    index: u64,
    /// Leader sync ops ingested when this record was *ingested* — the
    /// baseline the detection-lag metric measures from.  Ingest time, not
    /// deposit time: the leader had already executed the call when the
    /// record entered the stream, so lane-FIFO queueing counts as lag too.
    sync_ops_at_ingest: u64,
    op: PendingOp,
}

enum PendingOp {
    Arrive {
        token: ArrivalToken,
        seq: u64,
        will_publish: bool,
        stat_lane: usize,
        /// Kept for quarantine retries: a re-deposit after a peer is
        /// dropped from the quorum presents the same key again.
        cmp: ComparisonKey,
    },
    Batch {
        token: BatchToken,
        batch: Vec<BatchArrival>,
        stat_lane: usize,
    },
}

impl Pending {
    fn deadline(&self) -> Instant {
        match &self.op {
            PendingOp::Arrive { token, .. } => token.deadline(),
            PendingOp::Batch { token, .. } => token.deadline(),
        }
    }
}

/// One leader thread's rendezvous stream: strictly FIFO — the next record
/// deposits only once the previous one resolved, mirroring the in-proc
/// master's program order (it blocks through a flush before arriving, and
/// through an arrival before publishing).
struct Lane {
    thread: usize,
    /// Queued records: (stream index, sync ops ingested at ingest, op).
    queue: VecDeque<(u64, u64, LaneOp)>,
    pending: Option<Pending>,
}

impl Lane {
    fn idle(&self) -> bool {
        self.queue.is_empty() && self.pending.is_none()
    }
}

/// The pump thread state (see the [module docs](self)).
struct Pump {
    monitor: Arc<Monitor>,
    tx: Option<Box<dyn Write + Send>>,
    inbox: Arc<Inbox>,
    fault: Arc<Mutex<Option<PeerFailure>>>,
    stop: Arc<AtomicBool>,
    waker: Arc<PollWaker>,
    /// Stream index assigned to the next ingested record.
    next_index: u64,
    /// Fully processed records not yet covered by `acked`.
    resolved: BTreeSet<u64>,
    /// Longest contiguous prefix of processed records (= the ack value).
    acked: u64,
    lanes: HashMap<u32, Lane>,
    /// Leader sync ops ingested so far — the detection-lag clock.
    sync_ops_seen: u64,
    hello_seen: bool,
    saw_bye: bool,
    verdict_sent: bool,
}

impl Pump {
    fn new(
        monitor: Arc<Monitor>,
        tx: Box<dyn Write + Send>,
        inbox: Arc<Inbox>,
        fault: Arc<Mutex<Option<PeerFailure>>>,
        stop: Arc<AtomicBool>,
        waker: Arc<PollWaker>,
    ) -> Pump {
        Pump {
            monitor,
            tx: Some(tx),
            inbox,
            fault,
            stop,
            waker,
            next_index: 0,
            resolved: BTreeSet::new(),
            acked: 0,
            lanes: HashMap::new(),
            sync_ops_seen: 0,
            hello_seen: false,
            saw_bye: false,
            verdict_sent: false,
        }
    }

    fn run(mut self) {
        self.monitor
            .lockstep()
            .register_observer(Arc::clone(&self.waker));
        let waiter = self.monitor.config().ring_waiter();
        loop {
            // Snapshot the raise epoch before looking at any work, so a
            // raise racing this pass is caught by the park condition.
            let epoch = self.waker.epoch();
            let mut progressed = self.ingest();
            progressed |= self.advance_lanes();
            if !self.verdict_sent {
                if let Some(report) = self.monitor.divergence() {
                    self.send(&WireRecord::Verdict { report });
                    self.verdict_sent = true;
                }
            }
            let mut ack_advanced = false;
            while self.resolved.remove(&self.acked) {
                self.acked += 1;
                ack_advanced = true;
            }
            if ack_advanced {
                let through = self.acked;
                self.send(&WireRecord::Ack { through });
            }
            if self.stop.load(Ordering::Acquire) || self.fault.lock().is_some() {
                break;
            }
            if self.inbox.reader_done.load(Ordering::Acquire)
                && self.inbox.queue.lock().is_empty()
                && self.lanes.values().all(Lane::idle)
            {
                break;
            }
            if progressed || ack_advanced {
                continue;
            }
            let deadline = self
                .lanes
                .values()
                .filter_map(|lane| lane.pending.as_ref().map(Pending::deadline))
                .min();
            // Turn advances and passed deadlines raise no event, but the
            // event count's bounded park re-evaluates this condition
            // periodically, so a missed deadline degrades to a poll.
            waiter.wait_until_event(self.waker.events(), || {
                self.waker.epoch() != epoch
                    || self.stop.load(Ordering::Acquire)
                    || !self.inbox.queue.lock().is_empty()
                    || deadline.is_some_and(|d| Instant::now() >= d)
            });
        }
        // Anything short of a clean `Bye` means in-proc slave threads may
        // still be parked waiting on leader arrivals that will never come.
        if self.fault.lock().is_some() || !self.saw_bye || self.stop.load(Ordering::Acquire) {
            if !self.quarantine_wire_lane() {
                self.monitor.lockstep().poison();
            }
        } else {
            self.send(&WireRecord::Bye);
        }
        // Dropping the write half is the leader's EOF.
        self.tx = None;
    }

    /// Under [`RecoveryPolicy::Quarantine`](crate::config::RecoveryPolicy),
    /// a dead replication peer is a dead *variant*, not a dead run: the
    /// wire-attached lane (variant 0, whose rendezvous evidence arrived
    /// over this channel) is dropped from the quorum and the in-proc
    /// survivors keep serving degraded, exactly as they would had the
    /// variant died locally.  Returns `false` when the policy — or the
    /// quorum floor, in which case `fault` has already poisoned — says the
    /// failure must end the run instead.
    fn quarantine_wire_lane(&self) -> bool {
        use crate::config::RecoveryPolicy;
        if !matches!(
            self.monitor.config().recovery,
            RecoveryPolicy::Quarantine { .. }
        ) {
            return false;
        }
        let report = crate::divergence::DivergenceReport {
            kind: crate::divergence::DivergenceKind::ReplicationTimeout {
                publisher: 0,
                arrived: Vec::new(),
            },
            thread: 0,
            sequence: self.sync_ops_seen,
            variant: 0,
        };
        matches!(
            self.monitor.fault(1, 0, report),
            crate::monitor::ArrivalSettle::Retry
        )
    }

    /// Drains the inbox, counting counter records immediately and queueing
    /// rendezvous records on their thread's lane.  Returns whether any
    /// record was ingested.
    fn ingest(&mut self) -> bool {
        let drained: Vec<WireRecord> = {
            let mut queue = self.inbox.queue.lock();
            queue.drain(..).collect()
        };
        let mut progressed = false;
        for record in drained {
            progressed = true;
            let index = self.next_index;
            self.next_index += 1;
            if !self.hello_seen {
                match record {
                    WireRecord::Hello {
                        variants,
                        threads,
                        shards,
                        batch,
                    } => {
                        let config = self.monitor.config();
                        let matches = usize::from(variants) == config.variants
                            && threads as usize == config.workload_threads
                            && usize::from(shards) == self.monitor.shard_count()
                            && usize::from(batch) == config.batch;
                        if !matches {
                            set_fault(&self.fault, &self.waker, PeerFailureKind::Corrupt);
                            return progressed;
                        }
                        self.hello_seen = true;
                        self.resolved.insert(index);
                        continue;
                    }
                    // Any stream that does not open with a matching Hello
                    // is not a leader stream.
                    _ => {
                        set_fault(&self.fault, &self.waker, PeerFailureKind::Corrupt);
                        return progressed;
                    }
                }
            }
            match record {
                WireRecord::Enter {
                    thread,
                    lane,
                    self_aware,
                } => {
                    self.monitor
                        .count_enter(0, thread as usize, lane as usize, self_aware);
                    self.resolved.insert(index);
                }
                WireRecord::Class { kind, lane } => {
                    use crate::journal::ClassKind;
                    let lane = lane as usize;
                    match kind {
                        ClassKind::Lockstep => self.monitor.count_lockstep(lane),
                        ClassKind::Batched => self.monitor.count_batched(lane),
                        ClassKind::Replicated => self.monitor.count_replicated(lane),
                        ClassKind::Ordered => self.monitor.count_ordered(lane),
                        ClassKind::BatchFlush => self.monitor.count_batch_flush(lane),
                    }
                    self.resolved.insert(index);
                }
                WireRecord::SyncOp { .. } => {
                    self.sync_ops_seen += 1;
                    self.resolved.insert(index);
                }
                WireRecord::Barrier => {
                    // Nothing to apply: the contiguous-prefix ack rule means
                    // this index is acknowledged only once every earlier
                    // frame fully resolved — the quiescence point.
                    self.resolved.insert(index);
                }
                WireRecord::Bye => {
                    self.saw_bye = true;
                    self.resolved.insert(index);
                }
                WireRecord::Arrive {
                    thread,
                    lane,
                    seq,
                    will_publish,
                    cmp,
                } => {
                    let seen = self.sync_ops_seen;
                    self.lane(thread).queue.push_back((
                        index,
                        seen,
                        LaneOp::Arrive {
                            stat_lane: lane as usize,
                            seq,
                            will_publish,
                            cmp,
                        },
                    ));
                }
                WireRecord::Batch {
                    thread,
                    lane,
                    calls,
                } => {
                    let seen = self.sync_ops_seen;
                    self.lane(thread).queue.push_back((
                        index,
                        seen,
                        LaneOp::Batch {
                            stat_lane: lane as usize,
                            calls,
                        },
                    ));
                }
                WireRecord::Publish {
                    thread,
                    seq,
                    timestamp,
                    outcome,
                } => {
                    let seen = self.sync_ops_seen;
                    self.lane(thread).queue.push_back((
                        index,
                        seen,
                        LaneOp::Publish {
                            seq,
                            timestamp,
                            outcome,
                        },
                    ));
                }
                // Follower→leader records arriving here mean the stream is
                // not a leader stream (or the ends are crossed).
                WireRecord::Hello { .. } | WireRecord::Ack { .. } | WireRecord::Verdict { .. } => {
                    set_fault(&self.fault, &self.waker, PeerFailureKind::Corrupt);
                    return progressed;
                }
            }
        }
        progressed
    }

    fn lane(&mut self, thread: u32) -> &mut Lane {
        self.lanes.entry(thread).or_insert_with(|| Lane {
            thread: thread as usize,
            queue: VecDeque::new(),
            pending: None,
        })
    }

    /// Advances every lane: polls its pending rendezvous and deposits
    /// queued records as previous ones resolve.  Returns whether anything
    /// moved.
    fn advance_lanes(&mut self) -> bool {
        let mut progressed = false;
        let timeout = self.monitor.config().lockstep_timeout;
        // The borrow split: lanes are advanced against the monitor and the
        // resolved set, never against each other.
        let mut finished: Vec<u64> = Vec::new();
        let mut lag: Vec<(usize, u64)> = Vec::new();
        for lane in self.lanes.values_mut() {
            loop {
                if let Some(pending) = lane.pending.take() {
                    match poll_pending(&self.monitor, lane.thread, pending, self.sync_ops_seen) {
                        Polled::Still(pending) => {
                            lane.pending = Some(pending);
                            break;
                        }
                        Polled::Done { index, lagged } => {
                            finished.push(index);
                            if let Some(entry) = lagged {
                                lag.push(entry);
                            }
                            progressed = true;
                            continue;
                        }
                    }
                }
                let Some((index, at_ingest, op)) = lane.queue.pop_front() else {
                    break;
                };
                progressed = true;
                match deposit(
                    &self.monitor,
                    lane.thread,
                    index,
                    op,
                    at_ingest,
                    self.sync_ops_seen,
                    timeout,
                ) {
                    Polled::Still(pending) => {
                        lane.pending = Some(pending);
                        break;
                    }
                    Polled::Done { index, lagged } => {
                        finished.push(index);
                        if let Some(entry) = lagged {
                            lag.push(entry);
                        }
                    }
                }
            }
        }
        for index in finished {
            self.resolved.insert(index);
        }
        for (stat_lane, ops) in lag {
            self.monitor.count_detection_lag(stat_lane, ops);
        }
        progressed
    }

    /// Encodes and writes a follower→leader record; a dead channel records
    /// a fault, which ends the pass loop and poisons the table on exit.
    fn send(&mut self, record: &WireRecord) {
        let Some(tx) = self.tx.as_mut() else {
            return;
        };
        let mut bytes = Vec::with_capacity(64);
        record.encode_frame(&mut bytes);
        if tx.write_all(&bytes).and_then(|()| tx.flush()).is_err() {
            self.tx = None;
            set_fault(&self.fault, &self.waker, PeerFailureKind::Disconnected);
        }
    }
}

/// Outcome of depositing or polling one lane record.
enum Polled {
    /// Peers still missing; keep the registration and re-poll later.
    Still(Pending),
    /// The record fully resolved: ack `index`; `lagged` carries a
    /// detection-lag contribution when the record proved a divergence.
    Done {
        index: u64,
        lagged: Option<(usize, u64)>,
    },
}

/// Deposits one lane record into the rendezvous table as variant 0.
fn deposit(
    monitor: &Monitor,
    thread: usize,
    index: u64,
    op: LaneOp,
    sync_ops_at_ingest: u64,
    sync_ops_seen: u64,
    timeout: std::time::Duration,
) -> Polled {
    match op {
        LaneOp::Arrive {
            stat_lane,
            seq,
            will_publish,
            cmp,
        } => match monitor
            .lockstep()
            .try_arrive((thread, seq), 0, cmp.clone(), timeout)
        {
            TryArrive::Ready(result) => finish_arrive(
                monitor,
                thread,
                index,
                seq,
                will_publish,
                stat_lane,
                sync_ops_at_ingest,
                sync_ops_seen,
                result,
                cmp,
            ),
            TryArrive::Pending(token) => Polled::Still(Pending {
                index,
                sync_ops_at_ingest,
                op: PendingOp::Arrive {
                    token,
                    seq,
                    will_publish,
                    stat_lane,
                    cmp,
                },
            }),
        },
        LaneOp::Batch { stat_lane, calls } => {
            monitor.count_batch_flush(stat_lane);
            let batch: Vec<BatchArrival> = calls
                .into_iter()
                .map(|(seq, cmp)| BatchArrival {
                    key: (thread, seq),
                    cmp,
                })
                .collect();
            match monitor.lockstep().try_arrive_batch(0, &batch, timeout) {
                TryBatch::Ready(results) => finish_batch(
                    monitor,
                    thread,
                    index,
                    batch,
                    stat_lane,
                    sync_ops_at_ingest,
                    sync_ops_seen,
                    results,
                ),
                TryBatch::Pending(token) => Polled::Still(Pending {
                    index,
                    sync_ops_at_ingest,
                    op: PendingOp::Batch {
                        token,
                        batch,
                        stat_lane,
                    },
                }),
            }
        }
        LaneOp::Publish {
            seq,
            timestamp,
            outcome,
        } => {
            let key = (thread, seq);
            monitor.lockstep().publish_outcome(key, outcome, timestamp);
            monitor.lockstep().consume(key, 0);
            Polled::Done {
                index,
                lagged: None,
            }
        }
    }
}

/// Polls a pending rendezvous.
fn poll_pending(monitor: &Monitor, thread: usize, pending: Pending, sync_ops_seen: u64) -> Polled {
    let Pending {
        index,
        sync_ops_at_ingest,
        op,
    } = pending;
    match op {
        PendingOp::Arrive {
            token,
            seq,
            will_publish,
            stat_lane,
            cmp,
        } => match monitor.lockstep().poll_arrival(token) {
            Ok(result) => finish_arrive(
                monitor,
                thread,
                index,
                seq,
                will_publish,
                stat_lane,
                sync_ops_at_ingest,
                sync_ops_seen,
                result,
                cmp,
            ),
            Err(token) => Polled::Still(Pending {
                index,
                sync_ops_at_ingest,
                op: PendingOp::Arrive {
                    token,
                    seq,
                    will_publish,
                    stat_lane,
                    cmp,
                },
            }),
        },
        PendingOp::Batch {
            token,
            batch,
            stat_lane,
        } => match monitor.lockstep().poll_batch(token) {
            Ok(results) => finish_batch(
                monitor,
                thread,
                index,
                batch,
                stat_lane,
                sync_ops_at_ingest,
                sync_ops_seen,
                results,
            ),
            Err(token) => Polled::Still(Pending {
                index,
                sync_ops_at_ingest,
                op: PendingOp::Batch {
                    token,
                    batch,
                    stat_lane,
                },
            }),
        },
    }
}

/// Whether the monitor's recorded divergence blames `thread`'s call `seq`.
///
/// The race this covers: when an in-proc slave arrives last at a
/// mismatching slot, *its* mapper records the divergence and poisons the
/// table before the pump re-polls — so the pump observes `Poisoned`, not
/// `Mismatch`, for the very record whose comparison produced the verdict.
/// The lag still belongs to that record.
fn divergence_blames(monitor: &Monitor, thread: usize, seq: u64) -> bool {
    monitor
        .divergence()
        .is_some_and(|report| report.thread == thread && report.sequence == seq)
}

/// Settles a resolved synchronous arrival through the shared verdict
/// settler (identical divergence reports to the in-proc path) and consumes
/// the slot when no publication will follow — mirroring the in-proc
/// master's `dispatch_resolved` consume.  A quarantine retry re-deposits
/// the leader's key without blocking and parks the record again.
#[allow(clippy::too_many_arguments)]
fn finish_arrive(
    monitor: &Monitor,
    thread: usize,
    index: u64,
    seq: u64,
    will_publish: bool,
    stat_lane: usize,
    sync_ops_at_ingest: u64,
    sync_ops_seen: u64,
    result: crate::lockstep::ArrivalResult,
    cmp: ComparisonKey,
) -> Polled {
    let mut result = result;
    loop {
        let lagged = match monitor.settle_sync_arrival(result, 0, thread, seq) {
            crate::monitor::ArrivalSettle::Done => {
                if !will_publish {
                    monitor.lockstep().consume((thread, seq), 0);
                }
                None
            }
            crate::monitor::ArrivalSettle::Retry => {
                let timeout = monitor.config().lockstep_timeout;
                match monitor
                    .lockstep()
                    .try_rearrive((thread, seq), 0, cmp.clone(), timeout)
                {
                    TryArrive::Ready(next) => {
                        result = next;
                        continue;
                    }
                    TryArrive::Pending(token) => {
                        return Polled::Still(Pending {
                            index,
                            sync_ops_at_ingest,
                            op: PendingOp::Arrive {
                                token,
                                seq,
                                will_publish,
                                stat_lane,
                                cmp,
                            },
                        });
                    }
                }
            }
            crate::monitor::ArrivalSettle::Fail(MonitorError::Diverged(_)) => {
                Some((stat_lane, sync_ops_seen - sync_ops_at_ingest))
            }
            crate::monitor::ArrivalSettle::Fail(_) if divergence_blames(monitor, thread, seq) => {
                Some((stat_lane, sync_ops_seen - sync_ops_at_ingest))
            }
            crate::monitor::ArrivalSettle::Fail(_) => None,
        };
        return Polled::Done { index, lagged };
    }
}

/// Settles a resolved batch through the shared batch settler (which
/// consumes every batch slot itself), re-presenting the unconsumed keys of
/// a quarantined peer's rendezvous without blocking.
#[allow(clippy::too_many_arguments)]
fn finish_batch(
    monitor: &Monitor,
    thread: usize,
    index: u64,
    batch: Vec<BatchArrival>,
    stat_lane: usize,
    sync_ops_at_ingest: u64,
    sync_ops_seen: u64,
    results: Vec<crate::lockstep::ArrivalResult>,
) -> Polled {
    fn blamed(monitor: &Monitor, thread: usize, batch: &[BatchArrival]) -> bool {
        batch.iter().any(|arrival| {
            divergence_blames(
                monitor,
                thread,
                arrival.key.1 & !crate::monitor::DEFERRED_SEQ_BIT,
            )
        })
    }
    let (mut batch, mut results) = (batch, results);
    loop {
        let lagged = match monitor.settle_batch_results(0, thread, &batch, results) {
            crate::monitor::BatchSettle::Done(Ok(())) => None,
            crate::monitor::BatchSettle::Retry(indices) => {
                let sub: Vec<BatchArrival> = indices.iter().map(|&i| batch[i].clone()).collect();
                let timeout = monitor.config().lockstep_timeout;
                match monitor.lockstep().try_rearrive_batch(0, &sub, timeout) {
                    TryBatch::Ready(redone) => {
                        batch = sub;
                        results = redone;
                        continue;
                    }
                    TryBatch::Pending(token) => {
                        return Polled::Still(Pending {
                            index,
                            sync_ops_at_ingest,
                            op: PendingOp::Batch {
                                token,
                                batch: sub,
                                stat_lane,
                            },
                        });
                    }
                }
            }
            crate::monitor::BatchSettle::Done(Err(MonitorError::Diverged(_))) => {
                Some((stat_lane, sync_ops_seen - sync_ops_at_ingest))
            }
            crate::monitor::BatchSettle::Done(Err(_)) if blamed(monitor, thread, &batch) => {
                Some((stat_lane, sync_ops_seen - sync_ops_at_ingest))
            }
            crate::monitor::BatchSettle::Done(Err(_)) => None,
        };
        return Polled::Done { index, lagged };
    }
}
