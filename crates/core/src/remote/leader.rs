//! The leader front end: executes variant 0's syscalls through the normal
//! gateway pipeline and streams the evidence to the follower monitor.
//!
//! A [`RemoteLeader`] owns the leader end of a [`Duplex`]: a writer the
//! leader's per-thread ports push frame batches through (serialized behind
//! one lock), and a reader thread that decodes the follower's
//! [`Ack`](super::wire::WireRecord::Ack) /
//! [`Verdict`](super::wire::WireRecord::Verdict) stream into shared link
//! state.  [`LeaderPort`] is the remote mirror of
//! [`ThreadPort`](crate::port::ThreadPort): same sequence keys, same
//! disposition logic, same deferred-batch discipline — but where the
//! in-proc port deposits comparisons into the rendezvous table, the leader
//! port *encodes* them and lets the follower's pump deposit on its behalf.
//!
//! The blocking rule mirrors the in-proc master exactly:
//!
//! * **deferred comparisons** buffer locally and stream at the PR-3 flush
//!   points (batch full, before any synchronous call, before a sync op,
//!   port drop) without waiting for anything;
//! * **replicated / ordered** calls execute immediately and stream their
//!   published outcome — the in-proc master never blocks as publisher;
//! * only a **synchronous lockstep arrival** (an externally visible call
//!   under the policy) blocks, waiting for the follower's ack — which the
//!   pump sends only once the rendezvous resolved, exactly where the
//!   in-proc master sleeps in `arrive_sync`.
//!
//! Divergence reaches the leader over the channel (a `Verdict` frame), so
//! calls issued between a deferred mismatch's execution and its verdict
//! keep streaming — that window is the divergence-detection lag the
//! follower measures.  Follower death or a torn connection surfaces as a
//! typed [`PeerFailure`] naming the follower, and unblocks any waiting
//! leader thread immediately.

use std::cell::{Cell, RefCell};
use std::io::Write;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use mvee_kernel::syscall::{SyscallOutcome, SyscallRequest, Sysno};
use mvee_sync_agent::context::{SyncContext, VariantRole};
use mvee_sync_agent::SyncAgent;

use crate::divergence::DivergenceReport;
use crate::frame::FrameReader;
use crate::journal::ClassKind;
use crate::monitor::{Monitor, MonitorError, DEFERRED_SEQ_BIT};
use crate::remote::transport::Duplex;
use crate::remote::wire::WireRecord;
use crate::remote::{PeerFailure, PeerFailureKind, RemotePeer};

/// The write half of the channel plus the implicit frame numbering.
struct Conn {
    /// `None` once [`RemoteLeader::shutdown`] has closed the stream.
    tx: Option<Box<dyn Write + Send>>,
    /// Frames pushed so far; an ack of `through == frames_sent` means the
    /// follower has fully processed everything written to date.
    frames_sent: u64,
}

/// Link state fed by the reader thread, watched by blocked leader threads.
#[derive(Default)]
struct LinkState {
    /// Frames the follower has fully processed (contiguous prefix).
    acked: u64,
    /// First divergence verdict received over the channel.
    verdict: Option<DivergenceReport>,
    /// Set when the channel died (EOF, corruption, ack timeout).
    dead: Option<PeerFailure>,
}

struct LinkShared {
    state: Mutex<LinkState>,
    changed: Condvar,
}

/// The leader end of a replication channel (see the [module docs](self)).
pub struct RemoteLeader {
    monitor: Arc<Monitor>,
    agent: Arc<dyn SyncAgent>,
    conn: Mutex<Conn>,
    shared: Arc<LinkShared>,
    reader: Mutex<Option<JoinHandle<()>>>,
}

impl RemoteLeader {
    /// Connects the leader over `duplex`: sends the
    /// [`Hello`](WireRecord::Hello) prologue describing the MVEE shape and
    /// spawns the ack/verdict reader thread.
    pub fn connect(
        monitor: Arc<Monitor>,
        agent: Arc<dyn SyncAgent>,
        duplex: Duplex,
    ) -> Arc<RemoteLeader> {
        let (rx, tx) = duplex.into_split();
        let shared = Arc::new(LinkShared {
            state: Mutex::new(LinkState::default()),
            changed: Condvar::new(),
        });
        let reader = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mvee-leader-rx".into())
                .spawn(move || read_follower_stream(rx, &shared))
                .expect("spawning the leader reader thread failed")
        };
        let config = monitor.config();
        let hello = WireRecord::Hello {
            variants: config.variants as u16,
            threads: config.workload_threads as u32,
            shards: monitor.shard_count() as u16,
            batch: config.batch as u16,
        };
        let mut bytes = Vec::with_capacity(32);
        hello.encode_frame(&mut bytes);
        let leader = Arc::new(RemoteLeader {
            monitor,
            agent,
            conn: Mutex::new(Conn {
                tx: Some(tx),
                frames_sent: 0,
            }),
            shared,
            reader: Mutex::new(Some(reader)),
        });
        let _ = leader.push(&bytes, 1);
        leader
    }

    /// The monitor the leader executes against.
    pub fn monitor(&self) -> &Arc<Monitor> {
        &self.monitor
    }

    /// Acquires the leader-side port for logical thread `thread` of
    /// variant 0.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range thread index or if a live port already
    /// owns `(variant 0, thread)`.
    pub fn port(self: &Arc<Self>, thread: usize) -> LeaderPort {
        let (seq, shard) = self.monitor.acquire_port(0, thread);
        let batch = self.monitor.config().batch;
        LeaderPort {
            ctx: SyncContext::new(VariantRole::from_variant_index(0), thread),
            link: Arc::clone(self),
            thread,
            shard,
            batch,
            seq: Cell::new(seq),
            buf: RefCell::new(Vec::with_capacity(256)),
            buffered: Cell::new(0),
            pending: RefCell::new(Vec::with_capacity(batch)),
        }
    }

    /// The first divergence verdict received over the channel, if any.
    pub fn verdict(&self) -> Option<DivergenceReport> {
        self.shared.state.lock().verdict.clone()
    }

    /// The channel failure, if the follower died or the stream tore.
    pub fn failure(&self) -> Option<PeerFailure> {
        self.shared.state.lock().dead
    }

    /// Streams a [`Barrier`](WireRecord::Barrier) and waits until the
    /// follower has fully processed every frame written so far — the
    /// quiescence point after which the follower's counters are final.
    ///
    /// Returns `Ok` even after a divergence verdict (the follower keeps
    /// draining and acknowledging the stream); fails only when the channel
    /// itself is down.
    pub fn barrier(&self) -> Result<(), MonitorError> {
        let mut bytes = Vec::with_capacity(16);
        WireRecord::Barrier.encode_frame(&mut bytes);
        let through = self.push(&bytes, 1)?;
        self.wait_acked(through, false)
    }

    /// Sends [`Bye`](WireRecord::Bye) and closes the write half, letting
    /// the follower drain to a clean EOF.  Idempotent.
    pub fn shutdown(&self) {
        let mut bytes = Vec::with_capacity(16);
        WireRecord::Bye.encode_frame(&mut bytes);
        let _ = self.push(&bytes, 1);
        self.conn.lock().tx = None;
    }

    /// Writes pre-encoded frames to the channel; returns the stream
    /// watermark (total frames sent) to wait on.
    fn push(&self, bytes: &[u8], frames: u64) -> Result<u64, MonitorError> {
        let mut conn = self.conn.lock();
        let Some(tx) = conn.tx.as_mut() else {
            let failure = self.shared.state.lock().dead.unwrap_or(PeerFailure {
                peer: RemotePeer::Follower,
                kind: PeerFailureKind::Disconnected,
            });
            return Err(MonitorError::Peer(failure));
        };
        if let Err(_e) = tx.write_all(bytes).and_then(|()| tx.flush()) {
            conn.tx = None;
            drop(conn);
            let failure = PeerFailure {
                peer: RemotePeer::Follower,
                kind: PeerFailureKind::Disconnected,
            };
            self.mark_dead(failure);
            return Err(MonitorError::Peer(failure));
        }
        conn.frames_sent += frames;
        Ok(conn.frames_sent)
    }

    fn mark_dead(&self, failure: PeerFailure) {
        let mut state = self.shared.state.lock();
        if state.dead.is_none() {
            state.dead = Some(failure);
        }
        self.shared.changed.notify_all();
    }

    /// Blocks until the follower has processed `through` frames.
    ///
    /// With `break_on_verdict`, a divergence verdict ends the wait early —
    /// the caller inspects [`verdict`](Self::verdict) to map it, exactly
    /// like a poisoned in-proc rendezvous resolves a blocked master.  The
    /// ack deadline is a backstop well beyond the lockstep timeout (the
    /// pump resolves every wait within one timeout and acks the result);
    /// follower death ends the wait immediately via the reader thread.
    fn wait_acked(&self, through: u64, break_on_verdict: bool) -> Result<(), MonitorError> {
        let timeout = self.monitor.config().lockstep_timeout;
        let deadline = Instant::now()
            + timeout
                .saturating_mul(2)
                .saturating_add(Duration::from_secs(1));
        let mut state = self.shared.state.lock();
        loop {
            if let Some(failure) = state.dead {
                return Err(MonitorError::Peer(failure));
            }
            if state.acked >= through || (break_on_verdict && state.verdict.is_some()) {
                return Ok(());
            }
            if self
                .shared
                .changed
                .wait_until(&mut state, deadline)
                .timed_out()
            {
                let failure = PeerFailure {
                    peer: RemotePeer::Follower,
                    kind: PeerFailureKind::AckTimeout,
                };
                if state.dead.is_none() {
                    state.dead = Some(failure);
                }
                self.shared.changed.notify_all();
                return Err(MonitorError::Peer(state.dead.unwrap_or(failure)));
            }
        }
    }
}

impl Drop for RemoteLeader {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(reader) = self.reader.lock().take() {
            let _ = reader.join();
        }
    }
}

impl std::fmt::Debug for RemoteLeader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.state.lock();
        f.debug_struct("RemoteLeader")
            .field("frames_sent", &self.conn.lock().frames_sent)
            .field("acked", &state.acked)
            .field("verdict", &state.verdict.is_some())
            .field("dead", &state.dead)
            .finish()
    }
}

/// Decodes the follower's ack/verdict stream into the shared link state.
fn read_follower_stream(rx: Box<dyn std::io::Read + Send>, shared: &LinkShared) {
    let mut frames = FrameReader::new(rx);
    let mut saw_bye = false;
    let failure = loop {
        match frames.read_frame() {
            Ok(Some(body)) => match WireRecord::decode(body) {
                Ok(WireRecord::Ack { through }) => {
                    let mut state = shared.state.lock();
                    state.acked = state.acked.max(through);
                    shared.changed.notify_all();
                }
                Ok(WireRecord::Verdict { report }) => {
                    let mut state = shared.state.lock();
                    if state.verdict.is_none() {
                        state.verdict = Some(report);
                    }
                    shared.changed.notify_all();
                }
                Ok(WireRecord::Bye) => {
                    saw_bye = true;
                }
                Ok(_) | Err(_) => {
                    break PeerFailureKind::Corrupt;
                }
            },
            Ok(None) => {
                // Clean EOF: normal when the follower finished after our
                // `Bye`; a silent death otherwise.  Either way every
                // blocked wait must resolve.
                break PeerFailureKind::Disconnected;
            }
            Err(e) => {
                break match e {
                    crate::frame::ReadFrameError::Io(_) => PeerFailureKind::Disconnected,
                    _ => PeerFailureKind::Corrupt,
                };
            }
        }
    };
    let mut state = shared.state.lock();
    if state.dead.is_none() && !(saw_bye && failure == PeerFailureKind::Disconnected) {
        state.dead = Some(PeerFailure {
            peer: RemotePeer::Follower,
            kind: failure,
        });
    }
    shared.changed.notify_all();
}

/// The leader's per-thread syscall handle: the remote mirror of
/// [`ThreadPort`](crate::port::ThreadPort) (see the [module docs](self)).
///
/// `Send` but `!Sync`, like the in-proc port: it owns an unsynchronized
/// frame buffer and deferred-comparison queue.
pub struct LeaderPort {
    link: Arc<RemoteLeader>,
    /// The agent context, built once at acquisition.
    ctx: SyncContext,
    thread: usize,
    /// The stat lane / shard this thread is bound to (resolved through the
    /// placement policy, identical to the in-proc binding).
    shard: usize,
    /// Cached comparison batch size (1 = no deferral).
    batch: usize,
    /// Next per-thread sequence number.
    seq: Cell<u64>,
    /// Encoded frames not yet pushed to the connection.
    buf: RefCell<Vec<u8>>,
    /// Number of frames in `buf`.
    buffered: Cell<u64>,
    /// Deferred comparisons awaiting the next flush point, keyed with the
    /// deferred-keyspace bit exactly like the in-proc port.
    pending: RefCell<Vec<(u64, mvee_kernel::syscall::ComparisonKey)>>,
}

impl LeaderPort {
    /// Zero-based variant index: the leader is always variant 0.
    pub fn variant_index(&self) -> usize {
        0
    }

    /// Logical thread index within the variant.
    pub fn thread_index(&self) -> usize {
        self.thread
    }

    /// The shard / stat lane this thread is bound to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Deferred comparisons queued locally, awaiting the next flush point.
    pub fn pending_comparisons(&self) -> usize {
        self.pending.borrow().len()
    }

    /// Encodes `record` into the local frame buffer (not yet pushed).
    fn buffer(&self, record: &WireRecord) {
        record.encode_frame(&mut self.buf.borrow_mut());
        self.buffered.set(self.buffered.get() + 1);
    }

    /// Pushes the buffered frames to the connection (one locked write) and
    /// returns the stream watermark of the last frame, if any were pushed.
    fn push_buffered(&self) -> Result<Option<u64>, MonitorError> {
        if self.buffered.get() == 0 {
            return Ok(None);
        }
        let bytes = std::mem::take(&mut *self.buf.borrow_mut());
        let frames = self.buffered.replace(0);
        self.link.push(&bytes, frames).map(Some)
    }

    /// Moves the deferred comparisons into a [`WireRecord::Batch`] frame in
    /// the local buffer.  The follower's pump counts the flush and deposits
    /// the block; the leader does not wait (comparison is asynchronous).
    fn flush_batch(&self) {
        let calls = std::mem::take(&mut *self.pending.borrow_mut());
        if calls.is_empty() {
            return;
        }
        self.buffer(&WireRecord::Batch {
            thread: self.thread as u32,
            lane: self.shard as u16,
            calls,
        });
    }

    /// The channel-driven divergence gate: the remote mirror of the in-proc
    /// entry gate, fed by `Verdict` frames instead of the shared flag.
    fn gate(&self) -> Result<(), MonitorError> {
        let state = self.link.shared.state.lock();
        if let Some(failure) = state.dead {
            return Err(MonitorError::Peer(failure));
        }
        if state.verdict.is_some() {
            return Err(MonitorError::ShutDown);
        }
        Ok(())
    }

    /// Maps a verdict that ended an ack wait, blaming this call when the
    /// report names it (the in-proc `Diverged` vs `ShutDown` split).
    fn map_verdict(&self, seq: u64) -> MonitorError {
        match self.link.verdict() {
            Some(report) if report.thread == self.thread && report.sequence == seq => {
                MonitorError::Diverged(report)
            }
            Some(_) => MonitorError::ShutDown,
            // The wait resolved by ack, not by verdict: not reachable from
            // the error path, but keep the mapping total.
            None => MonitorError::ShutDown,
        }
    }

    /// Issues a system call on behalf of this port's logical thread —
    /// the remote mirror of [`ThreadPort::syscall`]
    /// (crate::port::ThreadPort::syscall); see the [module docs](self) for
    /// the streaming/blocking discipline.
    pub fn syscall(&self, req: &SyscallRequest) -> Result<SyscallOutcome, MonitorError> {
        if let Err(e) = self.gate() {
            self.pending.borrow_mut().clear();
            return Err(e);
        }
        let monitor = &*self.link.monitor;
        let self_aware = req.no == Sysno::MveeSelfAware;
        self.buffer(&WireRecord::Enter {
            thread: self.thread as u32,
            lane: self.shard as u16,
            self_aware,
        });
        if self_aware {
            // Answered by the monitor, not the kernel: variant index 0.
            // The Enter frame rides the next flush so the follower's
            // counters still see it.
            return Ok(SyscallOutcome::ok(0));
        }

        let seq = self.seq.get();
        self.seq.set(seq + 1);

        let disposition = monitor.config().policy.disposition(req.no);
        let defer = self.batch > 1 && disposition.defer_compare;

        // Synchronous interaction points resolve (here: stream) the
        // deferred comparisons first, keeping comparisons in per-thread
        // program order exactly like the in-proc flush discipline.
        if !defer && (disposition.lockstep || disposition.replicate || disposition.ordered) {
            self.flush_batch();
        }

        if disposition.lockstep {
            self.buffer(&WireRecord::Class {
                kind: ClassKind::Lockstep,
                lane: self.shard as u16,
            });
            if defer {
                self.buffer(&WireRecord::Class {
                    kind: ClassKind::Batched,
                    lane: self.shard as u16,
                });
                let full = {
                    let mut pending = self.pending.borrow_mut();
                    pending.push((seq | DEFERRED_SEQ_BIT, req.comparison_key()));
                    pending.len() >= self.batch
                };
                // Mirror the in-proc divergence race check: a verdict
                // landing between the gate and this push means the deferred
                // comparison will never be resolved cleanly.
                if let Err(e) = self.gate() {
                    self.pending.borrow_mut().clear();
                    return Err(e);
                }
                if full {
                    self.flush_batch();
                    self.push_buffered()?;
                }
            } else {
                self.buffer(&WireRecord::Arrive {
                    thread: self.thread as u32,
                    lane: self.shard as u16,
                    seq,
                    will_publish: disposition.replicate || disposition.ordered,
                    cmp: req.comparison_key(),
                });
                // The externally visible point: stream everything and block
                // until the follower's rendezvous resolved — the remote
                // mirror of the master sleeping in `arrive_sync`.  Only
                // after the ack does the leader execute the call.
                let through = self
                    .push_buffered()?
                    .expect("an Arrive frame was just buffered");
                self.link.wait_acked(through, true)?;
                if self.link.verdict().is_some() {
                    return Err(self.map_verdict(seq));
                }
            }
        }

        if disposition.replicate {
            self.buffer(&WireRecord::Class {
                kind: ClassKind::Replicated,
                lane: self.shard as u16,
            });
            let outcome = monitor.execute_kernel(0, self.thread, req);
            self.buffer(&WireRecord::Publish {
                thread: self.thread as u32,
                seq,
                timestamp: None,
                outcome: outcome.clone(),
            });
            // Stream-and-go: the in-proc master never blocks as publisher,
            // and the slaves unblock as soon as the pump applies this.
            self.push_buffered()?;
            return Ok(outcome);
        }
        if disposition.ordered {
            self.buffer(&WireRecord::Class {
                kind: ClassKind::Ordered,
                lane: self.shard as u16,
            });
            let ts = monitor.ordering_clock(0, self.shard).claim_timestamp();
            let outcome = monitor.execute_kernel(0, self.thread, req);
            self.buffer(&WireRecord::Publish {
                thread: self.thread as u32,
                seq,
                timestamp: Some(ts),
                outcome: outcome.clone(),
            });
            self.push_buffered()?;
            return Ok(outcome);
        }
        // Neither replicated nor ordered: execute directly.  Any lockstep
        // slot consume rides the Arrive frame (`will_publish: false`).
        Ok(monitor.execute_kernel(0, self.thread, req))
    }

    /// Brackets the start of a sync op: streams pending deferred
    /// comparisons and the [`SyncOp`](WireRecord::SyncOp) progress marker
    /// (the follower's lag metric counts these), then enters the agent.
    pub fn before_sync_op(&self, addr: u64) {
        self.flush_batch();
        self.buffer(&WireRecord::SyncOp {
            thread: self.thread as u32,
        });
        let _ = self.push_buffered();
        self.link.agent.before_sync_op(&self.ctx, addr);
    }

    /// Brackets the end of a sync op.
    pub fn after_sync_op(&self, addr: u64) {
        self.link.agent.after_sync_op(&self.ctx, addr);
    }

    /// Convenience: brackets `op` between [`before_sync_op`]
    /// (Self::before_sync_op) and [`after_sync_op`](Self::after_sync_op).
    pub fn sync_op<T>(&self, addr: u64, op: impl FnOnce() -> T) -> T {
        self.before_sync_op(addr);
        let result = op();
        self.after_sync_op(addr);
        result
    }
}

impl Drop for LeaderPort {
    fn drop(&mut self) {
        // Mirror ThreadPort::drop: stream trailing deferred comparisons
        // (ports are re-acquirable across phases) unless the link already
        // died or diverged, then hand the sequence counter back.
        if self.gate().is_err() {
            self.pending.borrow_mut().clear();
            self.buf.borrow_mut().clear();
            self.buffered.set(0);
        } else {
            self.flush_batch();
            let _ = self.push_buffered();
        }
        self.link
            .monitor
            .release_port(0, self.thread, self.seq.get());
    }
}

impl std::fmt::Debug for LeaderPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeaderPort")
            .field("thread", &self.thread)
            .field("shard", &self.shard)
            .field("batch", &self.batch)
            .field("seq", &self.seq.get())
            .field("pending", &self.pending.borrow().len())
            .finish()
    }
}
