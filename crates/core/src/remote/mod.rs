//! Distributed MVEE: a leader/follower split over a framed replication
//! transport (the dMVX-style deployment of the ReMon design).
//!
//! In-proc, every variant's gateway shares one [`Monitor`]; here the
//! monitored program's *leader* (variant 0) runs behind a byte channel.
//! Its [`LeaderPort`] executes syscalls through the normal gateway
//! pipeline but streams the monitoring evidence — CRC-framed
//! `(sequence, comparison key, replicated result)` records riding the
//! divergence journal's frame codec — to a *follower* monitor that hosts
//! the rendezvous table, the remaining variants, and the actual
//! comparisons:
//!
//! * [`transport`] — the [`Duplex`] byte-channel abstraction and its three
//!   loopback flavours (in-proc pipes, Unix socketpair, TCP loopback).
//! * `wire` — the frame-level record protocol (crate-private).
//! * [`leader`] — [`RemoteLeader`] (the channel endpoint) and
//!   [`LeaderPort`] (the per-thread front end); the leader blocks **only**
//!   at synchronous lockstep points, exactly where the in-proc master
//!   blocks, and streams deferred batches without waiting.
//! * [`follower`] — [`Follower::spawn`]'s reader + pump pair, which drives
//!   the in-proc lockstep machinery on the leader's behalf, compares
//!   asynchronously, acknowledges resolved prefixes and reports verdicts
//!   back; divergence reports come out field-identical to an in-proc run.
//!
//! Wired through [`Transport::Remote`](crate::config::Transport::Remote)
//! on [`MveeConfig`](crate::config::MveeConfig); see `Mvee::leader_port`.
//! Channel death — a killed follower, a torn connection, a corrupt stream
//! — surfaces as [`MonitorError::Peer`](crate::monitor::MonitorError::Peer)
//! carrying a [`PeerFailure`] that names the missing peer, and unblocks
//! every waiting thread on both sides.
//!
//! [`Monitor`]: crate::monitor::Monitor

pub mod follower;
pub mod leader;
pub mod transport;
pub(crate) mod wire;

pub use follower::{Follower, FollowerHandle};
pub use leader::{LeaderPort, RemoteLeader};
pub use transport::Duplex;

/// Which end of the replication channel a failure is attributed to: the
/// peer that went missing or produced the offending bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemotePeer {
    /// The leader front end (variant 0's side of the channel).
    Leader,
    /// The follower monitor (rendezvous side of the channel).
    Follower,
}

impl RemotePeer {
    /// Human-readable peer name for reports and logs.
    pub fn name(&self) -> &'static str {
        match self {
            RemotePeer::Leader => "leader",
            RemotePeer::Follower => "follower",
        }
    }
}

/// How the replication channel failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerFailureKind {
    /// The peer's end closed (or the connection tore) without a clean
    /// `Bye` handshake.
    Disconnected,
    /// The stream carried bytes that are not a valid record sequence:
    /// CRC mismatch, truncated or oversized frame, undecodable body, a
    /// protocol-direction violation or a mismatched `Hello`.
    Corrupt,
    /// The peer stopped acknowledging progress within the backstop
    /// deadline while still appearing connected.
    AckTimeout,
}

impl PeerFailureKind {
    fn describe(&self) -> &'static str {
        match self {
            PeerFailureKind::Disconnected => "disconnected without a Bye handshake",
            PeerFailureKind::Corrupt => "sent a corrupt or non-protocol byte stream",
            PeerFailureKind::AckTimeout => "stopped acknowledging within the deadline",
        }
    }
}

/// A replication-channel failure: which peer is lost and how.  Carried by
/// [`MonitorError::Peer`](crate::monitor::MonitorError::Peer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerFailure {
    /// The peer held responsible.
    pub peer: RemotePeer,
    /// The failure mode.
    pub kind: PeerFailureKind,
}

impl std::fmt::Display for PeerFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replication peer lost: the {} {}",
            self.peer.name(),
            self.kind.describe()
        )
    }
}
