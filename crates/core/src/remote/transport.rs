//! Replication-channel byte transports: the [`Duplex`] abstraction and the
//! three loopback channel flavours a distributed MVEE can ride on.
//!
//! A [`Duplex`] is one endpoint of a bidirectional byte channel: an
//! `io::Read` half the endpoint's frame reader blocks on and an `io::Write`
//! half its frames go out through.  The wire protocol above it
//! ([`super::wire`]) never sees which flavour it runs on:
//!
//! * [`Duplex::in_proc_pair`] — an in-process pipe pair (two byte queues
//!   with condvar blocking and close-on-drop EOF semantics).  Zero syscall
//!   cost, fully deterministic, and the default for `RemoteChannel::InProc`.
//! * [`Duplex::unix_pair`] — a `UnixStream::pair` socketpair.
//! * [`Duplex::tcp_pair`] — a `TcpStream` loopback connection through an
//!   ephemeral `127.0.0.1` listener, `TCP_NODELAY` set on both ends.
//!
//! The socket flavours exist to push the framed protocol through a real
//! kernel byte stream (partial reads, coalesced writes); the leader/follower
//! logic upstack is identical across all three.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::UnixStream;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::config::RemoteChannel;

/// One endpoint of a bidirectional replication channel.
pub struct Duplex {
    rx: Box<dyn Read + Send>,
    tx: Box<dyn Write + Send>,
}

impl Duplex {
    /// Builds an endpoint from arbitrary read/write halves — how the fault
    /// tests splice torn or garbage-producing streams under the protocol.
    pub fn from_parts(rx: Box<dyn Read + Send>, tx: Box<dyn Write + Send>) -> Self {
        Duplex { rx, tx }
    }

    /// Splits the endpoint into its read and write halves.
    pub fn into_split(self) -> (Box<dyn Read + Send>, Box<dyn Write + Send>) {
        (self.rx, self.tx)
    }

    /// Connects a pair of endpoints over the given channel flavour.
    pub fn pair(channel: RemoteChannel) -> io::Result<(Duplex, Duplex)> {
        match channel {
            RemoteChannel::InProc => Ok(Self::in_proc_pair()),
            RemoteChannel::Unix => Self::unix_pair(),
            RemoteChannel::Tcp => Self::tcp_pair(),
        }
    }

    /// An in-process duplex pair: two byte pipes crossed over.
    pub fn in_proc_pair() -> (Duplex, Duplex) {
        let (a_rx, b_tx) = pipe();
        let (b_rx, a_tx) = pipe();
        (
            Duplex {
                rx: Box::new(a_rx),
                tx: Box::new(a_tx),
            },
            Duplex {
                rx: Box::new(b_rx),
                tx: Box::new(b_tx),
            },
        )
    }

    /// A Unix-domain socketpair duplex.
    pub fn unix_pair() -> io::Result<(Duplex, Duplex)> {
        let (a, b) = UnixStream::pair()?;
        Ok((Self::from_unix(a)?, Self::from_unix(b)?))
    }

    fn from_unix(stream: UnixStream) -> io::Result<Duplex> {
        let rx = stream.try_clone()?;
        Ok(Duplex {
            rx: Box::new(rx),
            tx: Box::new(stream),
        })
    }

    /// A TCP loopback duplex through an ephemeral `127.0.0.1` listener.
    pub fn tcp_pair() -> io::Result<(Duplex, Duplex)> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let client = TcpStream::connect(addr)?;
        let (server, _) = listener.accept()?;
        Ok((Self::from_tcp(client)?, Self::from_tcp(server)?))
    }

    fn from_tcp(stream: TcpStream) -> io::Result<Duplex> {
        // Frames are small and latency-bound: never let Nagle hold an ack.
        stream.set_nodelay(true)?;
        let rx = stream.try_clone()?;
        Ok(Duplex {
            rx: Box::new(rx),
            tx: Box::new(stream),
        })
    }
}

impl std::fmt::Debug for Duplex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Duplex").finish_non_exhaustive()
    }
}

/// Creates an in-process unidirectional byte pipe.
///
/// Dropping the writer makes the reader observe EOF once the buffer drains;
/// dropping the reader makes subsequent writes fail with `BrokenPipe` —
/// matching the socket flavours' teardown semantics, which the leader and
/// follower shutdown paths rely on.
pub fn pipe() -> (PipeReader, PipeWriter) {
    let shared = Arc::new(PipeShared {
        state: Mutex::new(PipeState {
            buf: VecDeque::new(),
            writer_closed: false,
            reader_closed: false,
        }),
        changed: Condvar::new(),
    });
    (
        PipeReader {
            shared: Arc::clone(&shared),
        },
        PipeWriter { shared },
    )
}

struct PipeState {
    buf: VecDeque<u8>,
    writer_closed: bool,
    reader_closed: bool,
}

struct PipeShared {
    state: Mutex<PipeState>,
    changed: Condvar,
}

/// The read half of an in-process [`pipe`].
pub struct PipeReader {
    shared: Arc<PipeShared>,
}

/// The write half of an in-process [`pipe`].
pub struct PipeWriter {
    shared: Arc<PipeShared>,
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut state = self.shared.state.lock();
        while state.buf.is_empty() && !state.writer_closed {
            self.shared.changed.wait(&mut state);
        }
        if state.buf.is_empty() {
            return Ok(0); // clean EOF: writer gone, buffer drained
        }
        let n = out.len().min(state.buf.len());
        for slot in out.iter_mut().take(n) {
            *slot = state.buf.pop_front().expect("length checked above");
        }
        Ok(n)
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        self.shared.state.lock().reader_closed = true;
        self.shared.changed.notify_all();
    }
}

impl Write for PipeWriter {
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        let mut state = self.shared.state.lock();
        if state.reader_closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "the pipe's reader has been dropped",
            ));
        }
        state.buf.extend(bytes);
        self.shared.changed.notify_all();
        Ok(bytes.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        self.shared.state.lock().writer_closed = true;
        self.shared.changed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(pair: (Duplex, Duplex)) {
        let (a, b) = pair;
        let (mut a_rx, mut a_tx) = a.into_split();
        let (mut b_rx, mut b_tx) = b.into_split();
        a_tx.write_all(b"ping").unwrap();
        a_tx.flush().unwrap();
        let mut buf = [0u8; 4];
        b_rx.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b_tx.write_all(b"pong").unwrap();
        b_tx.flush().unwrap();
        a_rx.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn in_proc_duplex_carries_bytes_both_ways() {
        roundtrip(Duplex::in_proc_pair());
    }

    #[test]
    fn unix_duplex_carries_bytes_both_ways() {
        roundtrip(Duplex::unix_pair().unwrap());
    }

    #[test]
    fn tcp_duplex_carries_bytes_both_ways() {
        roundtrip(Duplex::tcp_pair().unwrap());
    }

    #[test]
    fn dropping_the_writer_is_eof_after_the_buffer_drains() {
        let (mut rx, mut tx) = pipe();
        tx.write_all(b"xy").unwrap();
        drop(tx);
        let mut buf = [0u8; 2];
        rx.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"xy");
        assert_eq!(rx.read(&mut buf).unwrap(), 0, "EOF after drain");
    }

    #[test]
    fn dropping_the_reader_breaks_the_writer() {
        let (rx, mut tx) = pipe();
        drop(rx);
        let err = tx.write_all(b"z").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn blocked_reader_wakes_on_write() {
        let (mut rx, mut tx) = pipe();
        let reader = std::thread::spawn(move || {
            let mut buf = [0u8; 5];
            rx.read_exact(&mut buf).unwrap();
            buf
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.write_all(b"hello").unwrap();
        assert_eq!(&reader.join().unwrap(), b"hello");
    }
}
