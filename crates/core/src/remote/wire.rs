//! The replication wire protocol: typed records framed with the shared
//! CRC-32 codec ([`crate::frame`]).
//!
//! Every record travels as one `len | crc | body` frame.  Frames carry no
//! explicit sequence number: both ends number them implicitly by stream
//! position (the leader's writes are serialized behind one connection lock,
//! the follower's reader decodes them in order), and the follower's
//! [`Ack`](WireRecord::Ack) acknowledges a *count* of fully processed
//! frames — the contiguous resolved prefix of the stream.
//!
//! Leader → follower: [`Hello`](WireRecord::Hello),
//! [`Enter`](WireRecord::Enter), [`Class`](WireRecord::Class),
//! [`Arrive`](WireRecord::Arrive), [`Batch`](WireRecord::Batch),
//! [`Publish`](WireRecord::Publish), [`SyncOp`](WireRecord::SyncOp),
//! [`Barrier`](WireRecord::Barrier), [`Bye`](WireRecord::Bye).
//! Follower → leader: [`Ack`](WireRecord::Ack),
//! [`Verdict`](WireRecord::Verdict), [`Bye`](WireRecord::Bye).
//!
//! Comparison keys, replicated outcomes and divergence reports reuse the
//! journal's body codecs, so a report decoded from a `Verdict` frame is
//! field-identical to the in-proc [`DivergenceReport`].

use mvee_kernel::syscall::{ComparisonKey, SyscallOutcome};

use crate::divergence::DivergenceReport;
use crate::frame::{push_frame, Reader};
use crate::journal::{
    decode_cmp, decode_outcome, decode_report, encode_cmp, encode_outcome, encode_report, ClassKind,
};

const TAG_HELLO: u8 = 1;
const TAG_ENTER: u8 = 2;
const TAG_CLASS: u8 = 3;
const TAG_ARRIVE: u8 = 4;
const TAG_BATCH: u8 = 5;
const TAG_PUBLISH: u8 = 6;
const TAG_SYNC_OP: u8 = 7;
const TAG_BARRIER: u8 = 8;
const TAG_BYE: u8 = 9;
const TAG_ACK: u8 = 10;
const TAG_VERDICT: u8 = 11;

/// One protocol record (see the [module docs](self) for direction).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WireRecord {
    /// Stream prologue: the leader's view of the MVEE shape, verified by
    /// the follower before any other record is applied.
    Hello {
        /// Variant count.
        variants: u16,
        /// Workload threads per variant.
        threads: u32,
        /// Rendezvous shard count.
        shards: u16,
        /// Comparison batch size.
        batch: u16,
    },
    /// A call entered the leader's gateway (mirror of `count_enter`).
    Enter {
        thread: u32,
        lane: u16,
        self_aware: bool,
    },
    /// A per-class counter bump (mirror of `count_lockstep` & co.).
    Class { kind: ClassKind, lane: u16 },
    /// A synchronous lockstep arrival: the follower deposits variant 0's
    /// comparison key at `(thread, seq)`.  `will_publish` tells the
    /// follower whether a `Publish` for the same key follows (which then
    /// owns the slot consume).
    Arrive {
        thread: u32,
        lane: u16,
        seq: u64,
        will_publish: bool,
        cmp: ComparisonKey,
    },
    /// A flushed deferred-comparison batch: the sequence values carry the
    /// deferred-keyspace bit exactly as deposited in proc.
    Batch {
        thread: u32,
        lane: u16,
        calls: Vec<(u64, ComparisonKey)>,
    },
    /// The leader's executed outcome (and ordering timestamp, for ordered
    /// calls) for `(thread, seq)`: the follower publishes it to its
    /// rendezvous table and consumes the slot.
    Publish {
        thread: u32,
        seq: u64,
        timestamp: Option<u64>,
        outcome: SyscallOutcome,
    },
    /// The leader passed a replication point (feeds the follower's
    /// divergence-detection-lag metric).
    SyncOp { thread: u32 },
    /// An explicit quiescence point: acknowledging it proves every earlier
    /// frame has been fully processed.
    Barrier,
    /// Clean end of stream.
    Bye,
    /// Follower → leader: `through` frames of the leader's stream are fully
    /// processed (comparisons resolved, outcomes published).
    Ack { through: u64 },
    /// Follower → leader: the run diverged; the report is field-identical
    /// to the in-proc verdict.
    Verdict { report: DivergenceReport },
}

impl WireRecord {
    /// Appends this record to `out` as one CRC-framed wire frame.
    pub(crate) fn encode_frame(&self, out: &mut Vec<u8>) {
        let mut body = Vec::with_capacity(32);
        self.encode_body(&mut body);
        push_frame(out, &body);
    }

    fn encode_body(&self, buf: &mut Vec<u8>) {
        match self {
            WireRecord::Hello {
                variants,
                threads,
                shards,
                batch,
            } => {
                buf.push(TAG_HELLO);
                buf.extend_from_slice(&variants.to_le_bytes());
                buf.extend_from_slice(&threads.to_le_bytes());
                buf.extend_from_slice(&shards.to_le_bytes());
                buf.extend_from_slice(&batch.to_le_bytes());
            }
            WireRecord::Enter {
                thread,
                lane,
                self_aware,
            } => {
                buf.push(TAG_ENTER);
                buf.extend_from_slice(&thread.to_le_bytes());
                buf.extend_from_slice(&lane.to_le_bytes());
                buf.push(u8::from(*self_aware));
            }
            WireRecord::Class { kind, lane } => {
                buf.push(TAG_CLASS);
                buf.push(kind.to_wire());
                buf.extend_from_slice(&lane.to_le_bytes());
            }
            WireRecord::Arrive {
                thread,
                lane,
                seq,
                will_publish,
                cmp,
            } => {
                buf.push(TAG_ARRIVE);
                buf.extend_from_slice(&thread.to_le_bytes());
                buf.extend_from_slice(&lane.to_le_bytes());
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.push(u8::from(*will_publish));
                encode_cmp(buf, cmp);
            }
            WireRecord::Batch {
                thread,
                lane,
                calls,
            } => {
                buf.push(TAG_BATCH);
                buf.extend_from_slice(&thread.to_le_bytes());
                buf.extend_from_slice(&lane.to_le_bytes());
                buf.extend_from_slice(&(calls.len() as u16).to_le_bytes());
                for (seq, cmp) in calls {
                    buf.extend_from_slice(&seq.to_le_bytes());
                    encode_cmp(buf, cmp);
                }
            }
            WireRecord::Publish {
                thread,
                seq,
                timestamp,
                outcome,
            } => {
                buf.push(TAG_PUBLISH);
                buf.extend_from_slice(&thread.to_le_bytes());
                buf.extend_from_slice(&seq.to_le_bytes());
                match timestamp {
                    Some(ts) => {
                        buf.push(1);
                        buf.extend_from_slice(&ts.to_le_bytes());
                    }
                    None => buf.push(0),
                }
                encode_outcome(buf, outcome);
            }
            WireRecord::SyncOp { thread } => {
                buf.push(TAG_SYNC_OP);
                buf.extend_from_slice(&thread.to_le_bytes());
            }
            WireRecord::Barrier => buf.push(TAG_BARRIER),
            WireRecord::Bye => buf.push(TAG_BYE),
            WireRecord::Ack { through } => {
                buf.push(TAG_ACK);
                buf.extend_from_slice(&through.to_le_bytes());
            }
            WireRecord::Verdict { report } => {
                buf.push(TAG_VERDICT);
                encode_report(buf, report);
            }
        }
    }

    /// Decodes one frame body.
    pub(crate) fn decode(body: &[u8]) -> Result<WireRecord, String> {
        let mut r = Reader::new(body);
        let record = match r.u8()? {
            TAG_HELLO => WireRecord::Hello {
                variants: r.u16()?,
                threads: r.u32()?,
                shards: r.u16()?,
                batch: r.u16()?,
            },
            TAG_ENTER => WireRecord::Enter {
                thread: r.u32()?,
                lane: r.u16()?,
                self_aware: r.u8()? != 0,
            },
            TAG_CLASS => {
                let tag = r.u8()?;
                let kind =
                    ClassKind::from_wire(tag).ok_or_else(|| format!("unknown class kind {tag}"))?;
                WireRecord::Class {
                    kind,
                    lane: r.u16()?,
                }
            }
            TAG_ARRIVE => WireRecord::Arrive {
                thread: r.u32()?,
                lane: r.u16()?,
                seq: r.u64()?,
                will_publish: r.u8()? != 0,
                cmp: decode_cmp(&mut r)?,
            },
            TAG_BATCH => {
                let thread = r.u32()?;
                let lane = r.u16()?;
                let count = r.u16()? as usize;
                let mut calls = Vec::with_capacity(count.min(256));
                for _ in 0..count {
                    let seq = r.u64()?;
                    calls.push((seq, decode_cmp(&mut r)?));
                }
                WireRecord::Batch {
                    thread,
                    lane,
                    calls,
                }
            }
            TAG_PUBLISH => WireRecord::Publish {
                thread: r.u32()?,
                seq: r.u64()?,
                timestamp: match r.u8()? {
                    0 => None,
                    _ => Some(r.u64()?),
                },
                outcome: decode_outcome(&mut r)?,
            },
            TAG_SYNC_OP => WireRecord::SyncOp { thread: r.u32()? },
            TAG_BARRIER => WireRecord::Barrier,
            TAG_BYE => WireRecord::Bye,
            TAG_ACK => WireRecord::Ack { through: r.u64()? },
            TAG_VERDICT => WireRecord::Verdict {
                report: decode_report(&mut r)?,
            },
            tag => return Err(format!("unknown wire record tag {tag}")),
        };
        r.finish()?;
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::divergence::DivergenceKind;
    use crate::frame::next_frame;
    use mvee_kernel::syscall::{SyscallRequest, Sysno};

    fn roundtrip(record: WireRecord) {
        let mut bytes = Vec::new();
        record.encode_frame(&mut bytes);
        let (body, end) = next_frame(&bytes, 0).unwrap().unwrap();
        assert_eq!(end, bytes.len(), "one frame per record");
        assert_eq!(WireRecord::decode(body).unwrap(), record);
    }

    fn cmp(no: Sysno, payload: &[u8]) -> ComparisonKey {
        SyscallRequest::new(no)
            .with_payload(payload)
            .comparison_key()
    }

    #[test]
    fn every_record_kind_roundtrips() {
        roundtrip(WireRecord::Hello {
            variants: 4,
            threads: 8,
            shards: 2,
            batch: 16,
        });
        roundtrip(WireRecord::Enter {
            thread: 3,
            lane: 1,
            self_aware: true,
        });
        roundtrip(WireRecord::Class {
            kind: ClassKind::Replicated,
            lane: 0,
        });
        roundtrip(WireRecord::Arrive {
            thread: 2,
            lane: 1,
            seq: 41,
            will_publish: true,
            cmp: cmp(Sysno::Write, b"hello"),
        });
        roundtrip(WireRecord::Batch {
            thread: 0,
            lane: 0,
            calls: vec![
                (1 << 63, cmp(Sysno::Brk, b"")),
                ((1 << 63) | 1, cmp(Sysno::Mprotect, b"x")),
            ],
        });
        roundtrip(WireRecord::Publish {
            thread: 1,
            seq: 9,
            timestamp: Some(77),
            outcome: SyscallOutcome::ok(42),
        });
        roundtrip(WireRecord::Publish {
            thread: 1,
            seq: 10,
            timestamp: None,
            outcome: SyscallOutcome::ok(-1),
        });
        roundtrip(WireRecord::SyncOp { thread: 5 });
        roundtrip(WireRecord::Barrier);
        roundtrip(WireRecord::Bye);
        roundtrip(WireRecord::Ack { through: 1234 });
        roundtrip(WireRecord::Verdict {
            report: DivergenceReport {
                kind: DivergenceKind::SyscallMismatch {
                    master: Sysno::Write,
                    variant: Sysno::Mprotect,
                },
                thread: 2,
                sequence: 17,
                variant: 1,
            },
        });
    }

    #[test]
    fn truncated_and_trailing_bodies_are_rejected() {
        let mut bytes = Vec::new();
        WireRecord::Ack { through: 7 }.encode_frame(&mut bytes);
        let (body, _) = next_frame(&bytes, 0).unwrap().unwrap();
        assert!(WireRecord::decode(&body[..body.len() - 1]).is_err());
        let mut long = body.to_vec();
        long.push(0);
        assert!(WireRecord::decode(&long).is_err());
        assert!(WireRecord::decode(&[200]).is_err(), "unknown tag");
    }
}
