//! Per-variant state snapshots: the rollback points for respawn recovery.
//!
//! The dMVX line of work the paper builds towards recovers from a diverged
//! variant not by tearing the whole MVEE down but by *quarantining* the
//! disagreeing variant, continuing on a degraded quorum, and later replaying
//! the lost variant back from a checkpoint.  This module provides the
//! checkpoint half of that story:
//!
//! * [`SnapshotRecord`] — a CRC-framed, versioned serialisation of one
//!   variant's *private* emulated-kernel state
//!   ([`ProcessImage`](mvee_kernel::process::ProcessImage): descriptor
//!   table, address space, threads, affinity, exit status) plus the
//!   positions needed to resume: the variant's sync-op count, the journal
//!   length at capture time and the virtual-clock reading.
//! * [`SnapshotStore`] — one slot per variant holding the most recent
//!   record, with an interval counter ([`SnapshotStore::tick`]) that fires
//!   every `snapshot_every` sync ops.
//!
//! # What a snapshot does and does not capture
//!
//! Only the variant's private state is recorded.  Shared kernel state — VFS
//! contents, pipe buffers, socket queues, futex wait queues, the virtual
//! clock — is owned by the whole variant set: while one variant sits in
//! quarantine the survivors keep advancing that shared frontier, so rolling
//! it back would corrupt *them*.  A respawned variant therefore restores its
//! private image and rejoins the shared state wherever the survivors have
//! taken it, exactly as a restarted process rejoins a live filesystem.
//!
//! # Where snapshots are taken
//!
//! Capture happens in the agent replication hook, immediately after a sync
//! op's deferred comparisons flush (`ReplicationEvent::SyncOp` in
//! `mvee.rs`).  Every transport funnels through that hook — blocking sync
//! ports, async gateway workers, poller pools and the remote leader alike —
//! so the capture point is transport-invariant: the same workload snapshots
//! at the same sync-op boundaries no matter how its calls reach the
//! monitor.
//!
//! # Wire format
//!
//! Same discipline as the divergence journal: a magic, a version, then one
//! CRC-protected frame from [`crate::frame`], all little-endian.
//!
//! ```text
//! snapshot : "MVSS" | version u16 | frame(body)
//! body     : variant u16 | sync_ops u64 | journal_records u64 | clock_ns u64
//!          | pid u64 | exited (u8 flag, i32 status when 1)
//!          | fd_limit u32 | fd_count u32 | fd_entry*
//!          | brk_base u64 | brk_current u64 | mmap_top u64 | mmap_cursor u64
//!          | region_count u32 | (start u64 | len u64 | prot u8 | heap u8)*
//!          | thread_count u32 | (tid u64 | state | syscall_count u64)*
//!          | affinity_count u32 | (tid u64 | core u32)*
//! fd_entry : fd i32 | tag u8 | payload
//!            tag 0 File{inode u64, offset u64, writable u8}
//!            tag 1 PipeRead{pipe u64}    tag 2 PipeWrite{pipe u64}
//!            tag 3 Socket{socket u64}    tag 4 StandardStream{which u8}
//! state    : tag u8 — 0 Running | 1 BlockedOnFutex{addr u64}
//!            | 2 Exited{status i32}
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mvee_kernel::fd::{FdObject, FdTable};
use mvee_kernel::mem::{AddressSpace, Protection, Region};
use mvee_kernel::process::{ProcessImage, Thread, ThreadState};

use crate::frame::{self, FrameError, Reader};

/// Magic bytes opening every encoded snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"MVSS";

/// Current snapshot format version.  Bump on any unversioned layout change;
/// the golden tests pin the bytes.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Why a byte string is not a decodable snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The stream does not open with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The version field names a format this build does not speak.
    UnsupportedVersion(u16),
    /// The CRC frame is torn or corrupt.
    Frame(FrameError),
    /// The frame decodes but its body is inconsistent.
    Malformed(String),
    /// Valid snapshot followed by trailing bytes.
    TrailingData,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot: bad magic"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::Frame(e) => write!(f, "snapshot frame error: {e}"),
            SnapshotError::Malformed(reason) => write!(f, "malformed snapshot: {reason}"),
            SnapshotError::TrailingData => write!(f, "trailing bytes after snapshot"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<FrameError> for SnapshotError {
    fn from(e: FrameError) -> Self {
        SnapshotError::Frame(e)
    }
}

/// One variant's checkpoint: its private kernel image plus the stream
/// positions a respawn needs to catch the variant back up.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotRecord {
    /// The variant the snapshot belongs to.
    pub variant: usize,
    /// The variant's sync-op count at capture time.
    pub sync_ops: u64,
    /// Journal records written when the snapshot was taken — the respawn
    /// replays the journal suffix past this position.
    pub journal_records: u64,
    /// Virtual-clock reading at capture time (diagnostics only; the clock
    /// is shared state and is never rolled back).
    pub clock_ns: u64,
    /// The variant's private kernel state.
    pub image: ProcessImage,
}

impl SnapshotRecord {
    /// Serialises the record: magic, version, one CRC frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(256);
        body.extend_from_slice(&(self.variant as u16).to_le_bytes());
        body.extend_from_slice(&self.sync_ops.to_le_bytes());
        body.extend_from_slice(&self.journal_records.to_le_bytes());
        body.extend_from_slice(&self.clock_ns.to_le_bytes());
        encode_image(&mut body, &self.image);

        let mut out = Vec::with_capacity(body.len() + 16);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        frame::push_frame(&mut out, &body);
        out
    }

    /// Decodes a record previously produced by [`Self::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < 6 || bytes[..4] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let (body, next) = frame::next_frame(bytes, 6)?
            .ok_or(SnapshotError::Frame(FrameError::Truncated { offset: 6 }))?;
        if next != bytes.len() {
            return Err(SnapshotError::TrailingData);
        }
        let mut r = Reader::new(body);
        let record = decode_body(&mut r).map_err(SnapshotError::Malformed)?;
        r.finish().map_err(SnapshotError::Malformed)?;
        Ok(record)
    }
}

fn encode_image(body: &mut Vec<u8>, image: &ProcessImage) {
    body.extend_from_slice(&image.pid.to_le_bytes());
    match image.exited {
        Some(status) => {
            body.push(1);
            body.extend_from_slice(&status.to_le_bytes());
        }
        None => body.push(0),
    }

    body.extend_from_slice(&(image.fds.limit() as u32).to_le_bytes());
    body.extend_from_slice(&(image.fds.len() as u32).to_le_bytes());
    for (fd, obj) in image.fds.iter() {
        body.extend_from_slice(&fd.to_le_bytes());
        match obj {
            FdObject::File {
                inode,
                offset,
                writable,
            } => {
                body.push(0);
                body.extend_from_slice(&inode.to_le_bytes());
                body.extend_from_slice(&offset.to_le_bytes());
                body.push(u8::from(*writable));
            }
            FdObject::PipeRead { pipe } => {
                body.push(1);
                body.extend_from_slice(&pipe.to_le_bytes());
            }
            FdObject::PipeWrite { pipe } => {
                body.push(2);
                body.extend_from_slice(&pipe.to_le_bytes());
            }
            FdObject::Socket { socket } => {
                body.push(3);
                body.extend_from_slice(&socket.to_le_bytes());
            }
            FdObject::StandardStream { which } => {
                body.push(4);
                body.push(*which);
            }
        }
    }

    body.extend_from_slice(&image.mem.brk_base().to_le_bytes());
    body.extend_from_slice(&image.mem.brk().to_le_bytes());
    body.extend_from_slice(&image.mem.mmap_top().to_le_bytes());
    body.extend_from_slice(&image.mem.mmap_cursor().to_le_bytes());
    body.extend_from_slice(&(image.mem.region_count() as u32).to_le_bytes());
    for region in image.mem.regions() {
        body.extend_from_slice(&region.start.to_le_bytes());
        body.extend_from_slice(&region.len.to_le_bytes());
        body.push(region.prot.bits());
        body.push(u8::from(region.is_heap));
    }

    body.extend_from_slice(&(image.threads.len() as u32).to_le_bytes());
    for thread in &image.threads {
        body.extend_from_slice(&thread.tid.to_le_bytes());
        match thread.state {
            ThreadState::Running => body.push(0),
            ThreadState::BlockedOnFutex { addr } => {
                body.push(1);
                body.extend_from_slice(&addr.to_le_bytes());
            }
            ThreadState::Exited { status } => {
                body.push(2);
                body.extend_from_slice(&status.to_le_bytes());
            }
        }
        body.extend_from_slice(&thread.syscall_count.to_le_bytes());
    }

    body.extend_from_slice(&(image.affinity.len() as u32).to_le_bytes());
    for (tid, core) in &image.affinity {
        body.extend_from_slice(&tid.to_le_bytes());
        body.extend_from_slice(&core.to_le_bytes());
    }
}

fn decode_body(r: &mut Reader<'_>) -> Result<SnapshotRecord, String> {
    let variant = r.u16()? as usize;
    let sync_ops = r.u64()?;
    let journal_records = r.u64()?;
    let clock_ns = r.u64()?;

    let pid = r.u64()?;
    let exited = match r.u8()? {
        0 => None,
        1 => Some(r.i32()?),
        other => return Err(format!("bad exited flag {other}")),
    };

    let limit = r.u32()? as usize;
    let fd_count = r.u32()? as usize;
    let mut fds = FdTable::empty();
    fds.set_limit(limit);
    for _ in 0..fd_count {
        let fd = r.i32()?;
        let obj = match r.u8()? {
            0 => FdObject::File {
                inode: r.u64()?,
                offset: r.u64()?,
                writable: r.u8()? != 0,
            },
            1 => FdObject::PipeRead { pipe: r.u64()? },
            2 => FdObject::PipeWrite { pipe: r.u64()? },
            3 => FdObject::Socket { socket: r.u64()? },
            4 => FdObject::StandardStream { which: r.u8()? },
            tag => return Err(format!("bad fd tag {tag}")),
        };
        fds.allocate_at(fd, obj)
            .map_err(|e| format!("fd {fd} does not fit the table: {e:?}"))?;
    }

    let brk_base = r.u64()?;
    let brk_current = r.u64()?;
    let mmap_top = r.u64()?;
    let mmap_cursor = r.u64()?;
    let region_count = r.u32()? as usize;
    let mut regions = Vec::with_capacity(region_count.min(1024));
    for _ in 0..region_count {
        regions.push(Region {
            start: r.u64()?,
            len: r.u64()?,
            prot: Protection::from_bits(r.u8()?),
            is_heap: r.u8()? != 0,
        });
    }
    let mem = AddressSpace::from_raw_parts(brk_base, brk_current, mmap_top, mmap_cursor, regions);

    let thread_count = r.u32()? as usize;
    let mut threads = Vec::with_capacity(thread_count.min(1024));
    for _ in 0..thread_count {
        let tid = r.u64()?;
        let state = match r.u8()? {
            0 => ThreadState::Running,
            1 => ThreadState::BlockedOnFutex { addr: r.u64()? },
            2 => ThreadState::Exited { status: r.i32()? },
            tag => return Err(format!("bad thread-state tag {tag}")),
        };
        threads.push(Thread {
            tid,
            state,
            syscall_count: r.u64()?,
        });
    }

    let affinity_count = r.u32()? as usize;
    let mut affinity = std::collections::BTreeMap::new();
    for _ in 0..affinity_count {
        let tid = r.u64()?;
        affinity.insert(tid, r.u32()?);
    }

    Ok(SnapshotRecord {
        variant,
        sync_ops,
        journal_records,
        clock_ns,
        image: ProcessImage {
            pid,
            fds,
            mem,
            threads,
            affinity,
            exited,
        },
    })
}

/// Per-variant lane inside a [`SnapshotStore`].
#[derive(Debug, Default)]
struct Lane {
    /// Total sync ops this lane has ticked.
    ops: AtomicU64,
    /// Snapshots installed so far.
    taken: AtomicU64,
    /// The most recent record.
    latest: parking_lot::Mutex<Option<Arc<SnapshotRecord>>>,
}

/// Holds each variant's most recent [`SnapshotRecord`] and decides, from a
/// per-variant sync-op counter, when the next one is due.
///
/// Only the latest record is retained: the journal suffix past a snapshot's
/// `journal_records` position is what replays the variant forward, so older
/// snapshots buy nothing but memory.
#[derive(Debug)]
pub struct SnapshotStore {
    every: u64,
    lanes: Box<[Lane]>,
}

impl SnapshotStore {
    /// Creates a store for `variants` lanes snapshotting every `every` sync
    /// ops.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn new(variants: usize, every: u64) -> Self {
        assert!(
            every > 0,
            "the snapshot interval must be at least one sync op"
        );
        SnapshotStore {
            every,
            lanes: (0..variants).map(|_| Lane::default()).collect(),
        }
    }

    /// The configured interval in sync ops.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Counts one sync op for `variant`.  Returns `Some(total)` — the
    /// lane's running sync-op count — exactly when the count crosses a
    /// multiple of the interval, i.e. when a snapshot is due.
    ///
    /// Concurrent threads of the same variant may tick simultaneously; the
    /// modulo test hands the capture duty to exactly one of them per
    /// crossing.
    pub fn tick(&self, variant: usize) -> Option<u64> {
        let lane = self.lanes.get(variant)?;
        let total = lane.ops.fetch_add(1, Ordering::AcqRel) + 1;
        (total % self.every == 0).then_some(total)
    }

    /// Installs `record` as its variant's latest snapshot.
    pub fn install(&self, record: SnapshotRecord) {
        if let Some(lane) = self.lanes.get(record.variant) {
            *lane.latest.lock() = Some(Arc::new(record));
            lane.taken.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// The most recent snapshot for `variant`, if one has been taken.
    pub fn latest(&self, variant: usize) -> Option<Arc<SnapshotRecord>> {
        self.lanes.get(variant)?.latest.lock().clone()
    }

    /// How many snapshots `variant` has installed.
    pub fn taken(&self, variant: usize) -> u64 {
        self.lanes
            .get(variant)
            .map(|l| l.taken.load(Ordering::Acquire))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built image touching every fd tag, thread state and region
    /// field the codec must carry.
    fn exotic_image() -> ProcessImage {
        let mut fds = FdTable::empty();
        fds.set_limit(64);
        fds.allocate_at(0, FdObject::StandardStream { which: 0 })
            .unwrap();
        fds.allocate_at(
            3,
            FdObject::File {
                inode: 9,
                offset: 512,
                writable: true,
            },
        )
        .unwrap();
        fds.allocate_at(4, FdObject::PipeRead { pipe: 1 }).unwrap();
        fds.allocate_at(5, FdObject::PipeWrite { pipe: 1 }).unwrap();
        fds.allocate_at(7, FdObject::Socket { socket: 2 }).unwrap();
        let mem = AddressSpace::from_raw_parts(
            0x1000,
            0x3000,
            0x7000_0000,
            0x6fff_c000,
            [
                Region {
                    start: 0x1000,
                    len: 0x2000,
                    prot: Protection::RW,
                    is_heap: true,
                },
                Region {
                    start: 0x6fff_c000,
                    len: 0x4000,
                    prot: Protection::RX,
                    is_heap: false,
                },
            ],
        );
        let threads = vec![
            Thread {
                tid: 0,
                state: ThreadState::Running,
                syscall_count: 41,
            },
            Thread {
                tid: 1,
                state: ThreadState::BlockedOnFutex { addr: 0x2040 },
                syscall_count: 7,
            },
            Thread {
                tid: 2,
                state: ThreadState::Exited { status: -9 },
                syscall_count: 3,
            },
        ];
        let mut affinity = std::collections::BTreeMap::new();
        affinity.insert(0, 2);
        affinity.insert(2, 5);
        ProcessImage {
            pid: 3,
            fds,
            mem,
            threads,
            affinity,
            exited: None,
        }
    }

    fn exotic_record() -> SnapshotRecord {
        SnapshotRecord {
            variant: 3,
            sync_ops: 4096,
            journal_records: 777,
            clock_ns: 123_456_789,
            image: exotic_image(),
        }
    }

    #[test]
    fn encode_decode_is_the_identity() {
        let record = exotic_record();
        let bytes = record.encode();
        let decoded = SnapshotRecord::decode(&bytes).unwrap();
        assert_eq!(decoded, record);
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn exited_process_round_trips() {
        let mut record = exotic_record();
        record.image.exited = Some(17);
        let decoded = SnapshotRecord::decode(&record.encode()).unwrap();
        assert_eq!(decoded.image.exited, Some(17));
    }

    /// The minimal snapshot (empty image) as hex — pins the magic, the
    /// version, the frame layout and every fixed-width field at once.  To
    /// bless an intentional format change, bump `SNAPSHOT_VERSION` and
    /// update the literal.
    #[test]
    fn minimal_snapshot_bytes_are_pinned() {
        let record = SnapshotRecord {
            variant: 1,
            sync_ops: 2,
            journal_records: 3,
            clock_ns: 4,
            image: ProcessImage {
                pid: 5,
                fds: FdTable::empty(),
                mem: AddressSpace::from_raw_parts(0, 0, 0, 0, []),
                threads: Vec::new(),
                affinity: std::collections::BTreeMap::new(),
                exited: None,
            },
        };
        let actual: String = record.encode().iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(
            actual,
            "4d5653530100570000005e7aa797\
             0100\
             0200000000000000\
             0300000000000000\
             0400000000000000\
             0500000000000000\
             00\
             0004000000000000\
             0000000000000000\
             0000000000000000\
             0000000000000000\
             0000000000000000\
             00000000\
             00000000\
             00000000",
            "the minimal snapshot's bytes moved: layout changed without a \
             SNAPSHOT_VERSION bump"
        );
    }

    #[test]
    fn truncation_and_corruption_are_typed() {
        let bytes = exotic_record().encode();
        assert_eq!(SnapshotRecord::decode(&[]), Err(SnapshotError::BadMagic));
        assert_eq!(
            SnapshotRecord::decode(b"NOPE\x01\x00"),
            Err(SnapshotError::BadMagic)
        );
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 0x2a;
        assert_eq!(
            SnapshotRecord::decode(&wrong_version),
            Err(SnapshotError::UnsupportedVersion(42))
        );
        for cut in 7..bytes.len() {
            assert_eq!(
                SnapshotRecord::decode(&bytes[..cut]),
                Err(SnapshotError::Frame(FrameError::Truncated { offset: 6 })),
                "cut at {cut}"
            );
        }
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert_eq!(
            SnapshotRecord::decode(&flipped),
            Err(SnapshotError::Frame(FrameError::Corrupt { offset: 6 }))
        );
        let mut trailing = bytes;
        trailing.push(0);
        assert_eq!(
            SnapshotRecord::decode(&trailing),
            Err(SnapshotError::TrailingData)
        );
    }

    #[test]
    fn store_fires_on_interval_crossings_only() {
        let store = SnapshotStore::new(2, 4);
        assert_eq!(store.every(), 4);
        for i in 1..=12u64 {
            let due = store.tick(0);
            if i % 4 == 0 {
                assert_eq!(due, Some(i), "tick {i}");
            } else {
                assert_eq!(due, None, "tick {i}");
            }
        }
        // Lanes count independently; out-of-range lanes never fire.
        assert_eq!(store.tick(1), None);
        assert_eq!(store.tick(9), None);
    }

    #[test]
    fn store_retains_only_the_latest_record() {
        let store = SnapshotStore::new(4, 1);
        assert!(store.latest(3).is_none());
        let mut record = exotic_record();
        store.install(record.clone());
        record.sync_ops = 8192;
        store.install(record.clone());
        assert_eq!(store.taken(3), 2);
        assert_eq!(store.latest(3).unwrap().sync_ops, 8192);
        assert_eq!(store.taken(0), 0);
    }
}
