//! Error numbers and result types for the simulated kernel.
//!
//! The simulated kernel mirrors the Linux convention of returning small
//! negative integers on failure.  [`Errno`] models the subset of error
//! numbers the MVEE monitor and the workloads actually observe.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Error numbers returned by the simulated kernel.
///
/// The numeric values match the Linux x86-64 ABI so that traces produced by
/// the simulated kernel read like real `strace` output and so the divergence
/// detector compares the same representation a ptrace monitor would compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(i32)]
pub enum Errno {
    /// Operation not permitted.
    Eperm = 1,
    /// No such file or directory.
    Enoent = 2,
    /// Interrupted system call.
    Eintr = 4,
    /// I/O error.
    Eio = 5,
    /// Bad file descriptor.
    Ebadf = 9,
    /// Resource temporarily unavailable (also `EWOULDBLOCK`).
    Eagain = 11,
    /// Out of memory.
    Enomem = 12,
    /// Permission denied.
    Eacces = 13,
    /// Bad address.
    Efault = 14,
    /// Device or resource busy.
    Ebusy = 16,
    /// File exists.
    Eexist = 17,
    /// Not a directory.
    Enotdir = 20,
    /// Is a directory.
    Eisdir = 21,
    /// Invalid argument.
    Einval = 22,
    /// Too many open files.
    Emfile = 24,
    /// Illegal seek.
    Espipe = 29,
    /// Broken pipe.
    Epipe = 32,
    /// Function not implemented.
    Enosys = 38,
    /// Socket operation on non-socket.
    Enotsock = 88,
    /// Address already in use.
    Eaddrinuse = 98,
    /// Connection reset by peer.
    Econnreset = 104,
    /// Transport endpoint is not connected.
    Enotconn = 107,
    /// Connection refused.
    Econnrefused = 111,
    /// Operation timed out.
    Etimedout = 110,
}

impl Errno {
    /// Returns the raw (positive) error number.
    pub fn as_raw(self) -> i32 {
        self as i32
    }

    /// Returns the value as it would appear in a syscall return register:
    /// `-errno`.
    pub fn as_syscall_ret(self) -> i64 {
        -(self as i32 as i64)
    }

    /// Reconstructs an [`Errno`] from a raw (positive) error number, as
    /// stored in serialized journals and traces.  Returns `None` for
    /// numbers outside the modelled subset so corrupted input surfaces as
    /// a decode error instead of a bogus errno.
    pub fn from_raw(raw: i32) -> Option<Errno> {
        Some(match raw {
            1 => Errno::Eperm,
            2 => Errno::Enoent,
            4 => Errno::Eintr,
            5 => Errno::Eio,
            9 => Errno::Ebadf,
            11 => Errno::Eagain,
            12 => Errno::Enomem,
            13 => Errno::Eacces,
            14 => Errno::Efault,
            16 => Errno::Ebusy,
            17 => Errno::Eexist,
            20 => Errno::Enotdir,
            21 => Errno::Eisdir,
            22 => Errno::Einval,
            24 => Errno::Emfile,
            29 => Errno::Espipe,
            32 => Errno::Epipe,
            38 => Errno::Enosys,
            88 => Errno::Enotsock,
            98 => Errno::Eaddrinuse,
            104 => Errno::Econnreset,
            107 => Errno::Enotconn,
            110 => Errno::Etimedout,
            111 => Errno::Econnrefused,
            _ => return None,
        })
    }

    /// Returns the conventional upper-case symbol (e.g. `"ENOENT"`).
    pub fn symbol(self) -> &'static str {
        match self {
            Errno::Eperm => "EPERM",
            Errno::Enoent => "ENOENT",
            Errno::Eintr => "EINTR",
            Errno::Eio => "EIO",
            Errno::Ebadf => "EBADF",
            Errno::Eagain => "EAGAIN",
            Errno::Enomem => "ENOMEM",
            Errno::Eacces => "EACCES",
            Errno::Efault => "EFAULT",
            Errno::Ebusy => "EBUSY",
            Errno::Eexist => "EEXIST",
            Errno::Enotdir => "ENOTDIR",
            Errno::Eisdir => "EISDIR",
            Errno::Einval => "EINVAL",
            Errno::Emfile => "EMFILE",
            Errno::Espipe => "ESPIPE",
            Errno::Epipe => "EPIPE",
            Errno::Enosys => "ENOSYS",
            Errno::Enotsock => "ENOTSOCK",
            Errno::Eaddrinuse => "EADDRINUSE",
            Errno::Econnreset => "ECONNRESET",
            Errno::Enotconn => "ENOTCONN",
            Errno::Econnrefused => "ECONNREFUSED",
            Errno::Etimedout => "ETIMEDOUT",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.symbol(), self.as_raw())
    }
}

impl std::error::Error for Errno {}

/// Result type used throughout the simulated kernel.
pub type KernelResult<T> = Result<T, Errno>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_raw_values_match_linux_abi() {
        assert_eq!(Errno::Eperm.as_raw(), 1);
        assert_eq!(Errno::Enoent.as_raw(), 2);
        assert_eq!(Errno::Ebadf.as_raw(), 9);
        assert_eq!(Errno::Eagain.as_raw(), 11);
        assert_eq!(Errno::Einval.as_raw(), 22);
        assert_eq!(Errno::Enosys.as_raw(), 38);
        assert_eq!(Errno::Econnrefused.as_raw(), 111);
    }

    #[test]
    fn errno_syscall_return_is_negative() {
        assert_eq!(Errno::Enoent.as_syscall_ret(), -2);
        assert_eq!(Errno::Emfile.as_syscall_ret(), -24);
    }

    #[test]
    fn errno_symbols_are_uppercase() {
        for e in [
            Errno::Eperm,
            Errno::Enoent,
            Errno::Eio,
            Errno::Ebadf,
            Errno::Epipe,
            Errno::Enosys,
        ] {
            assert!(e.symbol().chars().all(|c| c.is_ascii_uppercase()));
            assert!(e.symbol().starts_with('E'));
        }
    }

    #[test]
    fn errno_from_raw_round_trips_every_variant() {
        for e in [
            Errno::Eperm,
            Errno::Enoent,
            Errno::Eintr,
            Errno::Eio,
            Errno::Ebadf,
            Errno::Eagain,
            Errno::Enomem,
            Errno::Eacces,
            Errno::Efault,
            Errno::Ebusy,
            Errno::Eexist,
            Errno::Enotdir,
            Errno::Eisdir,
            Errno::Einval,
            Errno::Emfile,
            Errno::Espipe,
            Errno::Epipe,
            Errno::Enosys,
            Errno::Enotsock,
            Errno::Eaddrinuse,
            Errno::Econnreset,
            Errno::Enotconn,
            Errno::Econnrefused,
            Errno::Etimedout,
        ] {
            assert_eq!(Errno::from_raw(e.as_raw()), Some(e));
        }
        assert_eq!(Errno::from_raw(0), None);
        assert_eq!(Errno::from_raw(-2), None);
        assert_eq!(Errno::from_raw(12345), None);
    }

    #[test]
    fn errno_display_contains_symbol_and_number() {
        let s = format!("{}", Errno::Einval);
        assert!(s.contains("EINVAL"));
        assert!(s.contains("22"));
    }
}
