//! Per-process file-descriptor tables.
//!
//! File-descriptor allocation is the paper's canonical example of a shared
//! kernel resource whose allocation order is externally visible (§3.1): the
//! kernel hands out the *lowest available* descriptor, so if two threads race
//! on `open`, the FD each thread receives depends on the order in which their
//! calls reach the kernel.  The MVEE must therefore order FD-allocating calls
//! across variants (or replicate the master's results).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{Errno, KernelResult};

/// What a file descriptor refers to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FdObject {
    /// A regular file in the VFS, identified by inode number.
    File {
        /// Inode of the open file.
        inode: u64,
        /// Current file offset.
        offset: u64,
        /// Whether the descriptor allows writes.
        writable: bool,
    },
    /// The read end of a pipe.
    PipeRead {
        /// Pipe identifier.
        pipe: u64,
    },
    /// The write end of a pipe.
    PipeWrite {
        /// Pipe identifier.
        pipe: u64,
    },
    /// A socket endpoint.
    Socket {
        /// Socket identifier in the network stack.
        socket: u64,
    },
    /// One of the standard streams (0, 1, 2).
    StandardStream {
        /// 0 = stdin, 1 = stdout, 2 = stderr.
        which: u8,
    },
}

/// A per-process table mapping descriptor numbers to open objects.
///
/// Allocation follows the POSIX rule the paper relies on: the lowest
/// non-negative integer not currently open.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FdTable {
    entries: BTreeMap<i32, FdObject>,
    /// Maximum number of open descriptors (RLIMIT_NOFILE model).
    limit: usize,
}

/// Default soft limit on open descriptors, mirroring a typical Linux default.
pub const DEFAULT_FD_LIMIT: usize = 1024;

impl FdTable {
    /// Creates a table pre-populated with the three standard streams.
    pub fn with_standard_streams() -> Self {
        let mut t = FdTable {
            entries: BTreeMap::new(),
            limit: DEFAULT_FD_LIMIT,
        };
        for i in 0..3u8 {
            t.entries
                .insert(i32::from(i), FdObject::StandardStream { which: i });
        }
        t
    }

    /// Creates an empty table (no standard streams), mainly for tests.
    pub fn empty() -> Self {
        FdTable {
            entries: BTreeMap::new(),
            limit: DEFAULT_FD_LIMIT,
        }
    }

    /// Overrides the descriptor limit.
    pub fn set_limit(&mut self, limit: usize) {
        self.limit = limit;
    }

    /// The current descriptor limit (RLIMIT_NOFILE model).
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no descriptors are open.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Allocates the lowest available descriptor for `obj`.
    ///
    /// Returns `EMFILE` when the table is full.
    pub fn allocate(&mut self, obj: FdObject) -> KernelResult<i32> {
        if self.entries.len() >= self.limit {
            return Err(Errno::Emfile);
        }
        let fd = self.lowest_free();
        self.entries.insert(fd, obj);
        Ok(fd)
    }

    /// Allocates a specific descriptor number (used by `dup2`-style calls).
    ///
    /// Any object previously installed at `fd` is silently replaced, matching
    /// `dup2` semantics.
    pub fn allocate_at(&mut self, fd: i32, obj: FdObject) -> KernelResult<i32> {
        if fd < 0 {
            return Err(Errno::Ebadf);
        }
        if self.entries.len() >= self.limit && !self.entries.contains_key(&fd) {
            return Err(Errno::Emfile);
        }
        self.entries.insert(fd, obj);
        Ok(fd)
    }

    /// Returns the object behind `fd`.
    pub fn get(&self, fd: i32) -> KernelResult<&FdObject> {
        self.entries.get(&fd).ok_or(Errno::Ebadf)
    }

    /// Returns the object behind `fd` mutably.
    pub fn get_mut(&mut self, fd: i32) -> KernelResult<&mut FdObject> {
        self.entries.get_mut(&fd).ok_or(Errno::Ebadf)
    }

    /// Closes `fd`, returning the object it referred to.
    pub fn close(&mut self, fd: i32) -> KernelResult<FdObject> {
        self.entries.remove(&fd).ok_or(Errno::Ebadf)
    }

    /// Duplicates `fd` onto the lowest available descriptor.
    pub fn dup(&mut self, fd: i32) -> KernelResult<i32> {
        let obj = self.get(fd)?.clone();
        self.allocate(obj)
    }

    /// Iterates over `(fd, object)` pairs in ascending descriptor order.
    pub fn iter(&self) -> impl Iterator<Item = (i32, &FdObject)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }

    fn lowest_free(&self) -> i32 {
        let mut candidate = 0;
        for &fd in self.entries.keys() {
            if fd == candidate {
                candidate += 1;
            } else if fd > candidate {
                break;
            }
        }
        candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(inode: u64) -> FdObject {
        FdObject::File {
            inode,
            offset: 0,
            writable: false,
        }
    }

    #[test]
    fn standard_streams_occupy_first_three_descriptors() {
        let t = FdTable::with_standard_streams();
        assert_eq!(t.len(), 3);
        assert!(matches!(
            t.get(0),
            Ok(FdObject::StandardStream { which: 0 })
        ));
        assert!(matches!(
            t.get(2),
            Ok(FdObject::StandardStream { which: 2 })
        ));
    }

    #[test]
    fn allocation_returns_lowest_available() {
        let mut t = FdTable::with_standard_streams();
        assert_eq!(t.allocate(file(10)).unwrap(), 3);
        assert_eq!(t.allocate(file(11)).unwrap(), 4);
        t.close(3).unwrap();
        // The hole at 3 is reused before extending past 4.
        assert_eq!(t.allocate(file(12)).unwrap(), 3);
        assert_eq!(t.allocate(file(13)).unwrap(), 5);
    }

    #[test]
    fn allocation_order_determines_fd_values() {
        // The §3.1 scenario: two opens in different orders yield swapped FDs.
        let mut first = FdTable::with_standard_streams();
        let a1 = first.allocate(file(100)).unwrap();
        let b1 = first.allocate(file(200)).unwrap();

        let mut second = FdTable::with_standard_streams();
        let b2 = second.allocate(file(200)).unwrap();
        let a2 = second.allocate(file(100)).unwrap();

        assert_eq!(a1, b2);
        assert_eq!(b1, a2);
        assert_ne!(a1, a2);
    }

    #[test]
    fn close_of_unknown_fd_is_ebadf() {
        let mut t = FdTable::empty();
        assert_eq!(t.close(5), Err(Errno::Ebadf));
        assert_eq!(t.get(5).err(), Some(Errno::Ebadf));
    }

    #[test]
    fn limit_is_enforced() {
        let mut t = FdTable::empty();
        t.set_limit(2);
        t.allocate(file(1)).unwrap();
        t.allocate(file(2)).unwrap();
        assert_eq!(t.allocate(file(3)), Err(Errno::Emfile));
    }

    #[test]
    fn dup_duplicates_to_lowest_slot() {
        let mut t = FdTable::with_standard_streams();
        let fd = t.allocate(file(42)).unwrap();
        t.close(1).unwrap();
        let dup = t.dup(fd).unwrap();
        assert_eq!(dup, 1);
        assert!(matches!(t.get(dup), Ok(FdObject::File { inode: 42, .. })));
    }

    #[test]
    fn allocate_at_replaces_existing_entry() {
        let mut t = FdTable::with_standard_streams();
        t.allocate_at(1, file(7)).unwrap();
        assert!(matches!(t.get(1), Ok(FdObject::File { inode: 7, .. })));
        assert_eq!(t.allocate_at(-1, file(8)), Err(Errno::Ebadf));
    }

    #[test]
    fn iter_yields_ascending_descriptors() {
        let mut t = FdTable::with_standard_streams();
        t.allocate(file(1)).unwrap();
        let fds: Vec<i32> = t.iter().map(|(fd, _)| fd).collect();
        let mut sorted = fds.clone();
        sorted.sort_unstable();
        assert_eq!(fds, sorted);
    }
}
