//! Futex model: the kernel half of user-space blocking synchronization.
//!
//! The paper singles out `sys_futex` as the one blocking call that would
//! otherwise need ordering and explains that it is instead treated like an
//! I/O operation (§4.1, footnote 5).  This module provides the wait-queue
//! bookkeeping the simulated kernel needs for that treatment: `futex_wait`
//! registers a waiter (if the futex word still holds the expected value) and
//! `futex_wake` releases up to `n` waiters in FIFO order.
//!
//! The futex *word* itself lives in the variant's simulated memory; the
//! caller passes its current value, mirroring how the real kernel reads the
//! word under the queue lock.

use std::collections::HashMap;
use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Identifies a waiting thread: (variant-local process id, thread id).
pub type WaiterId = (u64, u64);

/// Result of a `futex_wait` attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FutexWaitResult {
    /// The caller was enqueued and must block until woken.
    WouldBlock,
    /// The futex word no longer held the expected value (`EAGAIN` in Linux).
    ValueMismatch,
}

/// Per-process futex wait queues keyed by futex-word address.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct FutexTable {
    queues: HashMap<u64, VecDeque<WaiterId>>,
    /// Total number of wake-ups delivered, for statistics.
    wakeups: u64,
    /// Total number of waits that actually blocked.
    blocked_waits: u64,
}

impl FutexTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to wait on the futex at `addr`.
    ///
    /// `current` is the current value of the futex word as read by the
    /// caller; `expected` is the value the caller believes it holds.  When
    /// they differ the wait fails immediately with
    /// [`FutexWaitResult::ValueMismatch`]; otherwise the waiter is enqueued.
    pub fn wait(
        &mut self,
        addr: u64,
        current: u32,
        expected: u32,
        waiter: WaiterId,
    ) -> FutexWaitResult {
        if current != expected {
            return FutexWaitResult::ValueMismatch;
        }
        self.queues.entry(addr).or_default().push_back(waiter);
        self.blocked_waits += 1;
        FutexWaitResult::WouldBlock
    }

    /// Wakes up to `count` waiters on `addr`, returning them in FIFO order.
    pub fn wake(&mut self, addr: u64, count: usize) -> Vec<WaiterId> {
        let mut woken = Vec::new();
        if let Some(q) = self.queues.get_mut(&addr) {
            while woken.len() < count {
                match q.pop_front() {
                    Some(w) => woken.push(w),
                    None => break,
                }
            }
            if q.is_empty() {
                self.queues.remove(&addr);
            }
        }
        self.wakeups += woken.len() as u64;
        woken
    }

    /// Removes a specific waiter (used when a thread exits while blocked).
    pub fn remove_waiter(&mut self, addr: u64, waiter: WaiterId) -> bool {
        if let Some(q) = self.queues.get_mut(&addr) {
            if let Some(pos) = q.iter().position(|w| *w == waiter) {
                q.remove(pos);
                if q.is_empty() {
                    self.queues.remove(&addr);
                }
                return true;
            }
        }
        false
    }

    /// Number of threads currently blocked on `addr`.
    pub fn waiters_on(&self, addr: u64) -> usize {
        self.queues.get(&addr).map_or(0, VecDeque::len)
    }

    /// Total number of threads blocked on any futex.
    pub fn total_waiters(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// Number of wake-ups delivered so far.
    pub fn wakeup_count(&self) -> u64 {
        self.wakeups
    }

    /// Number of waits that actually enqueued a waiter.
    pub fn blocked_wait_count(&self) -> u64 {
        self.blocked_waits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ADDR: u64 = 0x7f00_0000_1000;

    #[test]
    fn wait_with_matching_value_blocks() {
        let mut t = FutexTable::new();
        assert_eq!(t.wait(ADDR, 1, 1, (1, 1)), FutexWaitResult::WouldBlock);
        assert_eq!(t.waiters_on(ADDR), 1);
        assert_eq!(t.blocked_wait_count(), 1);
    }

    #[test]
    fn wait_with_stale_value_returns_mismatch() {
        let mut t = FutexTable::new();
        assert_eq!(t.wait(ADDR, 2, 1, (1, 1)), FutexWaitResult::ValueMismatch);
        assert_eq!(t.waiters_on(ADDR), 0);
    }

    #[test]
    fn wake_releases_waiters_in_fifo_order() {
        let mut t = FutexTable::new();
        for tid in 1..=3 {
            t.wait(ADDR, 0, 0, (1, tid));
        }
        let woken = t.wake(ADDR, 2);
        assert_eq!(woken, vec![(1, 1), (1, 2)]);
        assert_eq!(t.waiters_on(ADDR), 1);
        let rest = t.wake(ADDR, 10);
        assert_eq!(rest, vec![(1, 3)]);
        assert_eq!(t.waiters_on(ADDR), 0);
        assert_eq!(t.wakeup_count(), 3);
    }

    #[test]
    fn wake_on_empty_queue_is_noop() {
        let mut t = FutexTable::new();
        assert!(t.wake(ADDR, 1).is_empty());
        assert_eq!(t.wakeup_count(), 0);
    }

    #[test]
    fn waiters_on_distinct_addresses_are_independent() {
        let mut t = FutexTable::new();
        t.wait(ADDR, 0, 0, (1, 1));
        t.wait(ADDR + 4, 0, 0, (1, 2));
        assert_eq!(t.waiters_on(ADDR), 1);
        assert_eq!(t.waiters_on(ADDR + 4), 1);
        assert_eq!(t.total_waiters(), 2);
        let woken = t.wake(ADDR, 10);
        assert_eq!(woken, vec![(1, 1)]);
        assert_eq!(t.total_waiters(), 1);
    }

    #[test]
    fn remove_waiter_cancels_a_pending_wait() {
        let mut t = FutexTable::new();
        t.wait(ADDR, 0, 0, (1, 1));
        t.wait(ADDR, 0, 0, (1, 2));
        assert!(t.remove_waiter(ADDR, (1, 1)));
        assert!(!t.remove_waiter(ADDR, (1, 1)));
        assert_eq!(t.wake(ADDR, 10), vec![(1, 2)]);
    }
}
