//! The simulated kernel: global state plus the syscall execution engine.
//!
//! [`Kernel`] owns one [`Process`](crate::process::Process) per variant, a
//! shared [`Vfs`](crate::vfs::Vfs), a [`NetworkStack`](crate::net::NetworkStack),
//! per-process [`FutexTable`](crate::futex::FutexTable)s and a
//! [`VirtualClock`](crate::time::VirtualClock).  The MVEE monitor calls
//! [`Kernel::execute`] for every system call it decides to forward;
//! divergence detection and result replication happen in the monitor, not
//! here.
//!
//! The kernel is fully thread-safe: monitor threads for different variant
//! threads call into it concurrently, just as threads of a real process
//! enter the real kernel concurrently.

use parking_lot::Mutex;

use crate::error::{Errno, KernelResult};
use crate::fd::FdObject;
use crate::futex::{FutexTable, FutexWaitResult};
use crate::mem::Protection;
use crate::net::{LinkKind, NetworkStack};
use crate::process::{Pid, Process, Tid};
use crate::syscall::{SyscallArg, SyscallOutcome, SyscallRequest, Sysno};
use crate::time::VirtualClock;
use crate::vfs::{OpenFlags, Vfs};

/// Statistics the benchmark harness reads after a run.
#[derive(Debug, Default, Clone, Copy)]
pub struct KernelStats {
    /// Total number of system calls executed.
    pub syscalls_executed: u64,
    /// Number of calls that failed.
    pub syscalls_failed: u64,
    /// Number of futex waits that blocked.
    pub futex_blocks: u64,
    /// Number of futex wake-ups delivered.
    pub futex_wakeups: u64,
}

struct KernelState {
    processes: Vec<Process>,
    vfs: Vfs,
    net: NetworkStack,
    futexes: FutexTable,
    stats: KernelStats,
    /// Captured stdout/stderr writes per process, for output verification.
    console: Vec<Vec<u8>>,
    /// Deterministic PRNG state for `getrandom`.
    random_state: u64,
}

/// The simulated kernel.
pub struct Kernel {
    state: Mutex<KernelState>,
    clock: VirtualClock,
}

impl Kernel {
    /// Creates a kernel with a wall-clock time source.
    pub fn new() -> Self {
        Self::with_clock(VirtualClock::new_wall())
    }

    /// Creates a kernel with a manually driven clock (for deterministic tests
    /// and the covert-channel experiments).
    pub fn new_manual_clock() -> Self {
        Self::with_clock(VirtualClock::new_manual())
    }

    fn with_clock(clock: VirtualClock) -> Self {
        Kernel {
            state: Mutex::new(KernelState {
                processes: Vec::new(),
                vfs: Vfs::new(),
                net: NetworkStack::new(),
                futexes: FutexTable::new(),
                stats: KernelStats::default(),
                console: Vec::new(),
                random_state: 0x9e37_79b9_7f4a_7c15,
            }),
            clock,
        }
    }

    /// Access to the kernel's clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Spawns a new process (one per variant) and returns its pid.
    pub fn spawn_process(&self) -> Pid {
        let mut st = self.state.lock();
        let pid = st.processes.len() as Pid;
        st.processes.push(Process::new(pid));
        st.console.push(Vec::new());
        pid
    }

    /// Spawns a process with a diversified address-space layout.
    pub fn spawn_process_with_layout(&self, brk_base: u64, mmap_top: u64) -> Pid {
        let mut st = self.state.lock();
        let pid = st.processes.len() as Pid;
        st.processes.push(Process::with_address_space(
            pid,
            crate::mem::AddressSpace::with_layout(brk_base, mmap_top),
        ));
        st.console.push(Vec::new());
        pid
    }

    /// Pre-populates a file in the VFS (workload setup).
    pub fn install_file(&self, path: &str, contents: &[u8]) {
        self.state.lock().vfs.install_file(path, contents);
    }

    /// Returns everything a process has written to stdout/stderr so far.
    pub fn console_output(&self, pid: Pid) -> Vec<u8> {
        self.state
            .lock()
            .console
            .get(pid as usize)
            .cloned()
            .unwrap_or_default()
    }

    /// Returns a snapshot of the kernel statistics.
    pub fn stats(&self) -> KernelStats {
        let st = self.state.lock();
        let mut s = st.stats;
        s.futex_blocks = st.futexes.blocked_wait_count();
        s.futex_wakeups = st.futexes.wakeup_count();
        s
    }

    /// Number of live (non-exited) processes.
    pub fn live_processes(&self) -> usize {
        self.state
            .lock()
            .processes
            .iter()
            .filter(|p| !p.has_exited())
            .count()
    }

    /// Whether the given process has a writable+executable mapping — the
    /// post-condition a code-injection attack needs.
    pub fn process_has_wx_mapping(&self, pid: Pid) -> bool {
        self.state
            .lock()
            .processes
            .get(pid as usize)
            .map(|p| p.mem.has_wx_region())
            .unwrap_or(false)
    }

    /// The CPU core thread `tid` of `pid` is pinned to, if a
    /// `sched_setaffinity` call recorded one.
    pub fn thread_affinity(&self, pid: Pid, tid: Tid) -> Option<u32> {
        self.state
            .lock()
            .processes
            .get(pid as usize)
            .and_then(|p| p.affinity(tid))
    }

    /// Total system calls issued by `pid`.
    pub fn process_syscall_count(&self, pid: Pid) -> u64 {
        self.state
            .lock()
            .processes
            .get(pid as usize)
            .map(|p| p.total_syscalls())
            .unwrap_or(0)
    }

    /// Captures a point-in-time image of `pid`'s private state (descriptor
    /// table, address space, threads, affinity, exit status).
    ///
    /// Shared kernel state — VFS contents, pipe buffers, socket queues, the
    /// virtual clock, futex wait queues — is *not* captured: it belongs to
    /// the whole variant set, and on restore the process rejoins whatever
    /// frontier the surviving variants have advanced it to.
    pub fn capture_process(&self, pid: Pid) -> Option<crate::process::ProcessImage> {
        self.state
            .lock()
            .processes
            .get(pid as usize)
            .map(|p| p.capture())
    }

    /// Restores `pid`'s private state from a previously captured image.
    ///
    /// Returns `false` when `pid` does not exist.  See
    /// [`Self::capture_process`] for what the image does and does not cover.
    pub fn restore_process(&self, pid: Pid, image: &crate::process::ProcessImage) -> bool {
        match self.state.lock().processes.get_mut(pid as usize) {
            Some(p) => {
                p.restore(image);
                true
            }
            None => false,
        }
    }

    /// Executes one system call on behalf of thread `tid` of process `pid`.
    ///
    /// The call is executed exactly as issued; whether it *should* be
    /// executed (versus replicated from the master) is the monitor's
    /// decision.
    pub fn execute(&self, pid: Pid, tid: Tid, req: &SyscallRequest) -> SyscallOutcome {
        let mut st = self.state.lock();
        st.stats.syscalls_executed += 1;
        if let Some(p) = st.processes.get_mut(pid as usize) {
            p.count_syscall(tid);
        }
        let out = Self::dispatch(&mut st, &self.clock, pid, tid, req);
        if out.result.is_err() {
            st.stats.syscalls_failed += 1;
        }
        out
    }

    fn dispatch(
        st: &mut KernelState,
        clock: &VirtualClock,
        pid: Pid,
        tid: Tid,
        req: &SyscallRequest,
    ) -> SyscallOutcome {
        match Self::dispatch_inner(st, clock, pid, tid, req) {
            Ok(out) => out,
            Err(e) => SyscallOutcome::err(e),
        }
    }

    fn dispatch_inner(
        st: &mut KernelState,
        clock: &VirtualClock,
        pid: Pid,
        tid: Tid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        match req.no {
            Sysno::Open => Self::sys_open(st, pid, req),
            Sysno::Close => Self::sys_close(st, pid, req),
            Sysno::Read => Self::sys_read(st, pid, req),
            Sysno::Write | Sysno::Writev => Self::sys_write(st, pid, req),
            Sysno::Stat => Self::sys_stat(st, req),
            Sysno::Fstat => Self::sys_fstat(st, pid, req),
            Sysno::Lseek => Self::sys_lseek(st, pid, req),
            Sysno::Brk => Self::sys_brk(st, pid, req),
            Sysno::Mmap => Self::sys_mmap(st, pid, req),
            Sysno::Munmap => Self::sys_munmap(st, pid, req),
            Sysno::Mprotect => Self::sys_mprotect(st, pid, req),
            Sysno::Madvise => Ok(SyscallOutcome::ok(0)),
            Sysno::Pipe => Self::sys_pipe(st, pid),
            Sysno::Dup => Self::sys_dup(st, pid, req),
            Sysno::Socket => Self::sys_socket(st, pid),
            Sysno::Bind => Self::sys_bind(st, pid, req),
            Sysno::Listen => Self::sys_listen(st, pid, req),
            Sysno::Accept => Self::sys_accept(st, pid, req),
            Sysno::Connect => Self::sys_connect(st, pid, req),
            Sysno::Send => Self::sys_send(st, pid, req),
            Sysno::Recv => Self::sys_recv(st, pid, req),
            Sysno::Shutdown => Self::sys_shutdown(st, pid, req),
            Sysno::FutexWait => Self::sys_futex_wait(st, pid, tid, req),
            Sysno::FutexWake => Self::sys_futex_wake(st, pid, req),
            Sysno::Clone => Self::sys_clone(st, pid),
            Sysno::Exit => Self::sys_exit(st, pid, tid, req),
            Sysno::ExitGroup => Self::sys_exit_group(st, pid, req),
            Sysno::Gettimeofday | Sysno::ClockGettime => Ok(SyscallOutcome::ok_with_payload(
                0,
                clock.clock_gettime().to_le_bytes().to_vec(),
            )),
            Sysno::Getpid => Ok(SyscallOutcome::ok(pid as i64 + 1000)),
            Sysno::Gettid => Ok(SyscallOutcome::ok(tid as i64 + 1000)),
            Sysno::SchedYield => Ok(SyscallOutcome::ok(0)),
            Sysno::Nanosleep => Ok(SyscallOutcome::ok(0)),
            Sysno::SchedSetaffinity => {
                let core = Self::arg_int(req, 0)?.max(0) as u32;
                if let Some(p) = st.processes.get_mut(pid as usize) {
                    p.set_affinity(tid, core);
                }
                Ok(SyscallOutcome::ok(0))
            }
            Sysno::Getrandom => Self::sys_getrandom(st, req),
            Sysno::Fcntl | Sysno::Ioctl => Ok(SyscallOutcome::ok(0)),
            Sysno::Access => Self::sys_access(st, req),
            Sysno::Readlink => Ok(SyscallOutcome::err(Errno::Enoent)),
            Sysno::Unlink => Self::sys_unlink(st, req),
            Sysno::Rename => Self::sys_rename(st, req),
            Sysno::Mkdir => Self::sys_mkdir(st, req),
            Sysno::Epoll | Sysno::Poll => Ok(SyscallOutcome::ok(0)),
            Sysno::Sendfile => Self::sys_sendfile(st, pid, req),
            // The self-awareness pseudo call is answered by the monitor; a
            // real kernel (and this model) does not implement it.
            Sysno::MveeSelfAware => Ok(SyscallOutcome::err(Errno::Enosys)),
            Sysno::Unknown(_) => Ok(SyscallOutcome::err(Errno::Enosys)),
        }
    }

    // ---- argument helpers ----------------------------------------------

    fn arg_path(req: &SyscallRequest, idx: usize) -> KernelResult<&str> {
        match req.args.get(idx) {
            Some(SyscallArg::Path(p)) => Ok(p),
            _ => Err(Errno::Efault),
        }
    }

    fn arg_int(req: &SyscallRequest, idx: usize) -> KernelResult<i64> {
        match req.args.get(idx) {
            Some(SyscallArg::Int(v)) => Ok(*v),
            Some(SyscallArg::Fd(v)) => Ok(i64::from(*v)),
            Some(SyscallArg::Flags(v)) => Ok(*v as i64),
            Some(SyscallArg::BufLen(v)) => Ok(*v as i64),
            Some(SyscallArg::Pointer(v)) => Ok(*v as i64),
            _ => Err(Errno::Einval),
        }
    }

    fn arg_fd(req: &SyscallRequest, idx: usize) -> KernelResult<i32> {
        match req.args.get(idx) {
            Some(SyscallArg::Fd(v)) => Ok(*v),
            Some(SyscallArg::Int(v)) => Ok(*v as i32),
            _ => Err(Errno::Ebadf),
        }
    }

    fn arg_flags(req: &SyscallRequest, idx: usize) -> u64 {
        match req.args.get(idx) {
            Some(SyscallArg::Flags(v)) => *v,
            Some(SyscallArg::Int(v)) => *v as u64,
            _ => 0,
        }
    }

    fn arg_ptr(req: &SyscallRequest, idx: usize) -> KernelResult<u64> {
        match req.args.get(idx) {
            Some(SyscallArg::Pointer(v)) => Ok(*v),
            Some(SyscallArg::Int(v)) => Ok(*v as u64),
            _ => Err(Errno::Efault),
        }
    }

    fn process_mut(st: &mut KernelState, pid: Pid) -> KernelResult<&mut Process> {
        st.processes.get_mut(pid as usize).ok_or(Errno::Eperm)
    }

    // ---- file system ------------------------------------------------------

    fn sys_open(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let path = Self::arg_path(req, 0)?.to_string();
        let flags = OpenFlags::from_bits(Self::arg_flags(req, 1));
        let inode = st.vfs.open(&path, flags)?;
        let writable = flags.contains(OpenFlags::WRITE) || flags.contains(OpenFlags::APPEND);
        let proc = Self::process_mut(st, pid)?;
        let fd = proc.fds.allocate(FdObject::File {
            inode,
            offset: 0,
            writable,
        })?;
        Ok(SyscallOutcome::ok(i64::from(fd)))
    }

    fn sys_close(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let fd = Self::arg_fd(req, 0)?;
        let obj = Self::process_mut(st, pid)?.fds.close(fd)?;
        match obj {
            FdObject::PipeRead { pipe } => st.vfs.pipe_close(pipe, true)?,
            FdObject::PipeWrite { pipe } => st.vfs.pipe_close(pipe, false)?,
            FdObject::Socket { socket } => st.net.close(socket)?,
            _ => {}
        }
        Ok(SyscallOutcome::ok(0))
    }

    fn sys_read(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let fd = Self::arg_fd(req, 0)?;
        let len = Self::arg_int(req, 1).unwrap_or(0).max(0) as usize;
        let obj = {
            let proc = Self::process_mut(st, pid)?;
            proc.fds.get(fd)?.clone()
        };
        match obj {
            FdObject::File { inode, offset, .. } => {
                let data = st.vfs.read(inode, offset, len)?;
                let n = data.len() as u64;
                let proc = Self::process_mut(st, pid)?;
                if let FdObject::File { offset, .. } = proc.fds.get_mut(fd)? {
                    *offset += n;
                }
                Ok(SyscallOutcome::ok_with_payload(n as i64, data.to_vec()))
            }
            FdObject::PipeRead { pipe } => match st.vfs.pipe_read(pipe, len) {
                Ok(data) => Ok(SyscallOutcome::ok_with_payload(
                    data.len() as i64,
                    data.to_vec(),
                )),
                Err(e) => Err(e),
            },
            FdObject::Socket { socket } => {
                let data = st.net.recv(socket, len)?;
                Ok(SyscallOutcome::ok_with_payload(
                    data.len() as i64,
                    data.to_vec(),
                ))
            }
            FdObject::StandardStream { which: 0 } => Ok(SyscallOutcome::ok(0)),
            FdObject::StandardStream { .. } => Err(Errno::Ebadf),
            FdObject::PipeWrite { .. } => Err(Errno::Ebadf),
        }
    }

    fn sys_write(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let fd = Self::arg_fd(req, 0)?;
        let data = req.payload.clone();
        let obj = {
            let proc = Self::process_mut(st, pid)?;
            proc.fds.get(fd)?.clone()
        };
        match obj {
            FdObject::File {
                inode,
                offset,
                writable,
            } => {
                if !writable {
                    return Err(Errno::Eacces);
                }
                let n = st.vfs.write(inode, offset, &data, false)?;
                let proc = Self::process_mut(st, pid)?;
                if let FdObject::File { offset, .. } = proc.fds.get_mut(fd)? {
                    *offset += n as u64;
                }
                Ok(SyscallOutcome::ok(n as i64))
            }
            FdObject::PipeWrite { pipe } => {
                let n = st.vfs.pipe_write(pipe, &data)?;
                Ok(SyscallOutcome::ok(n as i64))
            }
            FdObject::Socket { socket } => {
                let n = st.net.send(socket, &data)?;
                Ok(SyscallOutcome::ok(n as i64))
            }
            FdObject::StandardStream { which } if which == 1 || which == 2 => {
                if let Some(buf) = st.console.get_mut(pid as usize) {
                    buf.extend_from_slice(&data);
                }
                Ok(SyscallOutcome::ok(data.len() as i64))
            }
            _ => Err(Errno::Ebadf),
        }
    }

    fn sys_stat(st: &mut KernelState, req: &SyscallRequest) -> KernelResult<SyscallOutcome> {
        let path = Self::arg_path(req, 0)?;
        let stat = st.vfs.stat(path)?;
        let mut payload = Vec::with_capacity(17);
        payload.extend_from_slice(&stat.inode.to_le_bytes());
        payload.extend_from_slice(&stat.size.to_le_bytes());
        payload.push(u8::from(stat.is_dir));
        Ok(SyscallOutcome::ok_with_payload(0, payload))
    }

    fn sys_fstat(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let fd = Self::arg_fd(req, 0)?;
        let proc = Self::process_mut(st, pid)?;
        let obj = proc.fds.get(fd)?.clone();
        match obj {
            FdObject::File { inode, .. } => {
                let stat = st.vfs.fstat(inode)?;
                let mut payload = Vec::with_capacity(17);
                payload.extend_from_slice(&stat.inode.to_le_bytes());
                payload.extend_from_slice(&stat.size.to_le_bytes());
                payload.push(u8::from(stat.is_dir));
                Ok(SyscallOutcome::ok_with_payload(0, payload))
            }
            _ => Ok(SyscallOutcome::ok(0)),
        }
    }

    fn sys_lseek(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let fd = Self::arg_fd(req, 0)?;
        let pos = Self::arg_int(req, 1)?.max(0) as u64;
        let proc = Self::process_mut(st, pid)?;
        match proc.fds.get_mut(fd)? {
            FdObject::File { offset, .. } => {
                *offset = pos;
                Ok(SyscallOutcome::ok(pos as i64))
            }
            _ => Err(Errno::Espipe),
        }
    }

    fn sys_access(st: &mut KernelState, req: &SyscallRequest) -> KernelResult<SyscallOutcome> {
        let path = Self::arg_path(req, 0)?;
        if st.vfs.exists(path) {
            Ok(SyscallOutcome::ok(0))
        } else {
            Err(Errno::Enoent)
        }
    }

    fn sys_unlink(st: &mut KernelState, req: &SyscallRequest) -> KernelResult<SyscallOutcome> {
        st.vfs.unlink(Self::arg_path(req, 0)?)?;
        Ok(SyscallOutcome::ok(0))
    }

    fn sys_rename(st: &mut KernelState, req: &SyscallRequest) -> KernelResult<SyscallOutcome> {
        let from = Self::arg_path(req, 0)?.to_string();
        let to = Self::arg_path(req, 1)?.to_string();
        st.vfs.rename(&from, &to)?;
        Ok(SyscallOutcome::ok(0))
    }

    fn sys_mkdir(st: &mut KernelState, req: &SyscallRequest) -> KernelResult<SyscallOutcome> {
        st.vfs.mkdir(Self::arg_path(req, 0)?)?;
        Ok(SyscallOutcome::ok(0))
    }

    fn sys_sendfile(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        // sendfile(out_fd, in_fd, len): copy file bytes straight to a socket.
        let out_fd = Self::arg_fd(req, 0)?;
        let in_fd = Self::arg_fd(req, 1)?;
        let len = Self::arg_int(req, 2)?.max(0) as usize;
        let (inode, offset) = {
            let proc = Self::process_mut(st, pid)?;
            match proc.fds.get(in_fd)? {
                FdObject::File { inode, offset, .. } => (*inode, *offset),
                _ => return Err(Errno::Einval),
            }
        };
        let data = st.vfs.read(inode, offset, len)?;
        let socket = {
            let proc = Self::process_mut(st, pid)?;
            match proc.fds.get(out_fd)? {
                FdObject::Socket { socket } => *socket,
                _ => return Err(Errno::Einval),
            }
        };
        let n = st.net.send(socket, &data)?;
        let proc = Self::process_mut(st, pid)?;
        if let FdObject::File { offset, .. } = proc.fds.get_mut(in_fd)? {
            *offset += n as u64;
        }
        Ok(SyscallOutcome::ok(n as i64))
    }

    // ---- memory ---------------------------------------------------------

    fn sys_brk(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let addr = Self::arg_int(req, 0).unwrap_or(0).max(0) as u64;
        let proc = Self::process_mut(st, pid)?;
        Ok(SyscallOutcome::ok(proc.mem.set_brk(addr) as i64))
    }

    fn sys_mmap(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let len = Self::arg_int(req, 0)?.max(0) as u64;
        let prot = Protection::from_bits(Self::arg_flags(req, 1) as u8);
        let proc = Self::process_mut(st, pid)?;
        let addr = proc.mem.mmap(len, prot)?;
        Ok(SyscallOutcome::ok(addr as i64))
    }

    fn sys_munmap(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let addr = Self::arg_ptr(req, 0)?;
        let len = Self::arg_int(req, 1)?.max(0) as u64;
        let proc = Self::process_mut(st, pid)?;
        proc.mem.munmap(addr, len)?;
        Ok(SyscallOutcome::ok(0))
    }

    fn sys_mprotect(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let addr = Self::arg_ptr(req, 0)?;
        let len = Self::arg_int(req, 1)?.max(0) as u64;
        let prot = Protection::from_bits(Self::arg_flags(req, 2) as u8);
        let proc = Self::process_mut(st, pid)?;
        proc.mem.mprotect(addr, len, prot)?;
        Ok(SyscallOutcome::ok(0))
    }

    // ---- pipes and descriptors -------------------------------------------

    fn sys_pipe(st: &mut KernelState, pid: Pid) -> KernelResult<SyscallOutcome> {
        let pipe = st.vfs.create_pipe();
        let proc = Self::process_mut(st, pid)?;
        let read_fd = proc.fds.allocate(FdObject::PipeRead { pipe })?;
        let write_fd = proc.fds.allocate(FdObject::PipeWrite { pipe })?;
        let mut payload = Vec::with_capacity(8);
        payload.extend_from_slice(&read_fd.to_le_bytes());
        payload.extend_from_slice(&write_fd.to_le_bytes());
        Ok(SyscallOutcome::ok_with_payload(0, payload))
    }

    fn sys_dup(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let fd = Self::arg_fd(req, 0)?;
        let proc = Self::process_mut(st, pid)?;
        let new_fd = proc.fds.dup(fd)?;
        Ok(SyscallOutcome::ok(i64::from(new_fd)))
    }

    // ---- sockets ----------------------------------------------------------

    fn sys_socket(st: &mut KernelState, pid: Pid) -> KernelResult<SyscallOutcome> {
        let socket = st.net.socket();
        let proc = Self::process_mut(st, pid)?;
        let fd = proc.fds.allocate(FdObject::Socket { socket })?;
        Ok(SyscallOutcome::ok(i64::from(fd)))
    }

    fn socket_of(st: &mut KernelState, pid: Pid, fd: i32) -> KernelResult<u64> {
        let proc = Self::process_mut(st, pid)?;
        match proc.fds.get(fd)? {
            FdObject::Socket { socket } => Ok(*socket),
            _ => Err(Errno::Enotsock),
        }
    }

    fn sys_bind(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let fd = Self::arg_fd(req, 0)?;
        let port = Self::arg_int(req, 1)? as u16;
        let socket = Self::socket_of(st, pid, fd)?;
        st.net.bind(socket, port)?;
        Ok(SyscallOutcome::ok(0))
    }

    fn sys_listen(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let fd = Self::arg_fd(req, 0)?;
        let socket = Self::socket_of(st, pid, fd)?;
        st.net.listen(socket)?;
        Ok(SyscallOutcome::ok(0))
    }

    fn sys_accept(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let fd = Self::arg_fd(req, 0)?;
        let socket = Self::socket_of(st, pid, fd)?;
        let conn = st.net.accept(socket)?;
        let proc = Self::process_mut(st, pid)?;
        let conn_fd = proc.fds.allocate(FdObject::Socket { socket: conn })?;
        Ok(SyscallOutcome::ok(i64::from(conn_fd)))
    }

    fn sys_connect(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let fd = Self::arg_fd(req, 0)?;
        let port = Self::arg_int(req, 1)? as u16;
        let link = if Self::arg_flags(req, 2) == 1 {
            LinkKind::GigabitNetwork
        } else {
            LinkKind::Loopback
        };
        let socket = Self::socket_of(st, pid, fd)?;
        st.net.connect(socket, port, link)?;
        Ok(SyscallOutcome::ok(0))
    }

    fn sys_send(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let fd = Self::arg_fd(req, 0)?;
        let socket = Self::socket_of(st, pid, fd)?;
        let n = st.net.send(socket, &req.payload)?;
        Ok(SyscallOutcome::ok(n as i64))
    }

    fn sys_recv(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let fd = Self::arg_fd(req, 0)?;
        let len = Self::arg_int(req, 1)?.max(0) as usize;
        let socket = Self::socket_of(st, pid, fd)?;
        let data = st.net.recv(socket, len)?;
        Ok(SyscallOutcome::ok_with_payload(
            data.len() as i64,
            data.to_vec(),
        ))
    }

    fn sys_shutdown(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let fd = Self::arg_fd(req, 0)?;
        let socket = Self::socket_of(st, pid, fd)?;
        st.net.close(socket)?;
        Ok(SyscallOutcome::ok(0))
    }

    // ---- futex / threads / process ----------------------------------------

    fn sys_futex_wait(
        st: &mut KernelState,
        pid: Pid,
        tid: Tid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let addr = Self::arg_ptr(req, 0)?;
        let current = Self::arg_int(req, 1)? as u32;
        let expected = Self::arg_int(req, 2)? as u32;
        match st.futexes.wait(addr, current, expected, (pid, tid)) {
            FutexWaitResult::WouldBlock => Ok(SyscallOutcome::ok(0)),
            FutexWaitResult::ValueMismatch => Err(Errno::Eagain),
        }
    }

    fn sys_futex_wake(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let _ = pid;
        let addr = Self::arg_ptr(req, 0)?;
        let count = Self::arg_int(req, 1)?.max(0) as usize;
        let woken = st.futexes.wake(addr, count);
        Ok(SyscallOutcome::ok(woken.len() as i64))
    }

    fn sys_clone(st: &mut KernelState, pid: Pid) -> KernelResult<SyscallOutcome> {
        let proc = Self::process_mut(st, pid)?;
        let tid = proc.spawn_thread();
        Ok(SyscallOutcome::ok(tid as i64))
    }

    fn sys_exit(
        st: &mut KernelState,
        pid: Pid,
        tid: Tid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let status = Self::arg_int(req, 0).unwrap_or(0) as i32;
        let proc = Self::process_mut(st, pid)?;
        proc.exit_thread(tid, status);
        Ok(SyscallOutcome::ok(0))
    }

    fn sys_exit_group(
        st: &mut KernelState,
        pid: Pid,
        req: &SyscallRequest,
    ) -> KernelResult<SyscallOutcome> {
        let status = Self::arg_int(req, 0).unwrap_or(0) as i32;
        let proc = Self::process_mut(st, pid)?;
        proc.exit_group(status);
        Ok(SyscallOutcome::ok(0))
    }

    fn sys_getrandom(st: &mut KernelState, req: &SyscallRequest) -> KernelResult<SyscallOutcome> {
        let len = Self::arg_int(req, 0)?.max(0) as usize;
        let mut out = Vec::with_capacity(len);
        // xorshift64*: deterministic across runs, which keeps the harness
        // reproducible; the monitor replicates these bytes to slaves anyway.
        let mut s = st.random_state;
        while out.len() < len {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            let v = s.wrapping_mul(0x2545_F491_4F6C_DD1D);
            out.extend_from_slice(&v.to_le_bytes());
        }
        st.random_state = s;
        out.truncate(len);
        Ok(SyscallOutcome::ok_with_payload(len as i64, out))
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

/// Convenience helpers shared by tests and workloads.
impl Kernel {
    /// Opens a path and returns the new descriptor, panicking on error.
    /// Intended for test setup only.
    pub fn must_open(&self, pid: Pid, path: &str, flags: OpenFlags) -> i32 {
        let req = SyscallRequest::new(Sysno::Open)
            .with_path(path)
            .with_arg(SyscallArg::Flags(flags.bits()));
        let out = self.execute(pid, 0, &req);
        out.result.expect("open failed") as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_with_process() -> (Kernel, Pid) {
        let k = Kernel::new_manual_clock();
        let pid = k.spawn_process();
        (k, pid)
    }

    #[test]
    fn open_read_write_close_cycle() {
        let (k, pid) = kernel_with_process();
        k.install_file("/data/input.txt", b"multi-variant execution");
        let fd = k.must_open(pid, "/data/input.txt", OpenFlags::READ);
        assert_eq!(fd, 3);

        let read = k.execute(
            pid,
            0,
            &SyscallRequest::new(Sysno::Read).with_fd(fd).with_int(5),
        );
        assert_eq!(read.result, Ok(5));
        assert_eq!(&read.payload, b"multi");

        let close = k.execute(pid, 0, &SyscallRequest::new(Sysno::Close).with_fd(fd));
        assert!(close.is_ok());
        let bad = k.execute(
            pid,
            0,
            &SyscallRequest::new(Sysno::Read).with_fd(fd).with_int(1),
        );
        assert_eq!(bad.result, Err(Errno::Ebadf));
    }

    #[test]
    fn sequential_reads_advance_offset() {
        let (k, pid) = kernel_with_process();
        k.install_file("/f", b"abcdef");
        let fd = k.must_open(pid, "/f", OpenFlags::READ);
        let r1 = k.execute(
            pid,
            0,
            &SyscallRequest::new(Sysno::Read).with_fd(fd).with_int(3),
        );
        let r2 = k.execute(
            pid,
            0,
            &SyscallRequest::new(Sysno::Read).with_fd(fd).with_int(3),
        );
        assert_eq!(&r1.payload, b"abc");
        assert_eq!(&r2.payload, b"def");
    }

    #[test]
    fn fd_allocation_order_is_observable_across_processes() {
        // Two "variants" open the same two files in opposite orders and get
        // swapped descriptors — the divergence scenario of §3.1.
        let k = Kernel::new_manual_clock();
        let v0 = k.spawn_process();
        let v1 = k.spawn_process();
        k.install_file("/a", b"");
        k.install_file("/b", b"");
        let a0 = k.must_open(v0, "/a", OpenFlags::READ);
        let b0 = k.must_open(v0, "/b", OpenFlags::READ);
        let b1 = k.must_open(v1, "/b", OpenFlags::READ);
        let a1 = k.must_open(v1, "/a", OpenFlags::READ);
        assert_eq!(a0, b1);
        assert_eq!(b0, a1);
        assert_ne!(a0, a1);
    }

    #[test]
    fn write_to_stdout_is_captured_per_process() {
        let (k, pid) = kernel_with_process();
        let out = k.execute(
            pid,
            0,
            &SyscallRequest::new(Sysno::Write)
                .with_fd(1)
                .with_payload(b"fd=3\n"),
        );
        assert_eq!(out.result, Ok(5));
        assert_eq!(k.console_output(pid), b"fd=3\n");
    }

    #[test]
    fn write_to_readonly_file_is_eacces() {
        let (k, pid) = kernel_with_process();
        k.install_file("/ro", b"x");
        let fd = k.must_open(pid, "/ro", OpenFlags::READ);
        let out = k.execute(
            pid,
            0,
            &SyscallRequest::new(Sysno::Write)
                .with_fd(fd)
                .with_payload(b"y"),
        );
        assert_eq!(out.result, Err(Errno::Eacces));
    }

    #[test]
    fn brk_and_mmap_work_per_process() {
        let (k, pid) = kernel_with_process();
        let brk0 = k.execute(pid, 0, &SyscallRequest::new(Sysno::Brk).with_int(0));
        let base = brk0.result.unwrap();
        let brk1 = k.execute(
            pid,
            0,
            &SyscallRequest::new(Sysno::Brk).with_int(base + 8192),
        );
        assert!(brk1.result.unwrap() >= base + 8192);

        let mmap = k.execute(
            pid,
            0,
            &SyscallRequest::new(Sysno::Mmap)
                .with_int(4096)
                .with_arg(SyscallArg::Flags(3)),
        );
        assert!(mmap.result.unwrap() > 0);
    }

    #[test]
    fn mprotect_to_rwx_is_visible_to_attack_detector() {
        let (k, pid) = kernel_with_process();
        let mmap = k.execute(
            pid,
            0,
            &SyscallRequest::new(Sysno::Mmap)
                .with_int(4096)
                .with_arg(SyscallArg::Flags(3)),
        );
        let addr = mmap.result.unwrap() as u64;
        assert!(!k.process_has_wx_mapping(pid));
        let mp = k.execute(
            pid,
            0,
            &SyscallRequest::new(Sysno::Mprotect)
                .with_arg(SyscallArg::Pointer(addr))
                .with_int(4096)
                .with_arg(SyscallArg::Flags(7)),
        );
        assert!(mp.is_ok());
        assert!(k.process_has_wx_mapping(pid));
    }

    #[test]
    fn pipe_returns_two_descriptors() {
        let (k, pid) = kernel_with_process();
        let out = k.execute(pid, 0, &SyscallRequest::new(Sysno::Pipe));
        assert!(out.is_ok());
        let read_fd = i32::from_le_bytes(out.payload[0..4].try_into().unwrap());
        let write_fd = i32::from_le_bytes(out.payload[4..8].try_into().unwrap());
        assert_eq!(read_fd, 3);
        assert_eq!(write_fd, 4);

        let w = k.execute(
            pid,
            0,
            &SyscallRequest::new(Sysno::Write)
                .with_fd(write_fd)
                .with_payload(b"ping"),
        );
        assert_eq!(w.result, Ok(4));
        let r = k.execute(
            pid,
            0,
            &SyscallRequest::new(Sysno::Read)
                .with_fd(read_fd)
                .with_int(10),
        );
        assert_eq!(&r.payload, b"ping");
    }

    #[test]
    fn socket_lifecycle_server_and_client_in_one_kernel() {
        let (k, server) = kernel_with_process();
        let client = k.spawn_process();

        let sfd = k
            .execute(server, 0, &SyscallRequest::new(Sysno::Socket))
            .result
            .unwrap() as i32;
        assert!(k
            .execute(
                server,
                0,
                &SyscallRequest::new(Sysno::Bind).with_fd(sfd).with_int(8080)
            )
            .is_ok());
        assert!(k
            .execute(server, 0, &SyscallRequest::new(Sysno::Listen).with_fd(sfd))
            .is_ok());

        let cfd = k
            .execute(client, 0, &SyscallRequest::new(Sysno::Socket))
            .result
            .unwrap() as i32;
        assert!(k
            .execute(
                client,
                0,
                &SyscallRequest::new(Sysno::Connect)
                    .with_fd(cfd)
                    .with_int(8080)
                    .with_arg(SyscallArg::Flags(0))
            )
            .is_ok());

        let conn = k.execute(server, 0, &SyscallRequest::new(Sysno::Accept).with_fd(sfd));
        let conn_fd = conn.result.unwrap() as i32;
        k.execute(
            client,
            0,
            &SyscallRequest::new(Sysno::Send)
                .with_fd(cfd)
                .with_payload(b"GET /"),
        );
        let got = k.execute(
            server,
            0,
            &SyscallRequest::new(Sysno::Recv)
                .with_fd(conn_fd)
                .with_int(64),
        );
        assert_eq!(&got.payload, b"GET /");
    }

    #[test]
    fn clone_and_exit_group() {
        let (k, pid) = kernel_with_process();
        let t1 = k.execute(pid, 0, &SyscallRequest::new(Sysno::Clone));
        assert_eq!(t1.result, Ok(1));
        let t2 = k.execute(pid, 0, &SyscallRequest::new(Sysno::Clone));
        assert_eq!(t2.result, Ok(2));
        assert_eq!(k.live_processes(), 1);
        k.execute(pid, 0, &SyscallRequest::new(Sysno::ExitGroup).with_int(0));
        assert_eq!(k.live_processes(), 0);
    }

    #[test]
    fn gettimeofday_returns_clock_payload() {
        let k = Kernel::new_manual_clock();
        let pid = k.spawn_process();
        k.clock().advance(5_000);
        let out = k.execute(pid, 0, &SyscallRequest::new(Sysno::Gettimeofday));
        let ns = u64::from_le_bytes(out.payload[0..8].try_into().unwrap());
        assert_eq!(ns, 5_000);
    }

    #[test]
    fn getrandom_is_deterministic_per_kernel_instance() {
        let k1 = Kernel::new_manual_clock();
        let k2 = Kernel::new_manual_clock();
        let p1 = k1.spawn_process();
        let p2 = k2.spawn_process();
        let r1 = k1.execute(p1, 0, &SyscallRequest::new(Sysno::Getrandom).with_int(16));
        let r2 = k2.execute(p2, 0, &SyscallRequest::new(Sysno::Getrandom).with_int(16));
        assert_eq!(r1.payload, r2.payload);
        assert_eq!(r1.payload.len(), 16);
    }

    #[test]
    fn unknown_syscall_is_enosys() {
        let (k, pid) = kernel_with_process();
        let out = k.execute(pid, 0, &SyscallRequest::new(Sysno::Unknown(999)));
        assert_eq!(out.result, Err(Errno::Enosys));
        let out = k.execute(pid, 0, &SyscallRequest::new(Sysno::MveeSelfAware));
        assert_eq!(out.result, Err(Errno::Enosys));
    }

    #[test]
    fn stats_count_executions_and_failures() {
        let (k, pid) = kernel_with_process();
        k.execute(pid, 0, &SyscallRequest::new(Sysno::Getpid));
        k.execute(pid, 0, &SyscallRequest::new(Sysno::Unknown(1)));
        let stats = k.stats();
        assert_eq!(stats.syscalls_executed, 2);
        assert_eq!(stats.syscalls_failed, 1);
        assert_eq!(k.process_syscall_count(pid), 2);
    }

    #[test]
    fn futex_wait_and_wake_roundtrip() {
        let (k, pid) = kernel_with_process();
        let addr = 0x7000_0000u64;
        let wait = k.execute(
            pid,
            0,
            &SyscallRequest::new(Sysno::FutexWait)
                .with_arg(SyscallArg::Pointer(addr))
                .with_int(0)
                .with_int(0),
        );
        assert!(wait.is_ok());
        let wake = k.execute(
            pid,
            1,
            &SyscallRequest::new(Sysno::FutexWake)
                .with_arg(SyscallArg::Pointer(addr))
                .with_int(1),
        );
        assert_eq!(wake.result, Ok(1));
        let stats = k.stats();
        assert_eq!(stats.futex_blocks, 1);
        assert_eq!(stats.futex_wakeups, 1);
    }

    #[test]
    fn sendfile_copies_file_to_socket() {
        let k = Kernel::new_manual_clock();
        let server = k.spawn_process();
        let client = k.spawn_process();
        k.install_file("/www/page.html", &vec![b'x'; 4096]);

        let sfd = k
            .execute(server, 0, &SyscallRequest::new(Sysno::Socket))
            .result
            .unwrap() as i32;
        k.execute(
            server,
            0,
            &SyscallRequest::new(Sysno::Bind).with_fd(sfd).with_int(80),
        );
        k.execute(server, 0, &SyscallRequest::new(Sysno::Listen).with_fd(sfd));
        let cfd = k
            .execute(client, 0, &SyscallRequest::new(Sysno::Socket))
            .result
            .unwrap() as i32;
        k.execute(
            client,
            0,
            &SyscallRequest::new(Sysno::Connect)
                .with_fd(cfd)
                .with_int(80)
                .with_arg(SyscallArg::Flags(0)),
        );
        let conn_fd = k
            .execute(server, 0, &SyscallRequest::new(Sysno::Accept).with_fd(sfd))
            .result
            .unwrap() as i32;
        let file_fd = k.must_open(server, "/www/page.html", OpenFlags::READ);
        let sent = k.execute(
            server,
            0,
            &SyscallRequest::new(Sysno::Sendfile)
                .with_fd(conn_fd)
                .with_fd(file_fd)
                .with_int(4096),
        );
        assert_eq!(sent.result, Ok(4096));
        let got = k.execute(
            client,
            0,
            &SyscallRequest::new(Sysno::Recv).with_fd(cfd).with_int(8192),
        );
        assert_eq!(got.payload.len(), 4096);
    }

    #[test]
    fn diversified_processes_get_different_mmap_addresses() {
        let k = Kernel::new_manual_clock();
        let v0 = k.spawn_process_with_layout(0x5555_0000_0000, 0x7fff_0000_0000);
        let v1 = k.spawn_process_with_layout(0x5655_1000_0000, 0x7ffe_2000_0000);
        let m0 = k.execute(
            v0,
            0,
            &SyscallRequest::new(Sysno::Mmap)
                .with_int(4096)
                .with_arg(SyscallArg::Flags(3)),
        );
        let m1 = k.execute(
            v1,
            0,
            &SyscallRequest::new(Sysno::Mmap)
                .with_int(4096)
                .with_arg(SyscallArg::Flags(3)),
        );
        assert_ne!(m0.result.unwrap(), m1.result.unwrap());
    }
}
