//! Simulated operating-system substrate for the MVEE reproduction.
//!
//! The paper ("Taming Parallelism in a Multi-Variant Execution Environment",
//! EuroSys 2017) runs its variants on a real Linux kernel and interposes on
//! their system calls with a ptrace-based monitor.  This crate provides the
//! substitute substrate: a deterministic, user-space model of the kernel
//! facilities the paper's evaluation interacts with.
//!
//! The model covers exactly the interactions the paper must order or
//! replicate across variants:
//!
//! * **File-descriptor allocation** ([`fd::FdTable`]) — the kernel assigns the
//!   lowest available FD, so the order in which threads open files is
//!   externally visible (§3.1 of the paper).
//! * **A virtual file system** ([`vfs::Vfs`]) — regular files, pipes and
//!   sockets, the targets of the I/O calls the monitor replicates.
//! * **Address spaces** ([`mem::AddressSpace`]) — `brk`/`mmap`/`mprotect`,
//!   whose ordering is affected by allocator-internal spinlocks (§3.2).
//! * **Futexes** ([`futex::FutexTable`]) — the blocking primitive the paper
//!   explicitly exempts from syscall ordering and treats as an I/O operation
//!   (§4.1, footnote 5).
//! * **Virtual time** ([`time::VirtualClock`]) — `gettimeofday`/`rdtsc`
//!   results, which the covert-channel analysis in §5.4 abuses.
//!
//! The central entry point is [`kernel::Kernel`], which owns per-process
//! state and executes [`syscall::SyscallRequest`]s, returning
//! [`syscall::SyscallOutcome`]s.  The MVEE monitor (crate `mvee-core`) holds
//! one `Kernel` and issues every system call exactly once (for the master
//! variant), replicating results to the slaves.
//!
//! # Example
//!
//! ```
//! use mvee_kernel::kernel::Kernel;
//! use mvee_kernel::syscall::{SyscallRequest, Sysno, SyscallArg};
//!
//! let kernel = Kernel::new();
//! let pid = kernel.spawn_process();
//! let req = SyscallRequest::new(Sysno::Open)
//!     .with_path("/tmp/data")
//!     .with_arg(SyscallArg::Flags(mvee_kernel::vfs::OpenFlags::CREATE.bits()));
//! let outcome = kernel.execute(pid, 0, &req);
//! assert!(outcome.result.is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fd;
pub mod futex;
pub mod kernel;
pub mod mem;
pub mod net;
pub mod process;
pub mod syscall;
pub mod time;
pub mod vfs;

pub use error::{Errno, KernelResult};
pub use kernel::Kernel;
pub use syscall::{SyscallOutcome, SyscallRequest, Sysno};
