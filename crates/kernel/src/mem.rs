//! Per-process address-space model: `brk`, `mmap`, `munmap`, `mprotect`.
//!
//! Memory-management calls matter to the MVEE for two reasons.  First, they
//! are ordered calls: glibc's allocator protects its arenas with low-level
//! spinlocks, so the *order* in which threads reach `brk`/`mmap` depends on
//! sync-op ordering (§3.2 of the paper).  Second, their arguments expose
//! diversified addresses, which the monitor must not compare directly.
//!
//! The model allocates regions top-down from a per-variant `mmap` base so
//! that different variants (with different ASLR offsets) naturally return
//! different addresses for equivalent requests, exactly the situation the
//! paper's positional sync-op correspondence is designed to tolerate.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{Errno, KernelResult};

/// Page size used by the address-space model (4 KiB, matching x86).
pub const PAGE_SIZE: u64 = 4096;

/// Memory-protection bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Protection(u8);

impl Protection {
    /// No access.
    pub const NONE: Protection = Protection(0);
    /// Readable.
    pub const READ: Protection = Protection(1);
    /// Writable.
    pub const WRITE: Protection = Protection(2);
    /// Executable.
    pub const EXEC: Protection = Protection(4);
    /// Read + write.
    pub const RW: Protection = Protection(3);
    /// Read + exec.
    pub const RX: Protection = Protection(5);
    /// Read + write + exec (the classic "dangerous" mapping).
    pub const RWX: Protection = Protection(7);

    /// Builds a protection value from raw bits.
    pub fn from_bits(bits: u8) -> Self {
        Protection(bits & 7)
    }

    /// Raw bits.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Whether all bits of `other` are present.
    pub fn contains(self, other: Protection) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether the region is simultaneously writable and executable.
    ///
    /// A W+X mapping is what a code-injection exploit needs; the monitor's
    /// security-sensitive policy flags `mprotect` calls that request it.
    pub fn is_wx(self) -> bool {
        self.contains(Protection::WRITE) && self.contains(Protection::EXEC)
    }
}

/// A mapped region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Start address (page aligned).
    pub start: u64,
    /// Length in bytes (page aligned).
    pub len: u64,
    /// Protection bits.
    pub prot: Protection,
    /// Whether the region was created by `brk` (heap) rather than `mmap`.
    pub is_heap: bool,
}

impl Region {
    /// Exclusive end address.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Whether `addr` falls inside the region.
    pub fn contains_addr(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// Whether two regions overlap.
    pub fn overlaps(&self, other: &Region) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

/// Rounds `v` up to the next multiple of the page size.
pub fn page_align_up(v: u64) -> u64 {
    (v + PAGE_SIZE - 1) & !(PAGE_SIZE - 1)
}

/// A single process's address space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AddressSpace {
    /// Initial program break.
    brk_base: u64,
    /// Current program break.
    brk_current: u64,
    /// Base address below which `mmap` allocates (grows downwards).
    mmap_top: u64,
    /// Next mmap allocation cursor.
    mmap_cursor: u64,
    /// Mapped regions keyed by start address.
    regions: BTreeMap<u64, Region>,
}

/// Default program-break base for an undiversified variant.
pub const DEFAULT_BRK_BASE: u64 = 0x0000_5555_0000_0000;
/// Default top of the mmap area for an undiversified variant.
pub const DEFAULT_MMAP_TOP: u64 = 0x0000_7fff_0000_0000;

impl AddressSpace {
    /// Creates an address space with the default (undiversified) layout.
    pub fn new() -> Self {
        Self::with_layout(DEFAULT_BRK_BASE, DEFAULT_MMAP_TOP)
    }

    /// Creates an address space with a diversified layout.
    ///
    /// Each variant passes its own ASLR-shifted `brk_base` and `mmap_top`, so
    /// equivalent allocations land at different addresses in different
    /// variants.
    pub fn with_layout(brk_base: u64, mmap_top: u64) -> Self {
        let brk_base = page_align_up(brk_base);
        let mmap_top = page_align_up(mmap_top);
        AddressSpace {
            brk_base,
            brk_current: brk_base,
            mmap_top,
            mmap_cursor: mmap_top,
            regions: BTreeMap::new(),
        }
    }

    /// Rebuilds an address space from its raw parts, bypassing the layout
    /// normalisation of [`Self::with_layout`].  Used by the snapshot codec,
    /// which must reproduce a captured space byte-for-byte (including a
    /// moved break and mmap cursor).
    pub fn from_raw_parts(
        brk_base: u64,
        brk_current: u64,
        mmap_top: u64,
        mmap_cursor: u64,
        regions: impl IntoIterator<Item = Region>,
    ) -> Self {
        AddressSpace {
            brk_base,
            brk_current,
            mmap_top,
            mmap_cursor,
            regions: regions.into_iter().map(|r| (r.start, r)).collect(),
        }
    }

    /// Current program break.
    pub fn brk(&self) -> u64 {
        self.brk_current
    }

    /// Initial program break (the base `brk` grows from).
    pub fn brk_base(&self) -> u64 {
        self.brk_base
    }

    /// Next `mmap` allocation cursor (allocations grow down from here).
    pub fn mmap_cursor(&self) -> u64 {
        self.mmap_cursor
    }

    /// Top of the mmap area (the address below which `mmap` allocates).
    ///
    /// Diversified variants have different tops, which is what makes the
    /// addresses returned by [`Self::mmap`] differ across variants.
    pub fn mmap_top(&self) -> u64 {
        self.mmap_top
    }

    /// Implements the `brk` system call: sets the program break to `addr`
    /// (or merely queries it when `addr` is zero), returning the new break.
    pub fn set_brk(&mut self, addr: u64) -> u64 {
        if addr == 0 {
            return self.brk_current;
        }
        if addr >= self.brk_base && addr < self.mmap_cursor {
            self.brk_current = page_align_up(addr);
        }
        self.brk_current
    }

    /// Number of bytes of heap growth since process start.
    pub fn heap_size(&self) -> u64 {
        self.brk_current - self.brk_base
    }

    /// Implements `mmap` with a kernel-chosen address: carves a region of
    /// `len` bytes below the previous allocation.
    pub fn mmap(&mut self, len: u64, prot: Protection) -> KernelResult<u64> {
        if len == 0 {
            return Err(Errno::Einval);
        }
        let len = page_align_up(len);
        let start = self.mmap_cursor.checked_sub(len).ok_or(Errno::Enomem)?;
        if start <= self.brk_current {
            return Err(Errno::Enomem);
        }
        self.mmap_cursor = start;
        let region = Region {
            start,
            len,
            prot,
            is_heap: false,
        };
        self.regions.insert(start, region);
        Ok(start)
    }

    /// Implements `munmap`.  Only whole-region unmaps are supported, which is
    /// what the workloads issue.
    pub fn munmap(&mut self, addr: u64, len: u64) -> KernelResult<()> {
        let len = page_align_up(len);
        match self.regions.get(&addr) {
            Some(r) if r.len == len => {
                self.regions.remove(&addr);
                Ok(())
            }
            Some(_) => Err(Errno::Einval),
            None => Err(Errno::Einval),
        }
    }

    /// Implements `mprotect` over a previously mapped region.
    pub fn mprotect(&mut self, addr: u64, len: u64, prot: Protection) -> KernelResult<()> {
        let len = page_align_up(len);
        match self.regions.get_mut(&addr) {
            Some(r) if len <= r.len => {
                r.prot = prot;
                Ok(())
            }
            _ => Err(Errno::Einval),
        }
    }

    /// Finds the region containing `addr`.
    pub fn region_at(&self, addr: u64) -> Option<&Region> {
        self.regions
            .range(..=addr)
            .next_back()
            .map(|(_, r)| r)
            .filter(|r| r.contains_addr(addr))
    }

    /// Number of currently mapped (non-heap) regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Iterates over mapped regions in ascending address order.
    pub fn regions(&self) -> impl Iterator<Item = &Region> {
        self.regions.values()
    }

    /// Whether any mapped region is writable and executable.
    pub fn has_wx_region(&self) -> bool {
        self.regions.values().any(|r| r.prot.is_wx())
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_alignment_rounds_up() {
        assert_eq!(page_align_up(0), 0);
        assert_eq!(page_align_up(1), PAGE_SIZE);
        assert_eq!(page_align_up(PAGE_SIZE), PAGE_SIZE);
        assert_eq!(page_align_up(PAGE_SIZE + 1), 2 * PAGE_SIZE);
    }

    #[test]
    fn brk_query_and_grow() {
        let mut a = AddressSpace::new();
        let base = a.brk();
        assert_eq!(a.set_brk(0), base);
        let grown = a.set_brk(base + 10_000);
        assert_eq!(grown, page_align_up(base + 10_000));
        assert_eq!(a.heap_size(), grown - base);
    }

    #[test]
    fn brk_rejects_addresses_below_base() {
        let mut a = AddressSpace::new();
        let base = a.brk();
        assert_eq!(a.set_brk(base - PAGE_SIZE), base);
    }

    #[test]
    fn mmap_allocates_downward_non_overlapping() {
        let mut a = AddressSpace::new();
        let r1 = a.mmap(8192, Protection::RW).unwrap();
        let r2 = a.mmap(4096, Protection::RW).unwrap();
        assert!(r2 < r1);
        let region1 = *a.region_at(r1).unwrap();
        let region2 = *a.region_at(r2).unwrap();
        assert!(!region1.overlaps(&region2));
    }

    #[test]
    fn mmap_zero_length_is_einval() {
        let mut a = AddressSpace::new();
        assert_eq!(a.mmap(0, Protection::RW), Err(Errno::Einval));
    }

    #[test]
    fn munmap_requires_exact_region() {
        let mut a = AddressSpace::new();
        let addr = a.mmap(8192, Protection::RW).unwrap();
        assert_eq!(a.munmap(addr, 4096), Err(Errno::Einval));
        a.munmap(addr, 8192).unwrap();
        assert!(a.region_at(addr).is_none());
    }

    #[test]
    fn mprotect_changes_protection() {
        let mut a = AddressSpace::new();
        let addr = a.mmap(4096, Protection::RW).unwrap();
        assert!(!a.has_wx_region());
        a.mprotect(addr, 4096, Protection::RWX).unwrap();
        assert!(a.has_wx_region());
        assert!(a.region_at(addr).unwrap().prot.is_wx());
    }

    #[test]
    fn mprotect_unmapped_is_einval() {
        let mut a = AddressSpace::new();
        assert_eq!(
            a.mprotect(0x1000, 4096, Protection::READ),
            Err(Errno::Einval)
        );
    }

    #[test]
    fn diversified_layouts_return_different_addresses() {
        // The situation §4.5.1 describes: the same logical allocation lands
        // at different addresses in each variant.
        let mut v0 = AddressSpace::with_layout(DEFAULT_BRK_BASE, DEFAULT_MMAP_TOP);
        let mut v1 = AddressSpace::with_layout(
            DEFAULT_BRK_BASE + 0x1000_0000,
            DEFAULT_MMAP_TOP - 0x2000_0000,
        );
        let a0 = v0.mmap(4096, Protection::RW).unwrap();
        let a1 = v1.mmap(4096, Protection::RW).unwrap();
        assert_ne!(a0, a1);
    }

    #[test]
    fn region_at_finds_containing_region_only() {
        let mut a = AddressSpace::new();
        let addr = a.mmap(2 * PAGE_SIZE, Protection::READ).unwrap();
        assert!(a.region_at(addr + PAGE_SIZE).is_some());
        assert!(a.region_at(addr + 3 * PAGE_SIZE).is_none());
    }

    #[test]
    fn protection_bit_algebra() {
        assert!(Protection::RWX.contains(Protection::WRITE));
        assert!(!Protection::RX.is_wx());
        assert!(Protection::RWX.is_wx());
        assert_eq!(Protection::from_bits(0xff).bits(), 7);
    }
}
