//! Socket and network model for the nginx use case (§5.5).
//!
//! The paper evaluates its instrumented nginx by driving it with the `wrk`
//! load generator, once over a gigabit network and once over the loopback
//! interface.  The overhead the MVEE adds is amortized by network latency in
//! the first configuration (3% overhead) and fully exposed in the second
//! (48% overhead).  This module provides the substrate for that experiment:
//! a TCP-ish stream-socket model with listening sockets, accept queues,
//! per-direction byte streams and a configurable link-latency model.

use std::collections::{HashMap, VecDeque};

use bytes::{Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::error::{Errno, KernelResult};

/// Which link a connection traverses; determines the modelled latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Local gigabit network between a client and the server machine.
    GigabitNetwork,
    /// Loopback interface on the server machine itself.
    Loopback,
}

impl LinkKind {
    /// One-way latency of the link in nanoseconds.
    ///
    /// The values are representative rather than measured: ~100 µs for a
    /// LAN round-trip share and ~5 µs for loopback.  What matters for the
    /// reproduction is the *ratio*: over the network the MVEE's per-request
    /// cost is small relative to the link, over loopback it dominates.
    pub fn one_way_latency_ns(self) -> u64 {
        match self {
            LinkKind::GigabitNetwork => 100_000,
            LinkKind::Loopback => 5_000,
        }
    }

    /// Bytes per nanosecond of bandwidth (1 Gbit/s ≈ 0.125 B/ns for the
    /// network, effectively unbounded for loopback; we use 8 B/ns).
    pub fn bytes_per_ns(self) -> f64 {
        match self {
            LinkKind::GigabitNetwork => 0.125,
            LinkKind::Loopback => 8.0,
        }
    }

    /// Time to transfer `len` bytes one way, including latency.
    pub fn transfer_time_ns(self, len: usize) -> u64 {
        self.one_way_latency_ns() + (len as f64 / self.bytes_per_ns()) as u64
    }
}

/// State of one endpoint of a stream socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SocketState {
    /// Created but not yet bound/connected.
    Fresh,
    /// Bound to a port.
    Bound,
    /// Listening for connections.
    Listening,
    /// Connected to a peer.
    Connected,
    /// Shut down.
    Closed,
}

#[derive(Debug)]
struct Socket {
    state: SocketState,
    port: Option<u16>,
    /// Peer socket id when connected.
    peer: Option<u64>,
    /// Bytes received and not yet read.
    rx: BytesMut,
    /// Pending connections (listening sockets only).
    backlog: VecDeque<u64>,
    /// Link this socket's connection traverses.
    link: LinkKind,
}

impl Socket {
    fn new() -> Self {
        Socket {
            state: SocketState::Fresh,
            port: None,
            peer: None,
            rx: BytesMut::new(),
            backlog: VecDeque::new(),
            link: LinkKind::Loopback,
        }
    }
}

/// The network stack: a table of sockets plus a port registry.
#[derive(Debug, Default)]
pub struct NetworkStack {
    sockets: HashMap<u64, Socket>,
    listeners: HashMap<u16, u64>,
    next_socket: u64,
    /// Total bytes sent, for statistics.
    bytes_sent: u64,
    /// Total bytes received by `recv`, for statistics.
    bytes_received: u64,
}

impl NetworkStack {
    /// Creates an empty network stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a new socket and returns its identifier.
    pub fn socket(&mut self) -> u64 {
        let id = self.next_socket;
        self.next_socket += 1;
        self.sockets.insert(id, Socket::new());
        id
    }

    /// Binds `socket` to `port`.
    pub fn bind(&mut self, socket: u64, port: u16) -> KernelResult<()> {
        if self.listeners.contains_key(&port) {
            return Err(Errno::Eaddrinuse);
        }
        let s = self.sockets.get_mut(&socket).ok_or(Errno::Ebadf)?;
        if s.state != SocketState::Fresh {
            return Err(Errno::Einval);
        }
        s.port = Some(port);
        s.state = SocketState::Bound;
        Ok(())
    }

    /// Marks a bound socket as listening.
    pub fn listen(&mut self, socket: u64) -> KernelResult<()> {
        let s = self.sockets.get_mut(&socket).ok_or(Errno::Ebadf)?;
        if s.state != SocketState::Bound {
            return Err(Errno::Einval);
        }
        s.state = SocketState::Listening;
        let port = s.port.expect("bound socket has a port");
        self.listeners.insert(port, socket);
        Ok(())
    }

    /// Connects a fresh socket to the listener on `port` over `link`.
    ///
    /// The server-side endpoint is created immediately (the TCP handshake
    /// completes in the background on a real system), so data sent by the
    /// client right after `connect` is buffered and becomes readable once the
    /// server `accept`s the connection.
    pub fn connect(&mut self, socket: u64, port: u16, link: LinkKind) -> KernelResult<()> {
        let listener = *self.listeners.get(&port).ok_or(Errno::Econnrefused)?;
        {
            let s = self.sockets.get_mut(&socket).ok_or(Errno::Ebadf)?;
            if s.state != SocketState::Fresh {
                return Err(Errno::Einval);
            }
        }
        let server_side = self.socket();
        {
            let ss = self.sockets.get_mut(&server_side).expect("just created");
            ss.state = SocketState::Connected;
            ss.peer = Some(socket);
            ss.link = link;
        }
        {
            let s = self.sockets.get_mut(&socket).expect("checked above");
            s.state = SocketState::Connected;
            s.link = link;
            s.peer = Some(server_side);
        }
        self.sockets
            .get_mut(&listener)
            .expect("listener exists")
            .backlog
            .push_back(server_side);
        Ok(())
    }

    /// Accepts a pending connection on a listening socket.
    ///
    /// Returns the server-side socket id created by `connect`, or `EAGAIN`
    /// when the backlog is empty (the caller decides whether to block).
    pub fn accept(&mut self, listener: u64) -> KernelResult<u64> {
        let l = self.sockets.get_mut(&listener).ok_or(Errno::Ebadf)?;
        if l.state != SocketState::Listening {
            return Err(Errno::Einval);
        }
        l.backlog.pop_front().ok_or(Errno::Eagain)
    }

    /// Number of pending, unaccepted connections on a listener.
    pub fn backlog_len(&self, listener: u64) -> KernelResult<usize> {
        self.sockets
            .get(&listener)
            .map(|s| s.backlog.len())
            .ok_or(Errno::Ebadf)
    }

    /// Sends `data` on a connected socket; the bytes appear in the peer's
    /// receive buffer.  Returns the number of bytes sent.
    pub fn send(&mut self, socket: u64, data: &[u8]) -> KernelResult<usize> {
        let peer = {
            let s = self.sockets.get(&socket).ok_or(Errno::Ebadf)?;
            if s.state != SocketState::Connected {
                return Err(Errno::Enotconn);
            }
            s.peer.ok_or(Errno::Enotconn)?
        };
        let p = self.sockets.get_mut(&peer).ok_or(Errno::Econnreset)?;
        p.rx.extend_from_slice(data);
        self.bytes_sent += data.len() as u64;
        Ok(data.len())
    }

    /// Receives up to `len` bytes from a connected socket.
    ///
    /// Returns `EAGAIN` when no data is buffered and the peer is still open,
    /// and an empty buffer when the peer has closed.
    pub fn recv(&mut self, socket: u64, len: usize) -> KernelResult<Bytes> {
        let peer_closed = {
            let s = self.sockets.get(&socket).ok_or(Errno::Ebadf)?;
            match s.peer {
                Some(p) => self
                    .sockets
                    .get(&p)
                    .map(|peer| peer.state == SocketState::Closed)
                    .unwrap_or(true),
                None => true,
            }
        };
        let s = self.sockets.get_mut(&socket).ok_or(Errno::Ebadf)?;
        if s.rx.is_empty() {
            if peer_closed || s.state == SocketState::Closed {
                return Ok(Bytes::new());
            }
            return Err(Errno::Eagain);
        }
        let n = len.min(s.rx.len());
        self.bytes_received += n as u64;
        Ok(s.rx.split_to(n).freeze())
    }

    /// Number of bytes buffered for reading on `socket`.
    pub fn pending(&self, socket: u64) -> KernelResult<usize> {
        self.sockets
            .get(&socket)
            .map(|s| s.rx.len())
            .ok_or(Errno::Ebadf)
    }

    /// Shuts down a socket.
    pub fn close(&mut self, socket: u64) -> KernelResult<()> {
        let port = {
            let s = self.sockets.get_mut(&socket).ok_or(Errno::Ebadf)?;
            s.state = SocketState::Closed;
            s.port
        };
        if let Some(p) = port {
            if self.listeners.get(&p) == Some(&socket) {
                self.listeners.remove(&p);
            }
        }
        Ok(())
    }

    /// State of a socket (mainly for tests and assertions).
    pub fn state(&self, socket: u64) -> KernelResult<SocketState> {
        self.sockets
            .get(&socket)
            .map(|s| s.state)
            .ok_or(Errno::Ebadf)
    }

    /// The link kind of a connected socket.
    pub fn link(&self, socket: u64) -> KernelResult<LinkKind> {
        self.sockets
            .get(&socket)
            .map(|s| s.link)
            .ok_or(Errno::Ebadf)
    }

    /// Total bytes pushed through `send` so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total bytes returned by `recv` so far.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connected_pair(stack: &mut NetworkStack, link: LinkKind) -> (u64, u64) {
        let listener = stack.socket();
        stack.bind(listener, 8080).unwrap();
        stack.listen(listener).unwrap();
        let client = stack.socket();
        stack.connect(client, 8080, link).unwrap();
        let server = stack.accept(listener).unwrap();
        (client, server)
    }

    #[test]
    fn bind_listen_connect_accept_cycle() {
        let mut stack = NetworkStack::new();
        let (client, server) = connected_pair(&mut stack, LinkKind::Loopback);
        assert_eq!(stack.state(client).unwrap(), SocketState::Connected);
        assert_eq!(stack.state(server).unwrap(), SocketState::Connected);
    }

    #[test]
    fn connect_to_unbound_port_is_refused() {
        let mut stack = NetworkStack::new();
        let c = stack.socket();
        assert_eq!(
            stack.connect(c, 9999, LinkKind::Loopback),
            Err(Errno::Econnrefused)
        );
    }

    #[test]
    fn double_bind_same_port_is_eaddrinuse() {
        let mut stack = NetworkStack::new();
        let a = stack.socket();
        let b = stack.socket();
        stack.bind(a, 80).unwrap();
        stack.listen(a).unwrap();
        assert_eq!(stack.bind(b, 80), Err(Errno::Eaddrinuse));
    }

    #[test]
    fn accept_with_empty_backlog_is_eagain() {
        let mut stack = NetworkStack::new();
        let l = stack.socket();
        stack.bind(l, 80).unwrap();
        stack.listen(l).unwrap();
        assert_eq!(stack.accept(l), Err(Errno::Eagain));
        assert_eq!(stack.backlog_len(l).unwrap(), 0);
    }

    #[test]
    fn send_and_recv_transfer_bytes_in_order() {
        let mut stack = NetworkStack::new();
        let (client, server) = connected_pair(&mut stack, LinkKind::GigabitNetwork);
        stack.send(client, b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let req = stack.recv(server, 1024).unwrap();
        assert_eq!(&req[..], b"GET / HTTP/1.1\r\n\r\n");
        stack.send(server, b"HTTP/1.1 200 OK\r\n").unwrap();
        let resp = stack.recv(client, 4).unwrap();
        assert_eq!(&resp[..], b"HTTP");
        let resp2 = stack.recv(client, 1024).unwrap();
        assert_eq!(&resp2[..], b"/1.1 200 OK\r\n");
    }

    #[test]
    fn recv_on_idle_connection_is_eagain() {
        let mut stack = NetworkStack::new();
        let (client, _server) = connected_pair(&mut stack, LinkKind::Loopback);
        assert_eq!(stack.recv(client, 10), Err(Errno::Eagain));
    }

    #[test]
    fn recv_after_peer_close_returns_empty() {
        let mut stack = NetworkStack::new();
        let (client, server) = connected_pair(&mut stack, LinkKind::Loopback);
        stack.close(client).unwrap();
        assert_eq!(stack.recv(server, 10).unwrap().len(), 0);
    }

    #[test]
    fn send_on_unconnected_socket_is_enotconn() {
        let mut stack = NetworkStack::new();
        let s = stack.socket();
        assert_eq!(stack.send(s, b"x"), Err(Errno::Enotconn));
    }

    #[test]
    fn close_frees_listening_port() {
        let mut stack = NetworkStack::new();
        let l = stack.socket();
        stack.bind(l, 8080).unwrap();
        stack.listen(l).unwrap();
        stack.close(l).unwrap();
        let l2 = stack.socket();
        assert!(stack.bind(l2, 8080).is_ok());
    }

    #[test]
    fn link_latency_ordering_matches_reality() {
        assert!(
            LinkKind::GigabitNetwork.one_way_latency_ns() > LinkKind::Loopback.one_way_latency_ns()
        );
        // A 4 KiB page takes longer over the network than over loopback.
        assert!(
            LinkKind::GigabitNetwork.transfer_time_ns(4096)
                > LinkKind::Loopback.transfer_time_ns(4096)
        );
    }

    #[test]
    fn byte_counters_accumulate() {
        let mut stack = NetworkStack::new();
        let (client, server) = connected_pair(&mut stack, LinkKind::Loopback);
        stack.send(client, b"abcdef").unwrap();
        stack.recv(server, 3).unwrap();
        assert_eq!(stack.bytes_sent(), 6);
        assert_eq!(stack.bytes_received(), 3);
    }

    #[test]
    fn connection_inherits_link_kind() {
        let mut stack = NetworkStack::new();
        let (client, server) = connected_pair(&mut stack, LinkKind::GigabitNetwork);
        assert_eq!(stack.link(client).unwrap(), LinkKind::GigabitNetwork);
        assert_eq!(stack.link(server).unwrap(), LinkKind::GigabitNetwork);
    }
}
