//! Per-process kernel state: threads, FD table, address space.
//!
//! A *process* here corresponds to one variant.  The MVEE runs N variants of
//! the same program, so the kernel holds N processes that should — in the
//! absence of attacks and benign divergence — make equivalent system calls.

use serde::{Deserialize, Serialize};

use crate::fd::FdTable;
use crate::mem::AddressSpace;

/// Process identifier within the simulated kernel.
pub type Pid = u64;
/// Thread identifier, unique within a process (0 is the initial thread).
pub type Tid = u64;

/// Lifecycle state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadState {
    /// Running or runnable.
    Running,
    /// Blocked in a futex wait.
    BlockedOnFutex {
        /// Address of the futex word the thread waits on.
        addr: u64,
    },
    /// Exited with a status code.
    Exited {
        /// Exit status.
        status: i32,
    },
}

/// A thread belonging to a process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Thread {
    /// Thread id within the process.
    pub tid: Tid,
    /// Current state.
    pub state: ThreadState,
    /// Number of system calls issued by this thread.
    pub syscall_count: u64,
}

/// A simulated process (one variant).
#[derive(Debug)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Open file descriptors.
    pub fds: FdTable,
    /// The process address space.
    pub mem: AddressSpace,
    /// Threads, indexed by tid.
    threads: Vec<Thread>,
    /// Per-thread CPU-core assignments recorded by `sched_setaffinity`.
    /// Keyed by tid rather than stored on [`Thread`] because the MVEE's
    /// logical thread indices may issue calls before their `clone` arrives
    /// at this kernel process.
    affinity: std::collections::BTreeMap<Tid, u32>,
    /// Whether the whole process has exited (`exit_group`).
    exited: Option<i32>,
}

impl Process {
    /// Creates a process with a single initial thread and standard streams.
    pub fn new(pid: Pid) -> Self {
        Self::with_address_space(pid, AddressSpace::new())
    }

    /// Creates a process with a custom (e.g. diversified) address space.
    pub fn with_address_space(pid: Pid, mem: AddressSpace) -> Self {
        Process {
            pid,
            fds: FdTable::with_standard_streams(),
            mem,
            threads: vec![Thread {
                tid: 0,
                state: ThreadState::Running,
                syscall_count: 0,
            }],
            affinity: std::collections::BTreeMap::new(),
            exited: None,
        }
    }

    /// Spawns a new thread (the `clone` syscall) and returns its tid.
    pub fn spawn_thread(&mut self) -> Tid {
        let tid = self.threads.len() as Tid;
        self.threads.push(Thread {
            tid,
            state: ThreadState::Running,
            syscall_count: 0,
        });
        tid
    }

    /// Number of threads ever created (including exited ones).
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Number of threads currently running or blocked (not exited).
    pub fn live_thread_count(&self) -> usize {
        self.threads
            .iter()
            .filter(|t| !matches!(t.state, ThreadState::Exited { .. }))
            .count()
    }

    /// Returns a reference to a thread.
    pub fn thread(&self, tid: Tid) -> Option<&Thread> {
        self.threads.get(tid as usize)
    }

    /// Returns a mutable reference to a thread.
    pub fn thread_mut(&mut self, tid: Tid) -> Option<&mut Thread> {
        self.threads.get_mut(tid as usize)
    }

    /// Marks one thread as exited.
    pub fn exit_thread(&mut self, tid: Tid, status: i32) {
        if let Some(t) = self.thread_mut(tid) {
            t.state = ThreadState::Exited { status };
        }
    }

    /// Marks the whole process as exited (`exit_group`).
    pub fn exit_group(&mut self, status: i32) {
        self.exited = Some(status);
        for t in &mut self.threads {
            t.state = ThreadState::Exited { status };
        }
    }

    /// Whether the whole process has exited.
    pub fn has_exited(&self) -> bool {
        self.exited.is_some()
    }

    /// The exit status, if the process has exited.
    pub fn exit_status(&self) -> Option<i32> {
        self.exited
    }

    /// Records that `tid` issued a system call; returns the running total.
    pub fn count_syscall(&mut self, tid: Tid) -> u64 {
        match self.thread_mut(tid) {
            Some(t) => {
                t.syscall_count += 1;
                t.syscall_count
            }
            None => 0,
        }
    }

    /// Total system calls issued by all threads of this process.
    pub fn total_syscalls(&self) -> u64 {
        self.threads.iter().map(|t| t.syscall_count).sum()
    }

    /// Records that `tid` was pinned to CPU core `core`.
    pub fn set_affinity(&mut self, tid: Tid, core: u32) {
        self.affinity.insert(tid, core);
    }

    /// The CPU core `tid` is pinned to, if any.
    pub fn affinity(&self, tid: Tid) -> Option<u32> {
        self.affinity.get(&tid).copied()
    }

    /// Captures a point-in-time copy of this process's private state.
    ///
    /// The image covers everything owned by the process alone: descriptor
    /// table, address space, threads, affinity and exit status.  Shared
    /// kernel state the process merely references (VFS contents, pipe
    /// buffers, socket queues, the virtual clock) is *not* part of the
    /// image — a restored process rejoins whatever frontier the surviving
    /// processes have advanced that shared state to.
    pub fn capture(&self) -> ProcessImage {
        ProcessImage {
            pid: self.pid,
            fds: self.fds.clone(),
            mem: self.mem.clone(),
            threads: self.threads.clone(),
            affinity: self.affinity.clone(),
            exited: self.exited,
        }
    }

    /// Overwrites this process's private state with a captured image.
    ///
    /// The pid is intentionally left untouched: a respawned variant keeps
    /// its kernel identity, only its state rolls back.
    pub fn restore(&mut self, image: &ProcessImage) {
        self.fds = image.fds.clone();
        self.mem = image.mem.clone();
        self.threads = image.threads.clone();
        self.affinity = image.affinity.clone();
        self.exited = image.exited;
    }
}

/// A point-in-time copy of one process's private state, as captured by
/// [`Process::capture`].
///
/// Images are what the MVEE's snapshot subsystem persists: restoring one
/// through [`Process::restore`] rewinds a diverged variant to the last
/// agreed rendezvous so the journal suffix can be replayed over it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessImage {
    /// Pid the image was captured from.
    pub pid: Pid,
    /// Descriptor table at capture time.
    pub fds: FdTable,
    /// Address space at capture time.
    pub mem: AddressSpace,
    /// All threads (including exited ones) at capture time.
    pub threads: Vec<Thread>,
    /// Per-thread CPU pinning at capture time.
    pub affinity: std::collections::BTreeMap<Tid, u32>,
    /// `exit_group` status, if the process had exited.
    pub exited: Option<i32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_process_has_one_running_thread() {
        let p = Process::new(1);
        assert_eq!(p.thread_count(), 1);
        assert_eq!(p.live_thread_count(), 1);
        assert!(matches!(p.thread(0).unwrap().state, ThreadState::Running));
        assert!(!p.has_exited());
    }

    #[test]
    fn spawn_thread_assigns_sequential_tids() {
        let mut p = Process::new(1);
        assert_eq!(p.spawn_thread(), 1);
        assert_eq!(p.spawn_thread(), 2);
        assert_eq!(p.thread_count(), 3);
    }

    #[test]
    fn exit_thread_reduces_live_count() {
        let mut p = Process::new(1);
        p.spawn_thread();
        p.exit_thread(1, 0);
        assert_eq!(p.thread_count(), 2);
        assert_eq!(p.live_thread_count(), 1);
    }

    #[test]
    fn exit_group_terminates_everything() {
        let mut p = Process::new(1);
        p.spawn_thread();
        p.spawn_thread();
        p.exit_group(7);
        assert!(p.has_exited());
        assert_eq!(p.exit_status(), Some(7));
        assert_eq!(p.live_thread_count(), 0);
    }

    #[test]
    fn syscall_counters_are_per_thread() {
        let mut p = Process::new(1);
        p.spawn_thread();
        assert_eq!(p.count_syscall(0), 1);
        assert_eq!(p.count_syscall(0), 2);
        assert_eq!(p.count_syscall(1), 1);
        assert_eq!(p.total_syscalls(), 3);
        // Unknown tid is counted nowhere.
        assert_eq!(p.count_syscall(99), 0);
        assert_eq!(p.total_syscalls(), 3);
    }

    #[test]
    fn processes_have_standard_streams() {
        let p = Process::new(3);
        assert_eq!(p.fds.len(), 3);
    }

    #[test]
    fn capture_restore_rewinds_private_state() {
        let mut p = Process::new(1);
        p.spawn_thread();
        p.count_syscall(0);
        p.set_affinity(1, 3);
        let image = p.capture();

        // Diverge past the capture point...
        p.spawn_thread();
        p.count_syscall(0);
        p.count_syscall(2);
        p.set_affinity(0, 7);
        p.exit_thread(1, 0);
        assert_ne!(p.capture(), image);

        // ...and rewind.
        p.restore(&image);
        assert_eq!(p.capture(), image);
        assert_eq!(p.thread_count(), 2);
        assert_eq!(p.total_syscalls(), 1);
        assert_eq!(p.affinity(1), Some(3));
        assert_eq!(p.affinity(0), None);
    }
}
