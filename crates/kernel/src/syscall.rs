//! System-call model: numbers, arguments, requests and outcomes.
//!
//! The MVEE monitor compares variants at the granularity of system calls, so
//! the representation here is what the divergence detector operates on.  A
//! [`SyscallRequest`] carries the syscall number, the argument list and the
//! outgoing data payload (for writes); a [`SyscallOutcome`] carries the return
//! value and the incoming data payload (for reads).
//!
//! Each syscall number also carries a *monitoring classification*
//! ([`Sysno::class`]) that drives the monitor's policy decisions:
//!
//! * which calls are **I/O** (executed once by the master, results replicated),
//! * which calls are **blocking** (exempt from the ordering critical section,
//!   §4.1 of the paper),
//! * which calls are **security sensitive** (always locksteped even under the
//!   relaxed policies evaluated in §5.1),
//! * which calls must be **ordered** with the syscall ordering clock.

use serde::{Deserialize, Serialize};

use crate::error::Errno;

/// System call numbers understood by the simulated kernel.
///
/// The set is the union of the calls the paper's benchmarks and the nginx use
/// case exercise, plus [`Sysno::MveeSelfAware`], the pseudo system call the
/// paper adds so that the injected agent can learn whether it runs in the
/// master or in a slave variant (§4.5: "we added a new system call that
/// allows the variants to become self-aware").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Sysno {
    Read,
    Write,
    Open,
    Close,
    Stat,
    Fstat,
    Lseek,
    Mmap,
    Mprotect,
    Munmap,
    Brk,
    Pipe,
    Dup,
    Socket,
    Bind,
    Listen,
    Accept,
    Connect,
    Send,
    Recv,
    Shutdown,
    FutexWait,
    FutexWake,
    Clone,
    Exit,
    ExitGroup,
    Gettimeofday,
    ClockGettime,
    Getpid,
    Gettid,
    SchedYield,
    Nanosleep,
    /// Pins the calling thread to a CPU core (the arg carries the core
    /// index).  The simulated kernel records the assignment per (process,
    /// thread); the MVEE runner issues it for `Placement::Pinned` runs.
    SchedSetaffinity,
    Getrandom,
    Madvise,
    Fcntl,
    Ioctl,
    Readlink,
    Access,
    Unlink,
    Rename,
    Mkdir,
    Epoll,
    Poll,
    Sendfile,
    Writev,
    /// The MVEE self-awareness pseudo call.  It does not exist in the real
    /// kernel; the monitor intercepts it and answers with the variant's role.
    MveeSelfAware,
    /// Placeholder for an unknown/unsupported call; the kernel answers ENOSYS.
    Unknown(u32),
}

/// Coarse monitoring classification of a system call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyscallClass {
    /// Input/output: performed once by the master, results replicated.
    Io,
    /// Modifies the address space (`brk`, `mmap`, ...): executed by every
    /// variant against its own address space, but ordered and compared.
    AddressSpace,
    /// Process / thread management (`clone`, `exit`, ...).
    Process,
    /// Queries that return identical data in all variants (time, pid).
    ReadOnlyInfo,
    /// Blocking synchronization (futex): treated like I/O, never wrapped in an
    /// ordering critical section (paper §4.1).
    BlockingSync,
    /// Scheduling hints with no externally visible effect.
    SchedulerHint,
    /// The MVEE self-awareness pseudo call.
    MveePrivate,
    /// Anything the simulated kernel does not implement.
    Unsupported,
}

impl Sysno {
    /// Returns the monitoring classification for this call.
    pub fn class(self) -> SyscallClass {
        use Sysno::*;
        match self {
            Read | Write | Open | Close | Stat | Fstat | Lseek | Pipe | Dup | Socket | Bind
            | Listen | Accept | Connect | Send | Recv | Shutdown | Fcntl | Ioctl | Readlink
            | Access | Unlink | Rename | Mkdir | Epoll | Poll | Sendfile | Writev => {
                SyscallClass::Io
            }
            Mmap | Mprotect | Munmap | Brk | Madvise => SyscallClass::AddressSpace,
            Clone | Exit | ExitGroup => SyscallClass::Process,
            Gettimeofday | ClockGettime | Getpid | Gettid | Getrandom => SyscallClass::ReadOnlyInfo,
            FutexWait | FutexWake => SyscallClass::BlockingSync,
            SchedYield | Nanosleep | SchedSetaffinity => SyscallClass::SchedulerHint,
            MveeSelfAware => SyscallClass::MveePrivate,
            Unknown(_) => SyscallClass::Unsupported,
        }
    }

    /// Whether the call performs externally visible I/O.
    ///
    /// I/O calls are executed only by the master variant; the monitor copies
    /// the results to the slaves so that all variants observe consistent
    /// inputs (paper §2 and §4.1).
    pub fn is_io(self) -> bool {
        matches!(self.class(), SyscallClass::Io)
    }

    /// Whether the call may block indefinitely in the kernel.
    ///
    /// Blocking calls cannot be wrapped in the syscall-ordering critical
    /// section because the monitor could never leave the section (paper
    /// §4.1 "Limitations").
    pub fn may_block(self) -> bool {
        matches!(
            self,
            Sysno::FutexWait
                | Sysno::Accept
                | Sysno::Recv
                | Sysno::Read
                | Sysno::Poll
                | Sysno::Epoll
                | Sysno::Nanosleep
        )
    }

    /// Whether the call must be assigned a timestamp on the syscall ordering
    /// clock (paper §4.1).
    ///
    /// Ordering applies to non-blocking calls whose results can depend on the
    /// relative order of other threads' calls within the same variant:
    /// everything that touches shared kernel resources (the FD table, the
    /// address space, the file system name space).
    pub fn needs_ordering(self) -> bool {
        if self.may_block() {
            return false;
        }
        matches!(
            self.class(),
            SyscallClass::Io | SyscallClass::AddressSpace | SyscallClass::Process
        )
    }

    /// Whether the call is security sensitive.
    ///
    /// The paper evaluates monitoring policies "ranging from strict
    /// lockstepping on all system calls to lockstepping only on
    /// security-sensitive system calls" (§5.1).  The sensitive set is the
    /// calls that create new channels to the outside world or change memory
    /// protections.
    pub fn is_security_sensitive(self) -> bool {
        matches!(
            self,
            Sysno::Open
                | Sysno::Write
                | Sysno::Mmap
                | Sysno::Mprotect
                | Sysno::Socket
                | Sysno::Connect
                | Sysno::Bind
                | Sysno::Send
                | Sysno::Sendfile
                | Sysno::Writev
                | Sysno::Clone
                | Sysno::Unlink
                | Sysno::Rename
                | Sysno::ExitGroup
        )
    }

    /// Returns a stable lower-case name, used in traces and reports.
    pub fn name(self) -> &'static str {
        use Sysno::*;
        match self {
            Read => "read",
            Write => "write",
            Open => "open",
            Close => "close",
            Stat => "stat",
            Fstat => "fstat",
            Lseek => "lseek",
            Mmap => "mmap",
            Mprotect => "mprotect",
            Munmap => "munmap",
            Brk => "brk",
            Pipe => "pipe",
            Dup => "dup",
            Socket => "socket",
            Bind => "bind",
            Listen => "listen",
            Accept => "accept",
            Connect => "connect",
            Send => "send",
            Recv => "recv",
            Shutdown => "shutdown",
            FutexWait => "futex_wait",
            FutexWake => "futex_wake",
            Clone => "clone",
            Exit => "exit",
            ExitGroup => "exit_group",
            Gettimeofday => "gettimeofday",
            ClockGettime => "clock_gettime",
            Getpid => "getpid",
            Gettid => "gettid",
            SchedYield => "sched_yield",
            Nanosleep => "nanosleep",
            SchedSetaffinity => "sched_setaffinity",
            Getrandom => "getrandom",
            Madvise => "madvise",
            Fcntl => "fcntl",
            Ioctl => "ioctl",
            Readlink => "readlink",
            Access => "access",
            Unlink => "unlink",
            Rename => "rename",
            Mkdir => "mkdir",
            Epoll => "epoll",
            Poll => "poll",
            Sendfile => "sendfile",
            Writev => "writev",
            MveeSelfAware => "mvee_self_aware",
            Unknown(_) => "unknown",
        }
    }
}

/// A single system-call argument.
///
/// Pointer-valued arguments are represented by what they *point to* (paths,
/// buffers), plus the raw address, because a security-oriented MVEE compares
/// the pointed-to contents, not the (diversified, hence differing) pointer
/// values themselves.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyscallArg {
    /// A plain integer argument (sizes, offsets, fds).
    Int(i64),
    /// A file descriptor.  Distinguished from `Int` because FD values are
    /// replicated from the master under some policies.
    Fd(i32),
    /// A flags bitfield.
    Flags(u64),
    /// A pointer argument: the raw (per-variant, diversified) address.
    /// The monitor never compares the address itself.
    Pointer(u64),
    /// A path name (the contents pointed to by a `const char *` argument).
    Path(String),
    /// An opaque byte-buffer length (the buffer contents travel in
    /// [`SyscallRequest::payload`]).
    BufLen(usize),
}

impl SyscallArg {
    /// Whether the argument participates in cross-variant comparison.
    ///
    /// Raw pointer values differ between diversified variants by design
    /// (ASLR / DCL), so the monitor skips them; everything else must match.
    pub fn is_compared(&self) -> bool {
        !matches!(self, SyscallArg::Pointer(_))
    }
}

/// A system call as issued by a variant thread.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyscallRequest {
    /// The call number.
    pub no: Sysno,
    /// The arguments, in ABI order.
    pub args: Vec<SyscallArg>,
    /// Outgoing data (e.g. the buffer passed to `write`/`send`).
    pub payload: Vec<u8>,
}

impl SyscallRequest {
    /// Creates a request with no arguments.
    pub fn new(no: Sysno) -> Self {
        SyscallRequest {
            no,
            args: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// Appends an argument (builder style).
    pub fn with_arg(mut self, arg: SyscallArg) -> Self {
        self.args.push(arg);
        self
    }

    /// Appends a path argument (builder style).
    pub fn with_path(self, path: &str) -> Self {
        self.with_arg(SyscallArg::Path(path.to_string()))
    }

    /// Appends an integer argument (builder style).
    pub fn with_int(self, v: i64) -> Self {
        self.with_arg(SyscallArg::Int(v))
    }

    /// Appends a file-descriptor argument (builder style).
    pub fn with_fd(self, fd: i32) -> Self {
        self.with_arg(SyscallArg::Fd(fd))
    }

    /// Sets the outgoing payload (builder style).
    pub fn with_payload(mut self, data: &[u8]) -> Self {
        self.payload = data.to_vec();
        self
    }

    /// Returns the comparison key used by the divergence detector: the call
    /// number plus every compared argument plus a digest of the payload.
    ///
    /// Two requests from equivalent threads in different variants must have
    /// equal comparison keys or the monitor declares divergence.
    pub fn comparison_key(&self) -> ComparisonKey {
        ComparisonKey {
            no: self.no,
            args: self
                .args
                .iter()
                .filter(|a| a.is_compared())
                .cloned()
                .collect(),
            payload_digest: fnv1a(&self.payload),
            payload_len: self.payload.len(),
        }
    }
}

/// The normalized view of a request that is compared across variants.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ComparisonKey {
    /// Call number.
    pub no: Sysno,
    /// Compared (non-pointer) arguments.
    pub args: Vec<SyscallArg>,
    /// FNV-1a digest of the outgoing payload.
    pub payload_digest: u64,
    /// Length of the outgoing payload.
    pub payload_len: usize,
}

/// The kernel's answer to a system call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyscallOutcome {
    /// The return value (`Ok(value)`), or the error number.
    pub result: Result<i64, Errno>,
    /// Incoming data (e.g. the bytes produced by `read`/`recv`).
    pub payload: Vec<u8>,
}

impl SyscallOutcome {
    /// A successful outcome with the given return value and no payload.
    pub fn ok(value: i64) -> Self {
        SyscallOutcome {
            result: Ok(value),
            payload: Vec::new(),
        }
    }

    /// A successful outcome carrying data back to the caller.
    pub fn ok_with_payload(value: i64, payload: Vec<u8>) -> Self {
        SyscallOutcome {
            result: Ok(value),
            payload,
        }
    }

    /// A failed outcome.
    pub fn err(errno: Errno) -> Self {
        SyscallOutcome {
            result: Err(errno),
            payload: Vec::new(),
        }
    }

    /// The value as it would appear in the return register.
    pub fn raw_return(&self) -> i64 {
        match self.result {
            Ok(v) => v,
            Err(e) => e.as_syscall_ret(),
        }
    }

    /// Whether the call succeeded.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

/// FNV-1a hash, used for payload digests and sync-variable-to-clock hashing.
///
/// Chosen because the paper requires a "cheap hash function" (§4.5) and
/// because it is deterministic across runs (no per-process seed), which the
/// reproduction harness relies on.
pub fn fnv1a(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_calls_are_classified_as_io() {
        assert!(Sysno::Read.is_io());
        assert!(Sysno::Write.is_io());
        assert!(Sysno::Open.is_io());
        assert!(Sysno::Accept.is_io());
        assert!(!Sysno::Brk.is_io());
        assert!(!Sysno::FutexWait.is_io());
        assert!(!Sysno::Gettimeofday.is_io());
    }

    #[test]
    fn blocking_calls_are_never_ordered() {
        // Paper §4.1: "we cannot order blocking system calls".
        for s in [Sysno::FutexWait, Sysno::Accept, Sysno::Recv, Sysno::Poll] {
            assert!(s.may_block());
            assert!(!s.needs_ordering(), "{:?} must not be ordered", s);
        }
    }

    #[test]
    fn address_space_calls_are_ordered() {
        for s in [Sysno::Brk, Sysno::Mmap, Sysno::Mprotect, Sysno::Munmap] {
            assert!(s.needs_ordering(), "{:?} must be ordered", s);
        }
    }

    #[test]
    fn self_aware_call_is_private() {
        assert_eq!(Sysno::MveeSelfAware.class(), SyscallClass::MveePrivate);
        assert!(!Sysno::MveeSelfAware.needs_ordering());
    }

    #[test]
    fn security_sensitive_set_contains_mprotect_and_socket() {
        assert!(Sysno::Mprotect.is_security_sensitive());
        assert!(Sysno::Socket.is_security_sensitive());
        assert!(Sysno::Write.is_security_sensitive());
        assert!(!Sysno::Gettid.is_security_sensitive());
        assert!(!Sysno::SchedYield.is_security_sensitive());
    }

    #[test]
    fn pointer_args_are_not_compared() {
        assert!(!SyscallArg::Pointer(0xdead_beef).is_compared());
        assert!(SyscallArg::Int(42).is_compared());
        assert!(SyscallArg::Path("/etc/passwd".into()).is_compared());
    }

    #[test]
    fn comparison_key_ignores_pointer_values() {
        let a = SyscallRequest::new(Sysno::Write)
            .with_fd(1)
            .with_arg(SyscallArg::Pointer(0x1000))
            .with_payload(b"hello");
        let b = SyscallRequest::new(Sysno::Write)
            .with_fd(1)
            .with_arg(SyscallArg::Pointer(0x7fff_0000))
            .with_payload(b"hello");
        assert_eq!(a.comparison_key(), b.comparison_key());
    }

    #[test]
    fn comparison_key_detects_payload_difference() {
        let a = SyscallRequest::new(Sysno::Write)
            .with_fd(1)
            .with_payload(b"aaaa");
        let b = SyscallRequest::new(Sysno::Write)
            .with_fd(1)
            .with_payload(b"aaab");
        assert_ne!(a.comparison_key(), b.comparison_key());
    }

    #[test]
    fn comparison_key_detects_different_fd() {
        let a = SyscallRequest::new(Sysno::Write).with_fd(1);
        let b = SyscallRequest::new(Sysno::Write).with_fd(2);
        assert_ne!(a.comparison_key(), b.comparison_key());
    }

    #[test]
    fn outcome_raw_return_encodes_errno() {
        assert_eq!(SyscallOutcome::ok(7).raw_return(), 7);
        assert_eq!(SyscallOutcome::err(Errno::Enoent).raw_return(), -2);
    }

    #[test]
    fn fnv1a_is_deterministic_and_discriminating() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Sysno::Open.name(), "open");
        assert_eq!(Sysno::FutexWait.name(), "futex_wait");
        assert_eq!(Sysno::MveeSelfAware.name(), "mvee_self_aware");
    }
}
