//! Virtual time sources: `gettimeofday`, `clock_gettime` and an `rdtsc` model.
//!
//! Time matters to the MVEE in two ways.  First, time queries are replicated
//! from the master to the slaves so all variants observe identical
//! timestamps.  Second, exactly because they are replicated, they form the
//! timing covert channel analysed in §5.4: a data-dependent delay in the
//! master between two `gettimeofday` calls is visible to the slave through
//! the replicated delta.
//!
//! The clock can run in two modes:
//!
//! * **Wall-clock mode** — backed by [`std::time::Instant`], used by the
//!   benchmark harness so measured overheads are real.
//! * **Manual mode** — advanced explicitly, used by unit tests and by the
//!   covert-channel proof of concept so results are deterministic.

use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A timestamp in nanoseconds since clock start.
pub type Nanos = u64;

/// A `timeval`-like value: seconds and microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeVal {
    /// Whole seconds.
    pub sec: u64,
    /// Microseconds within the second.
    pub usec: u32,
}

impl TimeVal {
    /// Builds a `TimeVal` from nanoseconds.
    pub fn from_nanos(ns: Nanos) -> Self {
        TimeVal {
            sec: ns / 1_000_000_000,
            usec: ((ns % 1_000_000_000) / 1_000) as u32,
        }
    }

    /// Converts back to nanoseconds (losing sub-microsecond precision).
    pub fn to_nanos(self) -> Nanos {
        self.sec * 1_000_000_000 + u64::from(self.usec) * 1_000
    }
}

enum Source {
    Wall { start: Instant },
    Manual { now: Nanos },
}

/// A virtual clock serving time-related system calls.
pub struct VirtualClock {
    source: Mutex<Source>,
    /// Simulated TSC frequency in ticks per nanosecond numerator/denominator.
    /// We model a 2.2 GHz part (the paper's Xeon E5-2660), i.e. 2.2 ticks/ns,
    /// stored as 11/5 to stay in integer arithmetic.
    tsc_num: u64,
    tsc_den: u64,
}

impl VirtualClock {
    /// Creates a wall-clock-backed virtual clock.
    pub fn new_wall() -> Self {
        VirtualClock {
            source: Mutex::new(Source::Wall {
                start: Instant::now(),
            }),
            tsc_num: 11,
            tsc_den: 5,
        }
    }

    /// Creates a manually advanced clock starting at zero.
    pub fn new_manual() -> Self {
        VirtualClock {
            source: Mutex::new(Source::Manual { now: 0 }),
            tsc_num: 11,
            tsc_den: 5,
        }
    }

    /// Current time in nanoseconds since clock start.
    pub fn now_nanos(&self) -> Nanos {
        match &*self.source.lock() {
            Source::Wall { start } => start.elapsed().as_nanos() as u64,
            Source::Manual { now } => *now,
        }
    }

    /// Advances a manual clock by `ns` nanoseconds.
    ///
    /// On a wall clock this is a no-op; tests use manual clocks when they
    /// need to control time.
    pub fn advance(&self, ns: Nanos) {
        if let Source::Manual { now } = &mut *self.source.lock() {
            *now += ns;
        }
    }

    /// `gettimeofday` result.
    pub fn gettimeofday(&self) -> TimeVal {
        TimeVal::from_nanos(self.now_nanos())
    }

    /// `clock_gettime(CLOCK_MONOTONIC)` result in nanoseconds.
    pub fn clock_gettime(&self) -> Nanos {
        self.now_nanos()
    }

    /// Simulated `rdtsc` value.
    ///
    /// The paper's covert channel also mentions `rdtsc`; modelling it as a
    /// scaled view of the same clock is sufficient for that experiment.
    pub fn rdtsc(&self) -> u64 {
        self.now_nanos() * self.tsc_num / self.tsc_den
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new_wall()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeval_conversion_roundtrip() {
        let tv = TimeVal::from_nanos(3_250_001_000);
        assert_eq!(tv.sec, 3);
        assert_eq!(tv.usec, 250_001);
        assert_eq!(tv.to_nanos(), 3_250_001_000);
    }

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let c = VirtualClock::new_manual();
        assert_eq!(c.now_nanos(), 0);
        c.advance(1_500);
        assert_eq!(c.now_nanos(), 1_500);
        c.advance(500);
        assert_eq!(c.gettimeofday().to_nanos(), 2_000);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = VirtualClock::new_wall();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn rdtsc_scales_with_frequency() {
        let c = VirtualClock::new_manual();
        c.advance(1_000);
        // 2.2 ticks per nanosecond.
        assert_eq!(c.rdtsc(), 2_200);
    }

    #[test]
    fn advance_on_wall_clock_is_noop() {
        let c = VirtualClock::new_wall();
        let before = c.now_nanos();
        c.advance(1_000_000_000);
        // The clock did not jump a full second ahead.
        assert!(c.now_nanos() < before + 900_000_000);
    }

    #[test]
    fn clock_gettime_matches_now() {
        let c = VirtualClock::new_manual();
        c.advance(42);
        assert_eq!(c.clock_gettime(), 42);
    }
}
