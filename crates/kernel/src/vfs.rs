//! A small virtual file system: regular files, directories and pipes.
//!
//! The VFS is the target of the I/O system calls the monitor executes once
//! (in the master variant) and whose results it replicates to the slaves.
//! It is deliberately simple — a flat inode table plus a path index — but it
//! implements the pieces whose semantics matter to the MVEE: inode and
//! descriptor allocation order, per-descriptor offsets, pipe capacity and
//! `EPIPE`/`EAGAIN` behaviour.

use std::collections::HashMap;

use bytes::{Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::error::{Errno, KernelResult};

/// Flags accepted by [`Vfs::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpenFlags(u64);

impl OpenFlags {
    /// Open read-only.
    pub const READ: OpenFlags = OpenFlags(0x1);
    /// Open write-only.
    pub const WRITE: OpenFlags = OpenFlags(0x2);
    /// Create the file if it does not exist.
    pub const CREATE: OpenFlags = OpenFlags(0x40);
    /// Truncate the file on open.
    pub const TRUNCATE: OpenFlags = OpenFlags(0x200);
    /// Append on every write.
    pub const APPEND: OpenFlags = OpenFlags(0x400);

    /// Creates a flag set from raw bits.
    pub fn from_bits(bits: u64) -> Self {
        OpenFlags(bits)
    }

    /// Returns the raw bits.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Whether all bits in `other` are set.
    pub fn contains(self, other: OpenFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn union(self, other: OpenFlags) -> OpenFlags {
        OpenFlags(self.0 | other.0)
    }
}

/// File metadata, the result of `stat`/`fstat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileStat {
    /// Inode number.
    pub inode: u64,
    /// Size in bytes.
    pub size: u64,
    /// Whether the inode is a directory.
    pub is_dir: bool,
}

/// In-memory inode.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Inode {
    Regular { data: Vec<u8> },
    Directory,
}

/// Pipe capacity in bytes (Linux default is 64 KiB).
pub const PIPE_CAPACITY: usize = 64 * 1024;

/// A unidirectional pipe.
#[derive(Debug, Default)]
struct Pipe {
    buffer: BytesMut,
    read_closed: bool,
    write_closed: bool,
}

/// The virtual file system.
#[derive(Debug, Default)]
pub struct Vfs {
    inodes: HashMap<u64, Inode>,
    paths: HashMap<String, u64>,
    next_inode: u64,
    pipes: HashMap<u64, Pipe>,
    next_pipe: u64,
}

impl Vfs {
    /// Creates an empty file system containing only the root directory.
    pub fn new() -> Self {
        let mut vfs = Vfs {
            inodes: HashMap::new(),
            paths: HashMap::new(),
            next_inode: 1,
            pipes: HashMap::new(),
            next_pipe: 1,
        };
        let root = vfs.alloc_inode(Inode::Directory);
        vfs.paths.insert("/".to_string(), root);
        vfs
    }

    fn alloc_inode(&mut self, inode: Inode) -> u64 {
        let id = self.next_inode;
        self.next_inode += 1;
        self.inodes.insert(id, inode);
        id
    }

    /// Creates a regular file at `path` with the given contents, replacing any
    /// existing file.  Intended for test and workload setup.
    pub fn install_file(&mut self, path: &str, contents: &[u8]) -> u64 {
        let inode = self.alloc_inode(Inode::Regular {
            data: contents.to_vec(),
        });
        self.paths.insert(path.to_string(), inode);
        inode
    }

    /// Creates a directory at `path`.
    pub fn mkdir(&mut self, path: &str) -> KernelResult<u64> {
        if self.paths.contains_key(path) {
            return Err(Errno::Eexist);
        }
        let inode = self.alloc_inode(Inode::Directory);
        self.paths.insert(path.to_string(), inode);
        Ok(inode)
    }

    /// Resolves `path` to an inode and returns it, creating the file when
    /// `CREATE` is given.  Returns the inode number.
    pub fn open(&mut self, path: &str, flags: OpenFlags) -> KernelResult<u64> {
        match self.paths.get(path).copied() {
            Some(inode) => {
                if flags.contains(OpenFlags::TRUNCATE) {
                    if let Some(Inode::Regular { data }) = self.inodes.get_mut(&inode) {
                        data.clear();
                    }
                }
                Ok(inode)
            }
            None if flags.contains(OpenFlags::CREATE) => {
                let inode = self.alloc_inode(Inode::Regular { data: Vec::new() });
                self.paths.insert(path.to_string(), inode);
                Ok(inode)
            }
            None => Err(Errno::Enoent),
        }
    }

    /// Whether `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.paths.contains_key(path)
    }

    /// Removes the name `path`.  The inode is dropped as well (no hard links
    /// in this model).
    pub fn unlink(&mut self, path: &str) -> KernelResult<()> {
        let inode = self.paths.remove(path).ok_or(Errno::Enoent)?;
        self.inodes.remove(&inode);
        Ok(())
    }

    /// Renames `from` to `to`.
    pub fn rename(&mut self, from: &str, to: &str) -> KernelResult<()> {
        let inode = self.paths.remove(from).ok_or(Errno::Enoent)?;
        self.paths.insert(to.to_string(), inode);
        Ok(())
    }

    /// Returns metadata for the inode behind `path`.
    pub fn stat(&self, path: &str) -> KernelResult<FileStat> {
        let inode = *self.paths.get(path).ok_or(Errno::Enoent)?;
        self.fstat(inode)
    }

    /// Returns metadata for `inode`.
    pub fn fstat(&self, inode: u64) -> KernelResult<FileStat> {
        match self.inodes.get(&inode) {
            Some(Inode::Regular { data }) => Ok(FileStat {
                inode,
                size: data.len() as u64,
                is_dir: false,
            }),
            Some(Inode::Directory) => Ok(FileStat {
                inode,
                size: 0,
                is_dir: true,
            }),
            None => Err(Errno::Enoent),
        }
    }

    /// Reads up to `len` bytes from `inode` starting at `offset`.
    pub fn read(&self, inode: u64, offset: u64, len: usize) -> KernelResult<Bytes> {
        match self.inodes.get(&inode) {
            Some(Inode::Regular { data }) => {
                let start = (offset as usize).min(data.len());
                let end = (start + len).min(data.len());
                Ok(Bytes::copy_from_slice(&data[start..end]))
            }
            Some(Inode::Directory) => Err(Errno::Eisdir),
            None => Err(Errno::Ebadf),
        }
    }

    /// Writes `buf` to `inode` at `offset` (or at the end when `append`),
    /// returning the number of bytes written.
    pub fn write(
        &mut self,
        inode: u64,
        offset: u64,
        buf: &[u8],
        append: bool,
    ) -> KernelResult<usize> {
        match self.inodes.get_mut(&inode) {
            Some(Inode::Regular { data }) => {
                let start = if append { data.len() } else { offset as usize };
                if start > data.len() {
                    data.resize(start, 0);
                }
                let end = start + buf.len();
                if end > data.len() {
                    data.resize(end, 0);
                }
                data[start..end].copy_from_slice(buf);
                Ok(buf.len())
            }
            Some(Inode::Directory) => Err(Errno::Eisdir),
            None => Err(Errno::Ebadf),
        }
    }

    /// Creates a pipe and returns its identifier.
    pub fn create_pipe(&mut self) -> u64 {
        let id = self.next_pipe;
        self.next_pipe += 1;
        self.pipes.insert(id, Pipe::default());
        id
    }

    /// Writes to the pipe's buffer.
    ///
    /// Returns `EPIPE` when the read end is closed and `EAGAIN` when the pipe
    /// is full (this model is non-blocking; the monitor layers blocking
    /// semantics on top where needed).
    pub fn pipe_write(&mut self, pipe: u64, buf: &[u8]) -> KernelResult<usize> {
        let p = self.pipes.get_mut(&pipe).ok_or(Errno::Ebadf)?;
        if p.read_closed {
            return Err(Errno::Epipe);
        }
        let available = PIPE_CAPACITY.saturating_sub(p.buffer.len());
        if available == 0 {
            return Err(Errno::Eagain);
        }
        let n = buf.len().min(available);
        p.buffer.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    /// Reads up to `len` bytes from the pipe.
    ///
    /// Returns `Ok(empty)` at end-of-stream (write end closed, buffer empty)
    /// and `EAGAIN` when the pipe is merely empty.
    pub fn pipe_read(&mut self, pipe: u64, len: usize) -> KernelResult<Bytes> {
        let p = self.pipes.get_mut(&pipe).ok_or(Errno::Ebadf)?;
        if p.buffer.is_empty() {
            if p.write_closed {
                return Ok(Bytes::new());
            }
            return Err(Errno::Eagain);
        }
        let n = len.min(p.buffer.len());
        Ok(p.buffer.split_to(n).freeze())
    }

    /// Closes one end of a pipe.
    pub fn pipe_close(&mut self, pipe: u64, read_end: bool) -> KernelResult<()> {
        let p = self.pipes.get_mut(&pipe).ok_or(Errno::Ebadf)?;
        if read_end {
            p.read_closed = true;
        } else {
            p.write_closed = true;
        }
        if p.read_closed && p.write_closed {
            self.pipes.remove(&pipe);
        }
        Ok(())
    }

    /// Number of bytes currently buffered in the pipe.
    pub fn pipe_len(&self, pipe: u64) -> KernelResult<usize> {
        self.pipes
            .get(&pipe)
            .map(|p| p.buffer.len())
            .ok_or(Errno::Ebadf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_missing_file_without_create_fails() {
        let mut vfs = Vfs::new();
        assert_eq!(vfs.open("/nope", OpenFlags::READ), Err(Errno::Enoent));
    }

    #[test]
    fn open_with_create_allocates_inode() {
        let mut vfs = Vfs::new();
        let inode = vfs.open("/a", OpenFlags::CREATE).unwrap();
        assert!(vfs.exists("/a"));
        assert_eq!(vfs.fstat(inode).unwrap().size, 0);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut vfs = Vfs::new();
        let inode = vfs
            .open("/data", OpenFlags::CREATE.union(OpenFlags::WRITE))
            .unwrap();
        vfs.write(inode, 0, b"hello world", false).unwrap();
        let out = vfs.read(inode, 6, 5).unwrap();
        assert_eq!(&out[..], b"world");
        assert_eq!(vfs.fstat(inode).unwrap().size, 11);
    }

    #[test]
    fn write_past_end_zero_fills() {
        let mut vfs = Vfs::new();
        let inode = vfs.install_file("/f", b"ab");
        vfs.write(inode, 5, b"x", false).unwrap();
        let all = vfs.read(inode, 0, 16).unwrap();
        assert_eq!(&all[..], b"ab\0\0\0x");
    }

    #[test]
    fn append_ignores_offset() {
        let mut vfs = Vfs::new();
        let inode = vfs.install_file("/log", b"one");
        vfs.write(inode, 0, b"two", true).unwrap();
        assert_eq!(&vfs.read(inode, 0, 16).unwrap()[..], b"onetwo");
    }

    #[test]
    fn truncate_clears_contents() {
        let mut vfs = Vfs::new();
        vfs.install_file("/t", b"contents");
        let inode = vfs.open("/t", OpenFlags::TRUNCATE).unwrap();
        assert_eq!(vfs.fstat(inode).unwrap().size, 0);
    }

    #[test]
    fn unlink_and_rename() {
        let mut vfs = Vfs::new();
        vfs.install_file("/a", b"1");
        vfs.rename("/a", "/b").unwrap();
        assert!(!vfs.exists("/a"));
        assert!(vfs.exists("/b"));
        vfs.unlink("/b").unwrap();
        assert!(!vfs.exists("/b"));
        assert_eq!(vfs.unlink("/b"), Err(Errno::Enoent));
    }

    #[test]
    fn mkdir_reports_eexist() {
        let mut vfs = Vfs::new();
        vfs.mkdir("/dir").unwrap();
        assert_eq!(vfs.mkdir("/dir"), Err(Errno::Eexist));
        assert!(vfs.stat("/dir").unwrap().is_dir);
    }

    #[test]
    fn directory_read_is_eisdir() {
        let mut vfs = Vfs::new();
        let d = vfs.mkdir("/dir").unwrap();
        assert_eq!(vfs.read(d, 0, 1), Err(Errno::Eisdir));
        assert_eq!(vfs.write(d, 0, b"x", false), Err(Errno::Eisdir));
    }

    #[test]
    fn pipe_fifo_order() {
        let mut vfs = Vfs::new();
        let p = vfs.create_pipe();
        vfs.pipe_write(p, b"abc").unwrap();
        vfs.pipe_write(p, b"def").unwrap();
        assert_eq!(&vfs.pipe_read(p, 4).unwrap()[..], b"abcd");
        assert_eq!(&vfs.pipe_read(p, 4).unwrap()[..], b"ef");
    }

    #[test]
    fn pipe_empty_returns_eagain_until_writer_closes() {
        let mut vfs = Vfs::new();
        let p = vfs.create_pipe();
        assert_eq!(vfs.pipe_read(p, 1), Err(Errno::Eagain));
        vfs.pipe_close(p, false).unwrap();
        assert_eq!(vfs.pipe_read(p, 1).unwrap().len(), 0);
    }

    #[test]
    fn pipe_write_after_reader_close_is_epipe() {
        let mut vfs = Vfs::new();
        let p = vfs.create_pipe();
        vfs.pipe_close(p, true).unwrap();
        assert_eq!(vfs.pipe_write(p, b"x"), Err(Errno::Epipe));
    }

    #[test]
    fn pipe_respects_capacity() {
        let mut vfs = Vfs::new();
        let p = vfs.create_pipe();
        let big = vec![0u8; PIPE_CAPACITY + 100];
        let n = vfs.pipe_write(p, &big).unwrap();
        assert_eq!(n, PIPE_CAPACITY);
        assert_eq!(vfs.pipe_write(p, b"more"), Err(Errno::Eagain));
        assert_eq!(vfs.pipe_len(p).unwrap(), PIPE_CAPACITY);
    }

    #[test]
    fn inode_numbers_are_allocation_ordered() {
        let mut vfs = Vfs::new();
        let a = vfs.install_file("/1", b"");
        let b = vfs.install_file("/2", b"");
        assert!(b > a);
    }
}
