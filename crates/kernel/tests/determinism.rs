//! Tests for the kernel's determinism primitives.
//!
//! The monitor's cross-variant consistency rests on two kernel-side
//! invariants (§3.1 of the paper): file descriptors are allocated
//! lowest-free, so a replayed open/close order yields identical descriptor
//! numbers in every variant; and the lockstep comparison key of a system call
//! ignores raw pointer values, which legitimately differ between diversified
//! variants, while still distinguishing every argument that must match.

use mvee_kernel::fd::{FdObject, FdTable};
use mvee_kernel::syscall::{SyscallArg, SyscallRequest, Sysno};

fn file(inode: u64) -> FdObject {
    FdObject::File {
        inode,
        offset: 0,
        writable: false,
    }
}

#[test]
fn fd_allocation_returns_lowest_free_descriptor() {
    let mut table = FdTable::with_standard_streams();

    // Standard streams occupy 0..3, so fresh allocations continue from 3.
    assert_eq!(table.allocate(file(10)).unwrap(), 3);
    assert_eq!(table.allocate(file(11)).unwrap(), 4);
    assert_eq!(table.allocate(file(12)).unwrap(), 5);

    // Closing an interior descriptor makes it the lowest free one again.
    table.close(4).unwrap();
    assert_eq!(table.allocate(file(13)).unwrap(), 4);

    // Closing several descriptors: allocation fills the lowest hole first.
    table.close(3).unwrap();
    table.close(5).unwrap();
    assert_eq!(table.allocate(file(14)).unwrap(), 3);
    assert_eq!(table.allocate(file(15)).unwrap(), 5);

    // Even a closed standard stream's number is reused, like POSIX.
    table.close(0).unwrap();
    assert_eq!(table.allocate(file(16)).unwrap(), 0);
}

#[test]
fn fd_allocation_sequence_is_replayable() {
    // Two tables driven through the same open/close sequence hand out the
    // same descriptors — the property the syscall ordering clock relies on
    // when it forces slaves to replay the master's FD allocation order.
    let run = || {
        let mut table = FdTable::with_standard_streams();
        let mut log = Vec::new();
        for inode in 0..16u64 {
            let fd = table.allocate(file(inode)).unwrap();
            log.push(fd);
            if inode % 3 == 2 {
                table.close(fd - 1).unwrap();
                log.push(-(fd - 1));
            }
        }
        log
    };
    assert_eq!(run(), run());
}

#[test]
fn diversified_address_spaces_allocate_at_different_addresses() {
    use mvee_kernel::mem::{AddressSpace, Protection};

    // Two variants with ASLR-shifted layouts: the same mmap sequence must
    // yield different addresses (that is the point of diversification), and
    // each variant's allocations stay below its own mmap top.
    let mut master = AddressSpace::with_layout(0x5555_0000_0000, 0x7fff_0000_0000);
    let mut slave = AddressSpace::with_layout(0x5560_0000_0000, 0x7ff0_0000_0000);
    assert_ne!(master.mmap_top(), slave.mmap_top());
    for _ in 0..4 {
        let m = master.mmap(0x4000, Protection::RW).unwrap();
        let s = slave.mmap(0x4000, Protection::RW).unwrap();
        assert_ne!(m, s, "diversified variants must not share mmap addresses");
        assert!(m < master.mmap_top());
        assert!(s < slave.mmap_top());
    }
}

#[test]
fn comparison_key_is_stable_across_pointer_values() {
    // Two variants issue the same write; only the buffer address differs
    // because their address spaces are diversified.  The key must not see it.
    let request_with_pointer = |ptr: u64| {
        SyscallRequest::new(Sysno::Write)
            .with_fd(1)
            .with_arg(SyscallArg::Pointer(ptr))
            .with_payload(b"identical payload")
    };
    let master = request_with_pointer(0x0000_5555_0000_1000);
    let slave = request_with_pointer(0x0000_7fff_dead_beef);
    assert_eq!(master.comparison_key(), slave.comparison_key());
}

#[test]
fn comparison_key_distinguishes_compared_arguments() {
    let base = SyscallRequest::new(Sysno::Write)
        .with_fd(1)
        .with_payload(b"payload");

    let different_fd = SyscallRequest::new(Sysno::Write)
        .with_fd(2)
        .with_payload(b"payload");
    assert_ne!(base.comparison_key(), different_fd.comparison_key());

    let different_payload = SyscallRequest::new(Sysno::Write)
        .with_fd(1)
        .with_payload(b"payloae");
    assert_ne!(base.comparison_key(), different_payload.comparison_key());

    let different_sysno = SyscallRequest::new(Sysno::Read)
        .with_fd(1)
        .with_payload(b"payload");
    assert_ne!(base.comparison_key(), different_sysno.comparison_key());
}

#[test]
fn comparison_key_sees_non_pointer_scalar_arguments() {
    let with_flags = |flags: u64| {
        SyscallRequest::new(Sysno::Mprotect)
            .with_arg(SyscallArg::Pointer(0x4000))
            .with_int(4096)
            .with_arg(SyscallArg::Flags(flags))
    };
    // Protection flags are security-relevant and must be compared...
    assert_ne!(
        with_flags(5).comparison_key(),
        with_flags(7).comparison_key()
    );
    // ...while the pointer stays excluded even for memory-management calls.
    let a = SyscallRequest::new(Sysno::Mprotect)
        .with_arg(SyscallArg::Pointer(0x4000))
        .with_int(4096)
        .with_arg(SyscallArg::Flags(7));
    let b = SyscallRequest::new(Sysno::Mprotect)
        .with_arg(SyscallArg::Pointer(0x9000))
        .with_int(4096)
        .with_arg(SyscallArg::Flags(7));
    assert_eq!(a.comparison_key(), b.comparison_key());
}
