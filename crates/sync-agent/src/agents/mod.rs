//! The synchronization-agent implementations.
//!
//! Three designs are evaluated by the paper (§4.5) and implemented here, plus
//! a [`NullAgent`] that performs no replication and serves as the "native"
//! baseline in the benchmark harness:
//!
//! | Agent | Buffering | Slave ordering discipline |
//! |---|---|---|
//! | [`TotalOrderAgent`] | one shared buffer, shared cursor | exact recorded global order |
//! | [`PartialOrderAgent`] | one shared buffer, shared cursor | order only among ops on the same variable (look-ahead window) |
//! | [`WallOfClocksAgent`] | one buffer per master thread | per-clock happens-before via a fixed wall of logical clocks |

mod null;
mod partial_order;
mod total_order;
mod wall_of_clocks;

pub use null::NullAgent;
pub use partial_order::PartialOrderAgent;
pub use total_order::TotalOrderAgent;
pub use wall_of_clocks::WallOfClocksAgent;

use serde::{Deserialize, Serialize};

/// Identifies an agent design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AgentKind {
    /// No replication at all (native baseline).
    Null,
    /// Total-order replication (§4.5, Figure 4a).
    TotalOrder,
    /// Partial-order replication (§4.5, Figure 4b).
    PartialOrder,
    /// Wall-of-clocks replication (§4.5, Figure 4c).
    WallOfClocks,
}

impl AgentKind {
    /// Human-readable name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            AgentKind::Null => "none",
            AgentKind::TotalOrder => "total-order",
            AgentKind::PartialOrder => "partial-order",
            AgentKind::WallOfClocks => "wall-of-clocks",
        }
    }

    /// All replication agents, in the order the paper's tables list them.
    pub fn replication_agents() -> [AgentKind; 3] {
        [
            AgentKind::TotalOrder,
            AgentKind::PartialOrder,
            AgentKind::WallOfClocks,
        ]
    }
}

/// One-shot storage for an agent's [`ReplicationHook`](crate::ReplicationHook).
///
/// Installed once by the MVEE front end, fired lock-free afterwards (an
/// uninstalled cell is a single atomic load on the sync-op hot path).  Every
/// agent embeds one and fires it at the top of `before_sync_op` — before any
/// guard is taken, so a blocking hook (a comparison flush is a rendezvous)
/// can never deadlock against the agent's own ordering guards — and from
/// `poison`.
pub(crate) struct HookCell(std::sync::OnceLock<crate::ReplicationHook>);

impl HookCell {
    pub(crate) fn new() -> Self {
        HookCell(std::sync::OnceLock::new())
    }

    /// Stores the hook; later installs are ignored.
    pub(crate) fn install(&self, hook: crate::ReplicationHook) {
        let _ = self.0.set(hook);
    }

    /// Fires the replication-point event for `ctx`'s thread and counts it
    /// in `stats` ([`AgentStats::replication_points`]) — an uninstalled cell
    /// counts nothing, so the counter reads zero unless a front end actually
    /// consumes replication points (deferred flushes, journal recording).
    ///
    /// [`AgentStats::replication_points`]: crate::stats::AgentStats::replication_points
    #[inline]
    pub(crate) fn sync_op(
        &self,
        ctx: &crate::context::SyncContext,
        stats: &crate::stats::SharedStats,
    ) {
        if let Some(hook) = self.0.get() {
            stats.count_replication_point(ctx.thread);
            hook(crate::ReplicationEvent::SyncOp(ctx));
        }
    }

    /// Fires the poison event.
    pub(crate) fn poisoned(&self) {
        if let Some(hook) = self.0.get() {
            hook(crate::ReplicationEvent::Poisoned);
        }
    }
}

impl Default for HookCell {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for HookCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("HookCell")
            .field(&self.0.get().map(|_| "installed"))
            .finish()
    }
}

/// The shared master-side "record an op under its ordering guard" loop.
///
/// Acquires the guard for `guard_idx`, builds the record (under the guard —
/// the wall-of-clocks agent reads the clock's current time there) and tries
/// to push it into `ring`.  On a full ring the guard is dropped while
/// waiting for space — never hold the ordering guard while waiting for
/// buffer space, or a master thread stalled on a full buffer blocks every
/// other master thread sharing the guard while the slave that should drain
/// the buffer may itself be waiting on one of those threads' ops: deadlock.
///
/// Returns `true` when the record was stored and `false` when the agent was
/// poisoned while waiting for space (the record is dropped — the slaves
/// that would replay it are shutting down).  In **both** cases the caller
/// ends up holding the guard, so the paired `after_sync_op` release stays
/// balanced.
///
/// The full-buffer wait parks on the ring's event count (under the adaptive
/// strategy): every slave cursor advance posts it, and the agents post it
/// from `poison`, so a parked master can never sleep through the wake-up it
/// is waiting for.
pub(crate) fn push_record_guarded(
    guards: &crate::guards::GuardTable,
    guard_idx: usize,
    ring: &crate::ring::RecordRing,
    waiter: &crate::guards::Waiter,
    on_master_stall: impl Fn(crate::guards::WaitTally),
    is_poisoned: impl Fn() -> bool,
    make_record: impl Fn() -> crate::ring::SyncRecord,
) -> bool {
    loop {
        guards.acquire(guard_idx);
        match ring.try_push(make_record()) {
            crate::ring::PushOutcome::Stored(_) => return true,
            crate::ring::PushOutcome::Full => {
                guards.release(guard_idx);
                let tally =
                    waiter.wait_until_event(ring.events(), || is_poisoned() || ring.has_space());
                on_master_stall(tally);
                if is_poisoned() {
                    guards.acquire(guard_idx);
                    return false;
                }
            }
        }
    }
}

/// Constructs a boxed agent of the requested kind.
pub fn build_agent(
    kind: AgentKind,
    config: crate::context::AgentConfig,
) -> Box<dyn crate::SyncAgent> {
    match kind {
        AgentKind::Null => Box::new(NullAgent::new()),
        AgentKind::TotalOrder => Box::new(TotalOrderAgent::new(config)),
        AgentKind::PartialOrder => Box::new(PartialOrderAgent::new(config)),
        AgentKind::WallOfClocks => Box::new(WallOfClocksAgent::new(config)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AgentConfig;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(AgentKind::TotalOrder.name(), "total-order");
        assert_eq!(AgentKind::WallOfClocks.name(), "wall-of-clocks");
        assert_eq!(AgentKind::Null.name(), "none");
    }

    #[test]
    fn replication_agents_excludes_null() {
        let agents = AgentKind::replication_agents();
        assert_eq!(agents.len(), 3);
        assert!(!agents.contains(&AgentKind::Null));
    }

    #[test]
    fn build_agent_returns_matching_kind() {
        let config = AgentConfig::default();
        for kind in [
            AgentKind::Null,
            AgentKind::TotalOrder,
            AgentKind::PartialOrder,
            AgentKind::WallOfClocks,
        ] {
            let agent = build_agent(kind, config);
            assert_eq!(agent.kind(), kind);
        }
    }
}
