//! The synchronization-agent implementations.
//!
//! Three designs are evaluated by the paper (§4.5) and implemented here, plus
//! a [`NullAgent`] that performs no replication and serves as the "native"
//! baseline in the benchmark harness:
//!
//! | Agent | Buffering | Slave ordering discipline |
//! |---|---|---|
//! | [`TotalOrderAgent`] | one shared buffer, shared cursor | exact recorded global order |
//! | [`PartialOrderAgent`] | one shared buffer, shared cursor | order only among ops on the same variable (look-ahead window) |
//! | [`WallOfClocksAgent`] | one buffer per master thread | per-clock happens-before via a fixed wall of logical clocks |

mod null;
mod partial_order;
mod total_order;
mod wall_of_clocks;

pub use null::NullAgent;
pub use partial_order::PartialOrderAgent;
pub use total_order::TotalOrderAgent;
pub use wall_of_clocks::WallOfClocksAgent;

use serde::{Deserialize, Serialize};

/// Identifies an agent design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AgentKind {
    /// No replication at all (native baseline).
    Null,
    /// Total-order replication (§4.5, Figure 4a).
    TotalOrder,
    /// Partial-order replication (§4.5, Figure 4b).
    PartialOrder,
    /// Wall-of-clocks replication (§4.5, Figure 4c).
    WallOfClocks,
}

impl AgentKind {
    /// Human-readable name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            AgentKind::Null => "none",
            AgentKind::TotalOrder => "total-order",
            AgentKind::PartialOrder => "partial-order",
            AgentKind::WallOfClocks => "wall-of-clocks",
        }
    }

    /// All replication agents, in the order the paper's tables list them.
    pub fn replication_agents() -> [AgentKind; 3] {
        [
            AgentKind::TotalOrder,
            AgentKind::PartialOrder,
            AgentKind::WallOfClocks,
        ]
    }
}

/// Constructs a boxed agent of the requested kind.
pub fn build_agent(
    kind: AgentKind,
    config: crate::context::AgentConfig,
) -> Box<dyn crate::SyncAgent> {
    match kind {
        AgentKind::Null => Box::new(NullAgent::new()),
        AgentKind::TotalOrder => Box::new(TotalOrderAgent::new(config)),
        AgentKind::PartialOrder => Box::new(PartialOrderAgent::new(config)),
        AgentKind::WallOfClocks => Box::new(WallOfClocksAgent::new(config)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AgentConfig;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(AgentKind::TotalOrder.name(), "total-order");
        assert_eq!(AgentKind::WallOfClocks.name(), "wall-of-clocks");
        assert_eq!(AgentKind::Null.name(), "none");
    }

    #[test]
    fn replication_agents_excludes_null() {
        let agents = AgentKind::replication_agents();
        assert_eq!(agents.len(), 3);
        assert!(!agents.contains(&AgentKind::Null));
    }

    #[test]
    fn build_agent_returns_matching_kind() {
        let config = AgentConfig::default();
        for kind in [
            AgentKind::Null,
            AgentKind::TotalOrder,
            AgentKind::PartialOrder,
            AgentKind::WallOfClocks,
        ] {
            let agent = build_agent(kind, config);
            assert_eq!(agent.kind(), kind);
        }
    }
}
