//! The no-op agent: counts sync ops but performs no replication.
//!
//! Used for "native" baseline measurements (the cost of the instrumentation
//! calls themselves, without any ordering) and in single-variant runs where
//! there is nothing to replicate to.

use crate::context::SyncContext;
use crate::stats::{AgentStats, SharedStats};
use crate::SyncAgent;

use super::AgentKind;

/// An agent that records statistics but enforces no ordering.
#[derive(Debug, Default)]
pub struct NullAgent {
    stats: SharedStats,
    hook: super::HookCell,
}

impl NullAgent {
    /// Creates a null agent.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SyncAgent for NullAgent {
    fn kind(&self) -> AgentKind {
        AgentKind::Null
    }

    fn before_sync_op(&self, ctx: &SyncContext, _addr: u64) {
        // Even the no-op agent marks its replication points, so deferred
        // comparisons flush at the same program positions under every agent.
        self.hook.sync_op(ctx, &self.stats);
        if ctx.role.is_master() {
            self.stats.count_record(ctx.thread);
        } else {
            self.stats.count_replay(ctx.thread);
        }
    }

    fn after_sync_op(&self, _ctx: &SyncContext, _addr: u64) {}

    fn stats(&self) -> AgentStats {
        self.stats.snapshot()
    }

    fn poison(&self) {
        // The null agent has no waits to release; poisoning only abandons
        // any deferred work batched behind the replication points.
        self.hook.poisoned();
    }

    fn set_replication_hook(&self, hook: crate::ReplicationHook) {
        self.hook.install(hook);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::VariantRole;

    #[test]
    fn null_agent_never_blocks_and_counts_ops() {
        let agent = NullAgent::new();
        let master = SyncContext::new(VariantRole::Master, 0);
        let slave = SyncContext::new(VariantRole::Slave { index: 0 }, 0);
        for i in 0..10 {
            agent.before_sync_op(&master, 0x1000 + i);
            agent.after_sync_op(&master, 0x1000 + i);
        }
        for i in 0..7 {
            agent.before_sync_op(&slave, 0x1000 + i);
            agent.after_sync_op(&slave, 0x1000 + i);
        }
        let s = agent.stats();
        assert_eq!(s.ops_recorded, 10);
        assert_eq!(s.ops_replayed, 7);
        assert_eq!(s.slave_stalls, 0);
        assert_eq!(s.master_stalls, 0);
    }

    #[test]
    fn null_agent_reports_its_kind() {
        assert_eq!(NullAgent::new().kind(), AgentKind::Null);
    }
}
